//! Query rewriting (tutorial slides 101–102).
//!
//! * [`similar_values`] — rewriting **from data only** (Nambiar &
//!   Kambhampati, ICDE 06): two attribute values are similar when the
//!   tuples carrying them look alike on the *other* attributes — "Honda
//!   Civic" buyers also see "Toyota Corolla" because both are compact,
//!   low-price sedans. Each value gets a bag-of-features vector from its
//!   co-occurring attribute values; similarity is the cosine.
//! * [`synonyms_from_clicks`] — rewriting **from click logs** (Cheng, Lauw
//!   & Paparizos, ICDE 10): two queries are synonymous when their clicked
//!   ("ground truth") result sets overlap heavily — `Indiana Jones IV` ≈
//!   `Indian Jones 4`.

use kwdb_rank::SparseVector;
use kwdb_relational::{Database, TableId};
use std::collections::HashMap;

/// Values of `table.column` most similar to `value`, by co-occurrence
/// cosine over the other columns. Best first; excludes `value` itself.
pub fn similar_values(
    db: &Database,
    table: TableId,
    column: usize,
    value: &str,
    k: usize,
) -> Vec<(String, f64)> {
    let t = db.table(table);
    // feature vector per distinct value of `column`
    let mut vectors: HashMap<String, SparseVector> = HashMap::new();
    for (_, row) in t.iter() {
        let Some(v) = row[column].as_text() else {
            continue;
        };
        let vec = vectors.entry(v.to_string()).or_default();
        for (c, cell) in row.iter().enumerate() {
            if c == column || cell.is_null() {
                continue;
            }
            // feature = column-qualified value (numeric values are bucketed
            // so "close" numbers share features)
            let feature = match cell.as_f64() {
                Some(x) if cell.as_text().is_none() => {
                    format!("{c}:{}", bucket(x))
                }
                _ => format!("{c}:{}", cell),
            };
            vec.add(feature, 1.0);
        }
    }
    let Some(target) = vectors.get(value) else {
        return Vec::new();
    };
    let mut sims: Vec<(String, f64)> = vectors
        .iter()
        .filter(|(v, _)| v.as_str() != value)
        .map(|(v, vec)| (v.clone(), target.cosine(vec)))
        .collect();
    sims.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    sims.truncate(k);
    sims
}

/// Coarse magnitude bucket for numeric co-occurrence features.
fn bucket(x: f64) -> i64 {
    (x / 10.0f64.powf(x.abs().max(1.0).log10().floor())).round() as i64
        * 10i64.pow(x.abs().max(1.0).log10().floor() as u32)
}

/// Suggested rewrites from a click log: queries whose clicked result sets
/// have Jaccard overlap ≥ `min_overlap` with `query`'s.
pub fn synonyms_from_clicks<'a>(
    log: &'a [(String, Vec<u64>)],
    query: &str,
    min_overlap: f64,
) -> Vec<(&'a str, f64)> {
    let Some((_, clicks)) = log.iter().find(|(q, _)| q == query) else {
        return Vec::new();
    };
    let target: std::collections::HashSet<u64> = clicks.iter().copied().collect();
    if target.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<(&str, f64)> = log
        .iter()
        .filter(|(q, _)| q != query)
        .filter_map(|(q, cs)| {
            let other: std::collections::HashSet<u64> = cs.iter().copied().collect();
            let inter = target.intersection(&other).count() as f64;
            let union = target.union(&other).count() as f64;
            let j = if union == 0.0 { 0.0 } else { inter / union };
            (j >= min_overlap).then_some((q.as_str(), j))
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::{ColumnType, TableBuilder};

    /// Slide 102's used-car scenario.
    fn cars() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db
            .create_table(
                TableBuilder::new("car")
                    .column("model", ColumnType::Text)
                    .column("type", ColumnType::Text)
                    .column("price", ColumnType::Int),
            )
            .unwrap();
        for (model, ty, price) in [
            ("Honda Civic", "sedan", 8000),
            ("Honda Civic", "sedan", 9000),
            ("Toyota Corolla", "sedan", 8500),
            ("Toyota Corolla", "sedan", 9500),
            ("Ferrari F40", "supercar", 400000),
            ("Ford F150", "truck", 30000),
        ] {
            db.insert("car", vec![model.into(), ty.into(), price.into()])
                .unwrap();
        }
        db.build_text_index();
        (db, t)
    }

    #[test]
    fn civic_is_similar_to_corolla_not_ferrari() {
        let (db, t) = cars();
        let sims = similar_values(&db, t, 0, "Honda Civic", 5);
        assert!(!sims.is_empty());
        assert_eq!(sims[0].0, "Toyota Corolla");
        let ferrari = sims.iter().find(|(v, _)| v == "Ferrari F40");
        if let Some((_, s)) = ferrari {
            assert!(*s < sims[0].1, "Ferrari must be less similar than Corolla");
        }
    }

    #[test]
    fn unknown_value_gives_empty() {
        let (db, t) = cars();
        assert!(similar_values(&db, t, 0, "DeLorean", 3).is_empty());
    }

    #[test]
    fn click_synonyms_found() {
        let log = vec![
            ("indiana jones iv".to_string(), vec![1, 2, 3, 4]),
            ("indian jones 4".to_string(), vec![1, 2, 3, 5]),
            ("star wars".to_string(), vec![9, 10]),
        ];
        let syn = synonyms_from_clicks(&log, "indiana jones iv", 0.5);
        assert_eq!(syn.len(), 1);
        assert_eq!(syn[0].0, "indian jones 4");
        assert!((syn[0].1 - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn click_threshold_filters() {
        let log = vec![("a".to_string(), vec![1, 2]), ("b".to_string(), vec![2, 3])];
        assert!(synonyms_from_clicks(&log, "a", 0.9).is_empty());
        assert_eq!(synonyms_from_clicks(&log, "a", 0.3).len(), 1);
        assert!(synonyms_from_clicks(&log, "zzz", 0.1).is_empty());
    }

    #[test]
    fn numeric_bucket_groups_magnitudes() {
        assert_eq!(bucket(8000.0), bucket(8400.0));
        assert_ne!(bucket(8000.0), bucket(400000.0));
    }
}
