//! Keyword++: mapping non-quantitative keywords to structured predicates
//! (Xin, He & Ganti, VLDB 10) — tutorial slides 95–100.
//!
//! `small IBM laptop` served literally has low precision ("IBM" no longer
//! appears on Lenovo products) and low recall ("small" matches no row).
//! Keyword++ *learns* what each keyword means by comparing the results of
//! **differential query pairs** (DQPs) from the query log: `Qf = Qb ∪ {k}`.
//! If adding `k` skews an attribute's value distribution, that attribute
//! value is `k`'s meaning:
//!
//! * categorical attributes — KL divergence between the foreground and
//!   background distributions; the dominant value becomes an `=` predicate
//!   (`IBM → Brand = 'Lenovo'`);
//! * numeric attributes — distribution shift (mean displacement, a 1-D
//!   earth-mover's distance); the direction becomes an `ORDER BY`
//!   (`small → ORDER BY ScreenSize ASC`).

use kwdb_common::Value;
use kwdb_relational::{Database, RowId, TableId};
use std::collections::HashMap;

/// How a keyword translates into structure.
#[derive(Debug, Clone, PartialEq)]
pub enum Mapping {
    /// `column = value`.
    Eq {
        column: usize,
        value: Value,
        score: f64,
    },
    /// `ORDER BY column ASC/DESC`.
    OrderBy {
        column: usize,
        ascending: bool,
        score: f64,
    },
}

/// A translated query (slide 96's CNF form).
#[derive(Debug, Clone, PartialEq)]
pub struct TranslatedQuery {
    /// Structured predicates from mapped keywords.
    pub predicates: Vec<Mapping>,
    /// Residual keywords served as full-text containment.
    pub residual: Vec<String>,
}

/// The Keyword++ learner for one entity table.
#[derive(Debug)]
pub struct KeywordPlusPlus<'a> {
    db: &'a Database,
    table: TableId,
    /// Columns eligible as categorical / numeric predicate targets.
    categorical: Vec<usize>,
    numeric: Vec<usize>,
    mappings: HashMap<String, Mapping>,
}

/// Divergence a mapping must clear to be adopted.
const MIN_SCORE: f64 = 0.2;

impl<'a> KeywordPlusPlus<'a> {
    pub fn new(
        db: &'a Database,
        table: TableId,
        categorical: Vec<usize>,
        numeric: Vec<usize>,
    ) -> Self {
        KeywordPlusPlus {
            db,
            table,
            categorical,
            numeric,
            mappings: HashMap::new(),
        }
    }

    /// Rows matching a keyword query under plain containment semantics.
    pub fn keyword_results<S: AsRef<str>>(&self, query: &[S]) -> Vec<RowId> {
        let t = self.db.table(self.table);
        t.iter()
            .filter(|&(rid, _)| {
                let toks = self
                    .db
                    .tuple_tokens(kwdb_relational::TupleId::new(self.table, rid));
                query.iter().all(|k| toks.iter().any(|t| t == k.as_ref()))
            })
            .map(|(rid, _)| rid)
            .collect()
    }

    /// Learn mappings for every keyword occurring in the log, using all the
    /// log's DQPs per keyword and averaging their divergence scores.
    pub fn learn(&mut self, log: &[Vec<String>]) {
        // keyword → list of (foreground rows, background rows)
        type Dqps<'k> = HashMap<&'k str, Vec<(Vec<RowId>, Vec<RowId>)>>;
        let mut dqps: Dqps<'_> = HashMap::new();
        for qf in log {
            for (i, k) in qf.iter().enumerate() {
                let mut qb = qf.clone();
                qb.remove(i);
                // the background query must itself appear in the log
                if !log
                    .iter()
                    .any(|q| q.len() == qb.len() && qb.iter().all(|t| q.contains(t)))
                {
                    continue;
                }
                let f_rows = self.keyword_results(qf);
                let b_rows = self.keyword_results(&qb);
                if b_rows.is_empty() {
                    continue;
                }
                dqps.entry(k.as_str()).or_default().push((f_rows, b_rows));
            }
        }
        let mut learned: Vec<(String, Mapping)> = Vec::new();
        for (k, pairs) in &dqps {
            if let Some(m) = self.best_mapping(pairs) {
                learned.push((k.to_string(), m));
            }
        }
        for (k, m) in learned {
            self.mappings.insert(k, m);
        }
    }

    fn best_mapping(&self, pairs: &[(Vec<RowId>, Vec<RowId>)]) -> Option<Mapping> {
        let mut best: Option<Mapping> = None;
        let score_of = |m: &Mapping| match m {
            Mapping::Eq { score, .. } | Mapping::OrderBy { score, .. } => *score,
        };
        for &col in &self.categorical {
            if let Some(m) = self.categorical_mapping(col, pairs) {
                if best.as_ref().is_none_or(|b| score_of(&m) > score_of(b)) {
                    best = Some(m);
                }
            }
        }
        for &col in &self.numeric {
            if let Some(m) = self.numeric_mapping(col, pairs) {
                if best.as_ref().is_none_or(|b| score_of(&m) > score_of(b)) {
                    best = Some(m);
                }
            }
        }
        best.filter(|m| score_of(m) >= MIN_SCORE)
    }

    /// KL-style divergence on one categorical column, averaged over DQPs;
    /// returns the value with the dominant positive contribution.
    fn categorical_mapping(
        &self,
        col: usize,
        pairs: &[(Vec<RowId>, Vec<RowId>)],
    ) -> Option<Mapping> {
        let t = self.db.table(self.table);
        let mut contrib: HashMap<Value, f64> = HashMap::new();
        let mut n_pairs = 0.0;
        for (f, b) in pairs {
            if f.is_empty() {
                continue;
            }
            n_pairs += 1.0;
            let dist = |rows: &[RowId]| -> HashMap<Value, f64> {
                let mut m: HashMap<Value, f64> = HashMap::new();
                for &r in rows {
                    *m.entry(t.get(r, col).clone()).or_insert(0.0) += 1.0;
                }
                let total: f64 = m.values().sum();
                m.into_iter().map(|(v, c)| (v, c / total)).collect()
            };
            let pf = dist(f);
            let pb = dist(b);
            let vocab = pb.len().max(1) as f64;
            for (v, p) in pf {
                let q = pb.get(&v).copied().unwrap_or(0.0);
                // smoothed pointwise KL contribution
                let c = p * ((p + 1e-9) / (q + 1.0 / vocab * 0.1 + 1e-9)).ln();
                *contrib.entry(v).or_insert(0.0) += c;
            }
        }
        if n_pairs == 0.0 {
            return None;
        }
        let (value, score) = contrib.into_iter().max_by(|a, b| a.1.total_cmp(&b.1))?;
        (score > 0.0).then_some(Mapping::Eq {
            column: col,
            value,
            score: score / n_pairs,
        })
    }

    /// Mean-shift (1-D EMD) on a numeric column; a consistent downward shift
    /// maps to `ORDER BY … ASC`.
    fn numeric_mapping(&self, col: usize, pairs: &[(Vec<RowId>, Vec<RowId>)]) -> Option<Mapping> {
        let t = self.db.table(self.table);
        let mean = |rows: &[RowId]| -> Option<f64> {
            let vals: Vec<f64> = rows
                .iter()
                .filter_map(|&r| t.get(r, col).as_f64())
                .collect();
            (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
        };
        let mut total_shift = 0.0;
        let mut spread = 0.0;
        let mut n = 0.0;
        for (f, b) in pairs {
            let (Some(mf), Some(mb)) = (mean(f), mean(b)) else {
                continue;
            };
            let vals: Vec<f64> = b.iter().filter_map(|&r| t.get(r, col).as_f64()).collect();
            // effect size: shift in units of background standard deviation
            let var = vals.iter().map(|v| (v - mb) * (v - mb)).sum::<f64>() / vals.len() as f64;
            total_shift += mf - mb;
            spread += var.sqrt().max(1e-9);
            n += 1.0;
        }
        if n == 0.0 {
            return None;
        }
        let norm = (total_shift / spread).abs();
        Some(Mapping::OrderBy {
            column: col,
            ascending: total_shift < 0.0,
            score: norm,
        })
    }

    /// Look up a learned mapping.
    pub fn mapping(&self, keyword: &str) -> Option<&Mapping> {
        self.mappings.get(keyword)
    }

    /// Translate a keyword query: mapped keywords become predicates, the
    /// rest stay as containment keywords (slide 100's segmentation step is
    /// per-token here; phrase segments come from [`crate::segment`]).
    pub fn translate<S: AsRef<str>>(&self, query: &[S]) -> TranslatedQuery {
        let mut predicates = Vec::new();
        let mut residual = Vec::new();
        for k in query {
            match self.mappings.get(k.as_ref()) {
                Some(m) => predicates.push(m.clone()),
                None => residual.push(k.as_ref().to_string()),
            }
        }
        TranslatedQuery {
            predicates,
            residual,
        }
    }

    /// Execute a translated query: filter by Eq predicates + residual
    /// containment, then apply the first ORDER BY.
    pub fn execute(&self, tq: &TranslatedQuery) -> Vec<RowId> {
        let t = self.db.table(self.table);
        let mut rows: Vec<RowId> = t
            .iter()
            .filter(|&(rid, row)| {
                tq.predicates.iter().all(|p| match p {
                    Mapping::Eq { column, value, .. } => &row[*column] == value,
                    Mapping::OrderBy { .. } => true,
                }) && {
                    let toks = self
                        .db
                        .tuple_tokens(kwdb_relational::TupleId::new(self.table, rid));
                    tq.residual.iter().all(|k| toks.iter().any(|t| t == k))
                }
            })
            .map(|(rid, _)| rid)
            .collect();
        if let Some(Mapping::OrderBy {
            column, ascending, ..
        }) = tq
            .predicates
            .iter()
            .find(|p| matches!(p, Mapping::OrderBy { .. }))
        {
            rows.sort_by(|&a, &b| {
                let va = t.get(a, *column).as_f64().unwrap_or(f64::NAN);
                let vb = t.get(b, *column).as_f64().unwrap_or(f64::NAN);
                // total_cmp: non-numeric cells (NaN) order deterministically
                // instead of collapsing to Equal and destabilizing the sort.
                let ord = va.total_cmp(&vb);
                if *ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::{ColumnType, TableBuilder};

    /// The slide-95 laptop table.
    fn laptops() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db
            .create_table(
                TableBuilder::new("product")
                    .column("name", ColumnType::Text)
                    .column("brand", ColumnType::Text)
                    .column("screen", ColumnType::Float)
                    .column("description", ColumnType::Text),
            )
            .unwrap();
        for (name, brand, screen, desc) in [
            (
                "ThinkPad T60",
                "Lenovo",
                14.0,
                "The IBM laptop for business",
            ),
            (
                "ThinkPad X40",
                "Lenovo",
                12.0,
                "This IBM notebook laptop is small and light",
            ),
            ("MacBook Air", "Apple", 11.6, "thin small laptop"),
            ("Pavilion", "HP", 17.0, "big laptop for gaming"),
            ("Aspire", "Acer", 15.0, "value laptop"),
        ] {
            db.insert(
                "product",
                vec![name.into(), brand.into(), screen.into(), desc.into()],
            )
            .unwrap();
        }
        db.build_text_index();
        (db, t)
    }

    fn log() -> Vec<Vec<String>> {
        [
            vec!["laptop"],
            vec!["ibm", "laptop"],
            vec!["small", "laptop"],
            vec!["ibm", "laptop"],
        ]
        .iter()
        .map(|q| q.iter().map(|s| s.to_string()).collect())
        .collect()
    }

    #[test]
    fn ibm_maps_to_brand_lenovo() {
        let (db, t) = laptops();
        let mut kpp = KeywordPlusPlus::new(&db, t, vec![1], vec![2]);
        kpp.learn(&log());
        match kpp.mapping("ibm") {
            Some(Mapping::Eq { column, value, .. }) => {
                assert_eq!(*column, 1);
                assert_eq!(value.as_text(), Some("Lenovo"));
            }
            other => panic!("expected Eq mapping for ibm, got {other:?}"),
        }
    }

    #[test]
    fn small_maps_to_order_by_screen_asc() {
        let (db, t) = laptops();
        let mut kpp = KeywordPlusPlus::new(&db, t, vec![1], vec![2]);
        kpp.learn(&log());
        match kpp.mapping("small") {
            Some(Mapping::OrderBy {
                column, ascending, ..
            }) => {
                assert_eq!(*column, 2);
                assert!(*ascending, "small screens sort ascending");
            }
            other => panic!("expected OrderBy mapping for small, got {other:?}"),
        }
    }

    #[test]
    fn translation_improves_recall_over_literal_like() {
        let (db, t) = laptops();
        let mut kpp = KeywordPlusPlus::new(&db, t, vec![1], vec![2]);
        kpp.learn(&log());
        let q = ["small", "ibm", "laptop"];
        let literal = kpp.keyword_results(&q);
        let translated = kpp.translate(&q);
        let rows = kpp.execute(&translated);
        // literal LIKE finds only descriptions containing all three words;
        // the translated query returns every Lenovo laptop, smallest first
        assert!(rows.len() >= literal.len());
        assert_eq!(rows.len(), 2);
        let tname = db.table(t);
        assert_eq!(tname.get(rows[0], 0).as_text(), Some("ThinkPad X40"));
    }

    #[test]
    fn unmapped_keywords_stay_residual() {
        let (db, t) = laptops();
        let mut kpp = KeywordPlusPlus::new(&db, t, vec![1], vec![2]);
        kpp.learn(&log());
        let tq = kpp.translate(&["gaming", "laptop"]);
        assert!(tq.predicates.is_empty());
        assert_eq!(tq.residual, vec!["gaming", "laptop"]);
        let rows = kpp.execute(&tq);
        assert_eq!(rows.len(), 1);
    }
}
