//! XClean: spelling suggestions with a validity guarantee
//! (Lu, Wang, Li & Liu, ICDE 11) — tutorial slides 69–70.
//!
//! Two defects of plain noisy-channel cleaning on XML data:
//!
//! 1. the best-scoring correction may have **no results** under AND
//!    semantics (each token corrected independently);
//! 2. idf-style priors are **biased toward rare tokens** (slide 70's
//!    `rävel`/`dairy` failure) — a frequency-smoothed language model prior
//!    avoids that.
//!
//! XClean therefore enumerates whole-query candidates best-first and
//! returns the first one a *result oracle* certifies non-empty. The oracle
//! is any AND-semantics checker — an SLCA engine, a tuple-set check, or a
//! plain co-occurrence test.

use crate::spell::{Candidate, SpellCorrector};

/// A cleaned query with its noisy-channel score.
#[derive(Debug, Clone, PartialEq)]
pub struct XCleaned {
    pub tokens: Vec<String>,
    pub score: f64,
}

/// Candidates considered per token.
const PER_TOKEN: usize = 5;
/// Whole-query hypotheses examined before giving up.
const MAX_HYPOTHESES: usize = 256;

/// Clean `tokens`, guaranteeing `oracle(tokens)` holds for the returned
/// query. `oracle` receives the candidate token list and must return
/// whether the database has at least one AND-semantics result.
pub fn clean_with_guarantee<F>(
    corrector: &SpellCorrector,
    tokens: &[String],
    max_dist: usize,
    oracle: F,
) -> Option<XCleaned>
where
    F: Fn(&[String]) -> bool,
{
    if tokens.is_empty() {
        return None;
    }
    let cands: Vec<Vec<Candidate>> = tokens
        .iter()
        .map(|t| {
            let mut cs = corrector.confusion_set(t, max_dist);
            cs.truncate(PER_TOKEN);
            cs
        })
        .collect();
    if cands.iter().any(|c| c.is_empty()) {
        return None;
    }
    // Best-first over the combination lattice (indices into each candidate
    // list), exactly like a skyline sweep.
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};
    let score_of =
        |idx: &[usize]| -> f64 { idx.iter().zip(&cands).map(|(&i, c)| c[i].score).product() };
    let mut heap: BinaryHeap<(kwdb_common::Score, Reverse<Vec<usize>>)> = BinaryHeap::new();
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let start = vec![0usize; tokens.len()];
    heap.push((kwdb_common::Score(score_of(&start)), Reverse(start.clone())));
    seen.insert(start);
    let mut examined = 0usize;
    while let Some((kwdb_common::Score(score), Reverse(idx))) = heap.pop() {
        examined += 1;
        if examined > MAX_HYPOTHESES {
            break;
        }
        let candidate: Vec<String> = idx
            .iter()
            .zip(&cands)
            .map(|(&i, c)| c[i].word.clone())
            .collect();
        if oracle(&candidate) {
            return Some(XCleaned {
                tokens: candidate,
                score,
            });
        }
        for j in 0..idx.len() {
            let mut next = idx.clone();
            next[j] += 1;
            if next[j] < cands[j].len() && seen.insert(next.clone()) {
                heap.push((kwdb_common::Score(score_of(&next)), Reverse(next)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus: travel diaries. "rävel" (rare) and "dairy" (valid word, wrong
    /// context) are the slide-70 traps.
    fn corrector() -> SpellCorrector {
        SpellCorrector::from_vocab([
            ("adventuresome", 5u64),
            ("travel", 100),
            ("diary", 40),
            ("dairy", 60),
            ("ravel", 1), // rare token the naive cleaner is biased toward
            ("farm", 30),
        ])
    }

    /// The database backs {adventuresome travel diary} and {dairy farm}.
    fn oracle(tokens: &[String]) -> bool {
        let docs: [&[&str]; 2] = [&["adventuresome", "travel", "diary"], &["dairy", "farm"]];
        docs.iter()
            .any(|d| tokens.iter().all(|t| d.contains(&t.as_str())))
    }

    #[test]
    fn slide70_guarantees_nonempty_result() {
        let c = corrector();
        let tokens: Vec<String> = ["adventurecome", "ravel", "diiry"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cleaned = clean_with_guarantee(&c, &tokens, 2, oracle).unwrap();
        assert_eq!(cleaned.tokens, vec!["adventuresome", "travel", "diary"]);
        assert!(oracle(&cleaned.tokens));
    }

    #[test]
    fn best_scoring_but_empty_combination_skipped() {
        let c = corrector();
        // "dairy" outscores "diary" in the prior (60 > 40) but
        // {travel dairy} has no results; the guarantee picks {travel diary}.
        let tokens: Vec<String> = ["travel", "dairy"].iter().map(|s| s.to_string()).collect();
        let cleaned = clean_with_guarantee(&c, &tokens, 1, oracle).unwrap();
        assert_eq!(cleaned.tokens, vec!["travel", "diary"]);
    }

    #[test]
    fn returns_none_when_nothing_validates() {
        let c = corrector();
        let tokens: Vec<String> = ["farm", "travel"].iter().map(|s| s.to_string()).collect();
        // no document contains both
        assert!(clean_with_guarantee(&c, &tokens, 1, oracle).is_none());
    }

    #[test]
    fn exact_valid_query_returned_as_is() {
        let c = corrector();
        let tokens: Vec<String> = ["dairy", "farm"].iter().map(|s| s.to_string()).collect();
        let cleaned = clean_with_guarantee(&c, &tokens, 2, oracle).unwrap();
        assert_eq!(cleaned.tokens, vec!["dairy", "farm"]);
    }

    #[test]
    fn empty_query_is_none() {
        let c = corrector();
        assert!(clean_with_guarantee(&c, &[], 1, oracle).is_none());
    }
}
