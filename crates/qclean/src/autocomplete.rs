//! Type-ahead keyword search — TASTIER (Li et al., SIGMOD 09) —
//! tutorial slides 71–73.
//!
//! Every query keyword is treated as a *prefix*: `{srivasta, sig}` matches
//! papers by srivastava in sigmod. The machinery:
//!
//! * a [`Trie`] over the data's tokens, where each prefix corresponds to a
//!   contiguous **range of token ids** (tokens are numbered in sorted
//!   order, so a subtree of the trie is an id interval);
//! * candidate elements come from the *least frequent* prefix; the other
//!   prefixes prune candidates through a **δ-step forward index** mapping
//!   each element to the token ids reachable within δ steps (slide 73's
//!   table) — exactly the structure `kwdb_graph::shortest::within_hops`
//!   produces for a data graph.

use std::collections::{HashMap, HashSet};

/// A trie over a sorted vocabulary; each node knows the token-id range of
/// its subtree.
#[derive(Debug, Clone)]
pub struct Trie {
    /// Sorted vocabulary; token id = index.
    words: Vec<String>,
}

impl Trie {
    /// Build from any word iterator (deduplicated, sorted internally).
    pub fn build<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut v: Vec<String> = words.into_iter().map(Into::into).collect();
        v.sort();
        v.dedup();
        Trie { words: v }
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The id range `[lo, hi)` of tokens starting with `prefix` — the
    /// trie-subtree interval of slide 72.
    pub fn prefix_range(&self, prefix: &str) -> (usize, usize) {
        let lo = self.words.partition_point(|w| w.as_str() < prefix);
        let hi = self
            .words
            .partition_point(|w| w.as_str() < prefix || w.starts_with(prefix));
        (lo, hi)
    }

    /// Tokens completing `prefix`, in sorted order.
    pub fn complete(&self, prefix: &str) -> &[String] {
        let (lo, hi) = self.prefix_range(prefix);
        &self.words[lo..hi]
    }

    /// Id of an exact token.
    pub fn token_id(&self, word: &str) -> Option<usize> {
        self.words.binary_search_by(|w| w.as_str().cmp(word)).ok()
    }

    pub fn word(&self, id: usize) -> &str {
        &self.words[id]
    }
}

/// δ-step forward index: element → token ids reachable within δ steps.
/// For flat documents "reachable" is simply "contained"; for a data graph
/// it is the tokens of the δ-hop neighborhood.
#[derive(Debug, Clone, Default)]
pub struct ForwardIndex {
    reach: HashMap<u64, HashSet<usize>>,
}

impl ForwardIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `element` can reach token `token_id`.
    pub fn add(&mut self, element: u64, token_id: usize) {
        self.reach.entry(element).or_default().insert(token_id);
    }

    pub fn reachable(&self, element: u64) -> Option<&HashSet<usize>> {
        self.reach.get(&element)
    }

    /// Elements that directly contain a token in `[lo, hi)` — the candidate
    /// generator for the rarest prefix.
    pub fn elements_in_range(&self, lo: usize, hi: usize) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .reach
            .iter()
            .filter(|(_, toks)| toks.iter().any(|&t| lo <= t && t < hi))
            .map(|(&e, _)| e)
            .collect();
        out.sort();
        out
    }
}

/// TASTIER search: elements whose δ-neighborhood matches *every* prefix.
/// Returns `(candidates examined, surviving elements)` so E10 can report
/// the pruning power of the forward index.
pub fn tastier_search(trie: &Trie, fwd: &ForwardIndex, prefixes: &[&str]) -> (usize, Vec<u64>) {
    if prefixes.is_empty() {
        return (0, Vec::new());
    }
    let ranges: Vec<(usize, usize)> = prefixes.iter().map(|p| trie.prefix_range(p)).collect();
    if ranges.iter().any(|&(lo, hi)| lo == hi) {
        return (0, Vec::new());
    }
    // candidates from the smallest range
    let (smallest_idx, &(slo, shi)) = ranges
        .iter()
        .enumerate()
        .min_by_key(|&(_, &(lo, hi))| hi - lo)
        .expect("nonempty prefixes");
    let candidates = fwd.elements_in_range(slo, shi);
    let examined = candidates.len();
    let survivors = candidates
        .into_iter()
        .filter(|&e| {
            let Some(reach) = fwd.reachable(e) else {
                return false;
            };
            ranges
                .iter()
                .enumerate()
                .all(|(j, &(lo, hi))| j == smallest_idx || reach.iter().any(|&t| lo <= t && t < hi))
        })
        .collect();
    (examined, survivors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie() -> Trie {
        Trie::build([
            "sigact",
            "sigmod",
            "sigweb",
            "sigir",
            "srivastava",
            "smith",
            "stonebraker",
        ])
    }

    #[test]
    fn prefix_range_is_contiguous_and_correct() {
        let t = trie();
        let (lo, hi) = t.prefix_range("sig");
        let words: Vec<&str> = t.words[lo..hi].iter().map(|s| s.as_str()).collect();
        assert_eq!(words, vec!["sigact", "sigir", "sigmod", "sigweb"]);
        assert_eq!(t.complete("sr"), &["srivastava".to_string()]);
        assert_eq!(t.prefix_range("zzz"), (7, 7));
        assert_eq!(t.complete("s").len(), 7);
    }

    #[test]
    fn exact_token_lookup() {
        let t = trie();
        let id = t.token_id("sigmod").unwrap();
        assert_eq!(t.word(id), "sigmod");
        assert!(t.token_id("sig").is_none());
    }

    /// Slide 73: {srivasta, sig} — candidates from the rare prefix are
    /// pruned by the δ-step forward index.
    #[test]
    fn slide73_pruning() {
        let t = trie();
        let sid = |w: &str| t.token_id(w).unwrap();
        let mut fwd = ForwardIndex::new();
        // element 11: srivastava paper in sigweb-adjacent context? no sig*
        fwd.add(11, sid("srivastava"));
        fwd.add(11, sid("smith"));
        // element 12: srivastava with sigmod reachable in δ steps
        fwd.add(12, sid("srivastava"));
        fwd.add(12, sid("sigmod"));
        // element 78: srivastava alone
        fwd.add(78, sid("srivastava"));
        let (examined, survivors) = tastier_search(&t, &fwd, &["srivasta", "sig"]);
        assert_eq!(examined, 3, "all srivasta-candidates examined");
        assert_eq!(survivors, vec![12], "only 12 reaches a sig* token");
    }

    #[test]
    fn empty_prefix_range_short_circuits() {
        let t = trie();
        let fwd = ForwardIndex::new();
        let (examined, survivors) = tastier_search(&t, &fwd, &["zzz", "sig"]);
        assert_eq!(examined, 0);
        assert!(survivors.is_empty());
    }

    #[test]
    fn single_prefix_returns_all_containing_elements() {
        let t = trie();
        let mut fwd = ForwardIndex::new();
        fwd.add(1, t.token_id("sigmod").unwrap());
        fwd.add(2, t.token_id("smith").unwrap());
        let (_, survivors) = tastier_search(&t, &fwd, &["sig"]);
        assert_eq!(survivors, vec![1]);
    }

    #[test]
    fn multiple_tokens_same_element() {
        let t = trie();
        let mut fwd = ForwardIndex::new();
        fwd.add(5, t.token_id("sigmod").unwrap());
        fwd.add(5, t.token_id("sigir").unwrap());
        fwd.add(5, t.token_id("stonebraker").unwrap());
        let (_, survivors) = tastier_search(&t, &fwd, &["sig", "stone"]);
        assert_eq!(survivors, vec![5]);
    }
}
