//! Query cleaning with segmentation (Pu & Yu, VLDB 08) — tutorial
//! slides 67–68.
//!
//! A query is a sequence of segments, each a multi-token phrase backed by
//! tuples in the database (`{apple ipad} {at&t}`). Cleaning picks, jointly,
//! a correction for every token *and* a segmentation, maximizing the
//! product of segment probabilities; "prevent fragmentation" means a longer
//! database-backed phrase beats the same tokens as singletons. The search
//! is the slide-68 bottom-up dynamic program: `best(i)` = best cleaning of
//! the first `i` tokens, extending by segments of length 1..=L.

use crate::spell::{Candidate, SpellCorrector};

/// How segments are validated and scored against the database.
pub trait PhraseModel {
    /// Probability-like score of `phrase` (tokens) appearing as one segment;
    /// 0.0 when the database does not back the phrase.
    fn phrase_score(&self, phrase: &[String]) -> f64;
}

/// A cleaned query: segments of corrected tokens.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanedQuery {
    pub segments: Vec<Vec<String>>,
    pub score: f64,
}

impl CleanedQuery {
    /// Flat token list.
    pub fn tokens(&self) -> Vec<&str> {
        self.segments.iter().flatten().map(|s| s.as_str()).collect()
    }

    /// Render as `{a b} {c}`.
    pub fn display(&self) -> String {
        self.segments
            .iter()
            .map(|s| format!("{{{}}}", s.join(" ")))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Maximum segment length considered.
const MAX_SEG: usize = 3;
/// Candidates kept per token.
const PER_TOKEN: usize = 4;
/// Bonus factor per extra token folded into one segment (anti-fragmentation).
const MERGE_BONUS: f64 = 4.0;

/// Clean `tokens`: correct and segment jointly.
pub fn clean_query<M: PhraseModel>(
    corrector: &SpellCorrector,
    model: &M,
    tokens: &[String],
    max_dist: usize,
) -> Option<CleanedQuery> {
    let n = tokens.len();
    if n == 0 {
        return None;
    }
    // per-token correction candidates
    let cands: Vec<Vec<Candidate>> = tokens
        .iter()
        .map(|t| {
            let mut cs = corrector.confusion_set(t, max_dist);
            cs.truncate(PER_TOKEN);
            cs
        })
        .collect();
    if cands.iter().any(|c| c.is_empty()) {
        return None;
    }
    // DP over prefix lengths
    let mut best: Vec<Option<CleanedQuery>> = vec![None; n + 1];
    best[0] = Some(CleanedQuery {
        segments: vec![],
        score: 1.0,
    });
    for i in 1..=n {
        for len in 1..=MAX_SEG.min(i) {
            let start = i - len;
            let Some(prefix) = best[start].clone() else {
                continue;
            };
            // best phrase assignment for tokens[start..i]
            if let Some((seg, seg_score)) = best_segment(model, &cands[start..i], len) {
                let score = prefix.score * seg_score;
                if best[i].as_ref().is_none_or(|b| score > b.score) {
                    let mut segments = prefix.segments;
                    segments.push(seg);
                    best[i] = Some(CleanedQuery { segments, score });
                }
            }
        }
    }
    best[n].take()
}

/// Choose corrections for a segment's tokens maximizing
/// `Π candidate-scores · phrase_score · bonus^(len−1)`; segments must be
/// database-backed (`phrase_score > 0`), except singletons which fall back
/// to the candidate's own score.
fn best_segment(
    model: &dyn PhraseModel,
    cands: &[Vec<Candidate>],
    len: usize,
) -> Option<(Vec<String>, f64)> {
    // enumerate the (small) cartesian product of per-token candidates
    let mut best: Option<(Vec<String>, f64)> = None;
    let mut idx = vec![0usize; len];
    loop {
        let phrase: Vec<String> = idx
            .iter()
            .zip(cands)
            .map(|(&i, c)| c[i].word.clone())
            .collect();
        let cand_score: f64 = idx.iter().zip(cands).map(|(&i, c)| c[i].score).product();
        let ps = model.phrase_score(&phrase);
        let total = if len == 1 {
            // singletons survive without phrase backing (but backed ones win)
            cand_score * if ps > 0.0 { 1.0 + ps } else { 1.0 }
        } else if ps > 0.0 {
            cand_score * (1.0 + ps) * MERGE_BONUS.powi(len as i32 - 1)
        } else {
            0.0
        };
        if total > 0.0 && best.as_ref().is_none_or(|(_, b)| total > *b) {
            best = Some((phrase, total));
        }
        // advance mixed-radix counter
        let mut pos = 0;
        loop {
            if pos == len {
                return best;
            }
            idx[pos] += 1;
            if idx[pos] < cands[pos].len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// A phrase model backed by a set of known attribute values: a phrase
/// scores when its tokens appear contiguously in some value.
#[derive(Debug, Clone, Default)]
pub struct ValuePhraseModel {
    values: Vec<Vec<String>>,
}

impl ValuePhraseModel {
    /// Build from attribute value strings (tokenized internally).
    pub fn from_values<S: AsRef<str>>(values: &[S]) -> Self {
        ValuePhraseModel {
            values: values
                .iter()
                .map(|v| kwdb_common::text::tokenize(v.as_ref()))
                .collect(),
        }
    }
}

impl PhraseModel for ValuePhraseModel {
    fn phrase_score(&self, phrase: &[String]) -> f64 {
        let hits = self
            .values
            .iter()
            .filter(|v| v.windows(phrase.len()).any(|w| w == phrase))
            .count();
        hits as f64 / self.values.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spell::SpellCorrector;

    fn setup() -> (SpellCorrector, ValuePhraseModel) {
        let values = [
            "Apple iPad nano",
            "Apple iPod nano",
            "Apple iPad nano",
            "at&t wireless",
            "Apple iMac",
        ];
        let mut corr = SpellCorrector::new();
        for v in &values {
            for tok in kwdb_common::text::tokenize(v) {
                corr.add_word(tok, 1);
            }
        }
        (corr, ValuePhraseModel::from_values(&values))
    }

    #[test]
    fn slide68_appl_ipd_nan_att() {
        let (corr, model) = setup();
        let tokens: Vec<String> = ["appl", "ipd", "nan", "att"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cleaned = clean_query(&corr, &model, &tokens, 2).unwrap();
        assert_eq!(cleaned.tokens(), vec!["apple", "ipad", "nano", "at&t"]);
        // segmentation: {apple ipad nano} {at&t}
        assert_eq!(cleaned.segments.len(), 2);
        assert_eq!(cleaned.segments[0], vec!["apple", "ipad", "nano"]);
        assert_eq!(cleaned.display(), "{apple ipad nano} {at&t}");
    }

    #[test]
    fn fragmentation_prevented() {
        let (corr, model) = setup();
        let tokens: Vec<String> = ["apple", "ipad"].iter().map(|s| s.to_string()).collect();
        let cleaned = clean_query(&corr, &model, &tokens, 1).unwrap();
        assert_eq!(cleaned.segments.len(), 1, "backed phrase must not fragment");
    }

    #[test]
    fn unbacked_pair_stays_fragmented() {
        let (corr, model) = setup();
        // "nano at&t" never co-occur in one value
        let tokens: Vec<String> = ["nano", "at&t"].iter().map(|s| s.to_string()).collect();
        let cleaned = clean_query(&corr, &model, &tokens, 1).unwrap();
        assert_eq!(cleaned.segments.len(), 2);
    }

    #[test]
    fn hopeless_token_fails_cleanly() {
        let (corr, model) = setup();
        let tokens: Vec<String> = ["qqqqqq"].iter().map(|s| s.to_string()).collect();
        assert!(clean_query(&corr, &model, &tokens, 1).is_none());
        assert!(clean_query(&corr, &model, &[], 1).is_none());
    }

    #[test]
    fn brute_force_agreement_on_small_inputs() {
        // exhaustive over segmentations of 3 tokens with fixed corrections
        let (corr, model) = setup();
        let tokens: Vec<String> = ["apple", "ipod", "nano"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cleaned = clean_query(&corr, &model, &tokens, 0).unwrap();
        // the full phrase is backed → single segment must win
        assert_eq!(cleaned.segments.len(), 1);
        assert_eq!(cleaned.segments[0], vec!["apple", "ipod", "nano"]);
    }
}
