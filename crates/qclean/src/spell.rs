//! Noisy-channel spelling correction (tutorial slide 66; Pu & Yu VLDB 08).
//!
//! The user intends `C`, the channel garbles it into the observed `Q`;
//! correction maximizes `P(C | Q) ∝ P(Q | C) · P(C)`:
//!
//! * the **error model** `P(Q | C) = λ^edit_dist(Q, C)` decays with
//!   Damerau–Levenshtein distance (transpositions are single errors —
//!   `ipda → ipad`);
//! * the **prior** `P(C)` is the database language model: frequent database
//!   tokens are likelier intentions.
//!
//! The *confusion set* of a token is every vocabulary word within the
//! distance budget, plus vocabulary words extending it as a prefix
//! (`conf → conference`, slide 12's unfinished words).

use kwdb_common::strutil::{common_prefix_len, damerau_levenshtein};
use std::collections::HashMap;

/// Error-model decay per edit.
const LAMBDA: f64 = 0.05;
/// Mild penalty for prefix completions, per completed character.
const COMPLETION_DECAY: f64 = 0.9;

/// A corrector built over a token vocabulary with frequencies.
#[derive(Debug, Clone, Default)]
pub struct SpellCorrector {
    vocab: HashMap<String, u64>,
    total: u64,
}

/// One correction candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub word: String,
    /// `P(Q | C) · P(C)` up to normalization.
    pub score: f64,
    pub distance: usize,
}

impl SpellCorrector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(token, frequency)` pairs (e.g. a database text index).
    pub fn from_vocab<I, S>(vocab: I) -> Self
    where
        I: IntoIterator<Item = (S, u64)>,
        S: Into<String>,
    {
        let mut c = Self::new();
        for (w, f) in vocab {
            c.add_word(w.into(), f);
        }
        c
    }

    pub fn add_word(&mut self, word: String, freq: u64) {
        self.total += freq;
        *self.vocab.entry(word).or_insert(0) += freq;
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Is `word` a known database token?
    pub fn contains(&self, word: &str) -> bool {
        self.vocab.contains_key(word)
    }

    /// Smoothed unigram prior.
    fn prior(&self, word: &str) -> f64 {
        let f = self.vocab.get(word).copied().unwrap_or(0) as f64;
        (f + 1.0) / (self.total as f64 + self.vocab.len().max(1) as f64)
    }

    /// The confusion set of `token`: vocabulary words within `max_dist`
    /// edits, plus prefix completions, scored by the noisy-channel model.
    /// Sorted best-first; always contains `token` itself if it is in the
    /// vocabulary.
    pub fn confusion_set(&self, token: &str, max_dist: usize) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = Vec::new();
        let tlen = token.chars().count();
        for w in self.vocab.keys() {
            let wlen = w.chars().count();
            // prefix completion: token is a strict prefix of w
            let is_completion = wlen > tlen && common_prefix_len(token, w) == tlen;
            if is_completion {
                let extra = (wlen - tlen) as i32;
                out.push(Candidate {
                    word: w.clone(),
                    score: COMPLETION_DECAY.powi(extra) * self.prior(w),
                    distance: 0,
                });
                continue;
            }
            if wlen.abs_diff(tlen) > max_dist {
                continue;
            }
            let d = damerau_levenshtein(token, w);
            if d <= max_dist {
                out.push(Candidate {
                    word: w.clone(),
                    score: LAMBDA.powi(d as i32) * self.prior(w),
                    distance: d,
                });
            }
        }
        // total_cmp: a NaN score must sort deterministically, not panic.
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.word.cmp(&b.word)));
        out
    }

    /// Best single-token correction, if any candidate exists.
    pub fn correct(&self, token: &str, max_dist: usize) -> Option<Candidate> {
        self.confusion_set(token, max_dist).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corrector() -> SpellCorrector {
        SpellCorrector::from_vocab([
            ("apple", 50u64),
            ("ipad", 30),
            ("ipod", 20),
            ("nano", 25),
            ("at&t", 10),
            ("database", 40),
            ("conference", 15),
            ("applet", 2),
        ])
    }

    #[test]
    fn exact_word_wins_its_confusion_set() {
        let c = corrector();
        let best = c.correct("ipad", 2).unwrap();
        assert_eq!(best.word, "ipad");
        assert_eq!(best.distance, 0);
    }

    #[test]
    fn slide67_ipd_prefers_ipad_over_ipod() {
        // both are distance 1; "ipad" has the higher prior
        let c = corrector();
        let set = c.confusion_set("ipd", 2);
        let words: Vec<&str> = set.iter().map(|c| c.word.as_str()).collect();
        assert!(words.contains(&"ipad") && words.contains(&"ipod"));
        assert_eq!(set[0].word, "ipad");
    }

    #[test]
    fn transposition_is_one_edit() {
        let c = corrector();
        let best = c.correct("ipda", 1).unwrap();
        assert_eq!(best.word, "ipad");
        assert_eq!(best.distance, 1);
    }

    #[test]
    fn datbase_corrects_to_database() {
        let c = corrector();
        assert_eq!(c.correct("datbase", 2).unwrap().word, "database");
    }

    #[test]
    fn prefix_completion() {
        // "conf" → "conference" (slide 12's unfinished word)
        let c = corrector();
        let set = c.confusion_set("conf", 1);
        assert!(set.iter().any(|cand| cand.word == "conference"));
    }

    #[test]
    fn completion_prefers_shorter_and_frequent() {
        let c = corrector();
        let set = c.confusion_set("appl", 0);
        // apple (freq 50, +1 char) must beat applet (freq 2, +2 chars)
        let apple = set.iter().position(|c| c.word == "apple").unwrap();
        let applet = set.iter().position(|c| c.word == "applet").unwrap();
        assert!(apple < applet);
    }

    #[test]
    fn far_tokens_have_empty_sets() {
        let c = corrector();
        assert!(c.confusion_set("zzzzzzz", 1).is_empty());
        assert!(c.correct("zzzzzzz", 1).is_none());
    }

    #[test]
    fn edit_beats_nothing_but_loses_to_exact() {
        let c = corrector();
        // "nano" exact must outscore any 1-edit alternative of "nano"
        let set = c.confusion_set("nano", 2);
        assert_eq!(set[0].word, "nano");
    }
}
