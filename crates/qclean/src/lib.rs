//! Handling keyword ambiguity (tutorial slides 12, 65–102).
//!
//! Keyword queries are misspelled, under-specified, over-specified and
//! non-quantitative. One module per remedy family the tutorial covers:
//!
//! * [`spell`] — noisy-channel spelling correction with database-backed
//!   confusion sets (Pu & Yu, VLDB 08; slides 66–67);
//! * [`segment`] — maximum-probability query segmentation by dynamic
//!   programming (slide 68), recovering multi-token values like
//!   `apple ipad nano`;
//! * [`xclean`] — cleaning with a non-empty-result guarantee and without
//!   rare-token bias (Lu et al., ICDE 11; slides 69–70);
//! * [`autocomplete`] — trie-based type-ahead with per-keyword prefix
//!   semantics and δ-step forward-index pruning (TASTIER, SIGMOD 09;
//!   slides 71–73);
//! * [`keywordpp`] — differential-query-pair mapping of non-quantitative
//!   keywords to structured predicates (Keyword++, VLDB 10; slides 95–100);
//! * [`rewrite`] — query rewriting from data statistics alone (Nambiar &
//!   Kambhampati, ICDE 06) and from click logs (Cheng et al., ICDE 10;
//!   slides 101–102).

pub mod autocomplete;
pub mod keywordpp;
pub mod rewrite;
pub mod segment;
pub mod spell;
pub mod xclean;

pub use autocomplete::Trie;
pub use spell::SpellCorrector;
