//! Property tests for query cleaning: the segmentation DP must equal a
//! brute-force search over all segmentations, corrections must stay within
//! the edit budget, and the trie's prefix ranges must match naive filtering.

use kwdb_common::strutil::damerau_levenshtein;
use kwdb_common::Rng;
use kwdb_qclean::autocomplete::Trie;
use kwdb_qclean::segment::{clean_query, PhraseModel, ValuePhraseModel};
use kwdb_qclean::spell::SpellCorrector;

const VOCAB: [&str; 6] = ["apple", "ipad", "ipod", "nano", "mini", "case"];

fn corrector() -> SpellCorrector {
    SpellCorrector::from_vocab(VOCAB.iter().map(|w| (w.to_string(), 10u64)))
}

/// Every output token is within the edit budget of its input token, or
/// is a completion extending it.
#[test]
fn corrections_stay_within_budget() {
    let mut rng = Rng::seed_from_u64(81);
    for _ in 0..48 {
        let n = rng.gen_range(1usize..4);
        let words: Vec<usize> = (0..n).map(|_| rng.gen_index(6)).collect();
        let corrupt_at = rng.gen_range(0u8..=255);
        let corr = corrector();
        let model = ValuePhraseModel::from_values(&["apple ipad nano", "ipod mini case"]);
        let mut tokens: Vec<String> = words.iter().map(|&i| VOCAB[i].to_string()).collect();
        // corrupt one token by dropping its last char
        let idx = corrupt_at as usize % tokens.len();
        tokens[idx].pop();
        if tokens[idx].is_empty() {
            continue;
        }
        if let Some(cleaned) = clean_query(&corr, &model, &tokens, 2) {
            let out = cleaned.tokens();
            assert_eq!(out.len(), tokens.len());
            for (inp, outp) in tokens.iter().zip(&out) {
                let d = damerau_levenshtein(inp, outp);
                let is_completion = outp.starts_with(inp.as_str());
                assert!(
                    d <= 2 || is_completion,
                    "{inp} → {outp} is {d} edits and not a completion"
                );
            }
        }
    }
}

/// The DP segmentation achieves the same score as brute force over all
/// 2^(n-1) segmentations with fixed (exact) tokens.
#[test]
fn segmentation_dp_is_optimal() {
    let mut rng = Rng::seed_from_u64(82);
    for _ in 0..48 {
        let n = rng.gen_range(1usize..5);
        let words: Vec<usize> = (0..n).map(|_| rng.gen_index(6)).collect();
        let corr = corrector();
        let values = ["apple ipad nano", "ipod mini", "nano case"];
        let model = ValuePhraseModel::from_values(&values);
        let tokens: Vec<String> = words.iter().map(|&i| VOCAB[i].to_string()).collect();
        let Some(cleaned) = clean_query(&corr, &model, &tokens, 0) else {
            continue;
        };
        let best_brute = brute_force_best(&corr, &model, &tokens);
        assert!(
            cleaned.score >= best_brute - 1e-9,
            "DP {} < brute force {}",
            cleaned.score,
            best_brute
        );
    }
}

/// Trie prefix ranges equal naive filtering.
#[test]
fn trie_ranges_match_filtering() {
    let mut rng = Rng::seed_from_u64(83);
    let alphabet = ['a', 'b', 'c'];
    for _ in 0..48 {
        let n_words = rng.gen_index(12);
        let words: Vec<String> = (0..n_words)
            .map(|_| {
                let len = rng.gen_range(1usize..=5);
                (0..len).map(|_| *rng.choose(&alphabet)).collect()
            })
            .collect();
        let prefix: String = {
            let len = rng.gen_index(4);
            (0..len).map(|_| *rng.choose(&alphabet)).collect()
        };
        let trie = Trie::build(words.clone());
        let completions: Vec<&String> = trie.complete(&prefix).iter().collect();
        let mut expected: Vec<String> = words
            .iter()
            .filter(|w| w.starts_with(&prefix))
            .cloned()
            .collect();
        expected.sort();
        expected.dedup();
        let got: Vec<String> = completions.iter().map(|s| s.to_string()).collect();
        assert_eq!(got, expected, "prefix {prefix:?} over {words:?}");
    }
}

/// Enumerate all segmentations (exponential; test-sized only) with exact
/// tokens, mirroring the DP's scoring model.
fn brute_force_best(corr: &SpellCorrector, model: &ValuePhraseModel, tokens: &[String]) -> f64 {
    let n = tokens.len();
    let mut best = f64::NEG_INFINITY;
    // bitmask over gaps: bit i set = segment boundary after token i
    for mask in 0u32..(1 << (n - 1)) {
        let mut segments: Vec<Vec<String>> = vec![Vec::new()];
        for (i, t) in tokens.iter().enumerate() {
            segments.last_mut().unwrap().push(t.clone());
            if i + 1 < n && mask & (1 << i) != 0 {
                segments.push(Vec::new());
            }
        }
        if segments.iter().any(|s| s.len() > 3) {
            continue; // DP caps segments at 3 tokens
        }
        let mut score = 1.0f64;
        let mut feasible = true;
        for seg in &segments {
            let cand_score: f64 = seg
                .iter()
                .map(|t| corr.correct(t, 0).map(|c| c.score).unwrap_or(0.0))
                .product();
            if cand_score == 0.0 {
                feasible = false;
                break;
            }
            let ps = model.phrase_score(seg);
            let total = if seg.len() == 1 {
                cand_score * if ps > 0.0 { 1.0 + ps } else { 1.0 }
            } else if ps > 0.0 {
                cand_score * (1.0 + ps) * 4.0f64.powi(seg.len() as i32 - 1)
            } else {
                0.0
            };
            if total == 0.0 {
                feasible = false;
                break;
            }
            score *= total;
        }
        if feasible {
            best = best.max(score);
        }
    }
    best
}
