//! Property tests for query cleaning: the segmentation DP must equal a
//! brute-force search over all segmentations, corrections must stay within
//! the edit budget, and the trie's prefix ranges must match naive filtering.

use kwdb_common::strutil::damerau_levenshtein;
use kwdb_qclean::autocomplete::Trie;
use kwdb_qclean::segment::{clean_query, PhraseModel, ValuePhraseModel};
use kwdb_qclean::spell::SpellCorrector;
use proptest::prelude::*;

const VOCAB: [&str; 6] = ["apple", "ipad", "ipod", "nano", "mini", "case"];

fn corrector() -> SpellCorrector {
    SpellCorrector::from_vocab(VOCAB.iter().map(|w| (w.to_string(), 10u64)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every output token is within the edit budget of its input token, or
    /// is a completion extending it.
    #[test]
    fn corrections_stay_within_budget(
        words in proptest::collection::vec(0usize..6, 1..4),
        corrupt_at in any::<u8>(),
    ) {
        let corr = corrector();
        let model = ValuePhraseModel::from_values(&["apple ipad nano", "ipod mini case"]);
        let mut tokens: Vec<String> =
            words.iter().map(|&i| VOCAB[i].to_string()).collect();
        // corrupt one token by dropping its last char
        let idx = corrupt_at as usize % tokens.len();
        tokens[idx].pop();
        if tokens[idx].is_empty() {
            return Ok(());
        }
        if let Some(cleaned) = clean_query(&corr, &model, &tokens, 2) {
            let out = cleaned.tokens();
            prop_assert_eq!(out.len(), tokens.len());
            for (inp, outp) in tokens.iter().zip(&out) {
                let d = damerau_levenshtein(inp, outp);
                let is_completion = outp.starts_with(inp.as_str());
                prop_assert!(d <= 2 || is_completion,
                    "{inp} → {outp} is {d} edits and not a completion");
            }
        }
    }

    /// The DP segmentation achieves the same score as brute force over all
    /// 2^(n-1) segmentations with fixed (exact) tokens.
    #[test]
    fn segmentation_dp_is_optimal(
        words in proptest::collection::vec(0usize..6, 1..5),
    ) {
        let corr = corrector();
        let values = ["apple ipad nano", "ipod mini", "nano case"];
        let model = ValuePhraseModel::from_values(&values);
        let tokens: Vec<String> = words.iter().map(|&i| VOCAB[i].to_string()).collect();
        let Some(cleaned) = clean_query(&corr, &model, &tokens, 0) else {
            return Ok(());
        };
        let best_brute = brute_force_best(&corr, &model, &tokens);
        prop_assert!(cleaned.score >= best_brute - 1e-9,
            "DP {} < brute force {}", cleaned.score, best_brute);
    }

    /// Trie prefix ranges equal naive filtering.
    #[test]
    fn trie_ranges_match_filtering(
        words in proptest::collection::vec("[a-c]{1,5}", 0..12),
        prefix in "[a-c]{0,3}",
    ) {
        let trie = Trie::build(words.clone());
        let completions: Vec<&String> = trie.complete(&prefix).iter().collect();
        let mut expected: Vec<String> = words
            .iter()
            .filter(|w| w.starts_with(&prefix))
            .cloned()
            .collect();
        expected.sort();
        expected.dedup();
        let got: Vec<String> = completions.iter().map(|s| s.to_string()).collect();
        prop_assert_eq!(got, expected);
    }
}

/// Enumerate all segmentations (exponential; test-sized only) with exact
/// tokens, mirroring the DP's scoring model.
fn brute_force_best(corr: &SpellCorrector, model: &ValuePhraseModel, tokens: &[String]) -> f64 {
    let n = tokens.len();
    let mut best = f64::NEG_INFINITY;
    // bitmask over gaps: bit i set = segment boundary after token i
    for mask in 0u32..(1 << (n - 1)) {
        let mut segments: Vec<Vec<String>> = vec![Vec::new()];
        for (i, t) in tokens.iter().enumerate() {
            segments.last_mut().unwrap().push(t.clone());
            if i + 1 < n && mask & (1 << i) != 0 {
                segments.push(Vec::new());
            }
        }
        if segments.iter().any(|s| s.len() > 3) {
            continue; // DP caps segments at 3 tokens
        }
        let mut score = 1.0f64;
        let mut feasible = true;
        for seg in &segments {
            let cand_score: f64 = seg
                .iter()
                .map(|t| corr.correct(t, 0).map(|c| c.score).unwrap_or(0.0))
                .product();
            if cand_score == 0.0 {
                feasible = false;
                break;
            }
            let ps = model.phrase_score(seg);
            let total = if seg.len() == 1 {
                cand_score * if ps > 0.0 { 1.0 + ps } else { 1.0 }
            } else if ps > 0.0 {
                cand_score * (1.0 + ps) * 4.0f64.powi(seg.len() as i32 - 1)
            } else {
                0.0
            };
            if total == 0.0 {
                feasible = false;
                break;
            }
            score *= total;
        }
        if feasible {
            best = best.max(score);
        }
    }
    best
}
