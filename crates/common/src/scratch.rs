//! A tiny object pool for reusable scratch buffers.
//!
//! Hot query paths allocate the same `Vec`/`HashMap` shapes per candidate;
//! [`ScratchPool`] lets each worker check out a scratch object, reuse its
//! capacity across many evaluations, and return it automatically on drop.
//! The pool is a mutex around a free list — checkouts happen once per
//! query/worker, not per candidate, so contention is negligible.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A shared pool of reusable `T` values.
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ScratchPool<T> {
    pub fn new() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Take a pooled value, or build a fresh one with `init` if the pool is
    /// empty. The value returns to the pool when the guard drops; callers
    /// are responsible for clearing any state they don't want to inherit.
    pub fn checkout(&self, init: impl FnOnce() -> T) -> Scratch<'_, T> {
        let item = self.free.lock().expect("pool poisoned").pop();
        Scratch {
            pool: self,
            item: Some(item.unwrap_or_else(init)),
        }
    }

    /// Pooled values currently idle (checked in).
    pub fn idle(&self) -> usize {
        self.free.lock().expect("pool poisoned").len()
    }
}

/// RAII guard over a checked-out pool value; derefs to `T` and returns the
/// value to its pool on drop.
pub struct Scratch<'a, T> {
    pool: &'a ScratchPool<T>,
    item: Option<T>,
}

impl<T> Deref for Scratch<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.item.as_ref().expect("scratch taken")
    }
}

impl<T> DerefMut for Scratch<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("scratch taken")
    }
}

impl<T> Drop for Scratch<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool.free.lock().expect("pool poisoned").push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn checkout_reuses_returned_values() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        {
            let mut s = pool.checkout(Vec::new);
            s.extend([1, 2, 3]);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
        // the reused buffer keeps its contents — callers clear what they need
        let s = pool.checkout(|| panic!("must reuse, not init"));
        assert_eq!(*s, vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_checkouts_never_share_a_value() {
        let pool: Arc<ScratchPool<Vec<usize>>> = Arc::new(ScratchPool::new());
        std::thread::scope(|scope| {
            for w in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for i in 0..100 {
                        let mut s = pool.checkout(Vec::new);
                        s.clear();
                        s.push(w * 1000 + i);
                        assert_eq!(s.len(), 1, "no other thread touched this buffer");
                    }
                });
            }
        });
        assert!(pool.idle() >= 1 && pool.idle() <= 8);
    }
}
