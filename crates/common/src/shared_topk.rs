//! A concurrent bounded top-k collector for intra-query parallelism.
//!
//! [`SharedTopK`] is the parallel counterpart of [`crate::topk::TopK`]: many
//! worker threads push scored items while every thread reads the current
//! global k-th-best bound **lock-free** to prune work early. The design is
//! lock-striped: each worker owns a stripe (a small mutex-guarded heap that
//! keeps the stripe's best `k` items), so pushes from different workers
//! never contend; the only cross-thread traffic is an atomic `f64`
//! threshold raised monotonically whenever any stripe fills.
//!
//! # Determinism
//!
//! The serial `TopK` breaks score ties by insertion order, which is
//! meaningless across racing threads. `SharedTopK` instead requires
//! `T: Ord` and uses the *content-based* total order
//! `(score desc, item asc)` throughout — stripe eviction, threshold
//! pruning (strictly-less-than, so boundary ties are never dropped), and
//! the final merge. The merged top-k is therefore a pure function of the
//! multiset of offered items, identical across worker counts and thread
//! interleavings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One stripe entry: the content-ordered key. Kept as a sorted `Vec` of at
/// most `k` items — `k` is small (tens), so a binary-searched insert beats
/// heap bookkeeping and keeps eviction order obvious.
struct Stripe<T> {
    /// Best first under `(score desc, item asc)`; `len() <= k`.
    items: Vec<(f64, T)>,
}

/// Compare two scored items under the shared total order:
/// higher score first, then smaller item.
fn key_cmp<T: Ord>(a: &(f64, T), b: &(f64, T)) -> std::cmp::Ordering {
    b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1))
}

/// A lock-striped concurrent top-k with a lock-free global threshold.
pub struct SharedTopK<T> {
    k: usize,
    stripes: Vec<Mutex<Stripe<T>>>,
    /// Bits of the current global lower bound (`f64::NEG_INFINITY` until
    /// some stripe holds `k` items). Monotonically non-decreasing.
    threshold_bits: AtomicU64,
}

impl<T: Ord> SharedTopK<T> {
    /// A collector for the global best `k` items, striped `stripes` ways
    /// (typically one stripe per worker). `k == 0` accepts nothing.
    pub fn new(k: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        SharedTopK {
            k,
            stripes: (0..stripes)
                .map(|_| {
                    Mutex::new(Stripe {
                        items: Vec::with_capacity(k.saturating_add(1)),
                    })
                })
                .collect(),
            threshold_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// The current global pruning bound: a score every one of `k` retained
    /// items meets or beats. `None` until some stripe is full. Lock-free.
    ///
    /// Safe to prune on **strictly below** only: an item scoring exactly the
    /// threshold may still belong to the final top-k under the item
    /// tie-break.
    pub fn threshold(&self) -> Option<f64> {
        let t = f64::from_bits(self.threshold_bits.load(Ordering::Acquire));
        (t > f64::NEG_INFINITY).then_some(t)
    }

    /// Whether `score` could still enter the top-k (i.e. is not strictly
    /// below the current threshold). Lock-free; workers use this to skip
    /// whole candidates before doing any join work.
    pub fn would_accept(&self, score: f64) -> bool {
        match self.threshold() {
            Some(t) => score >= t,
            None => true,
        }
    }

    /// Raise the global threshold to `t` if it is an improvement.
    fn raise_threshold(&self, t: f64) {
        let mut cur = self.threshold_bits.load(Ordering::Relaxed);
        while t > f64::from_bits(cur) {
            match self.threshold_bits.compare_exchange_weak(
                cur,
                t.to_bits(),
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Offer an item to stripe `stripe` (any index; taken modulo the stripe
    /// count). Returns `true` if the item was retained (it may still be
    /// evicted later by better items). Locks only the one stripe.
    pub fn push(&self, stripe: usize, score: f64, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        // Lock-free early reject: k items with strictly higher scores exist
        // somewhere, so this item cannot be in the global top-k.
        if !self.would_accept(score) {
            return false;
        }
        let mut s = self.stripes[stripe % self.stripes.len()]
            .lock()
            .expect("stripe poisoned");
        let cand = (score, item);
        let pos = match s.items.binary_search_by(|e| key_cmp(e, &cand)) {
            Ok(p) | Err(p) => p,
        };
        if pos >= self.k {
            return false; // worse than the stripe's k-th best
        }
        s.items.insert(pos, cand);
        if s.items.len() > self.k {
            s.items.pop();
        }
        if s.items.len() == self.k {
            // This stripe holds k items scoring >= its last entry; publish
            // that as a (conservative) global bound.
            self.raise_threshold(s.items[self.k - 1].0);
        }
        true
    }

    /// Merge all stripes into the exact global top-k, best first under
    /// `(score desc, item asc)`. Deterministic for a given offered multiset.
    pub fn into_sorted_vec(self) -> Vec<(f64, T)> {
        let mut all: Vec<(f64, T)> = self
            .stripes
            .into_iter()
            .flat_map(|s| s.into_inner().expect("stripe poisoned").items)
            .collect();
        all.sort_by(key_cmp);
        all.truncate(self.k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_global_best_k_across_stripes() {
        let tk = SharedTopK::new(3, 4);
        for (i, s) in [1.0, 9.0, 3.0, 7.0, 5.0, 8.0].iter().enumerate() {
            tk.push(i, *s, i as u32);
        }
        let out = tk.into_sorted_vec();
        assert_eq!(out, vec![(9.0, 1), (8.0, 5), (7.0, 3)]);
    }

    #[test]
    fn ties_break_by_item_order_not_arrival() {
        let tk = SharedTopK::new(2, 2);
        // same score, arriving "late" on different stripes: smaller item wins
        tk.push(0, 5.0, 9u32);
        tk.push(1, 5.0, 2u32);
        tk.push(0, 5.0, 7u32);
        assert_eq!(tk.into_sorted_vec(), vec![(5.0, 2), (5.0, 7)]);
    }

    #[test]
    fn threshold_appears_when_a_stripe_fills_and_is_conservative() {
        let tk = SharedTopK::new(2, 2);
        assert_eq!(tk.threshold(), None);
        assert!(tk.would_accept(f64::MIN));
        tk.push(0, 4.0, 1u32);
        assert_eq!(tk.threshold(), None, "stripe not full yet");
        tk.push(0, 6.0, 2);
        assert_eq!(tk.threshold(), Some(4.0));
        // equal-to-threshold items must still be accepted (strict pruning)
        assert!(tk.would_accept(4.0));
        assert!(!tk.would_accept(3.9));
        tk.push(1, 5.0, 3);
        tk.push(1, 7.0, 4);
        assert_eq!(
            tk.threshold(),
            Some(5.0),
            "threshold is the max stripe bound"
        );
    }

    #[test]
    fn boundary_ties_survive_pruning() {
        // Global top-2 of {(5.0, 1), (5.0, 2), (5.0, 3)} under the item
        // tie-break is items 1 and 2, whichever stripes they landed on.
        let tk = SharedTopK::new(2, 2);
        tk.push(0, 5.0, 3u32);
        tk.push(0, 5.0, 1);
        tk.push(1, 5.0, 2);
        assert_eq!(tk.into_sorted_vec(), vec![(5.0, 1), (5.0, 2)]);
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let tk = SharedTopK::new(0, 2);
        assert!(!tk.push(0, 10.0, 1u32));
        assert!(tk.into_sorted_vec().is_empty());
    }

    #[test]
    fn concurrent_pushes_match_serial_sort() {
        let tk = Arc::new(SharedTopK::new(16, 8));
        let items: Vec<(f64, u64)> = (0..4000u64)
            .map(|i| (((i * 2654435761) % 997) as f64 / 10.0, i))
            .collect();
        std::thread::scope(|scope| {
            for (w, chunk) in items.chunks(500).enumerate() {
                let tk = Arc::clone(&tk);
                scope.spawn(move || {
                    for &(s, v) in chunk {
                        tk.push(w, s, v);
                    }
                });
            }
        });
        let got = Arc::into_inner(tk).unwrap().into_sorted_vec();
        let mut want = items.clone();
        want.sort_by(key_cmp);
        want.truncate(16);
        assert_eq!(got, want);
    }
}
