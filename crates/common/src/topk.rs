//! Bounded top-k collection, used by every ranked search engine in kwdb.

use crate::Score;
use std::collections::BinaryHeap;

/// Keeps the `k` items with the highest scores seen so far.
///
/// Internally a min-heap of size ≤ k over `(score, seq)`; ties on score are
/// broken by insertion order so results are deterministic. `O(log k)` per
/// insertion.
/// Heap entry: min-heap via `Reverse` on `(Score, Reverse(seq))` — the
/// smallest score (and among equals, the most recently inserted) is evicted
/// first, so earlier insertions win ties.
type Entry<T> = std::cmp::Reverse<(Score, std::cmp::Reverse<u64>, Slot<T>)>;

#[derive(Debug)]
pub struct TopK<T> {
    k: usize,
    seq: u64,
    heap: BinaryHeap<Entry<T>>,
}

/// Wrapper that opts an arbitrary payload out of comparison.
#[derive(Debug)]
struct Slot<T>(T);

impl<T> PartialEq for Slot<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for Slot<T> {}
impl<T> PartialOrd for Slot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Slot<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> TopK<T> {
    /// Create a collector for the best `k` items. `k == 0` accepts nothing.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            seq: 0,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Offer an item; it is kept iff it beats the current k-th best.
    /// Returns `true` if the item was retained.
    pub fn push(&mut self, score: f64, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        let seq = self.seq;
        self.seq += 1;
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse((
                Score(score),
                std::cmp::Reverse(seq),
                Slot(item),
            )));
            return true;
        }
        // Full: only admit if strictly better than the current minimum
        // (equal scores keep the earlier item).
        let min = &self.heap.peek().unwrap().0;
        if Score(score) > min.0 {
            self.heap.push(std::cmp::Reverse((
                Score(score),
                std::cmp::Reverse(seq),
                Slot(item),
            )));
            self.heap.pop();
            true
        } else {
            false
        }
    }

    /// The k-th best score, i.e. the score a new item must beat to enter.
    /// `None` while fewer than `k` items are held.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|r| r.0 .0 .0)
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True once `k` items are held.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Drain into a `Vec<(score, item)>` sorted best-first.
    pub fn into_sorted_vec(self) -> Vec<(f64, T)> {
        let mut v: Vec<_> = self
            .heap
            .into_iter()
            .map(|std::cmp::Reverse((s, std::cmp::Reverse(seq), Slot(t)))| (s, seq, t))
            .collect();
        v.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        v.into_iter().map(|(s, _, t)| (s.0, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut tk = TopK::new(3);
        for (s, v) in [(1.0, "a"), (5.0, "b"), (3.0, "c"), (4.0, "d"), (2.0, "e")] {
            tk.push(s, v);
        }
        let out = tk.into_sorted_vec();
        assert_eq!(out, vec![(5.0, "b"), (4.0, "d"), (3.0, "c")]);
    }

    #[test]
    fn threshold_tracks_kth_best() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), None);
        tk.push(1.0, ());
        assert_eq!(tk.threshold(), None);
        tk.push(3.0, ());
        assert_eq!(tk.threshold(), Some(1.0));
        tk.push(2.0, ());
        assert_eq!(tk.threshold(), Some(2.0));
    }

    #[test]
    fn ties_keep_earlier_item() {
        let mut tk = TopK::new(1);
        assert!(tk.push(1.0, "first"));
        assert!(!tk.push(1.0, "second"));
        assert_eq!(tk.into_sorted_vec(), vec![(1.0, "first")]);
    }

    #[test]
    fn equal_scores_order_by_insertion() {
        let mut tk = TopK::new(3);
        tk.push(2.0, "a");
        tk.push(2.0, "b");
        tk.push(2.0, "c");
        let out: Vec<&str> = tk.into_sorted_vec().into_iter().map(|(_, v)| v).collect();
        assert_eq!(out, vec!["a", "b", "c"]);
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let mut tk = TopK::new(0);
        assert!(!tk.push(10.0, "x"));
        assert!(tk.is_empty());
        assert!(tk.into_sorted_vec().is_empty());
    }

    #[test]
    fn fewer_than_k_items() {
        let mut tk = TopK::new(10);
        tk.push(1.0, 1);
        tk.push(2.0, 2);
        assert!(!tk.is_full());
        assert_eq!(tk.into_sorted_vec(), vec![(2.0, 2), (1.0, 1)]);
    }
}
