//! A lock-striped, byte-budgeted sharded LRU cache with a singleflight
//! layer.
//!
//! This is the substrate for both inter-query caches the engines run on:
//! the per-engine *result cache* (sealed responses keyed by generation +
//! normalized query shape) and the relational *tupleset cache* (per-term
//! tuple-key lists keyed by generation + term symbol). Invalidation is by
//! construction — every key embeds the engine's data generation, so a
//! mutation makes old entries unreachable and the LRU sweep reclaims them;
//! nothing ever calls an explicit `invalidate`.
//!
//! Design:
//!
//! - **Striping.** `shard = hash(key) % stripes`, one `Mutex` per shard, so
//!   concurrent lookups on different keys rarely contend. Hit/miss/eviction
//!   counters and the byte/entry totals are process-global atomics read
//!   without any lock.
//! - **Byte budget.** Every insert carries the caller's byte estimate for
//!   the value. When the global total exceeds `max_bytes` (or the entry
//!   count exceeds `max_entries`), shards are probed cyclically starting at
//!   the inserting shard and each probed shard evicts its own
//!   least-recently-used entry until the totals are back under budget — a
//!   strict global bound with per-shard LRU victim selection. A single
//!   value larger than the whole byte budget is not stored at all.
//! - **Singleflight.** [`ShardedCache::get_or_compute`] collapses N
//!   concurrent misses on one key into a single compute: the first caller
//!   becomes the *leader* and runs the closure; followers block on a
//!   condvar. A leader publishes either the cacheable value (followers
//!   share it and count as hits) or "not cacheable" (followers retry, and
//!   the first retrier becomes the new leader — a truncated or failed
//!   compute must never be handed to a caller with a different budget).
//!
//! Lock order: a shard mutex and the inflight-table mutex are never held at
//! the same time as each other across a compute; the compute closure runs
//! with no cache lock held.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Sizing and enablement knobs for one [`ShardedCache`].
///
/// `Copy` so engine configs embedding it stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch: a disabled cache never stores and every lookup
    /// misses (engines skip consulting it entirely).
    pub enabled: bool,
    /// Global budget for the sum of the callers' per-value byte estimates.
    pub max_bytes: usize,
    /// Global cap on the number of live entries.
    pub max_entries: usize,
    /// Number of lock stripes (clamped to at least 1).
    pub stripes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            max_bytes: 32 << 20, // 32 MiB
            max_entries: 4096,
            stripes: 16,
        }
    }
}

impl CacheConfig {
    /// A switched-off cache: the determinism suites pin this, mirroring
    /// how they pin `intra_query_workers = 1`.
    pub fn disabled() -> Self {
        CacheConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

/// Point-in-time counters of one cache, all readable without a lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub bytes: usize,
}

struct Entry<V> {
    value: V,
    bytes: usize,
    /// Recency stamp: the shard-local tick of the last touch, which is the
    /// entry's key into the shard's `order` map.
    tick: u64,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    /// tick → key, ordered oldest-first: the shard's LRU queue.
    order: std::collections::BTreeMap<u64, K>,
    tick: u64,
}

impl<K: Hash + Eq + Clone, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: std::collections::BTreeMap::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, key: &K) -> Option<&Entry<V>> {
        let tick = self.tick;
        self.tick += 1;
        let entry = self.map.get_mut(key)?;
        self.order.remove(&entry.tick);
        entry.tick = tick;
        self.order.insert(tick, key.clone());
        Some(self.map.get(key).expect("entry just touched"))
    }

    /// Evict this shard's LRU entry; returns its byte estimate.
    fn evict_lru(&mut self) -> Option<usize> {
        let (&tick, _) = self.order.iter().next()?;
        let key = self.order.remove(&tick).expect("tick just observed");
        let entry = self.map.remove(&key).expect("order and map agree");
        Some(entry.bytes)
    }
}

/// A leader/followers rendezvous for one in-flight key: the leader
/// publishes `Some(value)` (cacheable) or `None` (not cacheable — retry).
struct Flight<V> {
    done: Mutex<Option<Option<V>>>,
    cv: Condvar,
}

/// Outcome of [`ShardedCache::get_or_compute`].
pub enum Looked<R, V> {
    /// This caller ran the compute closure; `R` is whatever it returned.
    Computed(R),
    /// The value came out of the cache (or from a concurrent leader's
    /// compute); counted as a hit.
    Cached(V),
}

/// The lock-striped LRU described in the [module docs](self).
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
    cfg: CacheConfig,
    bytes: AtomicUsize,
    entries: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    pub fn new(cfg: CacheConfig) -> Self {
        let stripes = cfg.stripes.max(1);
        ShardedCache {
            shards: (0..stripes).map(|_| Mutex::new(Shard::new())).collect(),
            inflight: Mutex::new(HashMap::new()),
            cfg,
            bytes: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Plain lookup, counting a hit or miss. Disabled caches always miss
    /// (without counting — callers are expected not to consult them).
    pub fn get(&self, key: &K) -> Option<V> {
        if !self.cfg.enabled {
            return None;
        }
        let shard = &self.shards[self.shard_of(key)];
        let got = shard
            .lock()
            .expect("cache shard poisoned")
            .touch(key)
            .map(|e| e.value.clone());
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Insert `value` with the caller's byte estimate, then sweep shards
    /// until the global budgets hold again. A value alone exceeding the
    /// whole byte budget is rejected outright.
    pub fn insert(&self, key: K, value: V, value_bytes: usize) {
        if !self.cfg.enabled || value_bytes > self.cfg.max_bytes {
            return;
        }
        let home = self.shard_of(&key);
        {
            let mut shard = self.shards[home].lock().expect("cache shard poisoned");
            let tick = shard.tick;
            shard.tick += 1;
            if let Some(old) = shard.map.insert(
                key.clone(),
                Entry {
                    value,
                    bytes: value_bytes,
                    tick,
                },
            ) {
                shard.order.remove(&old.tick);
                self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
            }
            shard.order.insert(tick, key);
            self.bytes.fetch_add(value_bytes, Ordering::Relaxed);
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        // Sweep: probe shards cyclically from the inserting one, evicting
        // each probed shard's LRU, until both global budgets hold. Each
        // probe drops at most one entry, so the loop terminates once the
        // cache is empty even under adversarial byte estimates.
        let mut probe = home;
        while self.bytes.load(Ordering::Relaxed) > self.cfg.max_bytes
            || self.entries.load(Ordering::Relaxed) > self.cfg.max_entries
        {
            let evicted = self.shards[probe]
                .lock()
                .expect("cache shard poisoned")
                .evict_lru();
            if let Some(freed) = evicted {
                self.bytes.fetch_sub(freed, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else if self.entries.load(Ordering::Relaxed) == 0 {
                break;
            }
            probe = (probe + 1) % self.shards.len();
        }
    }

    /// Look `key` up; on a miss, collapse concurrent callers into one
    /// *leader* that runs `compute` while followers wait.
    ///
    /// `compute` returns `(result, cacheable)`: the `result` is handed back
    /// verbatim in [`Looked::Computed`], and `cacheable` is `Some((value,
    /// bytes))` when the computed value may be shared — it is inserted and
    /// published to the followers, who receive it as [`Looked::Cached`].
    /// `None` marks the result non-cacheable (truncated, failed): nothing
    /// is stored, and each follower retries the lookup from the top, the
    /// first of them becoming the next leader. Followers count as hits,
    /// the leader as a miss.
    ///
    /// The closure runs with no cache lock held. If it panics, the flight
    /// is resolved as non-cacheable so followers are never stranded.
    pub fn get_or_compute<R>(
        &self,
        key: K,
        compute: impl FnOnce() -> (R, Option<(V, usize)>),
    ) -> Looked<R, V> {
        if !self.cfg.enabled {
            let (result, _) = compute();
            return Looked::Computed(result);
        }
        loop {
            // Cache lookup and flight lookup happen under the inflight
            // lock, and a leader inserts into the cache *before* removing
            // its flight — so "no cached value and no flight" can only mean
            // this caller really is first, never that it raced a leader's
            // completion. (Lock order inflight → shard; nothing takes them
            // the other way round.)
            let flight = {
                let mut inflight = self.inflight.lock().expect("inflight table poisoned");
                let cached = self.shards[self.shard_of(&key)]
                    .lock()
                    .expect("cache shard poisoned")
                    .touch(&key)
                    .map(|e| e.value.clone());
                if let Some(v) = cached {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Looked::Cached(v);
                }
                match inflight.get(&key) {
                    Some(f) => Some(Arc::clone(f)),
                    None => {
                        // Leader-elect: this is the miss that stands.
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        inflight.insert(
                            key.clone(),
                            Arc::new(Flight {
                                done: Mutex::new(None),
                                cv: Condvar::new(),
                            }),
                        );
                        None
                    }
                }
            };
            match flight {
                None => {
                    // Leader. The guard resolves the flight even if the
                    // compute panics.
                    struct Resolve<'a, K: Hash + Eq + Clone, V: Clone> {
                        cache: &'a ShardedCache<K, V>,
                        key: K,
                        outcome: Option<V>,
                    }
                    impl<K: Hash + Eq + Clone, V: Clone> Drop for Resolve<'_, K, V> {
                        fn drop(&mut self) {
                            let flight = self
                                .cache
                                .inflight
                                .lock()
                                .expect("inflight table poisoned")
                                .remove(&self.key);
                            if let Some(f) = flight {
                                *f.done.lock().expect("flight poisoned") =
                                    Some(self.outcome.take());
                                f.cv.notify_all();
                            }
                        }
                    }
                    let mut guard = Resolve {
                        cache: self,
                        key,
                        outcome: None,
                    };
                    let (result, cacheable) = compute();
                    if let Some((value, bytes)) = cacheable {
                        guard.outcome = Some(value.clone());
                        self.insert(guard.key.clone(), value, bytes);
                    }
                    return Looked::Computed(result);
                }
                Some(f) => {
                    let mut done = f.done.lock().expect("flight poisoned");
                    while done.is_none() {
                        done = f.cv.wait(done).expect("flight poisoned");
                    }
                    match done.as_ref().expect("loop established Some") {
                        Some(v) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Looked::Cached(v.clone());
                        }
                        // Leader's result wasn't cacheable: retry; this
                        // caller may become the next leader.
                        None => continue,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(max_bytes: usize, max_entries: usize, stripes: usize) -> ShardedCache<u64, String> {
        ShardedCache::new(CacheConfig {
            enabled: true,
            max_bytes,
            max_entries,
            stripes,
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = cache(1024, 16, 4);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".into(), 3);
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!((s.entries, s.bytes), (1, 3));
        // replacing a key swaps its bytes, not duplicates them
        c.insert(1, "uno!".into(), 10);
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (1, 10));
        assert_eq!(c.get(&1).as_deref(), Some("uno!"));
    }

    #[test]
    fn byte_budget_is_a_strict_bound() {
        // Every insert leaves total bytes ≤ max_bytes, across any number of
        // shards, and evictions are accounted.
        let c = cache(100, 1000, 4);
        for i in 0..50u64 {
            c.insert(i, format!("v{i}"), 10);
            let s = c.stats();
            assert!(s.bytes <= 100, "byte budget violated: {}", s.bytes);
            assert_eq!(s.bytes, s.entries * 10);
        }
        let s = c.stats();
        assert_eq!(s.entries, 10);
        assert_eq!(s.evictions, 40);
    }

    #[test]
    fn entry_budget_is_a_strict_bound() {
        let c = cache(usize::MAX, 5, 2);
        for i in 0..20u64 {
            c.insert(i, "x".into(), 1);
            assert!(c.stats().entries <= 5);
        }
        assert_eq!(c.stats().evictions, 15);
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        // One stripe makes the LRU order global and deterministic.
        let c = cache(30, 1000, 1);
        c.insert(1, "a".into(), 10);
        c.insert(2, "b".into(), 10);
        c.insert(3, "c".into(), 10);
        assert_eq!(c.get(&1).as_deref(), Some("a")); // refresh 1
        c.insert(4, "d".into(), 10); // evicts 2, the LRU
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1).as_deref(), Some("a"));
        assert_eq!(c.get(&3).as_deref(), Some("c"));
        assert_eq!(c.get(&4).as_deref(), Some("d"));
    }

    #[test]
    fn oversized_value_is_not_stored() {
        let c = cache(100, 16, 2);
        c.insert(1, "small".into(), 10);
        c.insert(2, "huge".into(), 101);
        assert_eq!(c.get(&2), None);
        // and it didn't evict the resident entry to make room
        assert_eq!(c.get(&1).as_deref(), Some("small"));
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn disabled_cache_never_stores_and_always_computes() {
        let c: ShardedCache<u64, String> = ShardedCache::new(CacheConfig::disabled());
        c.insert(1, "x".into(), 1);
        assert_eq!(c.get(&1), None);
        let mut ran = false;
        match c.get_or_compute(1, || {
            ran = true;
            (7u32, Some(("x".to_string(), 1)))
        }) {
            Looked::Computed(r) => assert_eq!(r, 7),
            Looked::Cached(_) => panic!("disabled cache returned a value"),
        }
        assert!(ran);
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn singleflight_computes_once_under_contention() {
        use std::sync::atomic::AtomicU32;
        let c = Arc::new(cache(1024, 16, 4));
        let computes = AtomicU32::new(0);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let computes = &computes;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let v = match c.get_or_compute(42, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        // widen the race window so followers really queue
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        ("val".to_string(), Some(("val".to_string(), 3)))
                    }) {
                        Looked::Computed(v) => v,
                        Looked::Cached(v) => v,
                    };
                    assert_eq!(v, "val");
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1, "exactly one compute");
        let s = c.stats();
        assert_eq!(s.misses, 1, "only the leader missed");
        assert_eq!(s.hits, 7, "every follower shared the leader's result");
    }

    #[test]
    fn non_cacheable_compute_is_retried_not_shared() {
        let c = Arc::new(cache(1024, 16, 4));
        let barrier = std::sync::Barrier::new(4);
        let computes = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let computes = &computes;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    match c.get_or_compute(7, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        ("truncated".to_string(), None)
                    }) {
                        Looked::Computed(v) => assert_eq!(v, "truncated"),
                        Looked::Cached(_) => panic!("non-cacheable value was shared"),
                    }
                });
            }
        });
        // every thread computed for itself (leaders in sequence)
        assert_eq!(computes.load(Ordering::Relaxed), 4);
        assert_eq!(c.get(&7), None, "nothing was stored");
    }

    #[test]
    fn panicking_leader_does_not_strand_followers() {
        let c = Arc::new(cache(1024, 16, 4));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let c = Arc::clone(&c);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    c.get_or_compute(9, || {
                        barrier.wait();
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        panic!("compute exploded");
                        #[allow(unreachable_code)]
                        ((), Some(("x".to_string(), 1)))
                    })
                }));
            })
        };
        barrier.wait(); // the leader is inside its compute now
        let got = c.get_or_compute(9, || ("recovered".to_string(), None));
        match got {
            Looked::Computed(v) => assert_eq!(v, "recovered"),
            Looked::Cached(_) => panic!("panicked flight published a value"),
        }
        leader.join().unwrap();
    }

    #[test]
    fn generation_in_the_key_invalidates_without_any_call() {
        // The pattern every engine uses: (generation, term) keys. Bumping
        // the generation makes old entries unreachable; LRU reclaims them.
        let c: ShardedCache<(u64, u32), String> = ShardedCache::new(CacheConfig {
            enabled: true,
            max_bytes: 40,
            max_entries: 4,
            stripes: 2,
        });
        c.insert((0, 1), "gen0".into(), 10);
        assert_eq!(c.get(&(0, 1)).as_deref(), Some("gen0"));
        // generation bump: same term, new key — a miss, no invalidation API
        assert_eq!(c.get(&(1, 1)), None);
        for t in 0..4u32 {
            c.insert((1, t), "gen1".into(), 10);
        }
        assert_eq!(c.get(&(0, 1)), None, "stale entry swept by LRU");
    }
}
