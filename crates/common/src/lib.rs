//! Shared primitives for the `kwdb` workspace.
//!
//! This crate deliberately has no dependency on any of the search or storage
//! crates: it holds the vocabulary types everything else speaks —
//! [`Value`] for typed cell contents, the
//! [tokenizer](text::tokenize) every full-text index uses, bounded
//! [top-k heaps](topk::TopK), string-edit distances for query cleaning, a
//! string [interner](intern::Interner), and the shared
//! [term-dictionary + posting-list index core](index) every substrate's
//! inverted index is built on.

pub mod budget;
pub mod cache;
pub mod error;
pub mod facet;
pub mod index;
pub mod intern;
pub mod rng;
pub mod scratch;
pub mod shared_topk;
pub mod strutil;
pub mod text;
pub mod topk;
pub mod value;

pub use budget::{Budget, OperatorCounts, PhaseTimings, QueryStats, Stopwatch, TruncationReason};
pub use cache::{CacheConfig, CacheStats, Looked, ShardedCache};
pub use error::{KwdbError, Result};
pub use facet::{FacetCount, FacetCounts, FacetSpec, RangeBucket};
pub use rng::Rng;
pub use scratch::{Scratch, ScratchPool};
pub use shared_topk::SharedTopK;
pub use value::Value;

/// An ordered `f64` wrapper for use in heaps and sorted maps.
///
/// Scores in keyword search are finite floats; this wrapper defines a total
/// order by treating NaN as the smallest value so it can never win a top-k
/// slot by accident.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score(pub f64);

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => self.0.partial_cmp(&other.0).unwrap(),
        }
    }
}

impl From<f64> for Score {
    fn from(v: f64) -> Self {
        Score(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_orders_floats() {
        assert!(Score(1.0) < Score(2.0));
        assert!(Score(-1.0) < Score(0.0));
        assert_eq!(Score(3.5), Score(3.5));
    }

    #[test]
    fn score_nan_is_smallest() {
        assert!(Score(f64::NAN) < Score(f64::NEG_INFINITY));
        assert_eq!(
            Score(f64::NAN).cmp(&Score(f64::NAN)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn score_sorts_in_vec() {
        let mut v = [Score(2.0), Score(f64::NAN), Score(1.0)];
        v.sort();
        assert_eq!(v[1], Score(1.0));
        assert_eq!(v[2], Score(2.0));
    }
}
