//! Execution budgets and per-query statistics — the observability and
//! robustness substrate every engine threads through its pipeline.
//!
//! A [`Budget`] caps how long a single query may run (wall-clock deadline)
//! and how many candidates it may consider (candidate networks for the
//! relational engines, expanded answer roots for the graph engines, result
//! subtrees for XML). Engines check it at phase boundaries and inside their
//! top-k loops; an exhausted budget makes them return the best results found
//! so far, flagged as truncated, instead of running unbounded — the
//! industrial-strength behaviour of Baid et al. (ICDE 10) generalized to all
//! three data models.
//!
//! [`QueryStats`] is the matching observability record: per-phase wall-clock
//! timings, the operator counters the tutorial compares engines on, candidate
//! and pruned counts, and plan-cache hit/miss counters. Every search through
//! the unified API returns one instead of dropping it on the floor.

use std::time::{Duration, Instant};

/// A per-query execution budget.
///
/// The default budget is unlimited; builders add constraints:
///
/// ```
/// use kwdb_common::budget::Budget;
/// use std::time::Duration;
/// let b = Budget::unlimited()
///     .with_timeout(Duration::from_millis(50))
///     .with_max_candidates(10_000);
/// assert!(!b.exhausted());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Absolute wall-clock deadline; `None` = no time limit.
    deadline: Option<Instant>,
    /// Cap on candidates considered (CNs evaluated, roots expanded…);
    /// `None` = no cap.
    max_candidates: Option<u64>,
}

impl Budget {
    /// A budget with no constraints — every check passes.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Constrain by a deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Constrain by an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Constrain the number of candidates considered.
    pub fn with_max_candidates(mut self, n: u64) -> Self {
        self.max_candidates = Some(n);
        self
    }

    /// True if the deadline has passed (cheap: one `Instant::now()`).
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True if `candidates` exceeds the candidate cap.
    pub fn candidates_exceeded(&self, candidates: u64) -> bool {
        self.max_candidates.is_some_and(|m| candidates >= m)
    }

    /// True if any constraint is violated given `candidates` consumed.
    pub fn exhausted_at(&self, candidates: u64) -> bool {
        self.candidates_exceeded(candidates) || self.deadline_exceeded()
    }

    /// True if the deadline alone is violated (candidate-free check for
    /// phase boundaries).
    pub fn exhausted(&self) -> bool {
        self.deadline_exceeded()
    }

    /// Whether this budget constrains anything at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_candidates.is_none()
    }

    /// The candidate cap, if any.
    pub fn max_candidates(&self) -> Option<u64> {
        self.max_candidates
    }

    /// Remaining wall-clock time, if a deadline is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Why the budget is exhausted at `candidates` consumed, if it is.
    ///
    /// The candidate cap is checked first: it is deterministic (a function
    /// of the work done, not the wall clock), so when both constraints are
    /// violated the reported reason is stable across runs and identical
    /// between serial and concurrent execution.
    pub fn truncation_at(&self, candidates: u64) -> Option<TruncationReason> {
        if self.candidates_exceeded(candidates) {
            Some(TruncationReason::CandidateCapReached)
        } else if self.deadline_exceeded() {
            Some(TruncationReason::DeadlineExceeded)
        } else {
            None
        }
    }

    /// Deadline-only variant of [`Budget::truncation_at`] for phase
    /// boundaries, where no candidate count applies.
    pub fn truncation(&self) -> Option<TruncationReason> {
        self.deadline_exceeded()
            .then_some(TruncationReason::DeadlineExceeded)
    }
}

/// Why a query was cut short: the typed replacement for the old bare
/// `truncated: bool`, so callers (and the metrics registry) can tell an
/// overloaded deployment (deadlines firing) from an over-tight candidate
/// cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// The wall-clock deadline passed mid-query.
    DeadlineExceeded,
    /// The candidate cap was consumed before evaluation finished.
    CandidateCapReached,
}

impl TruncationReason {
    /// Stable metric-label value: `"deadline"` or `"candidate_cap"`.
    pub fn as_str(self) -> &'static str {
        match self {
            TruncationReason::DeadlineExceeded => "deadline",
            TruncationReason::CandidateCapReached => "candidate_cap",
        }
    }

    /// The inverse of [`as_str`](Self::as_str), for readers of serialized
    /// records (the flight-recorder dump); `None` for unknown labels.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "deadline" => Some(TruncationReason::DeadlineExceeded),
            "candidate_cap" => Some(TruncationReason::CandidateCapReached),
            _ => None,
        }
    }
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Wall-clock timings of the pipeline phases every engine shares.
///
/// Phases a given engine does not have (XML has no CN generation) stay at
/// zero. `candidates` covers "build the per-keyword material" — tuple sets
/// for relational, the node→keyword index for BLINKS, inverted-list lookups
/// for XML.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Query-string parsing / keyword extraction.
    pub parse: Duration,
    /// Tuple-set build / keyword-index build / inverted-list lookup.
    pub build: Duration,
    /// Candidate-network generation / answer enumeration setup.
    pub plan: Duration,
    /// Top-k evaluation (the main loop).
    pub evaluate: Duration,
    /// Facet-count finalization (sorting/truncating accumulated
    /// distributions, rendering values); zero for non-faceted queries.
    pub facets: Duration,
}

impl PhaseTimings {
    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        self.parse + self.build + self.plan + self.evaluate + self.facets
    }
}

/// Operator-level counters, mirroring `ExecStats` from the relational
/// storage layer so the unified response type needs no dependency on it.
/// Graph engines report sorted/random index accesses; XML engines report
/// scanned inverted-list entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorCounts {
    pub tuples_scanned: u64,
    pub join_probes: u64,
    pub joins_executed: u64,
    pub rows_output: u64,
    /// Sorted index accesses (BLINKS TA, inverted-list cursors).
    pub sorted_accesses: u64,
    /// Random index accesses (BLINKS TA probes).
    pub random_accesses: u64,
    /// Rows matched by hash-join probes (the build-table hit volume, as
    /// opposed to `join_probes` which counts probe *attempts*).
    pub join_probe_rows: u64,
    /// Posting-list blocks jumped over undecoded (cursor skip pointers and
    /// block-max pruning; always zero on the plain layout).
    pub blocks_skipped: u64,
}

/// Everything a single query execution reports back.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Per-phase wall-clock timings.
    pub phases: PhaseTimings,
    /// Operator counters accumulated during evaluation.
    pub operators: OperatorCounts,
    /// Candidates generated (CNs, graph roots discovered, XML roots).
    pub candidates_generated: u64,
    /// Candidates pruned/skipped by bounds or the budget.
    pub candidates_pruned: u64,
    /// Candidate networks actually joined during top-k evaluation
    /// (relational engines only; zero elsewhere).
    pub cns_evaluated: u64,
    /// Candidate networks skipped — bound-pruned or cut by the budget —
    /// so `cns_evaluated + cns_pruned` equals the CNs generated.
    pub cns_pruned: u64,
    /// Plan-cache hits for this query (1 when the CN set came from cache).
    pub cache_hits: u64,
    /// Plan-cache misses for this query.
    pub cache_misses: u64,
    /// Result-cache hits (1 when the whole sealed response came from the
    /// engine's result cache; all other work counters are then near-zero).
    pub result_cache_hits: u64,
    /// Result-cache misses (1 when the result cache was consulted and the
    /// response had to be computed). Queries that never consult the cache —
    /// cache disabled, tracing on, constrained budget — report 0/0.
    pub result_cache_misses: u64,
}

impl QueryStats {
    pub fn new() -> Self {
        QueryStats::default()
    }

    /// Accumulate another query's record into this one: phase timings,
    /// operator counters, candidate counts, and cache counters all add up.
    /// The dispatcher uses this to report fleet-wide totals for a batch of
    /// concurrently executed requests.
    ///
    /// The implementation destructures `other` exhaustively (no `..` rest
    /// pattern), so adding a field to [`QueryStats`], [`PhaseTimings`], or
    /// [`OperatorCounts`] without deciding how it merges is a compile
    /// error — a counter can never again be silently dropped from
    /// dispatcher totals.
    pub fn merge(&mut self, other: &QueryStats) {
        let QueryStats {
            phases:
                PhaseTimings {
                    parse,
                    build,
                    plan,
                    evaluate,
                    facets,
                },
            operators:
                OperatorCounts {
                    tuples_scanned,
                    join_probes,
                    joins_executed,
                    rows_output,
                    sorted_accesses,
                    random_accesses,
                    join_probe_rows,
                    blocks_skipped,
                },
            candidates_generated,
            candidates_pruned,
            cns_evaluated,
            cns_pruned,
            cache_hits,
            cache_misses,
            result_cache_hits,
            result_cache_misses,
        } = other;
        self.phases.parse += *parse;
        self.phases.build += *build;
        self.phases.plan += *plan;
        self.phases.evaluate += *evaluate;
        self.phases.facets += *facets;
        self.operators.tuples_scanned += tuples_scanned;
        self.operators.join_probes += join_probes;
        self.operators.joins_executed += joins_executed;
        self.operators.rows_output += rows_output;
        self.operators.sorted_accesses += sorted_accesses;
        self.operators.random_accesses += random_accesses;
        self.operators.join_probe_rows += join_probe_rows;
        self.operators.blocks_skipped += blocks_skipped;
        self.candidates_generated += candidates_generated;
        self.candidates_pruned += candidates_pruned;
        self.cns_evaluated += cns_evaluated;
        self.cns_pruned += cns_pruned;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
        self.result_cache_hits += result_cache_hits;
        self.result_cache_misses += result_cache_misses;
    }
}

/// A tiny stopwatch for phase timing: `lap()` returns the time since the
/// previous lap (or construction) and restarts.
#[derive(Debug)]
pub struct Stopwatch {
    last: Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch {
            last: Instant::now(),
        }
    }

    /// Elapsed time since the last lap; resets the lap marker.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.last;
        self.last = now;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted());
        assert!(!b.exhausted_at(u64::MAX - 1));
        assert!(b.is_unlimited());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn zero_timeout_exhausts_immediately() {
        let b = Budget::unlimited().with_timeout(Duration::ZERO);
        assert!(b.exhausted());
        assert!(b.exhausted_at(0));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn candidate_cap_checks_count() {
        let b = Budget::unlimited().with_max_candidates(10);
        assert!(!b.exhausted_at(9));
        assert!(b.exhausted_at(10));
        assert!(b.exhausted_at(11));
        assert!(!b.exhausted(), "no deadline set");
    }

    #[test]
    fn generous_deadline_not_exceeded() {
        let b = Budget::unlimited().with_timeout(Duration::from_secs(3600));
        assert!(!b.exhausted());
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let mut a = QueryStats {
            phases: PhaseTimings {
                parse: Duration::from_millis(1),
                build: Duration::from_millis(2),
                plan: Duration::from_millis(3),
                evaluate: Duration::from_millis(4),
                facets: Duration::from_millis(5),
            },
            operators: OperatorCounts {
                tuples_scanned: 1,
                join_probes: 2,
                joins_executed: 3,
                rows_output: 4,
                sorted_accesses: 5,
                random_accesses: 6,
                join_probe_rows: 7,
                blocks_skipped: 13,
            },
            candidates_generated: 7,
            candidates_pruned: 8,
            cns_evaluated: 11,
            cns_pruned: 12,
            cache_hits: 9,
            cache_misses: 10,
            result_cache_hits: 15,
            result_cache_misses: 16,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.phases.total(), Duration::from_millis(30));
        assert_eq!(a.operators.tuples_scanned, 2);
        assert_eq!(a.operators.random_accesses, 12);
        assert_eq!(a.operators.join_probe_rows, 14);
        assert_eq!(a.operators.blocks_skipped, 26);
        assert_eq!(a.candidates_generated, 14);
        assert_eq!(a.candidates_pruned, 16);
        assert_eq!(a.cns_evaluated, 22);
        assert_eq!(a.cns_pruned, 24);
        assert_eq!(a.cache_hits, 18);
        assert_eq!(a.cache_misses, 20);
        assert_eq!(a.result_cache_hits, 30);
        assert_eq!(a.result_cache_misses, 32);
    }

    #[test]
    fn merge_of_default_is_identity() {
        let mut a = QueryStats::new();
        a.cache_hits = 3;
        a.merge(&QueryStats::default());
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.phases.total(), Duration::ZERO);
    }

    /// Compile guard: constructs every stats struct with a full field list
    /// (no `..Default::default()`), so adding a field breaks this test's
    /// compilation until both the literal here and [`QueryStats::merge`]
    /// (itself an exhaustive destructure) account for it.
    #[test]
    fn merge_compile_guard_covers_every_field() {
        let unit = QueryStats {
            phases: PhaseTimings {
                parse: Duration::from_nanos(1),
                build: Duration::from_nanos(1),
                plan: Duration::from_nanos(1),
                evaluate: Duration::from_nanos(1),
                facets: Duration::from_nanos(1),
            },
            operators: OperatorCounts {
                tuples_scanned: 1,
                join_probes: 1,
                joins_executed: 1,
                rows_output: 1,
                sorted_accesses: 1,
                random_accesses: 1,
                join_probe_rows: 1,
                blocks_skipped: 1,
            },
            candidates_generated: 1,
            candidates_pruned: 1,
            cns_evaluated: 1,
            cns_pruned: 1,
            cache_hits: 1,
            cache_misses: 1,
            result_cache_hits: 1,
            result_cache_misses: 1,
        };
        let mut acc = QueryStats::new();
        acc.merge(&unit);
        // every field of the all-ones record must land in the total
        assert_eq!(acc.phases.total(), Duration::from_nanos(5));
        let OperatorCounts {
            tuples_scanned,
            join_probes,
            joins_executed,
            rows_output,
            sorted_accesses,
            random_accesses,
            join_probe_rows,
            blocks_skipped,
        } = acc.operators;
        assert_eq!(
            [
                tuples_scanned,
                join_probes,
                joins_executed,
                rows_output,
                sorted_accesses,
                random_accesses,
                join_probe_rows,
                blocks_skipped,
                acc.candidates_generated,
                acc.candidates_pruned,
                acc.cns_evaluated,
                acc.cns_pruned,
                acc.cache_hits,
                acc.cache_misses,
                acc.result_cache_hits,
                acc.result_cache_misses,
            ],
            [1; 16],
            "merge dropped a counter"
        );
    }

    #[test]
    fn truncation_reason_prefers_deterministic_cap() {
        let b = Budget::unlimited()
            .with_max_candidates(5)
            .with_timeout(Duration::ZERO);
        // both constraints violated ⇒ the deterministic one wins
        assert_eq!(
            b.truncation_at(5),
            Some(TruncationReason::CandidateCapReached)
        );
        // only the deadline violated
        assert_eq!(b.truncation_at(0), Some(TruncationReason::DeadlineExceeded));
        assert_eq!(b.truncation(), Some(TruncationReason::DeadlineExceeded));

        let unlimited = Budget::unlimited();
        assert_eq!(unlimited.truncation_at(u64::MAX - 1), None);
        assert_eq!(unlimited.truncation(), None);
        assert_eq!(TruncationReason::DeadlineExceeded.as_str(), "deadline");
        assert_eq!(
            TruncationReason::CandidateCapReached.to_string(),
            "candidate_cap"
        );
        for r in [
            TruncationReason::DeadlineExceeded,
            TruncationReason::CandidateCapReached,
        ] {
            assert_eq!(TruncationReason::parse(r.as_str()), Some(r));
        }
        assert_eq!(TruncationReason::parse("bogus"), None);
    }

    #[test]
    fn stopwatch_laps_accumulate() {
        let mut sw = Stopwatch::start();
        let a = sw.lap();
        let b = sw.lap();
        let t = PhaseTimings {
            parse: a,
            evaluate: b,
            ..Default::default()
        };
        assert_eq!(t.total(), a + b);
    }
}
