//! Execution budgets and per-query statistics — the observability and
//! robustness substrate every engine threads through its pipeline.
//!
//! A [`Budget`] caps how long a single query may run (wall-clock deadline)
//! and how many candidates it may consider (candidate networks for the
//! relational engines, expanded answer roots for the graph engines, result
//! subtrees for XML). Engines check it at phase boundaries and inside their
//! top-k loops; an exhausted budget makes them return the best results found
//! so far, flagged as truncated, instead of running unbounded — the
//! industrial-strength behaviour of Baid et al. (ICDE 10) generalized to all
//! three data models.
//!
//! [`QueryStats`] is the matching observability record: per-phase wall-clock
//! timings, the operator counters the tutorial compares engines on, candidate
//! and pruned counts, and plan-cache hit/miss counters. Every search through
//! the unified API returns one instead of dropping it on the floor.

use std::time::{Duration, Instant};

/// A per-query execution budget.
///
/// The default budget is unlimited; builders add constraints:
///
/// ```
/// use kwdb_common::budget::Budget;
/// use std::time::Duration;
/// let b = Budget::unlimited()
///     .with_timeout(Duration::from_millis(50))
///     .with_max_candidates(10_000);
/// assert!(!b.exhausted());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Absolute wall-clock deadline; `None` = no time limit.
    deadline: Option<Instant>,
    /// Cap on candidates considered (CNs evaluated, roots expanded…);
    /// `None` = no cap.
    max_candidates: Option<u64>,
}

impl Budget {
    /// A budget with no constraints — every check passes.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Constrain by a deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Constrain by an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Constrain the number of candidates considered.
    pub fn with_max_candidates(mut self, n: u64) -> Self {
        self.max_candidates = Some(n);
        self
    }

    /// True if the deadline has passed (cheap: one `Instant::now()`).
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True if `candidates` exceeds the candidate cap.
    pub fn candidates_exceeded(&self, candidates: u64) -> bool {
        self.max_candidates.is_some_and(|m| candidates >= m)
    }

    /// True if any constraint is violated given `candidates` consumed.
    pub fn exhausted_at(&self, candidates: u64) -> bool {
        self.candidates_exceeded(candidates) || self.deadline_exceeded()
    }

    /// True if the deadline alone is violated (candidate-free check for
    /// phase boundaries).
    pub fn exhausted(&self) -> bool {
        self.deadline_exceeded()
    }

    /// Whether this budget constrains anything at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_candidates.is_none()
    }

    /// The candidate cap, if any.
    pub fn max_candidates(&self) -> Option<u64> {
        self.max_candidates
    }

    /// Remaining wall-clock time, if a deadline is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// Wall-clock timings of the pipeline phases every engine shares.
///
/// Phases a given engine does not have (XML has no CN generation) stay at
/// zero. `candidates` covers "build the per-keyword material" — tuple sets
/// for relational, the node→keyword index for BLINKS, inverted-list lookups
/// for XML.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Query-string parsing / keyword extraction.
    pub parse: Duration,
    /// Tuple-set build / keyword-index build / inverted-list lookup.
    pub build: Duration,
    /// Candidate-network generation / answer enumeration setup.
    pub plan: Duration,
    /// Top-k evaluation (the main loop).
    pub evaluate: Duration,
}

impl PhaseTimings {
    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        self.parse + self.build + self.plan + self.evaluate
    }
}

/// Operator-level counters, mirroring `ExecStats` from the relational
/// storage layer so the unified response type needs no dependency on it.
/// Graph engines report sorted/random index accesses; XML engines report
/// scanned inverted-list entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorCounts {
    pub tuples_scanned: u64,
    pub join_probes: u64,
    pub joins_executed: u64,
    pub rows_output: u64,
    /// Sorted index accesses (BLINKS TA, inverted-list cursors).
    pub sorted_accesses: u64,
    /// Random index accesses (BLINKS TA probes).
    pub random_accesses: u64,
}

/// Everything a single query execution reports back.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Per-phase wall-clock timings.
    pub phases: PhaseTimings,
    /// Operator counters accumulated during evaluation.
    pub operators: OperatorCounts,
    /// Candidates generated (CNs, graph roots discovered, XML roots).
    pub candidates_generated: u64,
    /// Candidates pruned/skipped by bounds or the budget.
    pub candidates_pruned: u64,
    /// Plan-cache hits for this query (1 when the CN set came from cache).
    pub cache_hits: u64,
    /// Plan-cache misses for this query.
    pub cache_misses: u64,
}

impl QueryStats {
    pub fn new() -> Self {
        QueryStats::default()
    }

    /// Accumulate another query's record into this one: phase timings,
    /// operator counters, candidate counts, and cache counters all add up.
    /// The dispatcher uses this to report fleet-wide totals for a batch of
    /// concurrently executed requests.
    pub fn merge(&mut self, other: &QueryStats) {
        self.phases.parse += other.phases.parse;
        self.phases.build += other.phases.build;
        self.phases.plan += other.phases.plan;
        self.phases.evaluate += other.phases.evaluate;
        self.operators.tuples_scanned += other.operators.tuples_scanned;
        self.operators.join_probes += other.operators.join_probes;
        self.operators.joins_executed += other.operators.joins_executed;
        self.operators.rows_output += other.operators.rows_output;
        self.operators.sorted_accesses += other.operators.sorted_accesses;
        self.operators.random_accesses += other.operators.random_accesses;
        self.candidates_generated += other.candidates_generated;
        self.candidates_pruned += other.candidates_pruned;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

/// A tiny stopwatch for phase timing: `lap()` returns the time since the
/// previous lap (or construction) and restarts.
#[derive(Debug)]
pub struct Stopwatch {
    last: Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch {
            last: Instant::now(),
        }
    }

    /// Elapsed time since the last lap; resets the lap marker.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.last;
        self.last = now;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted());
        assert!(!b.exhausted_at(u64::MAX - 1));
        assert!(b.is_unlimited());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn zero_timeout_exhausts_immediately() {
        let b = Budget::unlimited().with_timeout(Duration::ZERO);
        assert!(b.exhausted());
        assert!(b.exhausted_at(0));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn candidate_cap_checks_count() {
        let b = Budget::unlimited().with_max_candidates(10);
        assert!(!b.exhausted_at(9));
        assert!(b.exhausted_at(10));
        assert!(b.exhausted_at(11));
        assert!(!b.exhausted(), "no deadline set");
    }

    #[test]
    fn generous_deadline_not_exceeded() {
        let b = Budget::unlimited().with_timeout(Duration::from_secs(3600));
        assert!(!b.exhausted());
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let mut a = QueryStats {
            phases: PhaseTimings {
                parse: Duration::from_millis(1),
                build: Duration::from_millis(2),
                plan: Duration::from_millis(3),
                evaluate: Duration::from_millis(4),
            },
            operators: OperatorCounts {
                tuples_scanned: 1,
                join_probes: 2,
                joins_executed: 3,
                rows_output: 4,
                sorted_accesses: 5,
                random_accesses: 6,
            },
            candidates_generated: 7,
            candidates_pruned: 8,
            cache_hits: 9,
            cache_misses: 10,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.phases.total(), Duration::from_millis(20));
        assert_eq!(a.operators.tuples_scanned, 2);
        assert_eq!(a.operators.random_accesses, 12);
        assert_eq!(a.candidates_generated, 14);
        assert_eq!(a.candidates_pruned, 16);
        assert_eq!(a.cache_hits, 18);
        assert_eq!(a.cache_misses, 20);
    }

    #[test]
    fn merge_of_default_is_identity() {
        let mut a = QueryStats::new();
        a.cache_hits = 3;
        a.merge(&QueryStats::default());
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.phases.total(), Duration::ZERO);
    }

    #[test]
    fn stopwatch_laps_accumulate() {
        let mut sw = Stopwatch::start();
        let a = sw.lap();
        let b = sw.lap();
        let t = PhaseTimings {
            parse: a,
            evaluate: b,
            ..Default::default()
        };
        assert_eq!(t.total(), a + b);
    }
}
