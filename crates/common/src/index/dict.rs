//! The term dictionary: normalized term ⇄ dense [`Sym`] id.

use crate::intern::{Interner, Sym};

/// A dictionary of index terms built on the string [`Interner`].
///
/// Terms get dense, insertion-ordered [`Sym`] ids, so a posting store can
/// keep per-term data in plain `Vec`s indexed by `Sym` instead of hashing
/// `String` keys. Build paths call [`intern`](Self::intern) (one `String`
/// allocation per *distinct* term, ever); query paths call
/// [`lookup`](Self::lookup) once per query term and then carry the `Sym`.
#[derive(Debug, Default, Clone)]
pub struct TermDict {
    interner: Interner,
}

impl TermDict {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its stable id. Allocates only the first
    /// time a distinct term is seen.
    pub fn intern(&mut self, term: &str) -> Sym {
        self.interner.intern(term)
    }

    /// Resolve a query term to its id, if the term was ever indexed.
    pub fn lookup(&self, term: &str) -> Option<Sym> {
        self.interner.get(term)
    }

    /// Resolve each query term to its id; absent terms yield `None`.
    ///
    /// This is the "one dictionary lookup per query term" entry point:
    /// call it once up front, then drive the whole query off the `Sym`s.
    pub fn lookup_all<S: AsRef<str>>(&self, terms: &[S]) -> Vec<Option<Sym>> {
        terms.iter().map(|t| self.lookup(t.as_ref())).collect()
    }

    /// The string form of an interned term. Panics on a foreign `Sym`.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Iterate `(Sym, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.interner.iter()
    }

    /// Iterate all terms in id order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.interner.iter().map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_then_lookup_round_trips() {
        let mut d = TermDict::new();
        let a = d.intern("xml");
        assert_eq!(d.intern("xml"), a, "idempotent");
        assert_eq!(d.lookup("xml"), Some(a));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.resolve(a), "xml");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn lookup_all_preserves_order_and_absence() {
        let mut d = TermDict::new();
        let x = d.intern("x");
        let y = d.intern("y");
        assert_eq!(
            d.lookup_all(&["y", "zzz", "x"]),
            vec![Some(y), None, Some(x)]
        );
    }
}
