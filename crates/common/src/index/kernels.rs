//! Sorted-list kernels shared by every substrate index: intersection
//! (linear merge vs galloping, chosen by size ratio) and the `lm`/`rm`
//! binary probes of the SLCA/XKSearch family.
//!
//! All kernels operate on sorted slices of any `Ord + Copy` element, so the
//! same code serves relational `RowId`s, XML `NodeId`s, and graph `NodeId`s.
//! Intersections use *set* semantics: the output is strictly increasing even
//! when the inputs contain duplicates.

/// Size ratio at which intersection switches from linear merge to galloping:
/// when the larger list is at least this many times the smaller, skipping
/// through the large list with exponential search beats scanning it.
pub const GALLOP_RATIO: usize = 8;

/// Smallest element of sorted `list` that is `≥ v` — XKSearch's *rm* probe.
/// `None` if every element precedes `v`.
pub fn right_match<T: Ord + Copy>(list: &[T], v: T) -> Option<T> {
    let i = list.partition_point(|x| *x < v);
    list.get(i).copied()
}

/// Largest element of sorted `list` that is `≤ v` — XKSearch's *lm* probe.
/// `None` if every element follows `v`.
pub fn left_match<T: Ord + Copy>(list: &[T], v: T) -> Option<T> {
    let i = list.partition_point(|x| *x <= v);
    i.checked_sub(1).map(|j| list[j])
}

/// Is `v` contained in sorted `list`? (Binary search membership probe.)
pub fn contains<T: Ord>(list: &[T], v: &T) -> bool {
    list.binary_search(v).is_ok()
}

/// Index of the first element `≥ target` in `list[from..]`, found by
/// exponential (galloping) search from `from`. Returns `list.len()` when no
/// such element exists. `O(log d)` in the distance `d` to the answer, which
/// is what makes skewed-size intersections cheap.
pub fn gallop_lower_bound<T: Ord>(list: &[T], target: &T, from: usize) -> usize {
    if from >= list.len() || list[from] >= *target {
        return from.min(list.len());
    }
    // invariant: list[lo] < target; hi is the first probe with list[hi] >= target
    let mut step = 1usize;
    let mut lo = from;
    let hi = loop {
        let probe = from + step;
        if probe >= list.len() {
            break list.len();
        }
        if list[probe] < *target {
            lo = probe;
            step <<= 1;
        } else {
            break probe;
        }
    };
    lo + 1 + list[lo + 1..hi].partition_point(|x| x < target)
}

/// Intersection by linear merge: `O(|a| + |b|)`. Best when the lists are of
/// comparable length.
pub fn intersect_linear<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if out.last() != Some(&a[i]) {
                    out.push(a[i]);
                }
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Intersection by galloping: for each element of `small`, exponential-search
/// forward in `large`. `O(|small| · log(|large| / |small|))` — the win when
/// one list dwarfs the other (a rare query term against a stop-word-like
/// list).
pub fn intersect_gallop<T: Ord + Copy>(small: &[T], large: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    for &v in small {
        if out.last() == Some(&v) {
            continue; // duplicate in `small`
        }
        pos = gallop_lower_bound(large, &v, pos);
        if pos == large.len() {
            break;
        }
        if large[pos] == v {
            out.push(v);
        }
    }
    out
}

/// Intersect two sorted lists, choosing the kernel by size ratio: galloping
/// when the larger list is ≥ [`GALLOP_RATIO`]× the smaller, linear merge
/// otherwise.
pub fn intersect<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        intersect_gallop(small, large)
    } else {
        intersect_linear(small, large)
    }
}

/// Intersect any number of sorted lists, smallest first so the running
/// intersection shrinks as fast as possible. Empty input ⇒ empty output.
pub fn intersect_many<T: Ord + Copy>(lists: &[&[T]]) -> Vec<T> {
    if lists.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<&[T]> = lists.to_vec();
    order.sort_by_key(|l| l.len());
    let mut acc: Vec<T> = order[0].to_vec();
    acc.dedup();
    for l in &order[1..] {
        if acc.is_empty() {
            break;
        }
        acc = intersect(&acc, l);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use std::collections::BTreeSet;

    /// Reference intersection: sorted set semantics.
    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        sa.intersection(&sb).copied().collect()
    }

    /// Sorted random list; `universe` small ⇒ duplicate-heavy.
    fn random_list(rng: &mut Rng, len: usize, universe: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..len)
            .map(|_| rng.gen_range(0..universe.max(1)))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn probes_match_naive_scan() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..200 {
            let len = rng.gen_index(20);
            let list = random_list(&mut rng, len, 30);
            let v = rng.gen_range(0..35u32);
            let rm = list.iter().copied().find(|&x| x >= v);
            let lm = list.iter().copied().rev().find(|&x| x <= v);
            assert_eq!(right_match(&list, v), rm, "rm {list:?} {v}");
            assert_eq!(left_match(&list, v), lm, "lm {list:?} {v}");
            assert_eq!(contains(&list, &v), list.binary_search(&v).is_ok());
        }
    }

    #[test]
    fn gallop_lower_bound_matches_partition_point() {
        let mut rng = Rng::seed_from_u64(8);
        for _ in 0..200 {
            let len = rng.gen_index(50);
            let list = random_list(&mut rng, len, 40);
            let target = rng.gen_range(0..45u32);
            let from = rng.gen_index(list.len() + 1);
            let expect = from + list[from..].partition_point(|x| *x < target);
            assert_eq!(
                gallop_lower_bound(&list, &target, from),
                expect,
                "list {list:?} target {target} from {from}"
            );
        }
    }

    #[test]
    fn intersection_kernels_agree_with_naive_over_adversarial_ratios() {
        let mut rng = Rng::seed_from_u64(9);
        // adversarial size pairs: empty, singleton, tiny-vs-huge, balanced
        let sizes: [(usize, usize); 8] = [
            (0, 0),
            (0, 40),
            (1, 1),
            (1, 500),
            (3, 1000),
            (64, 64),
            (100, 101),
            (7, 7000),
        ];
        for &(la, lb) in &sizes {
            for universe in [5u32, 1000, 100_000] {
                for _ in 0..8 {
                    let a = random_list(&mut rng, la, universe);
                    let b = random_list(&mut rng, lb, universe);
                    let expect = naive(&a, &b);
                    assert_eq!(intersect(&a, &b), expect, "dispatch {la}x{lb} u{universe}");
                    assert_eq!(intersect_linear(&a, &b), expect, "linear");
                    let (s, l) = if a.len() <= b.len() {
                        (&a, &b)
                    } else {
                        (&b, &a)
                    };
                    assert_eq!(intersect_gallop(s, l), expect, "gallop");
                }
            }
        }
    }

    #[test]
    fn intersect_many_matches_iterated_naive() {
        let mut rng = Rng::seed_from_u64(10);
        for _ in 0..50 {
            let n_lists = 1 + rng.gen_index(4);
            let lists: Vec<Vec<u32>> = (0..n_lists)
                .map(|_| {
                    let len = rng.gen_index(200);
                    random_list(&mut rng, len, 60)
                })
                .collect();
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            let mut expect: Vec<u32> = {
                let s: BTreeSet<u32> = lists[0].iter().copied().collect();
                s.into_iter().collect()
            };
            for l in &lists[1..] {
                expect = naive(&expect, l);
            }
            assert_eq!(intersect_many(&refs), expect);
        }
        assert!(intersect_many::<u32>(&[]).is_empty());
    }

    #[test]
    fn duplicate_heavy_output_is_strictly_increasing() {
        let a = [1u32, 1, 1, 2, 2, 3, 9, 9];
        let b = [1u32, 2, 2, 9, 9, 9];
        for out in [
            intersect(&a, &b),
            intersect_linear(&a, &b),
            intersect_gallop(&a, &b),
        ] {
            assert_eq!(out, vec![1, 2, 9]);
            assert!(out.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
