//! Sorted-list kernels shared by every substrate index: intersection
//! (linear merge vs galloping, chosen by size ratio), the `lm`/`rm` binary
//! probes of the SLCA/XKSearch family, and the cursor kernels — galloping
//! cursor intersection, k-way union, and block-max (WAND-style) pruned
//! intersection — that operate on [`PostingCursor`]s from either physical
//! layout.
//!
//! Slice kernels operate on sorted slices of any `Ord + Copy` element, so
//! the same code serves relational `RowId`s, XML `NodeId`s, and graph
//! `NodeId`s. Intersections use *set* semantics: the output is strictly
//! increasing even when the inputs contain duplicates.

use super::posting::{Posting, PostingCursor};

/// Size ratio at which intersection switches from linear merge to galloping:
/// when the larger list is at least this many times the smaller, skipping
/// through the large list with exponential search beats scanning it.
pub const GALLOP_RATIO: usize = 8;

/// Relative safety margin applied to floating-point block-max bounds before
/// comparing against a top-k threshold: a block is skipped only when
/// `bound * (1 + WAND_BOUND_EPSILON) < threshold`, so accumulated rounding
/// in the bound can never make pruning unsound.
pub const WAND_BOUND_EPSILON: f64 = 1e-9;

/// Smallest element of sorted `list` that is `≥ v` — XKSearch's *rm* probe.
/// `None` if every element precedes `v`.
pub fn right_match<T: Ord + Copy>(list: &[T], v: T) -> Option<T> {
    let i = list.partition_point(|x| *x < v);
    list.get(i).copied()
}

/// Largest element of sorted `list` that is `≤ v` — XKSearch's *lm* probe.
/// `None` if every element follows `v`.
pub fn left_match<T: Ord + Copy>(list: &[T], v: T) -> Option<T> {
    let i = list.partition_point(|x| *x <= v);
    i.checked_sub(1).map(|j| list[j])
}

/// Is `v` contained in sorted `list`? (Binary search membership probe.)
pub fn contains<T: Ord>(list: &[T], v: &T) -> bool {
    list.binary_search(v).is_ok()
}

/// Index of the first element `≥ target` in `list[from..]`, found by
/// exponential (galloping) search from `from`. Returns `list.len()` when no
/// such element exists. `O(log d)` in the distance `d` to the answer, which
/// is what makes skewed-size intersections cheap.
pub fn gallop_lower_bound<T: Ord>(list: &[T], target: &T, from: usize) -> usize {
    gallop_by(list, from, |x| *x >= *target)
}

/// Index of the first element at or after `from` satisfying `pred`, found
/// by exponential search. `pred` must be monotone over the slice (false
/// then true); returns `list.len()` when nothing satisfies it. This is the
/// predicate-shaped gallop that cursor `seek` uses to jump by `key64`.
pub fn gallop_by<T>(list: &[T], from: usize, pred: impl Fn(&T) -> bool) -> usize {
    if from >= list.len() || pred(&list[from]) {
        return from.min(list.len());
    }
    // invariant: !pred(list[lo]); hi is the first probe with pred(list[hi])
    let mut step = 1usize;
    let mut lo = from;
    let hi = loop {
        let probe = from + step;
        if probe >= list.len() {
            break list.len();
        }
        if !pred(&list[probe]) {
            lo = probe;
            step <<= 1;
        } else {
            break probe;
        }
    };
    lo + 1 + list[lo + 1..hi].partition_point(|x| !pred(x))
}

/// Intersection by linear merge into a caller buffer (cleared first):
/// `O(|a| + |b|)`. Best when the lists are of comparable length.
pub fn intersect_linear_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if out.last() != Some(&a[i]) {
                    out.push(a[i]);
                }
                i += 1;
                j += 1;
            }
        }
    }
}

/// Intersection by galloping into a caller buffer (cleared first): for each
/// element of `small`, exponential-search forward in `large`.
/// `O(|small| · log(|large| / |small|))` — the win when one list dwarfs the
/// other (a rare query term against a stop-word-like list).
pub fn intersect_gallop_into<T: Ord + Copy>(small: &[T], large: &[T], out: &mut Vec<T>) {
    out.clear();
    let mut pos = 0usize;
    for &v in small {
        if out.last() == Some(&v) {
            continue; // duplicate in `small`
        }
        pos = gallop_lower_bound(large, &v, pos);
        if pos == large.len() {
            break;
        }
        if large[pos] == v {
            out.push(v);
        }
    }
}

/// Intersect two sorted lists into a caller buffer (cleared first),
/// choosing the kernel by size ratio: galloping when the larger list is ≥
/// [`GALLOP_RATIO`]× the smaller, linear merge otherwise.
pub fn intersect_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        out.clear();
        return;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        intersect_gallop_into(small, large, out)
    } else {
        intersect_linear_into(small, large, out)
    }
}

/// Intersection by linear merge, allocating. Hot paths should use
/// [`intersect_linear_into`].
pub fn intersect_linear<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    intersect_linear_into(a, b, &mut out);
    out
}

/// Intersection by galloping, allocating. Hot paths should use
/// [`intersect_gallop_into`].
pub fn intersect_gallop<T: Ord + Copy>(small: &[T], large: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    intersect_gallop_into(small, large, &mut out);
    out
}

/// Intersect two sorted lists, choosing the kernel by size ratio. Hot
/// paths with a scratch buffer should use [`intersect_into`].
pub fn intersect<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    intersect_into(a, b, &mut out);
    out
}

/// Intersect any number of sorted lists, smallest first so the running
/// intersection shrinks as fast as possible. Empty input ⇒ empty output.
pub fn intersect_many<T: Ord + Copy>(lists: &[&[T]]) -> Vec<T> {
    if lists.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<&[T]> = lists.to_vec();
    order.sort_by_key(|l| l.len());
    let mut acc: Vec<T> = order[0].to_vec();
    acc.dedup();
    let mut scratch = Vec::new();
    for l in &order[1..] {
        if acc.is_empty() {
            break;
        }
        intersect_into(&acc, l, &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

/// Intersect two posting cursors (any layout mix) with mutual galloping
/// `seek`, appending equal postings to `out` with set semantics. Requires
/// the postings' `Ord` to agree with `key64` order (monotone), which every
/// `Ord` posting in the tree satisfies.
pub fn intersect_cursors<P: Posting + Ord>(
    a: &mut PostingCursor<'_, P>,
    b: &mut PostingCursor<'_, P>,
    out: &mut Vec<P>,
) {
    while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Equal => {
                if out.last() != Some(&x) {
                    out.push(x);
                }
                a.advance();
                b.advance();
            }
            std::cmp::Ordering::Less => {
                // jump a forward to y's key, then step over same-key
                // postings that still order below y
                a.seek(y.key64());
                while a.peek().is_some_and(|p| p < y) {
                    a.advance();
                }
            }
            std::cmp::Ordering::Greater => {
                b.seek(x.key64());
                while b.peek().is_some_and(|p| p < x) {
                    b.advance();
                }
            }
        }
    }
}

/// k-way sorted union over cursors (≤ 32 of them), driving a callback with
/// each distinct `key64` in ascending order plus the bitmask of cursors
/// holding that key. Cursors with several postings at the same key (e.g. a
/// tuple matching in two columns) are drained past the key, so every key is
/// visited exactly once. This is the kernel the relational tupleset build
/// rides on: no hashing, no post-sort.
pub fn for_each_union_key<P: Posting>(
    cursors: &mut [PostingCursor<'_, P>],
    mut visit: impl FnMut(u64, u32),
) {
    assert!(cursors.len() <= 32, "union bitmask is u32-wide");
    loop {
        let mut key = u64::MAX;
        let mut live = false;
        for c in cursors.iter() {
            if let Some(p) = c.peek() {
                key = key.min(p.key64());
                live = true;
            }
        }
        if !live {
            return;
        }
        let mut mask = 0u32;
        for (i, c) in cursors.iter_mut().enumerate() {
            let mut hit = false;
            while c.peek().is_some_and(|p| p.key64() == key) {
                hit = true;
                c.advance();
            }
            if hit {
                mask |= 1 << i;
            }
        }
        visit(key, mask);
    }
}

/// Counters reported by [`wand_intersect`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WandStats {
    /// Keys emitted (present in every cursor and not pruned).
    pub emitted: u64,
    /// Prune events: times the block-bound check skipped past a block
    /// frontier instead of scoring.
    pub pruned: u64,
    /// Blocks jumped over without decoding, summed across cursors
    /// (includes jumps from ordinary galloping alignment).
    pub blocks_skipped: u64,
}

/// Block-max (WAND-style) pruned AND-intersection over posting cursors.
///
/// Emits every key `< end_key` present in **all** cursors, in ascending
/// order, except keys provably useless for a top-k: when the score bound
/// computed by `block_bound` from the cursors' current per-block max
/// impacts falls strictly below `threshold()` (with a
/// [`WAND_BOUND_EPSILON`] safety margin), the kernel jumps every cursor
/// past the nearest block frontier instead of scoring. For each emitted
/// key, `emit` receives the per-cursor impact sums (a cursor holding
/// several postings at the key — multi-column matches — contributes their
/// impact total).
///
/// Soundness: `block_bound` must be an upper bound on the score of any key
/// inside the current blocks, and a rising `threshold` must only ever
/// reflect scores of already-emitted candidates (the `SharedTopK`
/// contract). Then every skipped key scores strictly below the final
/// threshold and cannot displace a top-k entry even under tie-aware
/// ordering. On plain-layout cursors `block_max()` is `u64::MAX`, making
/// the bound effectively infinite for any finite threshold — so the plain
/// path emits the full intersection and the two layouts return identical
/// top-k sets.
pub fn wand_intersect<P: Posting>(
    cursors: &mut [PostingCursor<'_, P>],
    end_key: u64,
    mut block_bound: impl FnMut(&[u64]) -> f64,
    mut threshold: impl FnMut() -> Option<f64>,
    mut emit: impl FnMut(u64, &[u64]),
) -> WandStats {
    let mut stats = WandStats::default();
    if cursors.is_empty() {
        return stats;
    }
    let skipped_before: u64 = cursors.iter().map(|c| c.blocks_skipped()).sum();
    let n = cursors.len();
    let mut maxes = vec![0u64; n];
    let mut impacts = vec![0u64; n];
    'outer: loop {
        // Pivot: the largest current key. AND semantics — every cursor
        // must reach it, so any exhausted cursor ends the scan.
        let mut pivot = 0u64;
        for c in cursors.iter() {
            match c.peek() {
                None => break 'outer,
                Some(p) => pivot = pivot.max(p.key64()),
            }
        }
        if pivot >= end_key {
            break;
        }
        // Align every cursor to the pivot.
        let mut aligned = true;
        for c in cursors.iter_mut() {
            match c.seek(pivot) {
                None => break 'outer,
                Some(p) => aligned &= p.key64() == pivot,
            }
        }
        if !aligned {
            continue; // some cursor overshot: new, larger pivot next round
        }
        // Candidate key in hand: block-max check before scoring.
        for (m, c) in maxes.iter_mut().zip(cursors.iter()) {
            *m = c.block_max();
        }
        if let Some(t) = threshold() {
            if block_bound(&maxes) * (1.0 + WAND_BOUND_EPSILON) < t {
                // Nothing in the intersection of the current blocks can
                // reach the threshold (the pivot itself included): jump
                // past the nearest block frontier.
                let frontier = cursors
                    .iter()
                    .filter_map(|c| c.block_last_key())
                    .min()
                    .unwrap_or(u64::MAX);
                let jump = frontier.saturating_add(1).max(pivot + 1);
                stats.pruned += 1;
                for c in cursors.iter_mut() {
                    if c.seek(jump).is_none() {
                        break 'outer;
                    }
                }
                continue;
            }
        }
        // Emit: drain each cursor's same-key run, summing impacts.
        for (acc, c) in impacts.iter_mut().zip(cursors.iter_mut()) {
            *acc = 0;
            while let Some(p) = c.peek() {
                if p.key64() != pivot {
                    break;
                }
                *acc += p.impact();
                c.advance();
            }
        }
        stats.emitted += 1;
        emit(pivot, &impacts);
    }
    stats.blocks_skipped = cursors.iter().map(|c| c.blocks_skipped()).sum::<u64>() - skipped_before;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::posting::{Layout, PostingStore};
    use crate::rng::Rng;
    use std::collections::BTreeSet;

    /// Reference intersection: sorted set semantics.
    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        sa.intersection(&sb).copied().collect()
    }

    /// Sorted random list; `universe` small ⇒ duplicate-heavy.
    fn random_list(rng: &mut Rng, len: usize, universe: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..len)
            .map(|_| rng.gen_range(0..universe.max(1)))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn probes_match_naive_scan() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..200 {
            let len = rng.gen_index(20);
            let list = random_list(&mut rng, len, 30);
            let v = rng.gen_range(0..35u32);
            let rm = list.iter().copied().find(|&x| x >= v);
            let lm = list.iter().copied().rev().find(|&x| x <= v);
            assert_eq!(right_match(&list, v), rm, "rm {list:?} {v}");
            assert_eq!(left_match(&list, v), lm, "lm {list:?} {v}");
            assert_eq!(contains(&list, &v), list.binary_search(&v).is_ok());
        }
    }

    #[test]
    fn gallop_lower_bound_matches_partition_point() {
        let mut rng = Rng::seed_from_u64(8);
        for _ in 0..200 {
            let len = rng.gen_index(50);
            let list = random_list(&mut rng, len, 40);
            let target = rng.gen_range(0..45u32);
            let from = rng.gen_index(list.len() + 1);
            let expect = from + list[from..].partition_point(|x| *x < target);
            assert_eq!(
                gallop_lower_bound(&list, &target, from),
                expect,
                "list {list:?} target {target} from {from}"
            );
        }
    }

    #[test]
    fn intersection_kernels_agree_with_naive_over_adversarial_ratios() {
        let mut rng = Rng::seed_from_u64(9);
        // adversarial size pairs: empty, singleton, tiny-vs-huge, balanced
        let sizes: [(usize, usize); 8] = [
            (0, 0),
            (0, 40),
            (1, 1),
            (1, 500),
            (3, 1000),
            (64, 64),
            (100, 101),
            (7, 7000),
        ];
        for &(la, lb) in &sizes {
            for universe in [5u32, 1000, 100_000] {
                for _ in 0..8 {
                    let a = random_list(&mut rng, la, universe);
                    let b = random_list(&mut rng, lb, universe);
                    let expect = naive(&a, &b);
                    assert_eq!(intersect(&a, &b), expect, "dispatch {la}x{lb} u{universe}");
                    assert_eq!(intersect_linear(&a, &b), expect, "linear");
                    let (s, l) = if a.len() <= b.len() {
                        (&a, &b)
                    } else {
                        (&b, &a)
                    };
                    assert_eq!(intersect_gallop(s, l), expect, "gallop");
                }
            }
        }
    }

    #[test]
    fn intersect_into_reuses_buffer_without_stale_entries() {
        let mut out = vec![99u32; 8]; // stale junk that must be cleared
        intersect_into(&[1u32, 3, 5], &[3u32, 4, 5], &mut out);
        assert_eq!(out, vec![3, 5]);
        intersect_into(&[7u32], &[8u32], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intersect_many_matches_iterated_naive() {
        let mut rng = Rng::seed_from_u64(10);
        for _ in 0..50 {
            let n_lists = 1 + rng.gen_index(4);
            let lists: Vec<Vec<u32>> = (0..n_lists)
                .map(|_| {
                    let len = rng.gen_index(200);
                    random_list(&mut rng, len, 60)
                })
                .collect();
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            let mut expect: Vec<u32> = {
                let s: BTreeSet<u32> = lists[0].iter().copied().collect();
                s.into_iter().collect()
            };
            for l in &lists[1..] {
                expect = naive(&expect, l);
            }
            assert_eq!(intersect_many(&refs), expect);
        }
        assert!(intersect_many::<u32>(&[]).is_empty());
    }

    #[test]
    fn duplicate_heavy_output_is_strictly_increasing() {
        let a = [1u32, 1, 1, 2, 2, 3, 9, 9];
        let b = [1u32, 2, 2, 9, 9, 9];
        for out in [
            intersect(&a, &b),
            intersect_linear(&a, &b),
            intersect_gallop(&a, &b),
        ] {
            assert_eq!(out, vec![1, 2, 9]);
            assert!(out.windows(2).all(|w| w[0] < w[1]));
        }
    }

    // ------- cursor kernels -------

    /// NodeId-like test posting.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct N(u32);
    impl Posting for N {
        type SortKey = u32;
        fn sort_key(&self) -> u32 {
            self.0
        }
        fn key64(&self) -> u64 {
            self.0 as u64
        }
        fn from_parts(key: u64, _extras: &[u64]) -> Self {
            N(key as u32)
        }
        fn coalesce(&mut self, other: &Self) -> bool {
            self == other
        }
        fn same_doc(&self, other: &Self) -> bool {
            self == other
        }
    }

    fn store_with(lists: &[&[u32]], layout: Layout) -> PostingStore<N> {
        let mut st = PostingStore::new();
        for (i, l) in lists.iter().enumerate() {
            let sym = st.intern(&format!("t{i}"));
            for &v in *l {
                st.add_sym(sym, N(v));
            }
        }
        st.finalize_layout(layout);
        st
    }

    #[test]
    fn cursor_intersection_matches_slice_kernels_across_layouts() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..40 {
            let la = rng.gen_index(800);
            let lb = rng.gen_index(800);
            let a = random_list(&mut rng, la, 500);
            let b = random_list(&mut rng, lb, 500);
            let expect: Vec<N> = naive(&a, &b).into_iter().map(N).collect();
            for la in [Layout::Plain, Layout::Blocks] {
                for lb in [Layout::Plain, Layout::Blocks] {
                    let sa = store_with(&[&a], la);
                    let sb = store_with(&[&b], lb);
                    let mut out = Vec::new();
                    let mut ca = sa.list(sa.sym("t0").unwrap()).cursor();
                    let mut cb = sb.list(sb.sym("t0").unwrap()).cursor();
                    intersect_cursors(&mut ca, &mut cb, &mut out);
                    assert_eq!(out, expect, "layouts {la:?}×{lb:?}");
                }
            }
        }
    }

    #[test]
    fn union_kernel_visits_every_key_with_correct_mask() {
        let mut rng = Rng::seed_from_u64(12);
        for layout in [Layout::Plain, Layout::Blocks] {
            for _ in 0..25 {
                let lists: Vec<Vec<u32>> = (0..1 + rng.gen_index(5))
                    .map(|_| {
                        let len = rng.gen_index(600);
                        random_list(&mut rng, len, 300)
                    })
                    .collect();
                let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
                let st = store_with(&refs, layout);
                let mut cursors: Vec<_> = (0..lists.len())
                    .map(|i| st.list(st.sym(&format!("t{i}")).unwrap()).cursor())
                    .collect();
                let mut got: Vec<(u64, u32)> = Vec::new();
                for_each_union_key(&mut cursors, |k, m| got.push((k, m)));

                let mut want: std::collections::BTreeMap<u64, u32> = Default::default();
                for (i, l) in lists.iter().enumerate() {
                    for &v in l {
                        *want.entry(v as u64).or_default() |= 1 << i;
                    }
                }
                let want: Vec<(u64, u32)> = want.into_iter().collect();
                assert_eq!(got, want, "{layout:?}");
            }
        }
    }

    #[test]
    fn wand_without_threshold_emits_full_intersection_on_both_layouts() {
        let mut rng = Rng::seed_from_u64(13);
        for layout in [Layout::Plain, Layout::Blocks] {
            for _ in 0..25 {
                let lists: Vec<Vec<u32>> = (0..2 + rng.gen_index(3))
                    .map(|_| {
                        let len = 200 + rng.gen_index(600);
                        random_list(&mut rng, len, 400)
                    })
                    .collect();
                let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
                let st = store_with(&refs, layout);
                let mut cursors: Vec<_> = (0..lists.len())
                    .map(|i| st.list(st.sym(&format!("t{i}")).unwrap()).cursor())
                    .collect();
                let mut got: Vec<u64> = Vec::new();
                let ws = wand_intersect(
                    &mut cursors,
                    u64::MAX,
                    |_| f64::INFINITY,
                    || None,
                    |k, impacts| {
                        assert!(impacts.iter().all(|&i| i >= 1));
                        got.push(k);
                    },
                );
                let mut want: Vec<u64> = lists[0]
                    .iter()
                    .filter(|v| lists[1..].iter().all(|l| l.binary_search(v).is_ok()))
                    .map(|&v| v as u64)
                    .collect();
                want.dedup();
                assert_eq!(got, want, "{layout:?}");
                assert_eq!(ws.emitted as usize, want.len());
                assert_eq!(ws.pruned, 0);
            }
        }
    }

    #[test]
    fn wand_respects_end_key_range() {
        let a: Vec<u32> = (0..1000).collect();
        let b: Vec<u32> = (0..1000).step_by(3).collect();
        let st = store_with(&[&a, &b], Layout::Blocks);
        let mut cursors: Vec<_> = (0..2)
            .map(|i| st.list(st.sym(&format!("t{i}")).unwrap()).cursor())
            .collect();
        cursors.iter_mut().for_each(|c| {
            c.seek(300);
        });
        let mut got = Vec::new();
        wand_intersect(
            &mut cursors,
            600,
            |_| f64::INFINITY,
            || None,
            |k, _| got.push(k),
        );
        let want: Vec<u64> = (300..600).filter(|k| k % 3 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn wand_pruning_skips_blocks_but_never_loses_a_topk_candidate() {
        // Impact-bearing posting so block maxima vary.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        struct D {
            id: u32,
            w: u32,
        }
        impl Posting for D {
            type SortKey = u32;
            const EXTRA_FIELDS: usize = 1;
            fn sort_key(&self) -> u32 {
                self.id
            }
            fn key64(&self) -> u64 {
                self.id as u64
            }
            fn extra(&self, _i: usize) -> u64 {
                self.w as u64
            }
            fn from_parts(key: u64, extras: &[u64]) -> Self {
                D {
                    id: key as u32,
                    w: extras[0] as u32,
                }
            }
            fn coalesce(&mut self, other: &Self) -> bool {
                if self.id == other.id {
                    self.w += other.w;
                    true
                } else {
                    false
                }
            }
            fn occurrences(&self) -> u64 {
                self.w as u64
            }
            fn same_doc(&self, other: &Self) -> bool {
                self.id == other.id
            }
        }

        let mut rng = Rng::seed_from_u64(14);
        for trial in 0..20 {
            // Two aligned lists over a shared id universe, spiky weights so
            // most blocks have low maxima and get skipped.
            let ids: Vec<u32> = {
                let mut v = random_list(&mut rng, 4000, 6000);
                v.dedup();
                v
            };
            let weight = |rng: &mut Rng| {
                if rng.gen_index(50) == 0 {
                    1000 + rng.gen_range(0..1000u32)
                } else {
                    1 + rng.gen_range(0..5u32)
                }
            };
            let mut st: PostingStore<D> = PostingStore::new();
            let s0 = st.intern("a");
            let s1 = st.intern("b");
            let mut score_of = std::collections::BTreeMap::new();
            for &id in &ids {
                let (w0, w1) = (weight(&mut rng), weight(&mut rng));
                st.add_sym(s0, D { id, w: w0 });
                st.add_sym(s1, D { id, w: w1 });
                score_of.insert(id as u64, (w0 + w1) as f64);
            }
            st.finalize_layout(Layout::Blocks);

            // Rising threshold fed by a running top-k of emitted scores —
            // the SharedTopK contract in miniature.
            let k = 10;
            let mut top: Vec<f64> = Vec::new();
            let threshold = std::cell::RefCell::new(None::<f64>);
            let mut cursors = vec![st.list(s0).cursor(), st.list(s1).cursor()];
            let mut emitted: Vec<u64> = Vec::new();
            let ws = wand_intersect(
                &mut cursors,
                u64::MAX,
                |maxes| maxes.iter().map(|&m| m as f64).sum(),
                || *threshold.borrow(),
                |key, impacts| {
                    let s: f64 = impacts.iter().map(|&i| i as f64).sum();
                    assert_eq!(s, score_of[&key], "emitted impact sums are exact");
                    emitted.push(key);
                    top.push(s);
                    top.sort_by(|a, b| b.partial_cmp(a).unwrap());
                    top.truncate(k);
                    if top.len() == k {
                        *threshold.borrow_mut() = Some(top[k - 1]);
                    }
                },
            );

            // Soundness: every true top-k score is among the emitted keys.
            let mut all: Vec<(f64, u64)> = score_of.iter().map(|(&id, &s)| (s, id)).collect();
            all.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let kth = all[k - 1].0;
            for &(s, id) in all.iter().take_while(|&&(s, _)| s >= kth) {
                assert!(
                    emitted.contains(&id),
                    "trial {trial}: dropped candidate id {id} score {s} (kth {kth})"
                );
            }
            if trial == 0 {
                assert!(ws.pruned > 0, "spiky weights should trigger pruning");
                assert!(
                    (ws.emitted as usize) < score_of.len(),
                    "pruning should spare the kernel from scoring every key"
                );
            }
        }
    }
}
