//! The shared term-dictionary + posting-list core every substrate index is
//! built on.
//!
//! The three data models (relational tuples, XML nodes, graph nodes) all
//! start a query the same way: look a normalized term up in a dictionary and
//! walk its sorted posting list. Before this module each substrate kept its
//! own `HashMap<String, Vec<…>>`, re-hashing raw strings on every probe and
//! cloning every term during build. The shared core instead:
//!
//! * interns each distinct term exactly once into a [`TermDict`]
//!   ([`Sym`]-keyed, built on [`crate::intern::Interner`]);
//! * stores postings in dense `Vec`-indexed-by-`Sym` [`PostingList`]s inside
//!   a [`PostingStore`], sorted by the posting's [`Posting::sort_key`];
//! * computes per-term statistics (document frequency, total term
//!   frequency) once at [`PostingStore::finalize`];
//! * provides the merge/intersection kernels ([`kernels`]) — linear merge
//!   and galloping (exponential-search) intersection chosen by list-size
//!   ratio — plus the `lm`/`rm` binary probes the SLCA family is built from.
//!
//! Query paths resolve each term to a [`Sym`] **once** up front
//! (one dictionary lookup per query term), then work purely on dense ids
//! and slices — no string hashing in any per-candidate loop.
//!
//! [`Sym`]: crate::intern::Sym

pub mod blocks;
pub mod dict;
pub mod kernels;
pub mod posting;
pub mod segment;

pub use blocks::{BlockList, BlockMeta, BLOCK_SPAN};
pub use dict::TermDict;
pub use posting::{
    IndexStats, Layout, Posting, PostingCursor, PostingIter, PostingList, PostingStore, Postings,
    TermStats,
};
pub use segment::{SegmentCounts, SegmentedIndex, TombstoneSet, MAX_SEGMENTS};
