//! Compressed block layout for posting lists: delta-encoded, bit-packed
//! keys plus per-block skip metadata (last key and a max-impact bound).
//!
//! A [`BlockList`] stores a sorted posting list as fixed-span blocks of
//! [`BLOCK_SPAN`] postings. Within a block, each posting's 64-bit sort key
//! ([`Posting::key64`]) is stored as a non-negative delta from its
//! predecessor (the first delta is taken against the previous block's last
//! key), bit-packed at the block's maximum delta width; the posting's extra
//! fields ([`Posting::extra`]) are packed alongside at their own per-block
//! widths. Every block starts word-aligned so a cursor can jump straight to
//! it from the [`BlockMeta`] directory.
//!
//! The per-block metadata is what makes skipping possible:
//!
//! * `last_key` — the largest key in the block. A `seek(k)` gallops over the
//!   directory and only decodes the one block that can contain `k`; every
//!   block jumped over is never touched (counted as *skipped*).
//! * `max_impact` — an upper bound on [`Posting::impact`] over the block.
//!   Block-max (WAND-style) pruning compares a score bound derived from the
//!   current blocks' `max_impact` values against a top-k threshold and, when
//!   the bound cannot beat it, jumps past whole blocks without decoding.
//!
//! **Invariants** (checked in debug builds, relied on by the kernels):
//!
//! 1. Keys are non-decreasing in list order (`key64` is a monotone image of
//!    [`Posting::sort_key`] order).
//! 2. `meta[b].last_key` equals the key of the last posting of block `b`,
//!    and is non-decreasing across blocks.
//! 3. `meta[b].max_impact ≥ Σ impact` over the postings of any key present
//!    in block `b` (a key's same-key *group* — e.g. one tuple matching in
//!    several columns — is attributed to every block it touches), so no
//!    skipped block can contain a key whose accumulated impact beats a
//!    bound computed from the surviving blocks' maxima.

use super::posting::Posting;
use std::marker::PhantomData;

/// Postings per block. 128 keeps per-block metadata overhead near 0.25
/// bytes/posting while leaving in-block linear decode short enough that a
/// `seek` never scans more than one block span.
pub const BLOCK_SPAN: usize = 128;

/// Upper bound on [`Posting::EXTRA_FIELDS`] the block codec supports.
pub const MAX_EXTRA_FIELDS: usize = 4;

/// Bits needed to store `v` (0 for `v == 0`; width-0 fields occupy no bits).
#[inline]
fn bits_needed(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Skip-directory entry for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Largest `key64` in the block (= key of its last posting).
    pub last_key: u64,
    /// Upper bound on the per-key summed [`Posting::impact`] over the
    /// block (same-key groups straddling a boundary count in both blocks).
    pub max_impact: u64,
    /// Word index where the block's bit stream begins (blocks are
    /// word-aligned).
    pub word_offset: u32,
    /// Postings in this block (≤ [`BLOCK_SPAN`]; only the final block may
    /// be short).
    pub count: u16,
    /// Bit width of the packed key deltas.
    pub key_bits: u8,
    /// Bit width of each packed extra field.
    pub extra_bits: [u8; MAX_EXTRA_FIELDS],
}

/// Append-only bit stream packed LSB-first into `u64` words.
#[derive(Debug, Default)]
struct BitWriter {
    words: Vec<u64>,
    bit: usize,
}

impl BitWriter {
    /// Append the low `bits` bits of `v`.
    fn put(&mut self, v: u64, bits: u8) {
        debug_assert!(bits <= 64);
        debug_assert!(bits == 64 || v >> bits == 0, "value wider than field");
        if bits == 0 {
            return;
        }
        let word = self.bit / 64;
        let off = self.bit % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= v << off;
        if off + bits as usize > 64 {
            self.words.push(v >> (64 - off));
        }
        self.bit += bits as usize;
    }

    /// Round the write position up to the next word boundary.
    fn align_word(&mut self) {
        self.bit = self.bit.div_ceil(64) * 64;
    }
}

/// Read position into a [`BlockList`]'s word stream.
#[derive(Debug, Clone, Copy)]
struct BitReader<'a> {
    words: &'a [u64],
    bit: usize,
}

impl<'a> BitReader<'a> {
    #[inline]
    fn get(&mut self, bits: u8) -> u64 {
        if bits == 0 {
            return 0;
        }
        let word = self.bit / 64;
        let off = self.bit % 64;
        let mut v = self.words[word] >> off;
        let have = 64 - off;
        if bits as usize > have {
            v |= self.words[word + 1] << have;
        }
        self.bit += bits as usize;
        if bits == 64 {
            v
        } else {
            v & ((1u64 << bits) - 1)
        }
    }
}

/// A sorted posting list in compressed block form. Immutable once encoded;
/// mutation paths decode back to a plain `Vec` first.
#[derive(Debug, Clone)]
pub struct BlockList<P> {
    metas: Vec<BlockMeta>,
    words: Vec<u64>,
    len: usize,
    _marker: PhantomData<P>,
}

impl<P: Posting> BlockList<P> {
    /// Encode a sorted, coalesced slice. Keys (`key64`) must be
    /// non-decreasing — guaranteed after `PostingList::finalize` because
    /// `key64` is a monotone image of the sort key.
    pub fn encode(entries: &[P]) -> Self {
        assert!(
            P::EXTRA_FIELDS <= MAX_EXTRA_FIELDS,
            "posting has more extra fields than the block codec supports"
        );
        let mut w = BitWriter::default();
        let mut metas = Vec::with_capacity(entries.len().div_ceil(BLOCK_SPAN));
        // Per-posting *group* impact: the summed impact of all postings
        // sharing a key64 (e.g. one tuple matching in several columns).
        // `max_impact` bounds group totals — not lone postings — so a
        // block-max score bound stays sound when a caller accumulates a
        // key's impacts across a same-key run, even one straddling a block
        // boundary (the group's total is attributed to every block it
        // touches).
        let mut group_total = vec![0u64; entries.len()];
        let mut i = 0;
        while i < entries.len() {
            let key = entries[i].key64();
            let mut j = i;
            let mut total = 0u64;
            while j < entries.len() && entries[j].key64() == key {
                total = total.saturating_add(entries[j].impact());
                j += 1;
            }
            group_total[i..j].fill(total);
            i = j;
        }
        let mut base = 0u64; // previous block's last key
        for (ci, chunk) in entries.chunks(BLOCK_SPAN).enumerate() {
            let mut max_delta = 0u64;
            let mut max_impact = 0u64;
            let mut extra_max = [0u64; MAX_EXTRA_FIELDS];
            let mut prev = base;
            for (pi, p) in chunk.iter().enumerate() {
                let key = p.key64();
                debug_assert!(key >= prev, "key64 must be non-decreasing");
                max_delta = max_delta.max(key - prev);
                max_impact = max_impact.max(group_total[ci * BLOCK_SPAN + pi]);
                for (f, m) in extra_max.iter_mut().enumerate().take(P::EXTRA_FIELDS) {
                    *m = (*m).max(p.extra(f));
                }
                prev = key;
            }
            let key_bits = bits_needed(max_delta);
            let mut extra_bits = [0u8; MAX_EXTRA_FIELDS];
            for (eb, &max) in extra_bits.iter_mut().zip(&extra_max[..P::EXTRA_FIELDS]) {
                *eb = bits_needed(max);
            }
            w.align_word();
            let word_offset = (w.bit / 64) as u32;
            let mut prev = base;
            for p in chunk {
                let key = p.key64();
                w.put(key - prev, key_bits);
                for (f, &bits) in extra_bits.iter().enumerate().take(P::EXTRA_FIELDS) {
                    w.put(p.extra(f), bits);
                }
                prev = key;
            }
            base = prev;
            metas.push(BlockMeta {
                last_key: base,
                max_impact,
                word_offset,
                count: chunk.len() as u16,
                key_bits,
                extra_bits,
            });
        }
        metas.shrink_to_fit();
        w.words.shrink_to_fit();
        BlockList {
            metas,
            words: w.words,
            len: entries.len(),
            _marker: PhantomData,
        }
    }

    /// Stored postings.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of encoded blocks.
    pub fn num_blocks(&self) -> usize {
        self.metas.len()
    }

    /// Skip-directory entry of block `b`.
    pub fn meta(&self, b: usize) -> &BlockMeta {
        &self.metas[b]
    }

    /// Heap bytes held by the encoded form (words + skip directory).
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8 + self.metas.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Delta base of block `b`: the previous block's last key (0 for the
    /// first block).
    #[inline]
    fn block_base(&self, b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            self.metas[b - 1].last_key
        }
    }

    /// Decode block `b`, appending its postings to `out`.
    pub fn decode_block_into(&self, b: usize, out: &mut Vec<P>) {
        let meta = &self.metas[b];
        let mut r = BitReader {
            words: &self.words,
            bit: meta.word_offset as usize * 64,
        };
        let mut prev = self.block_base(b);
        for _ in 0..meta.count {
            out.push(decode_one(&mut r, meta, &mut prev));
        }
    }

    /// Decode the whole list, appending to `out`.
    pub fn decode_into(&self, out: &mut Vec<P>) {
        out.reserve(self.len);
        for b in 0..self.metas.len() {
            self.decode_block_into(b, out);
        }
    }

    pub fn to_vec(&self) -> Vec<P> {
        let mut v = Vec::with_capacity(self.len);
        self.decode_into(&mut v);
        v
    }

    /// A cursor positioned at the first posting.
    pub fn cursor(&self) -> BlockCursor<'_, P> {
        let mut c = BlockCursor {
            list: self,
            block: 0,
            idx: 0,
            reader: BitReader {
                words: &self.words,
                bit: 0,
            },
            cur: None,
            skipped: 0,
        };
        if !self.metas.is_empty() {
            c.enter_block(0);
        }
        c
    }

    /// Last posting of block `b` (decodes the block).
    fn block_last(&self, b: usize) -> P {
        let meta = &self.metas[b];
        let mut r = BitReader {
            words: &self.words,
            bit: meta.word_offset as usize * 64,
        };
        let mut prev = self.block_base(b);
        let mut last = decode_one(&mut r, meta, &mut prev);
        for _ in 1..meta.count {
            last = decode_one(&mut r, meta, &mut prev);
        }
        last
    }
}

/// Decode one posting at the reader position; `prev` carries the delta
/// chain and is updated to the decoded key.
#[inline]
fn decode_one<P: Posting>(r: &mut BitReader<'_>, meta: &BlockMeta, prev: &mut u64) -> P {
    let key = *prev + r.get(meta.key_bits);
    *prev = key;
    let mut extras = [0u64; MAX_EXTRA_FIELDS];
    for (f, e) in extras.iter_mut().enumerate().take(P::EXTRA_FIELDS) {
        *e = r.get(meta.extra_bits[f]);
    }
    P::from_parts(key, &extras[..P::EXTRA_FIELDS])
}

impl<P: Posting + Ord> BlockList<P> {
    /// First block that can contain an element `≥` a posting with key
    /// `key`: the first block whose `last_key ≥ key`.
    fn block_for(&self, key: u64) -> usize {
        self.metas.partition_point(|m| m.last_key < key)
    }

    /// Smallest posting `≥ v` — the *rm* probe on the compressed form.
    /// Probes require `key64` to respect the `Ord` order (monotone:
    /// `a ≤ b ⟹ a.key64() ≤ b.key64()`), which every `Ord` posting in the
    /// tree satisfies.
    pub fn right_match(&self, v: P) -> Option<P> {
        let vk = v.key64();
        let mut buf = Vec::with_capacity(BLOCK_SPAN);
        for b in self.block_for(vk)..self.metas.len() {
            buf.clear();
            self.decode_block_into(b, &mut buf);
            if let Some(p) = buf.iter().find(|&&p| p >= v) {
                return Some(*p);
            }
        }
        None
    }

    /// Largest posting `≤ v` — the *lm* probe on the compressed form.
    pub fn left_match(&self, v: P) -> Option<P> {
        let vk = v.key64();
        let start = self.block_for(vk);
        if start == self.metas.len() {
            // every block ends below v's key ⇒ the global last posting is ≤ v
            return (!self.metas.is_empty()).then(|| self.block_last(self.metas.len() - 1));
        }
        let mut buf = Vec::with_capacity(BLOCK_SPAN);
        for b in start..self.metas.len() {
            buf.clear();
            self.decode_block_into(b, &mut buf);
            if let Some(p) = buf.iter().rev().find(|&&p| p <= v) {
                return Some(*p);
            }
            if buf.first().is_some_and(|&p| p > v) {
                break; // everything from here on is > v
            }
        }
        // all candidates precede block `start`
        (start > 0).then(|| self.block_last(start - 1))
    }

    /// Binary membership probe on the compressed form.
    pub fn contains(&self, v: &P) -> bool {
        self.right_match(*v) == Some(*v)
    }
}

/// Decode-on-the-fly cursor over a [`BlockList`]: holds a bit-reader into
/// the current block and never allocates. `seek` gallops over the skip
/// directory, decoding only the destination block; jumped-over blocks are
/// counted in [`blocks_skipped`](Self::blocks_skipped).
#[derive(Debug, Clone)]
pub struct BlockCursor<'a, P: Posting> {
    list: &'a BlockList<P>,
    block: usize,
    idx: usize,
    reader: BitReader<'a>,
    cur: Option<P>,
    skipped: u64,
}

impl<'a, P: Posting> BlockCursor<'a, P> {
    fn enter_block(&mut self, b: usize) {
        let meta = &self.list.metas[b];
        self.block = b;
        self.idx = 0;
        self.reader = BitReader {
            words: &self.list.words,
            bit: meta.word_offset as usize * 64,
        };
        let mut prev = self.list.block_base(b);
        self.cur = Some(decode_one(&mut self.reader, meta, &mut prev));
    }

    /// The posting under the cursor (`None` once exhausted).
    #[inline]
    pub fn peek(&self) -> Option<P> {
        self.cur
    }

    /// Step to the next posting.
    pub fn advance(&mut self) {
        let Some(cur) = self.cur else { return };
        let meta = &self.list.metas[self.block];
        if self.idx + 1 < meta.count as usize {
            self.idx += 1;
            let mut prev = cur.key64();
            self.cur = Some(decode_one(&mut self.reader, meta, &mut prev));
        } else if self.block + 1 < self.list.metas.len() {
            self.enter_block(self.block + 1);
        } else {
            self.cur = None;
        }
    }

    /// First posting with `key64 ≥ key`, galloping over the skip directory.
    pub fn seek(&mut self, key: u64) -> Option<P> {
        let cur = self.cur?;
        if cur.key64() >= key {
            return self.cur;
        }
        if self.list.metas[self.block].last_key < key {
            // Destination block: first one whose last_key reaches `key`.
            let rel = self.list.metas[self.block + 1..].partition_point(|m| m.last_key < key);
            let target = self.block + 1 + rel;
            self.skipped += rel as u64;
            if target == self.list.metas.len() {
                self.cur = None;
                return None;
            }
            self.enter_block(target);
        }
        // Within this block (its last_key ≥ key) linear-decode forward.
        while self.cur.is_some_and(|p| p.key64() < key) {
            self.advance();
        }
        self.cur
    }

    /// Max-impact bound of the current block.
    #[inline]
    pub fn block_max(&self) -> u64 {
        self.list.metas[self.block].max_impact
    }

    /// Last key of the current block — the exclusive skip frontier for
    /// block-max pruning is `block_last_key() + 1`.
    #[inline]
    pub fn block_last_key(&self) -> u64 {
        self.list.metas[self.block].last_key
    }

    /// Blocks jumped over without decoding since the cursor was created.
    #[inline]
    pub fn blocks_skipped(&self) -> u64 {
        self.skipped
    }
}

/// Iterator decoding a [`BlockList`] front to back.
#[derive(Debug, Clone)]
pub struct BlockIter<'a, P: Posting> {
    cursor: BlockCursor<'a, P>,
}

impl<'a, P: Posting> BlockIter<'a, P> {
    pub(crate) fn new(list: &'a BlockList<P>) -> Self {
        BlockIter {
            cursor: list.cursor(),
        }
    }
}

impl<P: Posting> Iterator for BlockIter<'_, P> {
    type Item = P;

    fn next(&mut self) -> Option<P> {
        let p = self.cursor.peek();
        self.cursor.advance();
        p
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Exact remaining count: full blocks after this one plus the rest
        // of the current block.
        let c = &self.cursor;
        if c.cur.is_none() {
            return (0, Some(0));
        }
        let in_block = c.list.metas[c.block].count as usize - c.idx;
        let after: usize = c.list.metas[c.block + 1..]
            .iter()
            .map(|m| m.count as usize)
            .sum();
        let n = in_block + after;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Doc-id-style posting with an impact payload and one extra field.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Doc {
        id: u64,
        tf: u32,
    }

    impl Posting for Doc {
        type SortKey = u64;
        const EXTRA_FIELDS: usize = 1;
        fn sort_key(&self) -> u64 {
            self.id
        }
        fn key64(&self) -> u64 {
            self.id
        }
        fn extra(&self, _i: usize) -> u64 {
            self.tf as u64
        }
        fn from_parts(key: u64, extras: &[u64]) -> Self {
            Doc {
                id: key,
                tf: extras[0] as u32,
            }
        }
        fn coalesce(&mut self, other: &Self) -> bool {
            if self.id == other.id {
                self.tf += other.tf;
                true
            } else {
                false
            }
        }
        fn occurrences(&self) -> u64 {
            self.tf as u64
        }
        fn same_doc(&self, other: &Self) -> bool {
            self.id == other.id
        }
    }

    fn random_docs(rng: &mut Rng, len: usize, gap: u64) -> Vec<Doc> {
        let mut id = 0u64;
        (0..len)
            .map(|_| {
                id += rng.gen_range(0..gap.max(1) as u32) as u64;
                let d = Doc {
                    id,
                    tf: 1 + rng.gen_range(0..1000u32),
                };
                id += 1;
                d
            })
            .collect()
    }

    #[test]
    fn bit_writer_reader_round_trip_all_widths() {
        let mut rng = Rng::seed_from_u64(41);
        let mut vals: Vec<(u64, u8)> = Vec::new();
        let mut w = BitWriter::default();
        for _ in 0..2000 {
            let bits = rng.gen_index(65) as u8;
            let v = if bits == 0 {
                0
            } else if bits == 64 {
                ((rng.gen_range(0..u32::MAX) as u64) << 32) | rng.gen_range(0..u32::MAX) as u64
            } else {
                (((rng.gen_range(0..u32::MAX) as u64) << 32) | rng.gen_range(0..u32::MAX) as u64)
                    & ((1u64 << bits) - 1)
            };
            w.put(v, bits);
            vals.push((v, bits));
            if rng.gen_index(10) == 0 {
                w.align_word();
                vals.push((u64::MAX, 255)); // sentinel: align marker
            }
        }
        let mut r = BitReader {
            words: &w.words,
            bit: 0,
        };
        for (v, bits) in vals {
            if bits == 255 {
                r.bit = r.bit.div_ceil(64) * 64;
            } else {
                assert_eq!(r.get(bits), v, "width {bits}");
            }
        }
    }

    #[test]
    fn encode_decode_identity_over_random_lists() {
        let mut rng = Rng::seed_from_u64(42);
        for len in [0usize, 1, 2, 127, 128, 129, 1000, 5000] {
            for gap in [1u64, 2, 1000, 1 << 20] {
                let docs = random_docs(&mut rng, len, gap);
                let bl = BlockList::encode(&docs);
                assert_eq!(bl.len(), docs.len());
                assert_eq!(bl.to_vec(), docs, "len {len} gap {gap}");
                assert_eq!(
                    BlockIter::new(&bl).collect::<Vec<_>>(),
                    docs,
                    "iterator parity"
                );
            }
        }
    }

    #[test]
    fn meta_invariants_hold() {
        let mut rng = Rng::seed_from_u64(43);
        let docs = random_docs(&mut rng, 3000, 50);
        let bl = BlockList::encode(&docs);
        let mut decoded = Vec::new();
        for b in 0..bl.num_blocks() {
            let start = decoded.len();
            bl.decode_block_into(b, &mut decoded);
            let block = &decoded[start..];
            let meta = bl.meta(b);
            assert_eq!(meta.count as usize, block.len());
            assert_eq!(meta.last_key, block.last().unwrap().id);
            let max_tf = block.iter().map(|d| d.tf as u64).max().unwrap();
            assert_eq!(meta.max_impact, max_tf, "block {b} max impact exact");
        }
        assert_eq!(decoded, docs);
        assert!(bl.metas.windows(2).all(|w| w[0].last_key <= w[1].last_key));
    }

    #[test]
    fn max_impact_bounds_same_key_group_totals() {
        // Three postings per key (ids repeat), far more than one block's
        // worth: every block's max_impact must cover whole group sums, and
        // a group straddling a block boundary must count in both blocks.
        let docs: Vec<Doc> = (0..500u64)
            .flat_map(|k| (0..3u32).map(move |c| Doc { id: k, tf: c + 1 }))
            .collect();
        let bl = BlockList::encode(&docs);
        let mut decoded = Vec::new();
        for b in 0..bl.num_blocks() {
            let start = decoded.len();
            bl.decode_block_into(b, &mut decoded);
            let block = &decoded[start..];
            let meta = bl.meta(b);
            for d in block {
                let group: u64 = docs
                    .iter()
                    .filter(|x| x.id == d.id)
                    .map(|x| x.tf as u64)
                    .sum();
                assert!(
                    meta.max_impact >= group,
                    "block {b} max {} < group total {group} for key {}",
                    meta.max_impact,
                    d.id
                );
            }
        }
        assert_eq!(decoded, docs);
    }

    #[test]
    fn cursor_seek_matches_linear_scan() {
        let mut rng = Rng::seed_from_u64(44);
        let docs = random_docs(&mut rng, 2000, 37);
        let bl = BlockList::encode(&docs);
        let max_key = docs.last().unwrap().id + 10;
        // Monotone random probe sequence on one cursor.
        let mut probes: Vec<u64> = (0..300)
            .map(|_| rng.gen_range(0..max_key as u32) as u64)
            .collect();
        probes.sort_unstable();
        let mut c = bl.cursor();
        for &k in &probes {
            let want = docs.iter().find(|d| d.id >= k).copied();
            assert_eq!(c.seek(k), want, "seek {k}");
        }
        // A fresh cursor per probe for non-monotone coverage.
        for _ in 0..100 {
            let k = rng.gen_range(0..max_key as u32) as u64;
            let want = docs.iter().find(|d| d.id >= k).copied();
            assert_eq!(bl.cursor().seek(k), want, "fresh seek {k}");
        }
    }

    #[test]
    fn seek_counts_skipped_blocks() {
        let docs: Vec<Doc> = (0..BLOCK_SPAN as u64 * 10)
            .map(|i| Doc { id: i, tf: 1 })
            .collect();
        let bl = BlockList::encode(&docs);
        let mut c = bl.cursor();
        // Jump from block 0 straight into block 5: blocks 1..5 are skipped.
        c.seek(BLOCK_SPAN as u64 * 5 + 3);
        assert_eq!(c.blocks_skipped(), 4);
        // Advancing sequentially decodes every block: no further skips.
        while c.peek().is_some() {
            c.advance();
        }
        assert_eq!(c.blocks_skipped(), 4);
    }

    #[test]
    fn probes_match_plain_kernels() {
        let mut rng = Rng::seed_from_u64(45);
        let docs = random_docs(&mut rng, 700, 11);
        let bl = BlockList::encode(&docs);
        let max = docs.last().unwrap().id + 5;
        for _ in 0..400 {
            let v = Doc {
                id: rng.gen_range(0..max as u32) as u64,
                tf: 1,
            };
            assert_eq!(
                bl.right_match(v),
                crate::index::kernels::right_match(&docs, v)
            );
            assert_eq!(
                bl.left_match(v),
                crate::index::kernels::left_match(&docs, v)
            );
            assert_eq!(bl.contains(&v), docs.binary_search(&v).is_ok());
        }
    }

    #[test]
    fn compresses_dense_keys_well() {
        // Dense u64 keys with small tf: plain = 16 B/posting, blocks ≈
        // (few delta bits + ~10 tf bits)/posting + 32 B/block metadata.
        let docs: Vec<Doc> = (0..100_000u64)
            .map(|i| Doc {
                id: i * 3,
                tf: 1 + (i % 700) as u32,
            })
            .collect();
        let bl = BlockList::encode(&docs);
        let plain = docs.len() * std::mem::size_of::<Doc>();
        assert!(
            bl.heap_bytes() * 2 < plain,
            "blocks {} vs plain {plain}",
            bl.heap_bytes()
        );
    }
}
