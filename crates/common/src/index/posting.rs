//! Generic sorted posting storage with dense `Vec`-indexed-by-`Sym` lookup.

use super::dict::TermDict;
use super::kernels;
use crate::intern::Sym;
use std::time::Duration;

/// One entry of a posting list. Implemented by each substrate's posting
/// type (relational tuple occurrence, XML node, graph node).
pub trait Posting: Copy {
    /// Total order of the list: document order, `(table, row, column)`
    /// order, node-id order, …
    type SortKey: Ord;

    fn sort_key(&self) -> Self::SortKey;

    /// Fold `other` — an occurrence at the *same* logical position — into
    /// `self` (e.g. accumulate term frequency). Must return `false` without
    /// mutating `self` when `other` is a distinct posting.
    fn coalesce(&mut self, other: &Self) -> bool;

    /// Term-occurrence count carried by this posting (its tf contribution).
    fn occurrences(&self) -> u64 {
        1
    }

    /// Whether two sort-adjacent postings belong to the same document, for
    /// document-frequency counting.
    fn same_doc(&self, other: &Self) -> bool;
}

/// Per-term statistics, computed once at [`PostingStore::finalize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TermStats {
    /// Documents containing the term.
    pub df: u64,
    /// Total occurrences of the term across all documents.
    pub total_tf: u64,
}

/// Whole-index size figures, for observability gauges and bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Distinct terms in the dictionary.
    pub terms: usize,
    /// Stored postings across all lists.
    pub postings: usize,
    /// Bytes of posting payload (`postings × size_of::<P>()`).
    pub posting_bytes: usize,
    /// Build wall-clock, when the owner measured one (batch builds do;
    /// incrementally grown indexes don't).
    pub build: Option<Duration>,
}

/// One term's sorted posting list.
///
/// The `lm`/`rm` binary probes and intersections the search algorithms need
/// are methods here, delegating to the shared [`kernels`] so every substrate
/// probes lists the same way.
#[derive(Debug, Clone)]
pub struct PostingList<P> {
    entries: Vec<P>,
}

impl<P> Default for PostingList<P> {
    fn default() -> Self {
        PostingList {
            entries: Vec::new(),
        }
    }
}

impl<P: Posting> PostingList<P> {
    /// Append `p`, folding it into the last entry when it is a duplicate
    /// occurrence at the same position. Build paths that emit postings in
    /// sort order (pre-order XML traversal, ascending graph node ids,
    /// table/row/column scans) therefore keep the list sorted and mostly
    /// coalesced as they go.
    fn push_coalesce(&mut self, p: P) {
        if let Some(last) = self.entries.last_mut() {
            if last.coalesce(&p) {
                return;
            }
        }
        self.entries.push(p);
    }

    /// Sort by [`Posting::sort_key`], coalesce duplicates, and compute the
    /// term's stats. Skips the sort when the list is already ordered (the
    /// common case for in-order builds).
    fn finalize(&mut self) -> TermStats {
        let sorted = self
            .entries
            .windows(2)
            .all(|w| w[0].sort_key() <= w[1].sort_key());
        if !sorted {
            self.entries.sort_by_key(|p| p.sort_key());
        }
        let mut merged: Vec<P> = Vec::with_capacity(self.entries.len());
        for p in self.entries.drain(..) {
            if let Some(last) = merged.last_mut() {
                if last.coalesce(&p) {
                    continue;
                }
            }
            merged.push(p);
        }
        merged.shrink_to_fit();
        self.entries = merged;
        self.stats()
    }

    /// Compute stats by scanning the (sorted) list.
    fn stats(&self) -> TermStats {
        let mut stats = TermStats::default();
        let mut prev: Option<&P> = None;
        for p in &self.entries {
            stats.total_tf += p.occurrences();
            if !prev.is_some_and(|q| q.same_doc(p)) {
                stats.df += 1;
            }
            prev = Some(p);
        }
        stats
    }

    pub fn as_slice(&self) -> &[P] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<P: Posting + Ord> PostingList<P> {
    /// Smallest posting `≥ v` — the *rm* probe.
    pub fn right_match(&self, v: P) -> Option<P> {
        kernels::right_match(&self.entries, v)
    }

    /// Largest posting `≤ v` — the *lm* probe.
    pub fn left_match(&self, v: P) -> Option<P> {
        kernels::left_match(&self.entries, v)
    }

    /// Binary-search membership probe.
    pub fn contains(&self, v: &P) -> bool {
        kernels::contains(&self.entries, v)
    }

    /// Intersect with another sorted list (kernel chosen by size ratio).
    pub fn intersect(&self, other: &Self) -> Vec<P> {
        kernels::intersect(&self.entries, &other.entries)
    }
}

/// Term dictionary + dense posting lists: the index core all three
/// substrates store postings in.
///
/// Build: [`add`](Self::add) postings (terms are interned, each distinct
/// term allocated exactly once), then [`finalize`](Self::finalize) to sort,
/// coalesce, and compute per-term [`TermStats`]. Indexes grown
/// incrementally *in sort order* (e.g. a graph appending ascending node
/// ids) remain queryable without finalizing; their stats are computed on
/// demand.
///
/// Query: [`sym`](Self::sym) once per query term, then
/// [`postings`](Self::postings) / [`list`](Self::list) on the dense id.
#[derive(Debug, Clone)]
pub struct PostingStore<P> {
    dict: TermDict,
    lists: Vec<PostingList<P>>,
    stats: Vec<TermStats>,
    finalized: bool,
}

impl<P> Default for PostingStore<P> {
    fn default() -> Self {
        PostingStore {
            dict: TermDict::new(),
            lists: Vec::new(),
            stats: Vec::new(),
            finalized: false,
        }
    }
}

impl<P: Posting> PostingStore<P> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term` without adding a posting.
    pub fn intern(&mut self, term: &str) -> Sym {
        let sym = self.dict.intern(term);
        if sym.0 as usize >= self.lists.len() {
            self.lists.push(PostingList::default());
        }
        sym
    }

    /// Add one posting occurrence for `term`.
    pub fn add(&mut self, term: &str, posting: P) -> Sym {
        let sym = self.intern(term);
        self.add_sym(sym, posting);
        sym
    }

    /// Add one posting occurrence for an already-interned term.
    pub fn add_sym(&mut self, sym: Sym, posting: P) {
        self.finalized = false;
        self.lists[sym.0 as usize].push_coalesce(posting);
    }

    /// Sort every list, coalesce duplicate occurrences, and compute
    /// per-term stats. Idempotent.
    pub fn finalize(&mut self) {
        self.stats = self.lists.iter_mut().map(|l| l.finalize()).collect();
        self.finalized = true;
    }

    /// Resolve a query term to its dense id — one dictionary lookup; do it
    /// once per query term.
    pub fn sym(&self, term: &str) -> Option<Sym> {
        self.dict.lookup(term)
    }

    /// The postings of an interned term.
    pub fn postings(&self, sym: Sym) -> &[P] {
        self.lists[sym.0 as usize].as_slice()
    }

    /// The postings of a term by string (lookup + fetch); empty if absent.
    pub fn postings_str(&self, term: &str) -> &[P] {
        self.sym(term).map(|s| self.postings(s)).unwrap_or(&[])
    }

    /// A term's posting list with its probe methods.
    pub fn list(&self, sym: Sym) -> &PostingList<P> {
        &self.lists[sym.0 as usize]
    }

    /// Per-term stats: cached when finalized, computed by scanning
    /// otherwise (valid only if the list was built in sort order).
    pub fn term_stats(&self, sym: Sym) -> TermStats {
        if self.finalized {
            self.stats[sym.0 as usize]
        } else {
            self.lists[sym.0 as usize].stats()
        }
    }

    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Distinct terms indexed.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Total stored postings.
    pub fn posting_count(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }

    /// All indexed terms, in id order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.dict.terms()
    }

    /// Whole-index size figures (build time unset; owners that measured
    /// the build fill it in).
    pub fn index_stats(&self) -> IndexStats {
        let postings = self.posting_count();
        IndexStats {
            terms: self.term_count(),
            postings,
            posting_bytes: postings * std::mem::size_of::<P>(),
            build: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test posting: (doc, slot, tf) — coalesces on equal (doc, slot).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Occ {
        doc: u32,
        slot: u32,
        tf: u32,
    }

    impl Posting for Occ {
        type SortKey = (u32, u32);
        fn sort_key(&self) -> (u32, u32) {
            (self.doc, self.slot)
        }
        fn coalesce(&mut self, other: &Self) -> bool {
            if self.doc == other.doc && self.slot == other.slot {
                self.tf += other.tf;
                true
            } else {
                false
            }
        }
        fn occurrences(&self) -> u64 {
            self.tf as u64
        }
        fn same_doc(&self, other: &Self) -> bool {
            self.doc == other.doc
        }
    }

    fn occ(doc: u32, slot: u32) -> Occ {
        Occ { doc, slot, tf: 1 }
    }

    #[test]
    fn build_finalize_query() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        st.add("xml", occ(2, 0));
        st.add("xml", occ(2, 0)); // duplicate → coalesced, tf 2
        st.add("xml", occ(0, 1)); // out of order → fixed by finalize
        st.add("db", occ(1, 0));
        st.finalize();
        let x = st.sym("xml").unwrap();
        assert_eq!(
            st.postings(x),
            &[
                occ(0, 1),
                Occ {
                    doc: 2,
                    slot: 0,
                    tf: 2
                }
            ]
        );
        assert_eq!(st.term_stats(x), TermStats { df: 2, total_tf: 3 });
        assert_eq!(st.term_count(), 2);
        assert_eq!(st.posting_count(), 3);
        assert!(st.sym("nope").is_none());
        assert!(st.postings_str("nope").is_empty());
    }

    #[test]
    fn unfinalized_in_order_store_is_queryable() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        st.add("a", occ(0, 0));
        st.add("a", occ(1, 0));
        st.add("a", occ(1, 0));
        let a = st.sym("a").unwrap();
        assert_eq!(st.postings(a).len(), 2, "adjacent duplicate coalesced");
        assert_eq!(st.term_stats(a), TermStats { df: 2, total_tf: 3 });
    }

    #[test]
    fn finalize_is_idempotent_and_stats_cached() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        st.add("t", occ(5, 0));
        st.add("t", occ(3, 0));
        st.finalize();
        let before: Vec<_> = st.postings(st.sym("t").unwrap()).to_vec();
        st.finalize();
        assert_eq!(st.postings(st.sym("t").unwrap()), before.as_slice());
        let stats = st.index_stats();
        assert_eq!(stats.terms, 1);
        assert_eq!(stats.postings, 2);
        assert_eq!(stats.posting_bytes, 2 * std::mem::size_of::<Occ>());
    }

    #[test]
    fn list_probes_work_on_ord_postings() {
        // NodeId-like posting: plain u32 wrapper
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        struct N(u32);
        impl Posting for N {
            type SortKey = u32;
            fn sort_key(&self) -> u32 {
                self.0
            }
            fn coalesce(&mut self, other: &Self) -> bool {
                self == other
            }
            fn same_doc(&self, other: &Self) -> bool {
                self == other
            }
        }
        let mut st: PostingStore<N> = PostingStore::new();
        for n in [2, 5, 9] {
            st.add("k", N(n));
        }
        st.finalize();
        let l = st.list(st.sym("k").unwrap());
        assert_eq!(l.right_match(N(6)), Some(N(9)));
        assert_eq!(l.left_match(N(6)), Some(N(5)));
        assert!(l.contains(&N(5)) && !l.contains(&N(6)));
    }
}
