//! Generic sorted posting storage with dense `Vec`-indexed-by-`Sym` lookup,
//! behind a cursor-based access API with a pluggable physical layout.
//!
//! Callers read posting lists through three sealed surfaces instead of raw
//! slices, so the in-memory layout can change without touching a single
//! search algorithm:
//!
//! * [`Postings`] — a cheap `Copy` view handed out by lookups
//!   ([`PostingStore::postings`]), supporting `len`/`iter`/probes;
//! * [`PostingList::iter`] — by-value iteration in sort order;
//! * [`PostingList::cursor`] — a [`PostingCursor`] with
//!   `peek`/`advance`/`seek(key)`/`block_max`, the shape the merge kernels
//!   and WAND-style pruning consume.
//!
//! Two layouts live behind that API ([`Layout`]): `Plain` sorted `Vec`s,
//! and delta-encoded bit-packed [`blocks`](super::blocks) with per-block
//! skip metadata. On the plain layout `block_max()` reports an infinite
//! bound and `seek` gallops over the slice, so pruning code runs unchanged
//! (it just never skips) — which is exactly what the cross-layout parity
//! tests rely on.

use super::blocks::{BlockCursor, BlockIter, BlockList};
use super::dict::TermDict;
use super::kernels;
use super::segment::{TombstoneSet, MAX_SEGMENTS};
use crate::intern::Sym;
use std::time::Duration;

/// One entry of a posting list. Implemented by each substrate's posting
/// type (relational tuple occurrence, XML node, graph node).
pub trait Posting: Copy {
    /// Total order of the list: document order, `(table, row, column)`
    /// order, node-id order, …
    type SortKey: Ord;

    /// Number of payload fields beyond the key that the block codec must
    /// round-trip (see [`extra`](Self::extra) / [`from_parts`](Self::from_parts)).
    const EXTRA_FIELDS: usize = 0;

    fn sort_key(&self) -> Self::SortKey;

    /// A 64-bit monotone image of [`sort_key`](Self::sort_key) order:
    /// `a.sort_key() ≤ b.sort_key() ⟹ a.key64() ≤ b.key64()`. Distinct
    /// postings may share a key (e.g. one tuple's occurrences in two
    /// columns); cursors and the block codec order and `seek` by this key.
    fn key64(&self) -> u64;

    /// The `i`-th payload field (`i < EXTRA_FIELDS`), as stored bits.
    fn extra(&self, _i: usize) -> u64 {
        0
    }

    /// Rebuild a posting from its key and payload fields — the inverse of
    /// `key64` + `extra`, used when decoding the block layout.
    fn from_parts(key: u64, extras: &[u64]) -> Self;

    /// Fold `other` — an occurrence at the *same* logical position — into
    /// `self` (e.g. accumulate term frequency). Must return `false` without
    /// mutating `self` when `other` is a distinct posting.
    fn coalesce(&mut self, other: &Self) -> bool;

    /// Term-occurrence count carried by this posting (its tf contribution).
    fn occurrences(&self) -> u64 {
        1
    }

    /// Score-relevant weight of this posting, bounded per block by the
    /// codec's `max_impact` for block-max pruning. Defaults to
    /// [`occurrences`](Self::occurrences).
    fn impact(&self) -> u64 {
        self.occurrences()
    }

    /// Whether two sort-adjacent postings belong to the same document, for
    /// document-frequency counting.
    fn same_doc(&self, other: &Self) -> bool;
}

/// Physical layout of the posting lists in a [`PostingStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Sorted `Vec<P>` — fastest build, `size_of::<P>()` bytes per posting.
    #[default]
    Plain,
    /// Delta-encoded bit-packed blocks with per-block skip + max-impact
    /// metadata ([`super::blocks`]). Lists whose encoded form would be
    /// *larger* than plain (short lists, already-tiny postings) stay plain
    /// per-list; the store-level layout records the requested policy.
    Blocks,
}

/// Per-term statistics, computed once at [`PostingStore::finalize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TermStats {
    /// Documents containing the term.
    pub df: u64,
    /// Total occurrences of the term across all documents.
    pub total_tf: u64,
}

/// Whole-index size figures, for observability gauges and bench reports.
///
/// Marked `#[non_exhaustive]`: construct via [`IndexStats::new`] and the
/// `with_*` builders so future fields are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Distinct terms in the dictionary.
    pub terms: usize,
    /// Stored postings across all lists.
    pub postings: usize,
    /// Bytes of posting payload: `postings × size_of::<P>()` for plain
    /// lists, encoded words + skip metadata for block lists.
    pub posting_bytes: usize,
    /// Encoded blocks across all lists (0 ⇒ fully plain).
    pub blocks: usize,
    /// Build wall-clock, when the owner measured one (batch builds do;
    /// incrementally grown indexes don't).
    pub build: Option<Duration>,
}

impl IndexStats {
    pub fn new(terms: usize, postings: usize, posting_bytes: usize) -> Self {
        IndexStats {
            terms,
            postings,
            posting_bytes,
            blocks: 0,
            build: None,
        }
    }

    /// Set the build duration (replaces cross-crate struct-update syntax,
    /// which `#[non_exhaustive]` forbids).
    pub fn with_build(mut self, build: Option<Duration>) -> Self {
        self.build = build;
        self
    }

    pub fn with_blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks;
        self
    }
}

/// One term's sorted posting list: plain `Vec` or compressed blocks.
///
/// The `lm`/`rm` binary probes and intersections the search algorithms need
/// are methods here, dispatched per layout (plain probes delegate to the
/// shared [`kernels`], block probes to the skip directory), so every
/// substrate probes lists the same way on either layout.
#[derive(Debug, Clone)]
pub struct PostingList<P> {
    repr: Repr<P>,
}

#[derive(Debug, Clone)]
enum Repr<P> {
    Plain(Vec<P>),
    Blocks(BlockList<P>),
}

impl<P> Default for PostingList<P> {
    fn default() -> Self {
        PostingList {
            repr: Repr::Plain(Vec::new()),
        }
    }
}

impl<P: Posting> PostingList<P> {
    /// Append `p`, folding it into the last entry when it is a duplicate
    /// occurrence at the same position. Build paths that emit postings in
    /// sort order (pre-order XML traversal, ascending graph node ids,
    /// table/row/column scans) therefore keep the list sorted and mostly
    /// coalesced as they go. Appending to a block-encoded list decodes it
    /// back to plain first (incremental growth is a plain-layout activity).
    fn push_coalesce(&mut self, p: P) {
        let entries = self.make_plain();
        if let Some(last) = entries.last_mut() {
            if last.coalesce(&p) {
                return;
            }
        }
        entries.push(p);
    }

    /// Wrap a vec that is not necessarily sorted; callers must
    /// [`finalize`](Self::finalize) before querying (segment merges do).
    pub(crate) fn from_unsorted(entries: Vec<P>) -> Self {
        PostingList {
            repr: Repr::Plain(entries),
        }
    }

    /// Insert `p` preserving sort order: the append/coalesce fast path when
    /// `p` is in order (the common case — batch builds and single-table
    /// ingest emit ascending keys), a binary-search insertion otherwise
    /// (interleaved-table ingest into a realtime segment).
    pub(crate) fn insert_coalesce(&mut self, p: P) {
        let entries = self.make_plain();
        if entries
            .last()
            .is_none_or(|last| last.sort_key() <= p.sort_key())
        {
            if let Some(last) = entries.last_mut() {
                if last.coalesce(&p) {
                    return;
                }
            }
            entries.push(p);
            return;
        }
        let i = entries.partition_point(|q| q.sort_key() < p.sort_key());
        if i < entries.len() && entries[i].coalesce(&p) {
            return;
        }
        entries.insert(i, p);
    }

    /// Drop postings failing the predicate (the tombstone purge of segment
    /// commit/merge). Decodes block lists to plain.
    pub(crate) fn retain(&mut self, f: impl FnMut(&P) -> bool) {
        self.make_plain().retain(f);
    }

    /// Decode to plain if needed and return the backing vec.
    fn make_plain(&mut self) -> &mut Vec<P> {
        if let Repr::Blocks(bl) = &self.repr {
            self.repr = Repr::Plain(bl.to_vec());
        }
        match &mut self.repr {
            Repr::Plain(v) => v,
            Repr::Blocks(_) => unreachable!(),
        }
    }

    /// Sort by [`Posting::sort_key`], coalesce duplicates, and compute the
    /// term's stats. Skips the sort when the list is already ordered (the
    /// common case for in-order builds). Leaves the list plain; the store
    /// re-applies its layout afterwards.
    pub(crate) fn finalize(&mut self) -> TermStats {
        let entries = self.make_plain();
        let sorted = entries
            .windows(2)
            .all(|w| w[0].sort_key() <= w[1].sort_key());
        if !sorted {
            entries.sort_by_key(|p| p.sort_key());
        }
        let mut merged: Vec<P> = Vec::with_capacity(entries.len());
        for p in entries.drain(..) {
            if let Some(last) = merged.last_mut() {
                if last.coalesce(&p) {
                    continue;
                }
            }
            merged.push(p);
        }
        merged.shrink_to_fit();
        *entries = merged;
        self.stats()
    }

    /// Compute stats by scanning the (sorted) list.
    pub(crate) fn stats(&self) -> TermStats {
        let mut stats = TermStats::default();
        let mut prev: Option<P> = None;
        for p in self.iter() {
            stats.total_tf += p.occurrences();
            if !prev.is_some_and(|q| q.same_doc(&p)) {
                stats.df += 1;
            }
            prev = Some(p);
        }
        stats
    }

    /// Re-encode this (sorted) list to `layout`. Going to `Blocks` keeps
    /// the list plain when the encoded form would not be smaller, so tiny
    /// lists never pay metadata overhead.
    pub(crate) fn apply_layout(&mut self, layout: Layout) {
        match layout {
            Layout::Plain => {
                self.make_plain();
            }
            Layout::Blocks => {
                if let Repr::Plain(v) = &self.repr {
                    if v.is_empty() {
                        return;
                    }
                    let bl = BlockList::encode(v);
                    if bl.heap_bytes() < v.len() * std::mem::size_of::<P>() {
                        self.repr = Repr::Blocks(bl);
                    }
                }
            }
        }
    }

    /// The layout this particular list is stored in.
    pub fn layout(&self) -> Layout {
        match &self.repr {
            Repr::Plain(_) => Layout::Plain,
            Repr::Blocks(_) => Layout::Blocks,
        }
    }

    /// Raw slice escape hatch, for plain-layout lists only.
    ///
    /// # Panics
    /// On a block-encoded list. Use [`iter`](Self::iter) /
    /// [`cursor`](Self::cursor) / [`to_vec`](Self::to_vec) instead.
    #[doc(hidden)]
    #[deprecated(note = "layout-locked escape hatch: use iter()/cursor()/to_vec() instead")]
    pub fn as_slice(&self) -> &[P] {
        match &self.repr {
            Repr::Plain(v) => v,
            Repr::Blocks(_) => panic!("as_slice() on a block-encoded posting list"),
        }
    }

    /// By-value iteration in sort order, on either layout.
    pub fn iter(&self) -> PostingIter<'_, P> {
        PostingIter {
            inner: match &self.repr {
                Repr::Plain(v) => IterRepr::Plain(v.iter()),
                Repr::Blocks(bl) => IterRepr::Blocks(BlockIter::new(bl)),
            },
        }
    }

    /// A cursor positioned at the first posting.
    pub fn cursor(&self) -> PostingCursor<'_, P> {
        PostingCursor {
            inner: match &self.repr {
                Repr::Plain(v) => CursorRepr::Plain { list: v, pos: 0 },
                Repr::Blocks(bl) => CursorRepr::Blocks(bl.cursor()),
            },
        }
    }

    /// Decode/copy the list into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<P> {
        match &self.repr {
            Repr::Plain(v) => v.clone(),
            Repr::Blocks(bl) => bl.to_vec(),
        }
    }

    /// Heap bytes held by the posting payload in its current layout.
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Plain(v) => v.len() * std::mem::size_of::<P>(),
            Repr::Blocks(bl) => bl.heap_bytes(),
        }
    }

    /// Encoded blocks (0 when plain).
    pub fn num_blocks(&self) -> usize {
        match &self.repr {
            Repr::Plain(_) => 0,
            Repr::Blocks(bl) => bl.num_blocks(),
        }
    }

    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Plain(v) => v.len(),
            Repr::Blocks(bl) => bl.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first posting, if any.
    pub fn first(&self) -> Option<P> {
        self.iter().next()
    }
}

impl<P: Posting + Ord> PostingList<P> {
    /// Smallest posting `≥ v` — the *rm* probe.
    pub fn right_match(&self, v: P) -> Option<P> {
        match &self.repr {
            Repr::Plain(entries) => kernels::right_match(entries, v),
            Repr::Blocks(bl) => bl.right_match(v),
        }
    }

    /// Largest posting `≤ v` — the *lm* probe.
    pub fn left_match(&self, v: P) -> Option<P> {
        match &self.repr {
            Repr::Plain(entries) => kernels::left_match(entries, v),
            Repr::Blocks(bl) => bl.left_match(v),
        }
    }

    /// Binary-search membership probe.
    pub fn contains(&self, v: &P) -> bool {
        match &self.repr {
            Repr::Plain(entries) => kernels::contains(entries, v),
            Repr::Blocks(bl) => bl.contains(v),
        }
    }

    /// Intersect with another sorted list into a caller-provided buffer
    /// (cleared first), choosing the kernel by size ratio and layout:
    /// plain×plain dispatches to the slice kernels, any block operand goes
    /// through a galloping cursor merge. Set semantics: strictly
    /// increasing output.
    pub fn intersect_into(&self, other: &Self, out: &mut Vec<P>) {
        match (&self.repr, &other.repr) {
            (Repr::Plain(a), Repr::Plain(b)) => kernels::intersect_into(a, b, out),
            _ => {
                out.clear();
                let mut a = self.cursor();
                let mut b = other.cursor();
                kernels::intersect_cursors(&mut a, &mut b, out);
            }
        }
    }

    /// Intersect with another sorted list into a fresh `Vec`. Hot paths
    /// with a scratch buffer should call [`intersect_into`](Self::intersect_into).
    pub fn intersect(&self, other: &Self) -> Vec<P> {
        let mut out = Vec::new();
        self.intersect_into(other, &mut out);
        out
    }
}

/// By-value iterator over a [`PostingList`] on either layout.
#[derive(Debug, Clone)]
pub struct PostingIter<'a, P: Posting> {
    inner: IterRepr<'a, P>,
}

#[derive(Debug, Clone)]
enum IterRepr<'a, P: Posting> {
    Plain(std::slice::Iter<'a, P>),
    Blocks(BlockIter<'a, P>),
    Multi(Box<MultiIter<'a, P>>),
}

impl<P: Posting> Iterator for PostingIter<'_, P> {
    type Item = P;

    #[inline]
    fn next(&mut self) -> Option<P> {
        match &mut self.inner {
            IterRepr::Plain(it) => it.next().copied(),
            IterRepr::Blocks(it) => it.next(),
            IterRepr::Multi(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            IterRepr::Plain(it) => it.size_hint(),
            IterRepr::Blocks(it) => it.size_hint(),
            IterRepr::Multi(it) => it.size_hint(),
        }
    }
}

impl<P: Posting> ExactSizeIterator for PostingIter<'_, P> {}

/// K-way merge over per-segment posting iterators, filtering tombstoned
/// keys. Segments are document-disjoint, so a linear min-scan over ≤
/// [`MAX_SEGMENTS`] heads needs no cross-segment coalescing; the exact
/// remaining count (for `ExactSizeIterator`) is taken from the view up
/// front.
#[derive(Debug, Clone)]
struct MultiIter<'a, P: Posting> {
    children: Vec<PostingIter<'a, P>>,
    heads: Vec<Option<P>>,
    tomb: Option<&'a TombstoneSet>,
    remaining: usize,
}

impl<'a, P: Posting> MultiIter<'a, P> {
    fn new(view: &Postings<'a, P>) -> Self {
        let mut children: Vec<PostingIter<'a, P>> = view.children().map(|l| l.iter()).collect();
        let tomb = view.tomb;
        let heads = children.iter_mut().map(|c| Self::pull(c, tomb)).collect();
        MultiIter {
            children,
            heads,
            tomb,
            remaining: view.len(),
        }
    }

    /// Next non-tombstoned posting of one child.
    fn pull(child: &mut PostingIter<'a, P>, tomb: Option<&TombstoneSet>) -> Option<P> {
        child.find(|p| !tomb.is_some_and(|t| t.contains(p.key64())))
    }
}

impl<P: Posting> Iterator for MultiIter<'_, P> {
    type Item = P;

    fn next(&mut self) -> Option<P> {
        let mut best: Option<(usize, P)> = None;
        for (i, h) in self.heads.iter().enumerate() {
            let Some(p) = *h else { continue };
            if best.is_none_or(|(_, b)| p.sort_key() < b.sort_key()) {
                best = Some((i, p));
            }
        }
        let (i, p) = best?;
        self.heads[i] = Self::pull(&mut self.children[i], self.tomb);
        self.remaining -= 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// The read view lookups hand out: a cheap `Copy` handle on a term's
/// posting lists — one per live segment, plus the index's tombstone set —
/// with the slice-like conveniences callers actually need (`len`, `iter`,
/// `cursor`, probes) but no layout commitment.
///
/// A [`PostingStore`] hands out single-list views; a
/// [`SegmentedIndex`](super::segment::SegmentedIndex) hands out views
/// merging up to [`MAX_SEGMENTS`] document-disjoint sorted lists with
/// tombstoned keys filtered out. Single-list tombstone-free views take the
/// exact code paths they always did, so static indexes pay nothing for the
/// generality.
#[derive(Debug)]
pub struct Postings<'a, P> {
    lists: [Option<&'a PostingList<P>>; MAX_SEGMENTS],
    n: u8,
    tomb: Option<&'a TombstoneSet>,
}

impl<P> Clone for Postings<'_, P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P> Copy for Postings<'_, P> {}

impl<'a, P: Posting> Postings<'a, P> {
    /// The empty view (absent term).
    pub fn empty() -> Self {
        Postings {
            lists: [None; MAX_SEGMENTS],
            n: 0,
            tomb: None,
        }
    }

    /// A view over up to [`MAX_SEGMENTS`] document-disjoint sorted lists,
    /// filtering postings whose [`Posting::key64`] is tombstoned. Empty
    /// lists are skipped.
    pub(crate) fn from_segments<I>(segments: I, tomb: Option<&'a TombstoneSet>) -> Self
    where
        I: IntoIterator<Item = &'a PostingList<P>>,
    {
        let mut v = Postings {
            lists: [None; MAX_SEGMENTS],
            n: 0,
            tomb: tomb.filter(|t| !t.is_empty()),
        };
        for l in segments {
            if l.is_empty() {
                continue;
            }
            assert!(
                (v.n as usize) < MAX_SEGMENTS,
                "posting view over more than MAX_SEGMENTS segments"
            );
            v.lists[v.n as usize] = Some(l);
            v.n += 1;
        }
        v
    }

    /// The sole backing list when this is a plain single-list view (one
    /// segment, no tombstones) — the fast path every method dispatches on.
    fn single(&self) -> Option<&'a PostingList<P>> {
        if self.n == 1 && self.tomb.is_none() {
            self.lists[0]
        } else {
            None
        }
    }

    /// The populated segment lists.
    fn children(&self) -> impl Iterator<Item = &'a PostingList<P>> + '_ {
        self.lists[..self.n as usize]
            .iter()
            .map(|l| l.expect("populated segment slot"))
    }

    /// Live postings in the view (tombstoned postings excluded, which makes
    /// this O(n) while tombstones are outstanding).
    pub fn len(&self) -> usize {
        match self.tomb {
            None => self.children().map(|l| l.len()).sum(),
            Some(t) => self
                .children()
                .map(|l| l.iter().filter(|p| !t.contains(p.key64())).count())
                .sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn iter(&self) -> PostingIter<'a, P> {
        if let Some(l) = self.single() {
            return l.iter();
        }
        if self.n == 0 {
            return PostingIter {
                inner: IterRepr::Plain([].iter()),
            };
        }
        PostingIter {
            inner: IterRepr::Multi(Box::new(MultiIter::new(self))),
        }
    }

    pub fn cursor(&self) -> PostingCursor<'a, P> {
        if let Some(l) = self.single() {
            return l.cursor();
        }
        if self.n == 0 {
            return PostingCursor {
                inner: CursorRepr::Plain { list: &[], pos: 0 },
            };
        }
        PostingCursor {
            inner: CursorRepr::Multi(Box::new(MultiCursor::new(self))),
        }
    }

    pub fn first(&self) -> Option<P> {
        self.iter().next()
    }

    pub fn to_vec(&self) -> Vec<P> {
        if let Some(l) = self.single() {
            return l.to_vec();
        }
        self.iter().collect()
    }

    /// The underlying list, when this is a plain single-list view (one
    /// segment, no tombstones). Multi-segment views return `None`; go
    /// through [`iter`](Self::iter) / [`cursor`](Self::cursor) instead.
    pub fn as_list(&self) -> Option<&'a PostingList<P>> {
        self.single()
    }
}

impl<'a, P: Posting + Ord> Postings<'a, P> {
    /// Smallest posting `≥ v` — the *rm* probe.
    pub fn right_match(&self, v: P) -> Option<P> {
        if let Some(l) = self.single() {
            return l.right_match(v);
        }
        let mut c = self.cursor();
        c.seek(v.key64());
        // key64 may be non-injective: postings sharing v's key can still
        // order below it, so scan the key group forward.
        while let Some(p) = c.peek() {
            if p >= v {
                return Some(p);
            }
            c.advance();
        }
        None
    }

    /// Largest posting `≤ v` — the *lm* probe.
    pub fn left_match(&self, v: P) -> Option<P> {
        if let Some(l) = self.single() {
            return l.left_match(v);
        }
        let mut best = None;
        for p in self.iter() {
            if p > v {
                break;
            }
            best = Some(p);
        }
        best
    }

    pub fn contains(&self, v: &P) -> bool {
        if let Some(l) = self.single() {
            return l.contains(v);
        }
        let mut c = self.cursor();
        c.seek(v.key64());
        while let Some(p) = c.peek() {
            if p == *v {
                return true;
            }
            if p > *v {
                return false;
            }
            c.advance();
        }
        false
    }

    /// Number of postings in the half-open range `[lo, hi)`.
    pub fn count_between(&self, lo: P, hi: P) -> usize {
        let mut c = self.cursor();
        c.seek(lo.key64());
        let mut n = 0usize;
        while let Some(p) = c.next() {
            if p >= hi {
                break;
            }
            if p >= lo {
                n += 1;
            }
        }
        n
    }

    /// Postings in the half-open range `[lo, hi)`, decoded in order.
    pub fn collect_between(&self, lo: P, hi: P) -> Vec<P> {
        let mut c = self.cursor();
        c.seek(lo.key64());
        let mut out = Vec::new();
        while let Some(p) = c.next() {
            if p >= hi {
                break;
            }
            if p >= lo {
                out.push(p);
            }
        }
        out
    }

    /// Intersect with a sorted slice into a caller-provided buffer
    /// (cleared first): galloping cursor-vs-slice merge, set semantics.
    pub fn intersect_sorted_into(&self, other: &[P], out: &mut Vec<P>) {
        out.clear();
        if self.is_empty() {
            return;
        }
        let mut c = self.cursor();
        let mut j = 0usize;
        while let Some(x) = c.peek() {
            j = kernels::gallop_by(other, j, |y| *y >= x);
            let Some(&y) = other.get(j) else { break };
            if y == x {
                if out.last() != Some(&x) {
                    out.push(x);
                }
                c.advance();
            } else {
                // y > x: jump the cursor forward to y's key neighborhood.
                c.seek(y.key64());
                while c.peek().is_some_and(|p| p < y) {
                    c.advance();
                }
            }
        }
    }
}

impl<'a, P: Posting> From<&'a PostingList<P>> for Postings<'a, P> {
    fn from(list: &'a PostingList<P>) -> Self {
        let mut lists = [None; MAX_SEGMENTS];
        lists[0] = Some(list);
        Postings {
            lists,
            n: 1,
            tomb: None,
        }
    }
}

impl<'a, P: Posting> IntoIterator for Postings<'a, P> {
    type Item = P;
    type IntoIter = PostingIter<'a, P>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a, P: Posting> IntoIterator for &Postings<'a, P> {
    type Item = P;
    type IntoIter = PostingIter<'a, P>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<P: Posting + PartialEq> PartialEq for Postings<'_, P> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<P: Posting + PartialEq> PartialEq<[P]> for Postings<'_, P> {
    fn eq(&self, other: &[P]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl<P: Posting + PartialEq> PartialEq<&[P]> for Postings<'_, P> {
    fn eq(&self, other: &&[P]) -> bool {
        self == *other
    }
}

impl<P: Posting + PartialEq, const N: usize> PartialEq<[P; N]> for Postings<'_, P> {
    fn eq(&self, other: &[P; N]) -> bool {
        self == other.as_slice()
    }
}

impl<P: Posting + PartialEq, const N: usize> PartialEq<&[P; N]> for Postings<'_, P> {
    fn eq(&self, other: &&[P; N]) -> bool {
        self == other.as_slice()
    }
}

impl<P: Posting + PartialEq> PartialEq<Vec<P>> for Postings<'_, P> {
    fn eq(&self, other: &Vec<P>) -> bool {
        self == other.as_slice()
    }
}

/// Layout-agnostic cursor over one posting list: `peek`/`advance` for
/// linear scans, `seek(key)` with galloping for intersections, and the
/// block-max surface (`block_max`/`block_last_key`) for WAND pruning.
///
/// On the plain layout `block_max()` is `u64::MAX` and `block_last_key()`
/// is the list's final key — an "infinite block" that pruning loops treat
/// as unskippable unless the whole remainder is provably useless, which
/// keeps plain-layout results bit-identical to unpruned evaluation.
#[derive(Debug, Clone)]
pub struct PostingCursor<'a, P: Posting> {
    inner: CursorRepr<'a, P>,
}

#[derive(Debug, Clone)]
enum CursorRepr<'a, P: Posting> {
    Plain { list: &'a [P], pos: usize },
    Blocks(BlockCursor<'a, P>),
    Multi(Box<MultiCursor<'a, P>>),
}

/// K-way merged cursor over per-segment cursors, filtering tombstoned
/// keys. Keeps the full cursor contract:
///
/// * `peek`/`advance`/`next` walk the merged sort order;
/// * `seek(key)` seeks every child (each gallops independently);
/// * `block_max` is the max over live children — any plain child (the
///   realtime segment) reports `u64::MAX`, so WAND-style pruning stays
///   sound and simply stops skipping while uncommitted postings exist;
/// * `block_last_key` is the min over live children, so a pruning skip of
///   `seek(block_last_key() + 1)` never jumps past any segment's block
///   boundary.
#[derive(Debug, Clone)]
struct MultiCursor<'a, P: Posting> {
    children: Vec<PostingCursor<'a, P>>,
    tomb: Option<&'a TombstoneSet>,
    /// Cached `(child index, posting)` of the current minimum; the child's
    /// own cursor still has the posting under its head (it is consumed on
    /// `advance`).
    cur: Option<(usize, P)>,
}

impl<'a, P: Posting> MultiCursor<'a, P> {
    fn new(view: &Postings<'a, P>) -> Self {
        let mut c = MultiCursor {
            children: view.children().map(|l| l.cursor()).collect(),
            tomb: view.tomb,
            cur: None,
        };
        c.normalize();
        c
    }

    /// Re-derive the current minimum across children, advancing past
    /// tombstoned keys.
    fn normalize(&mut self) {
        loop {
            let mut best: Option<(usize, P)> = None;
            for (i, c) in self.children.iter().enumerate() {
                let Some(p) = c.peek() else { continue };
                if best.is_none_or(|(_, b)| p.sort_key() < b.sort_key()) {
                    best = Some((i, p));
                }
            }
            let Some((i, p)) = best else {
                self.cur = None;
                return;
            };
            if self.tomb.is_some_and(|t| t.contains(p.key64())) {
                self.children[i].advance();
                continue;
            }
            self.cur = Some((i, p));
            return;
        }
    }
}

impl<P: Posting> PostingCursor<'_, P> {
    /// The posting under the cursor (`None` once exhausted).
    #[inline]
    pub fn peek(&self) -> Option<P> {
        match &self.inner {
            CursorRepr::Plain { list, pos } => list.get(*pos).copied(),
            CursorRepr::Blocks(c) => c.peek(),
            CursorRepr::Multi(m) => m.cur.map(|(_, p)| p),
        }
    }

    /// Step to the next posting.
    #[inline]
    pub fn advance(&mut self) {
        match &mut self.inner {
            CursorRepr::Plain { list, pos } => {
                if *pos < list.len() {
                    *pos += 1;
                }
            }
            CursorRepr::Blocks(c) => c.advance(),
            CursorRepr::Multi(m) => {
                if let Some((i, _)) = m.cur {
                    m.children[i].advance();
                    m.normalize();
                }
            }
        }
    }

    /// Return the current posting and step past it. A cursor is not an
    /// `Iterator` on purpose: `seek` invalidates the "every element exactly
    /// once" contract iteration adapters assume.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<P> {
        let p = self.peek();
        self.advance();
        p
    }

    /// Position the cursor at the first posting with `key64() ≥ key` and
    /// return it. Gallops: `O(log d)` in the distance on plain lists, a
    /// skip-directory jump plus one in-block scan on the block layout.
    /// Never moves backwards.
    pub fn seek(&mut self, key: u64) -> Option<P> {
        match &mut self.inner {
            CursorRepr::Plain { list, pos } => {
                *pos = kernels::gallop_by(list, *pos, |p| p.key64() >= key);
                list.get(*pos).copied()
            }
            CursorRepr::Blocks(c) => c.seek(key),
            CursorRepr::Multi(m) => {
                for c in &mut m.children {
                    c.seek(key);
                }
                m.normalize();
                m.cur.map(|(_, p)| p)
            }
        }
    }

    /// Upper bound on [`Posting::impact`] over the current block
    /// (`u64::MAX` on the plain layout: one infinite block). On a merged
    /// multi-segment cursor: the max over live segments — conservative,
    /// hence sound for pruning.
    #[inline]
    pub fn block_max(&self) -> u64 {
        match &self.inner {
            CursorRepr::Plain { .. } => u64::MAX,
            CursorRepr::Blocks(c) => c.block_max(),
            CursorRepr::Multi(m) => m
                .children
                .iter()
                .filter(|c| !c.is_exhausted())
                .map(|c| c.block_max())
                .max()
                .unwrap_or(u64::MAX),
        }
    }

    /// Last key of the current block — `seek(block_last_key() + 1)` is the
    /// skip step of block-max pruning. `None` once exhausted. On a merged
    /// multi-segment cursor: the min over live segments, so a skip never
    /// jumps past any segment's block boundary.
    #[inline]
    pub fn block_last_key(&self) -> Option<u64> {
        match &self.inner {
            CursorRepr::Plain { list, pos } => {
                (*pos < list.len()).then(|| list[list.len() - 1].key64())
            }
            CursorRepr::Blocks(c) => c.peek().map(|_| c.block_last_key()),
            CursorRepr::Multi(m) => {
                if m.cur.is_none() {
                    None
                } else {
                    m.children.iter().filter_map(|c| c.block_last_key()).min()
                }
            }
        }
    }

    /// Blocks jumped over without decoding (always 0 on plain).
    #[inline]
    pub fn blocks_skipped(&self) -> u64 {
        match &self.inner {
            CursorRepr::Plain { .. } => 0,
            CursorRepr::Blocks(c) => c.blocks_skipped(),
            CursorRepr::Multi(m) => m.children.iter().map(|c| c.blocks_skipped()).sum(),
        }
    }

    /// Whether the cursor has run off the end of the list.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.peek().is_none()
    }
}

/// Term dictionary + dense posting lists: the index core all three
/// substrates store postings in.
///
/// Build: [`add`](Self::add) postings (terms are interned, each distinct
/// term allocated exactly once), then [`finalize`](Self::finalize) to sort,
/// coalesce, compute per-term [`TermStats`], and apply the configured
/// [`Layout`]. Indexes grown incrementally *in sort order* (e.g. a graph
/// appending ascending node ids) remain queryable without finalizing;
/// their stats are computed on demand.
///
/// Query: [`sym`](Self::sym) once per query term, then
/// [`postings`](Self::postings) / [`list`](Self::list) on the dense id.
#[derive(Debug, Clone)]
pub struct PostingStore<P> {
    dict: TermDict,
    lists: Vec<PostingList<P>>,
    stats: Vec<TermStats>,
    layout: Layout,
    finalized: bool,
}

impl<P> Default for PostingStore<P> {
    fn default() -> Self {
        PostingStore {
            dict: TermDict::new(),
            lists: Vec::new(),
            stats: Vec::new(),
            layout: Layout::Plain,
            finalized: false,
        }
    }
}

impl<P: Posting> PostingStore<P> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term` without adding a posting.
    pub fn intern(&mut self, term: &str) -> Sym {
        let sym = self.dict.intern(term);
        if sym.0 as usize >= self.lists.len() {
            self.lists.push(PostingList::default());
        }
        sym
    }

    /// Add one posting occurrence for `term`.
    pub fn add(&mut self, term: &str, posting: P) -> Sym {
        let sym = self.intern(term);
        self.add_sym(sym, posting);
        sym
    }

    /// Add one posting occurrence for an already-interned term. If the
    /// list was block-encoded it reverts to plain (incremental growth is a
    /// plain-layout activity; re-apply the layout via
    /// [`set_layout`](Self::set_layout) / [`finalize`](Self::finalize)).
    pub fn add_sym(&mut self, sym: Sym, posting: P) {
        self.finalized = false;
        self.lists[sym.0 as usize].push_coalesce(posting);
    }

    /// Sort every list, coalesce duplicate occurrences, compute per-term
    /// stats, and apply the configured [`Layout`]. Idempotent.
    pub fn finalize(&mut self) {
        self.stats = self.lists.iter_mut().map(|l| l.finalize()).collect();
        if self.layout == Layout::Blocks {
            for l in &mut self.lists {
                l.apply_layout(Layout::Blocks);
            }
        }
        self.finalized = true;
    }

    /// Finalize into an explicit layout (shorthand for
    /// [`set_layout`](Self::set_layout) + [`finalize`](Self::finalize)).
    pub fn finalize_layout(&mut self, layout: Layout) {
        self.layout = layout;
        self.finalize();
    }

    /// The configured physical layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Switch the physical layout. Re-encodes immediately when the store
    /// is finalized; otherwise the layout is applied at the next
    /// [`finalize`](Self::finalize). Contents are unchanged either way.
    pub fn set_layout(&mut self, layout: Layout) {
        self.layout = layout;
        if self.finalized {
            for l in &mut self.lists {
                l.apply_layout(layout);
            }
        }
    }

    /// Resolve a query term to its dense id — one dictionary lookup; do it
    /// once per query term.
    pub fn sym(&self, term: &str) -> Option<Sym> {
        self.dict.lookup(term)
    }

    /// The postings of an interned term, as a layout-agnostic view.
    pub fn postings(&self, sym: Sym) -> Postings<'_, P> {
        Postings::from(&self.lists[sym.0 as usize])
    }

    /// The postings of a term by string (lookup + fetch); the empty view
    /// if absent.
    pub fn postings_str(&self, term: &str) -> Postings<'_, P> {
        self.sym(term)
            .map(|s| self.postings(s))
            .unwrap_or_else(Postings::empty)
    }

    /// A term's posting list with its probe methods.
    pub fn list(&self, sym: Sym) -> &PostingList<P> {
        &self.lists[sym.0 as usize]
    }

    /// Per-term stats: cached when finalized, computed by scanning
    /// otherwise (valid only if the list was built in sort order).
    pub fn term_stats(&self, sym: Sym) -> TermStats {
        if self.finalized {
            self.stats[sym.0 as usize]
        } else {
            self.lists[sym.0 as usize].stats()
        }
    }

    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Distinct terms indexed.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Total stored postings.
    pub fn posting_count(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }

    /// All indexed terms, in id order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.dict.terms()
    }

    /// Whole-index size figures (build time unset; owners that measured
    /// the build fill it in via [`IndexStats::with_build`]).
    pub fn index_stats(&self) -> IndexStats {
        IndexStats::new(
            self.term_count(),
            self.posting_count(),
            self.lists.iter().map(|l| l.heap_bytes()).sum(),
        )
        .with_blocks(self.lists.iter().map(|l| l.num_blocks()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test posting: (doc, slot, tf) — coalesces on equal (doc, slot).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Occ {
        doc: u32,
        slot: u32,
        tf: u32,
    }

    impl Posting for Occ {
        type SortKey = (u32, u32);
        const EXTRA_FIELDS: usize = 2;
        fn sort_key(&self) -> (u32, u32) {
            (self.doc, self.slot)
        }
        fn key64(&self) -> u64 {
            ((self.doc as u64) << 32) | self.slot as u64
        }
        fn extra(&self, i: usize) -> u64 {
            match i {
                0 => self.slot as u64,
                _ => self.tf as u64,
            }
        }
        fn from_parts(key: u64, extras: &[u64]) -> Self {
            Occ {
                doc: (key >> 32) as u32,
                slot: extras[0] as u32,
                tf: extras[1] as u32,
            }
        }
        fn coalesce(&mut self, other: &Self) -> bool {
            if self.doc == other.doc && self.slot == other.slot {
                self.tf += other.tf;
                true
            } else {
                false
            }
        }
        fn occurrences(&self) -> u64 {
            self.tf as u64
        }
        fn same_doc(&self, other: &Self) -> bool {
            self.doc == other.doc
        }
    }

    fn occ(doc: u32, slot: u32) -> Occ {
        Occ { doc, slot, tf: 1 }
    }

    #[test]
    fn build_finalize_query() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        st.add("xml", occ(2, 0));
        st.add("xml", occ(2, 0)); // duplicate → coalesced, tf 2
        st.add("xml", occ(0, 1)); // out of order → fixed by finalize
        st.add("db", occ(1, 0));
        st.finalize();
        let x = st.sym("xml").unwrap();
        assert_eq!(
            st.postings(x),
            &[
                occ(0, 1),
                Occ {
                    doc: 2,
                    slot: 0,
                    tf: 2
                }
            ]
        );
        assert_eq!(st.term_stats(x), TermStats { df: 2, total_tf: 3 });
        assert_eq!(st.term_count(), 2);
        assert_eq!(st.posting_count(), 3);
        assert!(st.sym("nope").is_none());
        assert!(st.postings_str("nope").is_empty());
    }

    #[test]
    fn unfinalized_in_order_store_is_queryable() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        st.add("a", occ(0, 0));
        st.add("a", occ(1, 0));
        st.add("a", occ(1, 0));
        let a = st.sym("a").unwrap();
        assert_eq!(st.postings(a).len(), 2, "adjacent duplicate coalesced");
        assert_eq!(st.term_stats(a), TermStats { df: 2, total_tf: 3 });
    }

    #[test]
    fn finalize_is_idempotent_and_stats_cached() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        st.add("t", occ(5, 0));
        st.add("t", occ(3, 0));
        st.finalize();
        let before: Vec<_> = st.postings(st.sym("t").unwrap()).to_vec();
        st.finalize();
        assert_eq!(st.postings(st.sym("t").unwrap()), before);
        let stats = st.index_stats();
        assert_eq!(stats.terms, 1);
        assert_eq!(stats.postings, 2);
        assert_eq!(stats.posting_bytes, 2 * std::mem::size_of::<Occ>());
        assert_eq!(stats.blocks, 0, "plain layout stores no blocks");
    }

    #[test]
    fn list_probes_work_on_ord_postings() {
        // NodeId-like posting: plain u32 wrapper
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        struct N(u32);
        impl Posting for N {
            type SortKey = u32;
            fn sort_key(&self) -> u32 {
                self.0
            }
            fn key64(&self) -> u64 {
                self.0 as u64
            }
            fn from_parts(key: u64, _extras: &[u64]) -> Self {
                N(key as u32)
            }
            fn coalesce(&mut self, other: &Self) -> bool {
                self == other
            }
            fn same_doc(&self, other: &Self) -> bool {
                self == other
            }
        }
        let mut st: PostingStore<N> = PostingStore::new();
        for n in [2, 5, 9] {
            st.add("k", N(n));
        }
        st.finalize();
        let l = st.list(st.sym("k").unwrap());
        assert_eq!(l.right_match(N(6)), Some(N(9)));
        assert_eq!(l.left_match(N(6)), Some(N(5)));
        assert!(l.contains(&N(5)) && !l.contains(&N(6)));
    }

    #[test]
    fn layout_switch_preserves_contents_and_stats() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        for doc in 0..2000u32 {
            st.add("t", occ(doc, 0));
            if doc % 3 == 0 {
                st.add("t", occ(doc, 1));
            }
        }
        st.finalize();
        let sym = st.sym("t").unwrap();
        let plain: Vec<Occ> = st.postings(sym).to_vec();
        let plain_stats = st.term_stats(sym);
        let plain_bytes = st.index_stats().posting_bytes;

        st.set_layout(Layout::Blocks);
        assert_eq!(st.layout(), Layout::Blocks);
        assert_eq!(st.postings(sym).to_vec(), plain, "contents survive encode");
        assert_eq!(st.term_stats(sym), plain_stats);
        let stats = st.index_stats();
        assert!(stats.blocks > 0, "long list actually block-encoded");
        assert!(
            stats.posting_bytes < plain_bytes,
            "blocks {} !< plain {plain_bytes}",
            stats.posting_bytes
        );

        st.set_layout(Layout::Plain);
        assert_eq!(st.postings(sym).to_vec(), plain, "contents survive decode");
        assert_eq!(st.index_stats().posting_bytes, plain_bytes);
        assert_eq!(st.index_stats().blocks, 0);
    }

    #[test]
    fn short_lists_stay_plain_under_blocks_layout() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        st.add("rare", occ(7, 0));
        st.finalize_layout(Layout::Blocks);
        let sym = st.sym("rare").unwrap();
        // a one-entry block would cost more than 16 plain bytes
        assert_eq!(st.list(sym).layout(), Layout::Plain);
        assert_eq!(st.postings(sym).to_vec(), vec![occ(7, 0)]);
    }

    #[test]
    fn add_after_blocks_reverts_list_to_plain_and_refinalize_reencodes() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        for doc in 0..1000u32 {
            st.add("t", occ(doc, 0));
        }
        st.finalize_layout(Layout::Blocks);
        let sym = st.sym("t").unwrap();
        assert_eq!(st.list(sym).layout(), Layout::Blocks);
        st.add_sym(sym, occ(1000, 0));
        assert_eq!(st.list(sym).layout(), Layout::Plain, "growth decodes");
        assert_eq!(st.postings(sym).len(), 1001);
        st.finalize();
        assert_eq!(st.list(sym).layout(), Layout::Blocks, "layout re-applied");
        assert_eq!(st.postings(sym).len(), 1001);
    }

    #[test]
    fn cursor_on_plain_layout_reports_infinite_block() {
        let mut st: PostingStore<Occ> = PostingStore::new();
        for doc in [3u32, 9, 12] {
            st.add("t", occ(doc, 0));
        }
        st.finalize();
        let mut c = st.list(st.sym("t").unwrap()).cursor();
        assert_eq!(c.block_max(), u64::MAX);
        assert_eq!(c.block_last_key(), Some(occ(12, 0).key64()));
        assert_eq!(c.seek(occ(9, 0).key64()), Some(occ(9, 0)));
        assert_eq!(c.blocks_skipped(), 0);
        c.advance();
        c.advance();
        assert!(c.is_exhausted());
        assert_eq!(c.block_last_key(), None);
    }
}
