//! Generational segment storage: one mutable **realtime** segment plus
//! immutable **sealed** segments, searched together behind the ordinary
//! [`Postings`]/cursor API.
//!
//! A [`PostingStore`](super::PostingStore) is build-once: any data change
//! forces a full rebuild. A [`SegmentedIndex`] instead accumulates new
//! postings in an uncompressed, always-sorted realtime segment (plain
//! layout, binary-insertion on out-of-order keys) that is queried alongside
//! the sealed segments through a k-way merge view — every kernel that
//! consumes cursors (`intersect_cursors`, `for_each_union_key`,
//! `wand_intersect`) works across segments unchanged, because the merged
//! cursor keeps the same `peek`/`advance`/`seek`/`block_max` contract.
//!
//! Lifecycle:
//!
//! * [`add`](SegmentedIndex::add) inserts into the realtime segment;
//! * [`delete_key`](SegmentedIndex::delete_key) tombstones a document key —
//!   cursors and iterators filter tombstoned postings immediately, in every
//!   segment;
//! * [`commit`](SegmentedIndex::commit) seals the realtime segment into an
//!   immutable segment in the store's layout (tombstoned postings are
//!   dropped at seal time), folding the two smallest sealed segments
//!   together whenever sealing would exceed [`MAX_SEGMENTS`]`- 1` sealed
//!   segments;
//! * [`merge`](SegmentedIndex::merge) is the full compaction: all sealed
//!   segments become one, tombstoned postings are purged everywhere
//!   (including the realtime segment), the tombstone set is cleared, and
//!   per-term [`TermStats`] are re-aggregated exactly.
//!
//! Invariant the statistics lean on: a document is ingested atomically into
//! exactly one segment, so segments are **document-disjoint** and per-term
//! `df`/`total_tf` sum exactly across segments. Between a delete and the
//! next `merge`, summed stats are upper bounds (the tombstoned document is
//! invisible to cursors but still counted in sealed-segment stats).

use super::dict::TermDict;
use super::posting::{IndexStats, Layout, Posting, PostingList, Postings, TermStats};
use crate::intern::Sym;
use std::collections::HashSet;

/// Maximum segments a term's postings may span: one realtime plus up to
/// `MAX_SEGMENTS - 1` sealed. [`SegmentedIndex::commit`] folds the two
/// smallest sealed segments together whenever sealing would exceed the cap,
/// so the [`Postings`] view can hold its segment references inline and stay
/// `Copy`.
pub const MAX_SEGMENTS: usize = 8;

/// The deleted-document set, keyed by [`Posting::key64`].
///
/// Deleting a key hides **every** posting whose `key64` equals it, in every
/// segment — for document-granular postings (a relational tuple's
/// occurrences all share one `(table, row)` key) one insert deletes the
/// whole document. Keys are never reused by ingest (rows are append-only),
/// so a tombstone can outlive many commits until a `merge` purges it.
#[derive(Debug, Clone, Default)]
pub struct TombstoneSet {
    dead: HashSet<u64>,
}

impl TombstoneSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Tombstone `key`; returns `false` when it was already dead.
    pub fn insert(&mut self, key: u64) -> bool {
        self.dead.insert(key)
    }

    pub fn contains(&self, key: u64) -> bool {
        self.dead.contains(&key)
    }

    pub fn len(&self) -> usize {
        self.dead.len()
    }

    pub fn is_empty(&self) -> bool {
        self.dead.is_empty()
    }

    pub fn clear(&mut self) {
        self.dead.clear()
    }
}

/// Segment census of a [`SegmentedIndex`], for gauges and commit reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentCounts {
    /// 1 while the realtime segment holds any postings, else 0.
    pub realtime: usize,
    /// Sealed (immutable) segments.
    pub sealed: usize,
}

impl SegmentCounts {
    /// Total segments a query currently merges over.
    pub fn total(&self) -> usize {
        self.realtime + self.sealed
    }
}

/// One immutable sealed segment: per-term lists indexed by the shared
/// dictionary's `Sym`s as of seal time (terms interned later simply have no
/// slot here), with stats cached per term.
#[derive(Debug, Clone)]
struct SealedSegment<P> {
    lists: Vec<PostingList<P>>,
    stats: Vec<TermStats>,
    postings: usize,
}

/// Term dictionary + generational posting segments: the mutable counterpart
/// of [`PostingStore`](super::PostingStore), sharing its whole query surface
/// (`sym`/`postings`/`term_stats`/`index_stats`) plus the mutation verbs
/// (`add`/`delete_key`/`commit`/`merge`).
#[derive(Debug, Clone)]
pub struct SegmentedIndex<P> {
    dict: TermDict,
    /// Realtime lists, indexed by `Sym`; always plain and always sorted
    /// (in-order appends are O(1), out-of-order inserts binary-search).
    realtime: Vec<PostingList<P>>,
    sealed: Vec<SealedSegment<P>>,
    tomb: TombstoneSet,
    layout: Layout,
    merges: u64,
}

impl<P> Default for SegmentedIndex<P> {
    fn default() -> Self {
        SegmentedIndex {
            dict: TermDict::new(),
            realtime: Vec::new(),
            sealed: Vec::new(),
            tomb: TombstoneSet::new(),
            layout: Layout::Plain,
            merges: 0,
        }
    }
}

impl<P: Posting> SegmentedIndex<P> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term` without adding a posting.
    pub fn intern(&mut self, term: &str) -> Sym {
        let sym = self.dict.intern(term);
        if sym.0 as usize >= self.realtime.len() {
            self.realtime.push(PostingList::default());
        }
        sym
    }

    /// Add one posting occurrence for `term` to the realtime segment.
    pub fn add(&mut self, term: &str, posting: P) -> Sym {
        let sym = self.intern(term);
        self.add_sym(sym, posting);
        sym
    }

    /// Add one posting occurrence for an already-interned term to the
    /// realtime segment, keeping the realtime list sorted.
    pub fn add_sym(&mut self, sym: Sym, posting: P) {
        while self.realtime.len() <= sym.0 as usize {
            self.realtime.push(PostingList::default());
        }
        self.realtime[sym.0 as usize].insert_coalesce(posting);
    }

    /// Tombstone every posting whose [`Posting::key64`] equals `key`, in
    /// every segment including realtime. Effective immediately on all read
    /// paths; per-term stats become upper bounds until the next
    /// [`merge`](Self::merge). Returns `false` when the key was already
    /// dead.
    pub fn delete_key(&mut self, key: u64) -> bool {
        self.tomb.insert(key)
    }

    /// The current tombstone set.
    pub fn tombstones(&self) -> &TombstoneSet {
        &self.tomb
    }

    /// Seal the realtime segment into an immutable segment in the store's
    /// [`Layout`]; tombstoned postings are dropped at seal time (their
    /// tombstones stay, covering older sealed segments). When sealing would
    /// leave more than [`MAX_SEGMENTS`]` - 1` sealed segments, the two
    /// smallest are folded together until the cap holds. No-op when the
    /// realtime segment is empty.
    pub fn commit(&mut self) -> SegmentCounts {
        if self.realtime.iter().any(|l| !l.is_empty()) {
            let layout = self.layout;
            let tomb = &self.tomb;
            let mut lists = Vec::with_capacity(self.realtime.len());
            let mut stats = Vec::with_capacity(self.realtime.len());
            let mut postings = 0usize;
            for l in &mut self.realtime {
                let mut sealed = std::mem::take(l);
                if !tomb.is_empty() {
                    sealed.retain(|p| !tomb.contains(p.key64()));
                }
                let st = sealed.finalize();
                sealed.apply_layout(layout);
                postings += sealed.len();
                stats.push(st);
                lists.push(sealed);
            }
            if postings > 0 {
                self.sealed.push(SealedSegment {
                    lists,
                    stats,
                    postings,
                });
            }
        }
        while self.sealed.len() > MAX_SEGMENTS - 1 {
            self.merge_smallest_pair();
        }
        self.segment_counts()
    }

    /// Full compaction: fold every sealed segment into one, purge
    /// tombstoned postings from every segment (realtime included), clear
    /// the tombstone set, and re-aggregate exact per-term [`TermStats`].
    /// No-op (not counted as a merge) when there is nothing to compact.
    pub fn merge(&mut self) -> SegmentCounts {
        if self.sealed.len() <= 1 && self.tomb.is_empty() {
            return self.segment_counts();
        }
        let segments = std::mem::take(&mut self.sealed);
        if !segments.is_empty() {
            let merged = self.merge_segments(segments);
            if merged.postings > 0 {
                self.sealed.push(merged);
            }
        }
        if !self.tomb.is_empty() {
            let tomb = std::mem::take(&mut self.tomb);
            for l in &mut self.realtime {
                l.retain(|p| !tomb.contains(p.key64()));
            }
        }
        self.merges += 1;
        self.segment_counts()
    }

    /// Fold the two sealed segments holding the fewest postings into one
    /// (background-style compaction step; tombstoned postings are purged
    /// from the pair as a side effect).
    fn merge_smallest_pair(&mut self) {
        debug_assert!(self.sealed.len() >= 2);
        let mut by_size: Vec<usize> = (0..self.sealed.len()).collect();
        by_size.sort_by_key(|&i| self.sealed[i].postings);
        let (a, b) = (by_size[0].min(by_size[1]), by_size[0].max(by_size[1]));
        let second = self.sealed.remove(b);
        let first = self.sealed.remove(a);
        let merged = self.merge_segments(vec![first, second]);
        self.sealed.push(merged);
        self.merges += 1;
    }

    /// Merge sealed segments into one: per-term k-way collect, sort,
    /// coalesce, tombstone purge, and exact stats recomputation.
    fn merge_segments(&self, segments: Vec<SealedSegment<P>>) -> SealedSegment<P> {
        let n_terms = segments.iter().map(|s| s.lists.len()).max().unwrap_or(0);
        let mut lists = Vec::with_capacity(n_terms);
        let mut stats = Vec::with_capacity(n_terms);
        let mut postings = 0usize;
        for i in 0..n_terms {
            let mut all: Vec<P> = Vec::new();
            for seg in &segments {
                if let Some(l) = seg.lists.get(i) {
                    all.extend(l.iter().filter(|p| !self.tomb.contains(p.key64())));
                }
            }
            let mut merged = PostingList::from_unsorted(all);
            let st = merged.finalize();
            merged.apply_layout(self.layout);
            postings += merged.len();
            stats.push(st);
            lists.push(merged);
        }
        SealedSegment {
            lists,
            stats,
            postings,
        }
    }

    /// Seal and fully compact into `layout` — the batch-build epilogue. A
    /// freshly built index ends as exactly one sealed segment, identical to
    /// a finalized [`PostingStore`](super::PostingStore).
    pub fn finalize_layout(&mut self, layout: Layout) {
        self.layout = layout;
        self.commit();
        self.merge();
    }

    /// The configured physical layout (sealed segments only; the realtime
    /// segment is always plain).
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Switch the layout, re-encoding sealed segments in place. Contents
    /// are unchanged.
    pub fn set_layout(&mut self, layout: Layout) {
        self.layout = layout;
        for seg in &mut self.sealed {
            for l in &mut seg.lists {
                l.apply_layout(layout);
            }
        }
    }

    /// Resolve a query term to its dense id — once per query term.
    pub fn sym(&self, term: &str) -> Option<Sym> {
        self.dict.lookup(term)
    }

    /// The postings of an interned term: a view merging the term's lists
    /// across every segment, with tombstoned postings filtered out. With
    /// one segment and no tombstones this is the same single-list view a
    /// [`PostingStore`](super::PostingStore) hands out.
    pub fn postings(&self, sym: Sym) -> Postings<'_, P> {
        let i = sym.0 as usize;
        let tomb = (!self.tomb.is_empty()).then_some(&self.tomb);
        Postings::from_segments(
            self.sealed
                .iter()
                .filter_map(|s| s.lists.get(i))
                .chain(self.realtime.get(i)),
            tomb,
        )
    }

    /// The postings of a term by string; the empty view if absent.
    pub fn postings_str(&self, term: &str) -> Postings<'_, P> {
        self.sym(term)
            .map(|s| self.postings(s))
            .unwrap_or_else(Postings::empty)
    }

    /// Per-term stats summed across segments. Exact while no tombstones
    /// are outstanding (segments are document-disjoint); an upper bound
    /// between a delete and the next [`merge`](Self::merge).
    pub fn term_stats(&self, sym: Sym) -> TermStats {
        let i = sym.0 as usize;
        let mut out = TermStats::default();
        for seg in &self.sealed {
            if let Some(st) = seg.stats.get(i) {
                out.df += st.df;
                out.total_tf += st.total_tf;
            }
        }
        if let Some(l) = self.realtime.get(i) {
            if !l.is_empty() {
                let st = l.stats();
                out.df += st.df;
                out.total_tf += st.total_tf;
            }
        }
        out
    }

    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Distinct terms indexed.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Total stored postings across all segments (tombstoned postings
    /// remain stored until a merge purges them).
    pub fn posting_count(&self) -> usize {
        self.sealed.iter().map(|s| s.postings).sum::<usize>()
            + self.realtime.iter().map(|l| l.len()).sum::<usize>()
    }

    /// All indexed terms, in id order.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.dict.terms()
    }

    /// Completed merge operations (pairwise folds and full compactions).
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Current segment census.
    pub fn segment_counts(&self) -> SegmentCounts {
        SegmentCounts {
            realtime: usize::from(self.realtime.iter().any(|l| !l.is_empty())),
            sealed: self.sealed.len(),
        }
    }

    /// Whole-index size figures summed across segments.
    pub fn index_stats(&self) -> IndexStats {
        let bytes = self
            .sealed
            .iter()
            .flat_map(|s| &s.lists)
            .chain(&self.realtime)
            .map(|l| l.heap_bytes())
            .sum();
        let blocks = self
            .sealed
            .iter()
            .flat_map(|s| &s.lists)
            .map(|l| l.num_blocks())
            .sum();
        IndexStats::new(self.term_count(), self.posting_count(), bytes).with_blocks(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::super::PostingStore;
    use super::*;

    /// Test posting mirroring the relational shape: `(doc, slot, tf)`,
    /// coalescing on equal `(doc, slot)`, `key64` = doc (slot-blind) so one
    /// tombstone hides a whole document.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Occ {
        doc: u32,
        slot: u32,
        tf: u32,
    }

    impl Posting for Occ {
        type SortKey = (u32, u32);
        const EXTRA_FIELDS: usize = 2;
        fn sort_key(&self) -> (u32, u32) {
            (self.doc, self.slot)
        }
        fn key64(&self) -> u64 {
            self.doc as u64
        }
        fn extra(&self, i: usize) -> u64 {
            match i {
                0 => self.slot as u64,
                _ => self.tf as u64,
            }
        }
        fn from_parts(key: u64, extras: &[u64]) -> Self {
            Occ {
                doc: key as u32,
                slot: extras[0] as u32,
                tf: extras[1] as u32,
            }
        }
        fn coalesce(&mut self, other: &Self) -> bool {
            if self.doc == other.doc && self.slot == other.slot {
                self.tf += other.tf;
                true
            } else {
                false
            }
        }
        fn occurrences(&self) -> u64 {
            self.tf as u64
        }
        fn same_doc(&self, other: &Self) -> bool {
            self.doc == other.doc
        }
    }

    fn occ(doc: u32, slot: u32) -> Occ {
        Occ { doc, slot, tf: 1 }
    }

    /// Deterministic little generator so the tests cover out-of-order and
    /// multi-slot inserts without a rand dependency.
    fn doc_stream(n: u32, seed: u64) -> Vec<Occ> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                occ(i, (x >> 33) as u32 % 3)
            })
            .collect()
    }

    #[test]
    fn fresh_build_matches_posting_store() {
        for layout in [Layout::Plain, Layout::Blocks] {
            let mut seg: SegmentedIndex<Occ> = SegmentedIndex::new();
            let mut store: PostingStore<Occ> = PostingStore::new();
            for p in doc_stream(500, 7) {
                seg.add("t", p);
                store.add("t", p);
            }
            seg.finalize_layout(layout);
            store.finalize_layout(layout);
            let (ss, sp) = (seg.sym("t").unwrap(), store.sym("t").unwrap());
            assert_eq!(seg.postings(ss).to_vec(), store.postings(sp).to_vec());
            assert_eq!(seg.term_stats(ss), store.term_stats(sp));
            assert_eq!(
                seg.index_stats().posting_bytes,
                store.index_stats().posting_bytes,
                "one sealed segment stores exactly what a finalized store does"
            );
            assert_eq!(
                seg.segment_counts(),
                SegmentCounts {
                    realtime: 0,
                    sealed: 1
                }
            );
        }
    }

    #[test]
    fn ingest_after_commit_equals_build_once() {
        for layout in [Layout::Plain, Layout::Blocks] {
            let all = doc_stream(800, 13);
            // build-once reference
            let mut once: SegmentedIndex<Occ> = SegmentedIndex::new();
            for p in &all {
                once.add("t", *p);
            }
            once.finalize_layout(layout);

            // build N, ingest M (out of order), commit
            let mut inc: SegmentedIndex<Occ> = SegmentedIndex::new();
            for p in &all[..500] {
                inc.add("t", *p);
            }
            inc.finalize_layout(layout);
            let mut tail: Vec<Occ> = all[500..].to_vec();
            tail.reverse(); // realtime must re-sort via binary insertion
            for p in tail {
                inc.add("t", p);
            }
            let sym = inc.sym("t").unwrap();
            let pre_commit = inc.postings(sym).to_vec();
            inc.commit();

            let o = once.sym("t").unwrap();
            assert_eq!(inc.postings(sym).to_vec(), once.postings(o).to_vec());
            assert_eq!(
                pre_commit,
                once.postings(o).to_vec(),
                "realtime already visible"
            );
            assert_eq!(inc.term_stats(sym), once.term_stats(o));
            assert_eq!(inc.posting_count(), once.posting_count());
            assert_eq!(inc.segment_counts().sealed, 2);
            inc.merge();
            assert_eq!(inc.segment_counts().sealed, 1);
            assert_eq!(inc.postings(sym).to_vec(), once.postings(o).to_vec());
            assert_eq!(inc.term_stats(sym), once.term_stats(o));
        }
    }

    #[test]
    fn tombstones_filter_immediately_and_merge_purges() {
        let mut ix: SegmentedIndex<Occ> = SegmentedIndex::new();
        for p in doc_stream(300, 3) {
            ix.add("t", p);
        }
        ix.finalize_layout(Layout::Blocks);
        for doc in 300..320 {
            ix.add("t", occ(doc, 0));
        }
        let sym = ix.sym("t").unwrap();
        let full = ix.postings(sym).to_vec();

        // delete one sealed doc and one realtime doc
        assert!(ix.delete_key(100));
        assert!(ix.delete_key(310));
        assert!(!ix.delete_key(100), "double delete reports already-dead");
        let live: Vec<Occ> = full
            .iter()
            .copied()
            .filter(|p| p.doc != 100 && p.doc != 310)
            .collect();
        assert_eq!(ix.postings(sym).to_vec(), live, "iter filters tombstones");
        let mut c = ix.postings(sym).cursor();
        c.seek(100);
        assert_ne!(c.peek().unwrap().doc, 100, "cursor filters tombstones");
        assert_eq!(ix.postings(sym).len(), live.len());

        // stats are an upper bound until merge, exact after
        let naive_df = live
            .iter()
            .map(|p| p.doc)
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        assert!(ix.term_stats(sym).df >= naive_df);
        let merges_before = ix.merges();
        ix.merge();
        assert_eq!(ix.merges(), merges_before + 1);
        assert!(ix.tombstones().is_empty());
        assert_eq!(ix.postings(sym).to_vec(), live);
        assert_eq!(
            ix.term_stats(sym).df,
            naive_df,
            "merge re-aggregates exactly"
        );
        let total: u64 = live.iter().map(|p| p.tf as u64).sum();
        assert_eq!(ix.term_stats(sym).total_tf, total);
    }

    #[test]
    fn commit_caps_sealed_segments_by_merging_smallest() {
        let mut ix: SegmentedIndex<Occ> = SegmentedIndex::new();
        let mut expect: Vec<Occ> = Vec::new();
        for round in 0..(2 * MAX_SEGMENTS as u32) {
            for d in 0..5 {
                let p = occ(round * 10 + d, 0);
                ix.add("t", p);
                expect.push(p);
            }
            ix.commit();
            assert!(
                ix.segment_counts().sealed < MAX_SEGMENTS,
                "cap violated: {:?}",
                ix.segment_counts()
            );
        }
        assert!(ix.merges() > 0, "cap enforcement actually merged");
        let sym = ix.sym("t").unwrap();
        assert_eq!(ix.postings(sym).to_vec(), expect);
        assert_eq!(ix.term_stats(sym).df, expect.len() as u64);
    }

    #[test]
    fn cross_segment_cursor_seek_and_block_bounds() {
        let mut ix: SegmentedIndex<Occ> = SegmentedIndex::new();
        // sealed block segment: even docs 0..2000
        for d in (0..2000).step_by(2) {
            ix.add("t", occ(d, 0));
        }
        ix.finalize_layout(Layout::Blocks);
        // realtime plain segment: odd docs
        for d in (1..2000).step_by(2) {
            ix.add("t", occ(d, 0));
        }
        let sym = ix.sym("t").unwrap();
        let mut c = ix.postings(sym).cursor();
        assert_eq!(
            c.block_max(),
            u64::MAX,
            "a plain realtime child makes the merged bound conservative"
        );
        assert_eq!(c.seek(777).unwrap().doc, 777);
        assert_eq!(c.next().unwrap().doc, 777);
        assert_eq!(c.peek().unwrap().doc, 778);
        // drain in order across segments
        let mut prev = 777;
        while let Some(p) = c.next() {
            assert!(p.doc > prev);
            prev = p.doc;
        }
        assert!(c.is_exhausted());
        assert_eq!(c.block_last_key(), None);

        // after commit both segments are sealed: bounds become finite again
        ix.commit();
        let c2 = ix.postings(sym).cursor();
        assert_ne!(
            c2.block_max(),
            u64::MAX,
            "sealed segments expose real bounds"
        );
        assert!(c2.block_last_key().is_some());
    }

    #[test]
    fn commit_of_fully_tombstoned_realtime_seals_nothing() {
        let mut ix: SegmentedIndex<Occ> = SegmentedIndex::new();
        ix.add("t", occ(1, 0));
        ix.delete_key(1);
        ix.commit();
        assert_eq!(
            ix.segment_counts(),
            SegmentCounts {
                realtime: 0,
                sealed: 0
            }
        );
        assert!(ix.postings_str("t").is_empty());
    }

    #[test]
    fn empty_and_absent_terms_behave() {
        let mut ix: SegmentedIndex<Occ> = SegmentedIndex::new();
        assert!(ix.postings_str("nope").is_empty());
        assert_eq!(ix.segment_counts(), SegmentCounts::default());
        assert_eq!(ix.merge(), SegmentCounts::default());
        assert_eq!(ix.merges(), 0, "empty merge is not counted");
        let s = ix.intern("t");
        assert_eq!(ix.term_stats(s), TermStats::default());
        assert_eq!(ix.postings(s).len(), 0);
    }
}
