//! Facet vocabulary types: what a caller asks for and what comes back.
//!
//! Faceted search (the exploration half of the tutorial, slides 140–166)
//! annotates a result set with per-attribute value distributions so the user
//! can drill down instead of reformulating. These types are the shared
//! request/response vocabulary; the engines do the counting. Keeping them
//! here — the dependency-free crate — lets the request surface
//! (`SearchRequest`), the relational executors, and the exploration crate all
//! speak them without a dependency cycle.

/// One requested facet over a relational attribute.
///
/// Attributes are named `"table.column"` against the engine's schema; the
/// engine resolves the name once per query and rejects unknown attributes
/// at parse time.
#[derive(Debug, Clone, PartialEq)]
pub enum FacetSpec {
    /// Count distinct values of a (typically categorical) column, returning
    /// the `top_n` most frequent.
    Terms { attr: String, top_n: usize },
    /// Bucket a numeric column into caller-defined half-open ranges.
    Range {
        attr: String,
        buckets: Vec<RangeBucket>,
    },
}

impl FacetSpec {
    /// Convenience constructor for a terms facet.
    pub fn terms(attr: impl Into<String>, top_n: usize) -> Self {
        FacetSpec::Terms {
            attr: attr.into(),
            top_n,
        }
    }

    /// Convenience constructor for a range facet.
    pub fn range(attr: impl Into<String>, buckets: Vec<RangeBucket>) -> Self {
        FacetSpec::Range {
            attr: attr.into(),
            buckets,
        }
    }

    /// The `"table.column"` attribute this facet counts.
    pub fn attr(&self) -> &str {
        match self {
            FacetSpec::Terms { attr, .. } | FacetSpec::Range { attr, .. } => attr,
        }
    }
}

/// A half-open numeric bucket `[lo, hi)` for a range facet.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeBucket {
    /// Display label, e.g. `"2000-2009"`.
    pub label: String,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl RangeBucket {
    pub fn new(label: impl Into<String>, lo: f64, hi: f64) -> Self {
        RangeBucket {
            label: label.into(),
            lo,
            hi,
        }
    }

    /// Whether `v` falls in this bucket.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v < self.hi
    }
}

/// One counted facet value (a distinct term or a range-bucket label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FacetCount {
    pub value: String,
    pub count: u64,
}

/// The counted distribution for one requested facet, in the response.
///
/// Terms facets are sorted by descending count, ties broken by ascending
/// value, and truncated to the requested `top_n`; range facets list every
/// requested bucket in request order (zero counts included) so the caller
/// can render a stable histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FacetCounts {
    /// The `"table.column"` attribute counted.
    pub attr: String,
    /// Counted values, ordered as described above.
    pub values: Vec<FacetCount>,
}

impl FacetCounts {
    /// Total count across all listed values.
    pub fn total(&self) -> u64 {
        self.values.iter().map(|v| v.count).sum()
    }

    /// Look up one value's count (0 if absent or truncated away).
    pub fn count_of(&self, value: &str) -> u64 {
        self.values
            .iter()
            .find(|v| v.value == value)
            .map_or(0, |v| v.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_bucket_is_half_open() {
        let b = RangeBucket::new("2000s", 2000.0, 2010.0);
        assert!(b.contains(2000.0));
        assert!(b.contains(2009.9));
        assert!(!b.contains(2010.0));
        assert!(!b.contains(1999.9));
    }

    #[test]
    fn facet_spec_attr_accessor() {
        assert_eq!(
            FacetSpec::terms("conference.name", 5).attr(),
            "conference.name"
        );
        let r = FacetSpec::range(
            "conference.year",
            vec![RangeBucket::new("00s", 2000.0, 2010.0)],
        );
        assert_eq!(r.attr(), "conference.year");
    }

    #[test]
    fn counts_lookup_and_total() {
        let c = FacetCounts {
            attr: "conference.name".into(),
            values: vec![
                FacetCount {
                    value: "SIGMOD".into(),
                    count: 3,
                },
                FacetCount {
                    value: "VLDB".into(),
                    count: 1,
                },
            ],
        };
        assert_eq!(c.total(), 4);
        assert_eq!(c.count_of("SIGMOD"), 3);
        assert_eq!(c.count_of("ICDE"), 0);
    }
}
