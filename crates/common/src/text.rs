//! Tokenization shared by every full-text index in kwdb.
//!
//! All indexes (relational inverted index, XML keyword lists, graph node
//! content) must agree on what a "keyword" is, so the tokenizer lives here.
//! Tokens are lower-cased maximal runs of alphanumeric characters, except
//! that a small set of intra-word punctuation (`&`, `+`, `'`) is kept so that
//! product-style tokens such as `at&t` or `o'reilly` survive — the tutorial's
//! query-cleaning example depends on `at&t` being a single token.

/// A token with its character offset in the source string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    /// Byte offset of the token start in the original string.
    pub offset: usize,
}

fn is_token_char(c: char) -> bool {
    c.is_alphanumeric() || c == '&' || c == '+' || c == '\''
}

/// Split `input` into normalized tokens with offsets.
pub fn tokenize_spans(input: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in input.char_indices() {
        if is_token_char(c) {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push(Token {
                text: normalize(&input[s..i]),
                offset: s,
            });
        }
    }
    if let Some(s) = start {
        out.push(Token {
            text: normalize(&input[s..]),
            offset: s,
        });
    }
    out
}

/// Split `input` into normalized tokens.
pub fn tokenize(input: &str) -> Vec<String> {
    tokenize_spans(input).into_iter().map(|t| t.text).collect()
}

/// Normalize a single keyword: lower-case and trim stray punctuation kept by
/// the tokenizer from the edges (`'90s` → `'90s` stays, `word'` → `word`).
pub fn normalize(word: &str) -> String {
    word.trim_matches(|c| c == '\'' || c == '+').to_lowercase()
}

/// Normalize one *index term*: strip the XML attribute marker prefix (`@`)
/// and apply [`normalize`].
///
/// Every term that enters a dictionary — tokenized text, XML element and
/// attribute labels, graph node content — and every query-side keyword goes
/// through this single function, so an indexed term and a query term can
/// never disagree on normal form. (Tokenized text never contains `@`, so for
/// plain tokens this is exactly [`normalize`].)
pub fn normalize_term(term: &str) -> String {
    normalize(term.trim_start_matches('@'))
}

/// Parse a keyword query string into its normalized keyword list,
/// de-duplicating while preserving first-occurrence order (the AND semantics
/// used throughout the tutorial treat repeated keywords as one).
pub fn parse_query(q: &str) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    tokenize(q)
        .into_iter()
        .filter(|t| !t.is_empty() && seen.insert(t.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("Keyword Search on DB"),
            vec!["keyword", "search", "on", "db"]
        );
    }

    #[test]
    fn punctuation_splits() {
        assert_eq!(tokenize("a,b;c.d"), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn at_and_t_survives() {
        assert_eq!(tokenize("apple ipad at&t"), vec!["apple", "ipad", "at&t"]);
    }

    #[test]
    fn apostrophes_inside_survive_edges_trim() {
        assert_eq!(tokenize("o'reilly books'"), vec!["o'reilly", "books"]);
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = tokenize_spans("ab  cd");
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn unicode_tokens() {
        assert_eq!(tokenize("Müller café"), vec!["müller", "café"]);
    }

    #[test]
    fn parse_query_dedups_preserving_order() {
        assert_eq!(parse_query("XML john XML"), vec!["xml", "john"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ,, ").is_empty());
    }

    #[test]
    fn normalize_term_strips_attribute_marker_and_agrees_with_tokens() {
        assert_eq!(normalize_term("@Year"), "year");
        assert_eq!(normalize_term("Title"), "title");
        // for anything the tokenizer can emit, normalize_term is a no-op
        for tok in tokenize("Keyword at&t o'reilly '90s") {
            assert_eq!(normalize_term(&tok), tok);
        }
    }
}
