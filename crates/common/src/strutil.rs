//! String-distance utilities backing query cleaning and auto-completion.

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
///
/// Two-row dynamic program: `O(|a|·|b|)` time, `O(min)` space. Operates on
/// Unicode scalar values, not bytes.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Damerau–Levenshtein distance (adds adjacent transposition), the error
/// model the noisy-channel speller uses: `datbase → database` is distance 1.
#[allow(clippy::needless_range_loop)] // the DP recurrence reads best with indices
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three-row DP (restricted Damerau / optimal string alignment).
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for j in 0..=m {
        d[0][j] = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut v = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                v = v.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = v;
        }
    }
    d[n][m]
}

/// Bounded edit-distance check: returns `Some(d)` iff
/// `levenshtein(a,b) = d ≤ max`, bailing out early otherwise. Used on the hot
/// path of confusion-set construction where most vocabulary words are far.
pub fn levenshtein_within(a: &str, b: &str, max: usize) -> Option<usize> {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la.abs_diff(lb) > max {
        return None;
    }
    let d = levenshtein(a, b);
    (d <= max).then_some(d)
}

/// Length (in chars) of the longest common prefix of `a` and `b`.
pub fn common_prefix_len(a: &str, b: &str) -> usize {
    a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn rand_string(rng: &mut Rng, alphabet: &[char], max_len: usize) -> String {
        let len = rng.gen_index(max_len + 1);
        (0..len).map(|_| *rng.choose(alphabet)).collect()
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("datbase", "database"), 1);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(levenshtein("ipda", "ipad"), 2);
        assert_eq!(damerau_levenshtein("ipda", "ipad"), 1);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("", "ab"), 2);
    }

    #[test]
    fn within_bound() {
        assert_eq!(levenshtein_within("ipd", "ipad", 1), Some(1));
        assert_eq!(levenshtein_within("ipd", "ipad", 2), Some(1));
        assert_eq!(levenshtein_within("ipd", "thinkpad", 2), None);
        assert_eq!(levenshtein_within("a", "abcd", 2), None); // length filter
    }

    #[test]
    fn prefix_len() {
        assert_eq!(common_prefix_len("sigmod", "sigir"), 3);
        assert_eq!(common_prefix_len("", "a"), 0);
        assert_eq!(common_prefix_len("same", "same"), 4);
    }

    #[test]
    fn levenshtein_symmetric() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let a = rand_string(&mut rng, &['a', 'b', 'c'], 8);
            let b = rand_string(&mut rng, &['a', 'b', 'c'], 8);
            assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn levenshtein_identity() {
        let mut rng = Rng::seed_from_u64(2);
        let alphabet: Vec<char> = ('a'..='z').collect();
        for _ in 0..200 {
            let a = rand_string(&mut rng, &alphabet, 10);
            assert_eq!(levenshtein(&a, &a), 0, "{a:?}");
        }
    }

    #[test]
    fn damerau_le_levenshtein() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..200 {
            let a = rand_string(&mut rng, &['a', 'b', 'c'], 8);
            let b = rand_string(&mut rng, &['a', 'b', 'c'], 8);
            assert!(
                damerau_levenshtein(&a, &b) <= levenshtein(&a, &b),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn triangle_inequality() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..200 {
            let a = rand_string(&mut rng, &['a', 'b'], 6);
            let b = rand_string(&mut rng, &['a', 'b'], 6);
            let c = rand_string(&mut rng, &['a', 'b'], 6);
            assert!(
                levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c),
                "{a:?} {b:?} {c:?}"
            );
        }
    }
}
