//! A simple string interner.
//!
//! The XML substrate interns element labels and the graph substrate interns
//! node kinds; both need cheap `Copy` ids with O(1) both-way lookup.

use std::collections::HashMap;

/// Interned-string id. Ids are dense, starting at 0, in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Sym>,
    strings: Vec<String>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its stable id.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Look up an already-interned string.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolve an id back to its string. Panics on a foreign `Sym`.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(Sym, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("paper");
        let b = i.intern("paper");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let a = i.intern("author");
        let p = i.intern("paper");
        assert_eq!(i.resolve(a), "author");
        assert_eq!(i.resolve(p), "paper");
        assert_eq!(i.get("author"), Some(a));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn ids_are_dense_insertion_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), Sym(0));
        assert_eq!(i.intern("b"), Sym(1));
        let pairs: Vec<_> = i.iter().collect();
        assert_eq!(pairs, vec![(Sym(0), "a"), (Sym(1), "b")]);
    }
}
