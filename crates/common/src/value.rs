//! Typed cell values shared by the relational, XML and graph substrates.

use std::cmp::Ordering;
use std::fmt;

/// The type of a [`Value`]; doubles as a column type in relational schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Int,
    Float,
    Text,
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Text => "text",
            ValueType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A dynamically typed cell value.
///
/// `Float` is stored as raw bits for `Eq`/`Hash`; NaN never enters a database
/// through the public constructors, so bitwise equality matches semantic
/// equality in practice.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
}

impl Value {
    /// Human-readable type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Bool(_) => "bool",
        }
    }

    /// The [`ValueType`] of a non-null value.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
            Value::Bool(_) => Some(ValueType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Integral floats hash like their integer counterparts so that
            // Int(2) == Float(2.0) implies equal hashes.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < Bool < numeric < Text; numerics compare by value.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let x = a.as_f64().unwrap();
                let y = b.as_f64().unwrap();
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("ab").as_text(), Some("ab"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.value_type(), None);
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
    }

    #[test]
    fn cross_numeric_equality_and_hash() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn ordering_across_types() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Int(5) < Value::Text("a".into()));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::from("x y").to_string(), "x y");
    }

    #[test]
    fn type_display() {
        assert_eq!(ValueType::Int.to_string(), "int");
        assert_eq!(ValueType::Text.to_string(), "text");
    }
}
