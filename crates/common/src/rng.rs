//! A small, seedable, dependency-free PRNG for the whole workspace.
//!
//! Everything random in kwdb — synthetic datasets, sampled query logs,
//! property-style tests, benchmark inputs — must be deterministic given a
//! seed so experiments reproduce bit-for-bit and the build stays hermetic
//! (no crates-io `rand`). The generator is xorshift64* seeded through
//! SplitMix64, which is plenty for workload synthesis (it is **not** a
//! cryptographic RNG).

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. Any seed (including 0) is fine: the seed is
    /// first diffused through SplitMix64 so nearby seeds diverge.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 step — guarantees a non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high-quality bits → [0, 1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in a half-open or inclusive integer range,
    /// e.g. `rng.gen_range(0..10)` or `rng.gen_range(1..=5)`.
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform index in `0..n` (panics if `n == 0`).
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index(0)");
        // Multiply-shift bounded sampling; bias is < 2^-64 per draw, far
        // below anything dataset synthesis can observe.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

/// Integer range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_index(7);
            assert!(i < 7);
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
