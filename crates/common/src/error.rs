//! Workspace-wide error type.

use std::fmt;

/// Convenient result alias used across all kwdb crates.
pub type Result<T> = std::result::Result<T, KwdbError>;

/// Errors surfaced by kwdb substrates and search engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KwdbError {
    /// A named schema object (table, column, label) does not exist.
    UnknownObject(String),
    /// A value had the wrong type for the operation.
    TypeMismatch {
        expected: &'static str,
        found: &'static str,
    },
    /// Schema-level constraint violation (duplicate table, bad FK, …).
    Schema(String),
    /// Malformed input (XML text, query syntax, …).
    Parse(String),
    /// A query referenced something the engine cannot satisfy.
    InvalidQuery(String),
    /// A text index was never built for data the query needs; call the
    /// engine's build path before querying.
    IndexNotBuilt,
    /// The text index lags behind the data generation it is queried at:
    /// mutations happened through a path that does not maintain the index
    /// (e.g. raw `insert` after a build). Rebuild, or mutate via `ingest`.
    IndexStale {
        /// Generation the index was last built/maintained at.
        indexed: u64,
        /// Current data generation.
        current: u64,
    },
    /// A mutation was routed to an engine registered read-only (no
    /// `MutableEngine` surface). Register it via `register_mutable`.
    ReadOnly(String),
    /// An internal invariant was violated; indicates a bug in kwdb.
    Internal(String),
}

impl fmt::Display for KwdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KwdbError::UnknownObject(name) => write!(f, "unknown object: {name}"),
            KwdbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            KwdbError::Schema(msg) => write!(f, "schema error: {msg}"),
            KwdbError::Parse(msg) => write!(f, "parse error: {msg}"),
            KwdbError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            KwdbError::IndexNotBuilt => {
                write!(f, "text index not built: build it before querying")
            }
            KwdbError::IndexStale { indexed, current } => write!(
                f,
                "text index is stale: built at generation {indexed}, data at {current} \
                 (rebuild, or mutate via ingest)"
            ),
            KwdbError::ReadOnly(name) => {
                write!(
                    f,
                    "engine {name} is read-only: register it as mutable to ingest"
                )
            }
            KwdbError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for KwdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            KwdbError::UnknownObject("paper".into()).to_string(),
            "unknown object: paper"
        );
        assert_eq!(
            KwdbError::TypeMismatch {
                expected: "int",
                found: "text"
            }
            .to_string(),
            "type mismatch: expected int, found text"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&KwdbError::Parse("x".into()));
    }
}
