//! E04 bench: SLCA algorithms vs |S_min| at fixed |S_max|, plus ELCA.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_datasets::xmlgen::generate_slca_workload;
use kwdb_xml::XmlIndex;
use kwdb_xmlsearch::elca::elca;
use kwdb_xmlsearch::slca::{multiway_slca, slca_indexed_lookup_eager, slca_scan_eager};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml_lca");
    for n_rare in [50usize, 500, 5000] {
        let tree = generate_slca_workload(50, 20_000, n_rare, 7);
        let ix = XmlIndex::build(&tree);
        let kws = ["common", "rare"];
        group.bench_with_input(BenchmarkId::new("ile", n_rare), &n_rare, |b, _| {
            b.iter(|| slca_indexed_lookup_eager(&tree, &ix, &kws).unwrap().0.len())
        });
        group.bench_with_input(BenchmarkId::new("scan", n_rare), &n_rare, |b, _| {
            b.iter(|| slca_scan_eager(&tree, &ix, &kws).unwrap().0.len())
        });
        group.bench_with_input(BenchmarkId::new("multiway", n_rare), &n_rare, |b, _| {
            b.iter(|| multiway_slca(&tree, &ix, &kws).unwrap().0.len())
        });
        group.bench_with_input(BenchmarkId::new("elca", n_rare), &n_rare, |b, _| {
            b.iter(|| elca(&tree, &ix, &kws).unwrap().0.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
