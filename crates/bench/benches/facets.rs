//! E15 bench: greedy navigation-tree construction vs result-set size.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_explore::facets::{build_fixed, build_greedy, FacetTable, LogModel, LogQuery};

fn table(n: usize) -> FacetTable {
    let rows = (0..n)
        .map(|i| {
            vec![
                ["redmond", "bellevue", "seattle", "kirkland"][i % 4].to_string(),
                ["500-1000", "1000-1500", "1500-2000"][i % 3].to_string(),
                ["yes", "no"][i % 2].to_string(),
                ["studio", "1br", "2br", "3br", "loft"][i % 5].to_string(),
            ]
        })
        .collect();
    FacetTable::new(
        vec![
            "neighborhood".into(),
            "price".into(),
            "pets".into(),
            "layout".into(),
        ],
        rows,
    )
}

fn bench(c: &mut Criterion) {
    let log: Vec<LogQuery> = (0..30)
        .map(|i| {
            vec![(
                ["price", "neighborhood", "layout"][i % 3].to_string(),
                format!("v{}", i % 4),
            )]
        })
        .collect();
    let mut group = c.benchmark_group("facets");
    for n in [100usize, 1000] {
        let t = table(n);
        let model = LogModel::new(&log);
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, &n| {
            b.iter(|| build_greedy(&t, &model, (0..n).collect(), 3).expected_cost(&model))
        });
        group.bench_with_input(BenchmarkId::new("fixed", n), &n, |b, &n| {
            b.iter(|| {
                build_fixed(
                    &t,
                    &[
                        "pets".to_string(),
                        "price".to_string(),
                        "layout".to_string(),
                    ],
                    (0..n).collect(),
                )
                .expected_cost(&model)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
