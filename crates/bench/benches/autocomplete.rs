//! E10 bench: trie prefix ranges and TASTIER pruning vs vocabulary size.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_datasets::products::generate_laptops;
use kwdb_qclean::autocomplete::{tastier_search, ForwardIndex, Trie};
use kwdb_qclean::spell::SpellCorrector;
use kwdb_relational::TupleId;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("autocomplete");
    for n in [100usize, 1000] {
        let (db, table) = generate_laptops(n, 9);
        let ix = db.text_index().expect("bench database is indexed");
        let trie = Trie::build(ix.terms().map(|t| t.to_string()));
        let mut fwd = ForwardIndex::new();
        for (rid, _) in db.table(table).iter() {
            for tok in db.tuple_tokens(TupleId::new(table, rid)) {
                if let Some(id) = trie.token_id(&tok) {
                    fwd.add(rid.0 as u64, id);
                }
            }
        }
        group.bench_with_input(BenchmarkId::new("prefix_range", n), &n, |b, _| {
            b.iter(|| trie.prefix_range("lap"))
        });
        group.bench_with_input(BenchmarkId::new("tastier", n), &n, |b, _| {
            b.iter(|| tastier_search(&trie, &fwd, &["len", "lap"]).1.len())
        });
        // spelling correction over the same vocabulary for comparison
        let sc =
            SpellCorrector::from_vocab(ix.terms().map(|t| (t.to_string(), ix.doc_freq(t) as u64)));
        group.bench_with_input(BenchmarkId::new("confusion_set", n), &n, |b, _| {
            b.iter(|| sc.confusion_set("laptp", 2).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
