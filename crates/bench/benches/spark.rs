//! E07 bench: SPARK's non-monotonic top-k algorithms, including the
//! block-size ablation.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_datasets::{generate_dblp, DblpConfig};
use kwdb_relational::ExecStats;
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::spark::{block_pipeline, naive_spark, skyline_sweep};
use kwdb_relsearch::topk::TopKQuery;
use kwdb_relsearch::{ResultScorer, TupleSets};

fn bench(c: &mut Criterion) {
    let db = generate_dblp(&DblpConfig {
        n_authors: 100,
        n_papers: 300,
        ..Default::default()
    });
    let scorer = ResultScorer::new(&db);
    let keywords = vec!["data".to_string(), "search".to_string()];
    let ts = TupleSets::build(&db, &keywords).unwrap();
    let oracle = MaskOracle::from_tuplesets(&ts);
    let mut generator = CnGenerator::new(
        db.schema_graph(),
        &oracle,
        CnGenConfig {
            max_size: 4,
            dedupe: true,
            max_cns: 200,
        },
    );
    let cns = generator.generate();
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &keywords,
    };
    let mut group = c.benchmark_group("spark");
    group.sample_size(15);
    group.bench_function("naive", |b| {
        b.iter(|| naive_spark(&q, 10, &ExecStats::new()).len())
    });
    group.bench_function("skyline_sweep", |b| {
        b.iter(|| skyline_sweep(&q, 10, &ExecStats::new()).len())
    });
    for block in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("block_pipeline", block),
            &block,
            |b, &block| b.iter(|| block_pipeline(&q, 10, block, &ExecStats::new()).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
