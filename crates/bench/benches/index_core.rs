//! Index-core bench: the shared intersection kernels across adversarial
//! list-size ratios, the lm/rm binary probes, and posting-store builds.
//!
//! The ratio sweep shows where galloping overtakes linear merge — the
//! crossover the `GALLOP_RATIO` dispatch constant encodes.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_common::index::{kernels, Posting, PostingStore};
use kwdb_common::Rng;

/// A minimal document-id posting for the store-build bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Doc(u32);

impl Posting for Doc {
    type SortKey = u32;
    fn sort_key(&self) -> u32 {
        self.0
    }
    fn key64(&self) -> u64 {
        self.0 as u64
    }
    fn from_parts(key: u64, _extras: &[u64]) -> Self {
        Doc(key as u32)
    }
    fn coalesce(&mut self, other: &Self) -> bool {
        self == other
    }
    fn occurrences(&self) -> u64 {
        1
    }
    fn same_doc(&self, other: &Self) -> bool {
        self == other
    }
}

/// Sorted list of `len` values with average gap `gap` (strictly increasing).
fn sorted_list(rng: &mut Rng, len: usize, gap: u32) -> Vec<u32> {
    let mut v = Vec::with_capacity(len);
    let mut x = 0u32;
    for _ in 0..len {
        x += 1 + rng.gen_range(0u32..gap.max(1));
        v.push(x);
    }
    v
}

fn bench_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_intersect");
    let mut rng = Rng::seed_from_u64(7);
    let small = sorted_list(&mut rng, 1_000, 512);
    for ratio in [1usize, 8, 64, 512] {
        // matched value ranges, so the lists genuinely interleave
        let large = sorted_list(&mut rng, 1_000 * ratio, (512 / ratio).max(1) as u32);
        group.bench_with_input(BenchmarkId::new("linear", ratio), &ratio, |b, _| {
            b.iter(|| kernels::intersect_linear(&small, &large).len())
        });
        group.bench_with_input(BenchmarkId::new("gallop", ratio), &ratio, |b, _| {
            b.iter(|| kernels::intersect_gallop(&small, &large).len())
        });
        group.bench_with_input(BenchmarkId::new("auto", ratio), &ratio, |b, _| {
            b.iter(|| kernels::intersect(&small, &large).len())
        });
    }
    group.finish();
}

fn bench_probes(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_probes");
    let mut rng = Rng::seed_from_u64(8);
    let list = sorted_list(&mut rng, 100_000, 8);
    let max = *list.last().unwrap();
    let targets: Vec<u32> = (0..1024).map(|_| rng.gen_range(0..max)).collect();
    group.bench_function("rm_1024", |b| {
        b.iter(|| {
            targets
                .iter()
                .filter(|&&t| kernels::right_match(&list, t).is_some())
                .count()
        })
    });
    group.bench_function("lm_1024", |b| {
        b.iter(|| {
            targets
                .iter()
                .filter(|&&t| kernels::left_match(&list, t).is_some())
                .count()
        })
    });
    group.finish();
}

fn bench_store_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_store_build");
    group.sample_size(10);
    let mut rng = Rng::seed_from_u64(9);
    // 50k occurrences over a 1k-term vocabulary, postings out of order so
    // finalize really sorts.
    let occurrences: Vec<(String, Doc)> = (0..50_000)
        .map(|_| {
            let term = format!("t{}", rng.gen_index(1_000));
            let doc = rng.gen_range(0u32..1 << 20);
            (term, Doc(doc))
        })
        .collect();
    group.bench_function("50k_postings_1k_terms", |b| {
        b.iter(|| {
            let mut store: PostingStore<Doc> = PostingStore::new();
            for (term, doc) in &occurrences {
                store.add(term, *doc);
            }
            store.finalize();
            store.posting_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_intersect, bench_probes, bench_store_build);
criterion_main!(benches);
