//! E02 bench: candidate-network generation cost vs keyword count and Tmax,
//! with the canonical-dedup ablation.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_relational::database::dblp_schema;
use kwdb_relational::Database;
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};

fn bench(c: &mut Criterion) {
    let mut db = Database::new();
    dblp_schema(&mut db).unwrap();
    let tables: Vec<_> = ["author", "paper", "conference", "write", "cite"]
        .iter()
        .map(|t| db.table_id(t).unwrap())
        .collect();
    let mut group = c.benchmark_group("cn_generation");
    for k in [2usize, 3] {
        for tmax in [4usize, 5] {
            let oracle = MaskOracle::schema_level(&tables, k);
            group.bench_with_input(
                BenchmarkId::new(format!("k{k}"), tmax),
                &tmax,
                |b, &tmax| {
                    b.iter(|| {
                        let mut g = CnGenerator::new(
                            db.schema_graph(),
                            &oracle,
                            CnGenConfig {
                                max_size: tmax,
                                dedupe: true,
                                max_cns: 0,
                            },
                        );
                        g.generate().len()
                    })
                },
            );
        }
    }
    // ablation: dedupe off (bounded so it terminates quickly)
    let oracle = MaskOracle::schema_level(&tables, 2);
    group.bench_function("k2_tmax4_nodedup", |b| {
        b.iter(|| {
            let mut g = CnGenerator::new(
                db.schema_graph(),
                &oracle,
                CnGenConfig {
                    max_size: 4,
                    dedupe: false,
                    max_cns: 5000,
                },
            );
            g.generate().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
