//! E05/E20 bench: graph engines on random graphs of growing size.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_datasets::graphs::{generate_graph, GraphConfig};
use kwdb_graphsearch::{blinks::Blinks, BanksI, BanksII, Dpbf};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_search");
    group.sample_size(15);
    let kws = ["kw0", "kw1", "kw2"];
    for n in [1000usize, 5000] {
        let g = generate_graph(&GraphConfig {
            n_nodes: n,
            n_keywords: 3,
            matches_per_keyword: 10,
            seed: 11,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("dpbf", n), &n, |b, _| {
            b.iter(|| Dpbf::new(&g).search(&kws, 1).len())
        });
        group.bench_with_input(BenchmarkId::new("banks1", n), &n, |b, _| {
            b.iter(|| BanksI::new(&g).search(&kws, 1).len())
        });
        group.bench_with_input(BenchmarkId::new("banks2", n), &n, |b, _| {
            b.iter(|| BanksII::new(&g).search(&kws, 1).len())
        });
        group.bench_with_input(BenchmarkId::new("blinks_query", n), &n, |b, _| {
            let bl = Blinks::new(&g);
            let ix = bl.build_index(&kws);
            b.iter(|| bl.search(&ix, &kws, 1).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
