//! E19 bench: hub-index build/query vs plain Dijkstra, and the
//! hub-selection ablation.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_datasets::graphs::{generate_graph, GraphConfig};
use kwdb_graph::hub::{HubIndex, HubSelection};
use kwdb_graph::shortest::distance;
use kwdb_graph::NodeId;

fn bench(c: &mut Criterion) {
    let g = generate_graph(&GraphConfig {
        n_nodes: 400,
        avg_degree: 3.0,
        seed: 5,
        ..Default::default()
    });
    let mut group = c.benchmark_group("hub_index");
    group.sample_size(10);
    for (hubs, name) in [(10usize, "degree10"), (40, "degree40")] {
        group.bench_with_input(BenchmarkId::new("build", name), &hubs, |b, &h| {
            b.iter(|| HubIndex::build(&g, h, HubSelection::HighestDegree).entry_count())
        });
    }
    group.bench_function("build_strided40", |b| {
        b.iter(|| HubIndex::build(&g, 40, HubSelection::Strided { stride: 9 }).entry_count())
    });
    let ix = HubIndex::build(&g, 40, HubSelection::HighestDegree);
    group.bench_function("query_indexed", |b| {
        b.iter(|| ix.distance(NodeId(3), NodeId(397)))
    });
    group.bench_function("query_dijkstra", |b| {
        b.iter(|| distance(&g, NodeId(3), NodeId(397)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
