//! E22 bench: real multi-threaded CN execution under the different
//! partitioning strategies.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_datasets::{generate_dblp, DblpConfig};
use kwdb_relational::ExecStats;
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::parallel::{
    estimate_cost, execute_parallel, partition_lpt, partition_sharing_aware,
};
use kwdb_relsearch::TupleSets;

fn bench(c: &mut Criterion) {
    let db = generate_dblp(&DblpConfig {
        n_authors: 120,
        n_papers: 400,
        ..Default::default()
    });
    let keywords = vec!["data".to_string(), "query".to_string()];
    let ts = TupleSets::build(&db, &keywords).unwrap();
    let oracle = MaskOracle::from_tuplesets(&ts);
    let mut generator = CnGenerator::new(
        db.schema_graph(),
        &oracle,
        CnGenConfig {
            max_size: 5,
            dedupe: true,
            max_cns: 200,
        },
    );
    let cns = generator.generate();
    let costs: Vec<f64> = cns.iter().map(|cn| estimate_cost(&db, &ts, cn)).collect();
    let mut group = c.benchmark_group("parallel_cn");
    group.sample_size(10);
    for cores in [1usize, 4] {
        let lpt = partition_lpt(&costs, cores);
        group.bench_with_input(BenchmarkId::new("lpt", cores), &cores, |b, &cores| {
            b.iter(|| execute_parallel(&db, &ts, &cns, &lpt, cores, &ExecStats::new()).len())
        });
        let aware = partition_sharing_aware(&cns, &costs, cores);
        group.bench_with_input(
            BenchmarkId::new("sharing_aware", cores),
            &cores,
            |b, &cores| {
                b.iter(|| execute_parallel(&db, &ts, &cns, &aware, cores, &ExecStats::new()).len())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
