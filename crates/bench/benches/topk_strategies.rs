//! E06 bench: Naive vs Sparse vs Global Pipeline at different k.

use kwdb_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kwdb_datasets::{generate_dblp, DblpConfig};
use kwdb_relational::ExecStats;
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::topk::{global_pipeline, naive, sparse, TopKQuery};
use kwdb_relsearch::{ResultScorer, TupleSets};

fn bench(c: &mut Criterion) {
    let db = generate_dblp(&DblpConfig {
        n_authors: 120,
        n_papers: 400,
        ..Default::default()
    });
    let scorer = ResultScorer::new(&db);
    let keywords = vec!["data".to_string(), "query".to_string()];
    let ts = TupleSets::build(&db, &keywords).unwrap();
    let oracle = MaskOracle::from_tuplesets(&ts);
    let mut generator = CnGenerator::new(
        db.schema_graph(),
        &oracle,
        CnGenConfig {
            max_size: 4,
            dedupe: true,
            max_cns: 300,
        },
    );
    let cns = generator.generate();
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &keywords,
    };
    let mut group = c.benchmark_group("topk_strategies");
    group.sample_size(15);
    for k in [1usize, 10] {
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, &k| {
            b.iter(|| naive(&q, k, &ExecStats::new()).len())
        });
        group.bench_with_input(BenchmarkId::new("sparse", k), &k, |b, &k| {
            b.iter(|| sparse(&q, k, &ExecStats::new()).len())
        });
        group.bench_with_input(BenchmarkId::new("pipeline", k), &k, |b, &k| {
            b.iter(|| global_pipeline(&q, k, &ExecStats::new()).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
