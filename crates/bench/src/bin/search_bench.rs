//! Top-k CN executor benchmark, exported as a `kwdb-metrics-v1` snapshot.
//!
//! ```sh
//! cargo run --release -p kwdb-bench --bin search_bench -- BENCH_search.json
//! cargo run --release -p kwdb-bench --bin search_bench -- \
//!     BENCH_search.json --compare BENCH_baseline_search.json
//! ```
//!
//! Runs every top-k executor — naive, sparse, single pipeline, global
//! pipeline, and the parallel CN executor — over frequent-term queries on a
//! seeded DBLP database, recording per-query latency into
//! `kwdb_search_latency_ns{executor,query}` histograms and printing
//! p50/p90 latency plus CNs-evaluated counts per executor. A faceted row
//! (`global_facets` / `parallel_facets`) runs the same queries through the
//! exhaustive faceted executors with a terms facet on `conference.name` and
//! a decade range facet on `conference.year`, asserting serial and parallel
//! accumulation produce identical counts. The snapshot is the CI
//! `search-bench` artifact; the printed speedup line documents the parallel
//! executor beating the serial global pipeline wall-clock.
//!
//! With `--compare BASELINE`, deterministic work gauges (CNs per query,
//! facet values counted) are checked against a previous snapshot within
//! [`SIZE_DRIFT`], and latency means within [`TIMING_NOISE`]; violations
//! fail the run.
//!
//! An `engine_recorded` / `engine_bare` row pair additionally measures the
//! always-on flight recorder's overhead: the full relational engine with a
//! registry (and its recorder ring) attached vs the same engine bare.
//!
//! `engine_topk_cold`/`engine_topk_cached` and `engine_facets_cold`/
//! `engine_facets_cached` row pairs document the result cache: the cold
//! rows run a cache-disabled engine, the cached rows a warmed default
//! engine whose every timed round is asserted to be a hit, with the cached
//! p50 asserted at least 10x below the cold p50. Compare mode polices the
//! cold rows only — the microsecond hit path is guarded by that in-run
//! ratio instead of cross-run timing noise.

use kwdb::engine::{RelationalConfig, RelationalEngine, SearchRequest};
use kwdb_common::{Budget, CacheConfig, FacetSpec, RangeBucket, ScratchPool};
use kwdb_datasets::{generate_dblp, DblpConfig};
use kwdb_obs::registry::Snapshot;
use kwdb_obs::MetricsRegistry;
use kwdb_relational::ExecStats;
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::facets::{resolve_facets, FacetAccum, FacetRequest};
use kwdb_relsearch::pexec::{parallel_topk_budgeted, parallel_topk_faceted, EvalScratch};
use kwdb_relsearch::topk::{
    global_pipeline_counted, global_pipeline_faceted, naive_counted, single_pipeline_counted,
    sparse_counted, CnExecOutcome, TopKQuery,
};
use kwdb_relsearch::{ResultScorer, TupleSets};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Histogram: one executor run over one query, labels `executor` × `query`.
const SEARCH_LATENCY: &str = "kwdb_search_latency_ns";
/// Gauge: candidate networks generated per query (deterministic).
const SEARCH_CNS: &str = "kwdb_search_cns";
/// Gauge: facet values counted per faceted query (deterministic).
const SEARCH_FACET_VALUES: &str = "kwdb_search_facet_values";

const K: usize = 20;
const ROUNDS: usize = 30;
const PARALLEL_WORKERS: usize = 4;
/// A latency mean may grow this much over the baseline before the compare
/// mode calls it a regression (micro-benchmarks on shared CI runners are
/// noisy; work gauges are deterministic and compared much tighter).
const TIMING_NOISE: f64 = 1.5;
/// CN generation and facet counting are deterministic on the seeded
/// dataset; allow a little drift for intentional generator/config tweaks.
const SIZE_DRIFT: f64 = 0.10;

/// Compare `current` against a `baseline` snapshot: work gauges within
/// [`SIZE_DRIFT`], latency means within [`TIMING_NOISE`]. Returns the
/// number of violations (also printed).
fn compare_snapshots(current: &Snapshot, baseline: &Snapshot) -> usize {
    let mut violations = 0usize;
    for (id, base) in &baseline.gauges {
        if id.name != SEARCH_CNS && id.name != SEARCH_FACET_VALUES {
            continue;
        }
        let Some((_, cur)) = current.gauges.iter().find(|(cid, _)| cid == id) else {
            println!("MISSING gauge {:?} {:?}", id.name, id.labels);
            violations += 1;
            continue;
        };
        let (b, c) = (*base as f64, *cur as f64);
        if b > 0.0 && (c - b).abs() / b > SIZE_DRIFT {
            println!(
                "WORK DRIFT {:?} {:?}: baseline {} -> current {}",
                id.name, id.labels, base, cur
            );
            violations += 1;
        }
    }
    for (id, base) in &baseline.histograms {
        if id.name != SEARCH_LATENCY || base.count == 0 {
            continue;
        }
        // Cached-row timings are microsecond-scale clone-and-stamp paths,
        // jitter-dominated on shared runners; the in-run >=10x cold/cached
        // p50 assertion guards them, so compare mode only polices cold rows.
        if id
            .labels
            .iter()
            .any(|(k, v)| k == "executor" && v.ends_with("_cached"))
        {
            continue;
        }
        let Some((_, cur)) = current.histograms.iter().find(|(cid, _)| cid == id) else {
            println!("MISSING histogram {:?} {:?}", id.name, id.labels);
            violations += 1;
            continue;
        };
        if cur.count == 0 {
            continue;
        }
        let base_mean = base.sum as f64 / base.count as f64;
        let cur_mean = cur.sum as f64 / cur.count as f64;
        if cur_mean > base_mean * TIMING_NOISE {
            println!(
                "TIMING REGRESSION {:?}: baseline mean {:.0}ns -> current {:.0}ns (> {:.1}x)",
                id.labels, base_mean, cur_mean, TIMING_NOISE
            );
            violations += 1;
        } else {
            println!(
                "timing ok {:?}: {:.0}ns vs baseline {:.0}ns",
                id.labels, cur_mean, base_mean
            );
        }
    }
    violations
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_search.json".into());
    let baseline_path = args
        .iter()
        .position(|a| a == "--compare")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reg = Arc::new(MetricsRegistry::new());

    let db = generate_dblp(&DblpConfig {
        n_papers: 400,
        n_authors: 150,
        ..Default::default()
    });
    let scorer = ResultScorer::new(&db);
    let pool: ScratchPool<EvalScratch> = ScratchPool::new();

    // Frequent title/venue terms: each query yields a multi-CN workload.
    let queries = ["data query", "xml data", "search data", "query xml search"];

    // The faceted row: every query also runs through the exhaustive faceted
    // executors with this distribution request.
    let facet_specs = [
        FacetSpec::terms("conference.name", 10),
        FacetSpec::range(
            "conference.year",
            (1970..2030)
                .step_by(10)
                .map(|y| RangeBucket::new(format!("{y}s"), y as f64, (y + 10) as f64))
                .collect(),
        ),
    ];
    let facets = resolve_facets(&db, &facet_specs).expect("facet attrs exist in the DBLP schema");
    let freq = FacetRequest {
        facets: &facets,
        refinements: &[],
    };

    type Runner =
        fn(&TopKQuery<'_, &str>, usize, &ExecStats, &ScratchPool<EvalScratch>) -> CnExecOutcome;
    let executors: [(&str, Runner); 6] = [
        ("naive", |q, k, s, _| naive_counted(q, k, s)),
        ("sparse", |q, k, s, _| sparse_counted(q, k, s)),
        ("single", |q, k, s, _| single_pipeline_counted(q, k, s)),
        ("global", |q, k, s, _| {
            global_pipeline_counted(q, k, s, &Budget::unlimited())
        }),
        ("parallel1", |q, k, s, pool| {
            parallel_topk_budgeted(q, k, s, &Budget::unlimited(), 1, pool)
        }),
        ("parallel", |q, k, s, pool| {
            parallel_topk_budgeted(q, k, s, &Budget::unlimited(), PARALLEL_WORKERS, pool)
        }),
    ];

    // per-executor totals across all queries × rounds (faceted rows last)
    let mut total_ns = [0u128; 8];
    let mut total_evaluated = [0u64; 8];
    let mut total_cns = 0u64;

    for query in queries {
        let keywords: Vec<&str> = query.split_whitespace().collect();
        let ts = TupleSets::build(&db, &keywords).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let cns = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 5,
                dedupe: true,
                max_cns: 0,
            },
        )
        .generate();
        total_cns += cns.len() as u64;
        reg.gauge(SEARCH_CNS, &[("query", query)])
            .set(cns.len() as i64);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };

        println!("query {query:?}: {} CNs", cns.len());
        for (ei, (name, run)) in executors.iter().enumerate() {
            let hist = reg.histogram(SEARCH_LATENCY, &[("executor", name), ("query", query)]);
            let mut evaluated = 0;
            for _ in 0..ROUNDS {
                let stats = ExecStats::new();
                let start = Instant::now();
                let outcome = run(&q, K, &stats, &pool);
                let elapsed = start.elapsed();
                hist.record_duration(elapsed);
                total_ns[ei] += elapsed.as_nanos();
                evaluated = outcome.cns_evaluated;
                assert_eq!(
                    outcome.cns_evaluated + outcome.cns_pruned,
                    cns.len() as u64,
                    "{name}: CN accounting broken"
                );
            }
            total_evaluated[ei] += evaluated;
            let snap = hist.snapshot();
            println!(
                "  {name:<14} p50 {:>9} ns  p90 {:>9} ns  cns evaluated {:>4}/{}",
                snap.p50(),
                snap.p90(),
                evaluated,
                cns.len()
            );
        }

        // Faceted row: exhaustive executors, serial vs parallel, with the
        // accumulated distributions asserted identical.
        let mut serial_counts = Vec::new();
        for (ei, name) in [(6usize, "global_facets"), (7, "parallel_facets")] {
            let hist = reg.histogram(SEARCH_LATENCY, &[("executor", name), ("query", query)]);
            let mut evaluated = 0;
            let mut counts = Vec::new();
            for _ in 0..ROUNDS {
                let stats = ExecStats::new();
                let start = Instant::now();
                let (outcome, accum) = if name == "global_facets" {
                    let mut accum = FacetAccum::new(facets.len());
                    let o = global_pipeline_faceted(
                        &q,
                        K,
                        &stats,
                        &Budget::unlimited(),
                        &freq,
                        &mut accum,
                    );
                    (o, accum)
                } else {
                    parallel_topk_faceted(
                        &q,
                        K,
                        &stats,
                        &Budget::unlimited(),
                        PARALLEL_WORKERS,
                        &pool,
                        &freq,
                    )
                };
                let elapsed = start.elapsed();
                hist.record_duration(elapsed);
                total_ns[ei] += elapsed.as_nanos();
                evaluated = outcome.cns_evaluated;
                counts = accum.finish(&facets);
            }
            total_evaluated[ei] += evaluated;
            let values: u64 = counts.iter().map(|c| c.total()).sum();
            reg.gauge(SEARCH_FACET_VALUES, &[("executor", name), ("query", query)])
                .set(values as i64);
            let snap = hist.snapshot();
            println!(
                "  {name:<14} p50 {:>9} ns  p90 {:>9} ns  facet values {:>6}",
                snap.p50(),
                snap.p90(),
                values,
            );
            if name == "global_facets" {
                serial_counts = counts;
            } else {
                assert_eq!(
                    serial_counts, counts,
                    "{query:?}: parallel facet counts diverge from serial"
                );
            }
        }
    }

    // Recorder-overhead evidence: the full relational engine with a
    // registry attached (always-on flight recorder at default capacity,
    // every query sealed into the ring) vs the same engine bare. Two new
    // SEARCH_LATENCY rows — compare mode walks baseline entries, so the
    // rows are compare-safe and become guarded once a baseline carries
    // them.
    {
        let db_cfg = DblpConfig {
            n_papers: 400,
            n_authors: 150,
            ..Default::default()
        };
        let engine_cfg = RelationalConfig {
            intra_query_workers: 1,
            ..Default::default()
        };
        let bare = RelationalEngine::with_config(generate_dblp(&db_cfg), engine_cfg);
        let recorded = RelationalEngine::with_config(generate_dblp(&db_cfg), engine_cfg)
            .with_registry(Arc::clone(&reg));
        let mut ns = [0u128; 2];
        for query in queries {
            for (i, (name, engine)) in [("engine_bare", &bare), ("engine_recorded", &recorded)]
                .iter()
                .enumerate()
            {
                let hist = reg.histogram(SEARCH_LATENCY, &[("executor", name), ("query", query)]);
                for _ in 0..ROUNDS {
                    let start = Instant::now();
                    engine
                        .execute(&SearchRequest::new(query).k(K))
                        .expect("bench query succeeds");
                    let elapsed = start.elapsed();
                    hist.record_duration(elapsed);
                    ns[i] += elapsed.as_nanos();
                }
            }
        }
        println!(
            "\nflight recorder overhead: recorded {} ns vs bare {} ns over {} queries × \
             {ROUNDS} rounds ({:.3}x, ring at {} of {} capacity)",
            ns[1],
            ns[0],
            queries.len(),
            ns[1] as f64 / ns[0].max(1) as f64,
            reg.flight().len(),
            reg.flight().capacity(),
        );
    }

    // Result-cache evidence: the same engine-level workload cold (cache
    // disabled, every round recomputes) vs cached (default cache, warmed
    // once, every timed round a hit). Four row pairs per query — plain
    // top-k and faceted — with the cached p50 asserted at least 10x below
    // the cold p50: a cache hit is a clone-and-stamp, so anything closer
    // than an order of magnitude means the hit path started doing work.
    {
        let db_cfg = DblpConfig {
            n_papers: 400,
            n_authors: 150,
            ..Default::default()
        };
        let cold = RelationalEngine::with_config(
            generate_dblp(&db_cfg),
            RelationalConfig {
                intra_query_workers: 1,
                result_cache: CacheConfig::disabled(),
                ..Default::default()
            },
        );
        let cached = RelationalEngine::with_config(
            generate_dblp(&db_cfg),
            RelationalConfig {
                intra_query_workers: 1,
                ..Default::default()
            },
        );
        println!("\nresult cache (cold vs cached engine rows):");
        for (row, with_facets) in [("engine_topk", false), ("engine_facets", true)] {
            for query in queries {
                let request = || {
                    let mut req = SearchRequest::new(query).k(K);
                    if with_facets {
                        for spec in &facet_specs {
                            req = req.facet(spec.clone());
                        }
                    }
                    req
                };
                let cold_name = format!("{row}_cold");
                let cold_hist = reg.histogram(
                    SEARCH_LATENCY,
                    &[("executor", cold_name.as_str()), ("query", query)],
                );
                for _ in 0..ROUNDS {
                    let start = Instant::now();
                    let resp = cold.execute(&request()).expect("cold bench query succeeds");
                    cold_hist.record_duration(start.elapsed());
                    assert_eq!(
                        resp.stats.result_cache_hits + resp.stats.result_cache_misses,
                        0,
                        "{row}/{query}: disabled cache must never be consulted"
                    );
                }
                let warm = cached.execute(&request()).expect("warming query succeeds");
                assert_eq!(
                    warm.stats.result_cache_misses, 1,
                    "{row}/{query}: first cached-engine run must miss"
                );
                let cached_name = format!("{row}_cached");
                let cached_hist = reg.histogram(
                    SEARCH_LATENCY,
                    &[("executor", cached_name.as_str()), ("query", query)],
                );
                for _ in 0..ROUNDS {
                    let start = Instant::now();
                    let resp = cached
                        .execute(&request())
                        .expect("cached bench query succeeds");
                    cached_hist.record_duration(start.elapsed());
                    assert_eq!(
                        resp.stats.result_cache_hits, 1,
                        "{row}/{query}: warmed run must hit"
                    );
                }
                let (cold_p50, cached_p50) =
                    (cold_hist.snapshot().p50(), cached_hist.snapshot().p50());
                println!(
                    "  {row:<13} {query:<18} cold p50 {cold_p50:>9} ns  cached p50 {cached_p50:>8} ns  ({:.1}x)",
                    cold_p50 as f64 / cached_p50.max(1) as f64
                );
                assert!(
                    cached_p50.saturating_mul(10) <= cold_p50,
                    "{row}/{query}: cached p50 {cached_p50}ns not 10x under cold p50 {cold_p50}ns"
                );
            }
        }
    }

    println!(
        "\ntotals over {} queries × {ROUNDS} rounds (k={K}):",
        queries.len()
    );
    let names = [
        "naive",
        "sparse",
        "single",
        "global",
        "parallel1",
        "parallel",
        "global_facets",
        "parallel_facets",
    ];
    for (ei, name) in names.iter().enumerate() {
        println!(
            "  {name:<15} {:>12} ns total  cns evaluated {:>5}/{}",
            total_ns[ei], total_evaluated[ei], total_cns
        );
    }
    let global_ns = total_ns[3];
    let parallel_ns = total_ns[5];
    let speedup = global_ns as f64 / parallel_ns.max(1) as f64;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel ({PARALLEL_WORKERS} workers, {cores} cores available) vs global pipeline: \
         {speedup:.2}x ({parallel_ns} ns vs {global_ns} ns)"
    );
    if speedup < 1.0 {
        eprintln!(
            "warning: parallel executor did not beat the serial global pipeline \
             (expected when cores available < workers: {PARALLEL_WORKERS} threads \
             time-slice one core while doing the extra first-wave evaluations \
             exact pruning requires; compare the parallel1 row for the pooled \
             evaluator's single-threaded standing)"
        );
    }

    let snapshot = reg.snapshot();
    let json = kwdb_obs::export::to_json(&snapshot);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("search bench snapshot written to {out}");

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = kwdb_obs::export::from_json(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e:?}"));
        let violations = compare_snapshots(&snapshot, &baseline);
        if violations > 0 {
            println!("{violations} regression(s) against {path}");
            return ExitCode::FAILURE;
        }
        println!("no regressions against {path}");
    }
    ExitCode::SUCCESS
}
