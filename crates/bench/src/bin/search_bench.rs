//! Top-k CN executor benchmark, exported as a `kwdb-metrics-v1` snapshot.
//!
//! ```sh
//! cargo run --release -p kwdb-bench --bin search_bench -- BENCH_search.json
//! ```
//!
//! Runs every top-k executor — naive, sparse, single pipeline, global
//! pipeline, and the parallel CN executor — over frequent-term queries on a
//! seeded DBLP database, recording per-query latency into
//! `kwdb_search_latency_ns{executor,query}` histograms and printing
//! p50/p90 latency plus CNs-evaluated counts per executor. The snapshot is
//! the CI `search-bench` artifact; the printed speedup line documents the
//! parallel executor beating the serial global pipeline wall-clock.

use kwdb_common::{Budget, ScratchPool};
use kwdb_datasets::{generate_dblp, DblpConfig};
use kwdb_obs::MetricsRegistry;
use kwdb_relational::ExecStats;
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::pexec::{parallel_topk_budgeted, EvalScratch};
use kwdb_relsearch::topk::{
    global_pipeline_counted, naive_counted, single_pipeline_counted, sparse_counted, CnExecOutcome,
    TopKQuery,
};
use kwdb_relsearch::{ResultScorer, TupleSets};
use std::sync::Arc;
use std::time::Instant;

/// Histogram: one executor run over one query, labels `executor` × `query`.
const SEARCH_LATENCY: &str = "kwdb_search_latency_ns";

const K: usize = 20;
const ROUNDS: usize = 30;
const PARALLEL_WORKERS: usize = 4;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_search.json".into());
    let reg = Arc::new(MetricsRegistry::new());

    let db = generate_dblp(&DblpConfig {
        n_papers: 400,
        n_authors: 150,
        ..Default::default()
    });
    let scorer = ResultScorer::new(&db);
    let pool: ScratchPool<EvalScratch> = ScratchPool::new();

    // Frequent title/venue terms: each query yields a multi-CN workload.
    let queries = ["data query", "xml data", "search data", "query xml search"];

    type Runner =
        fn(&TopKQuery<'_, &str>, usize, &ExecStats, &ScratchPool<EvalScratch>) -> CnExecOutcome;
    let executors: [(&str, Runner); 6] = [
        ("naive", |q, k, s, _| naive_counted(q, k, s)),
        ("sparse", |q, k, s, _| sparse_counted(q, k, s)),
        ("single", |q, k, s, _| single_pipeline_counted(q, k, s)),
        ("global", |q, k, s, _| {
            global_pipeline_counted(q, k, s, &Budget::unlimited())
        }),
        ("parallel1", |q, k, s, pool| {
            parallel_topk_budgeted(q, k, s, &Budget::unlimited(), 1, pool)
        }),
        ("parallel", |q, k, s, pool| {
            parallel_topk_budgeted(q, k, s, &Budget::unlimited(), PARALLEL_WORKERS, pool)
        }),
    ];

    // per-executor totals across all queries × rounds
    let mut total_ns = [0u128; 6];
    let mut total_evaluated = [0u64; 6];
    let mut total_cns = 0u64;

    for query in queries {
        let keywords: Vec<&str> = query.split_whitespace().collect();
        let ts = TupleSets::build(&db, &keywords);
        let oracle = MaskOracle::from_tuplesets(&ts);
        let cns = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 5,
                dedupe: true,
                max_cns: 0,
            },
        )
        .generate();
        total_cns += cns.len() as u64;
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };

        println!("query {query:?}: {} CNs", cns.len());
        for (ei, (name, run)) in executors.iter().enumerate() {
            let hist = reg.histogram(SEARCH_LATENCY, &[("executor", name), ("query", query)]);
            let mut evaluated = 0;
            for _ in 0..ROUNDS {
                let stats = ExecStats::new();
                let start = Instant::now();
                let outcome = run(&q, K, &stats, &pool);
                let elapsed = start.elapsed();
                hist.record_duration(elapsed);
                total_ns[ei] += elapsed.as_nanos();
                evaluated = outcome.cns_evaluated;
                assert_eq!(
                    outcome.cns_evaluated + outcome.cns_pruned,
                    cns.len() as u64,
                    "{name}: CN accounting broken"
                );
            }
            total_evaluated[ei] += evaluated;
            let snap = hist.snapshot();
            println!(
                "  {name:<9} p50 {:>9} ns  p90 {:>9} ns  cns evaluated {:>4}/{}",
                snap.p50(),
                snap.p90(),
                evaluated,
                cns.len()
            );
        }
    }

    println!(
        "\ntotals over {} queries × {ROUNDS} rounds (k={K}):",
        queries.len()
    );
    for (ei, (name, _)) in executors.iter().enumerate() {
        println!(
            "  {name:<9} {:>12} ns total  cns evaluated {:>5}/{}",
            total_ns[ei], total_evaluated[ei], total_cns
        );
    }
    let global_ns = total_ns[3];
    let parallel_ns = total_ns[5];
    let speedup = global_ns as f64 / parallel_ns.max(1) as f64;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel ({PARALLEL_WORKERS} workers, {cores} cores available) vs global pipeline: \
         {speedup:.2}x ({parallel_ns} ns vs {global_ns} ns)"
    );
    if speedup < 1.0 {
        eprintln!(
            "warning: parallel executor did not beat the serial global pipeline \
             (expected when cores available < workers: {PARALLEL_WORKERS} threads \
             time-slice one core while doing the extra first-wave evaluations \
             exact pruning requires; compare the parallel1 row for the pooled \
             evaluator's single-threaded standing)"
        );
    }

    let json = kwdb_obs::export::to_json(&reg.snapshot());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("search bench snapshot written to {out}");
}
