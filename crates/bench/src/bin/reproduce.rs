//! Regenerate the tutorial's experiment tables.
//!
//! ```sh
//! cargo run -p kwdb-bench --bin reproduce            # all experiments
//! cargo run -p kwdb-bench --bin reproduce e04 e06    # a selection
//! cargo run -p kwdb-bench --bin reproduce --metrics-out BENCH_metrics.json e04
//! ```
//!
//! With `--metrics-out PATH` the run also records observability metrics —
//! per-experiment wall-clock latency plus a dispatcher smoke batch over
//! registry-wired engines covering all three data models — and writes the
//! registry snapshot to `PATH` as the `kwdb-metrics-v1` JSON baseline that
//! `metrics_check` (and CI) validates.
//!
//! With `--flight-out PATH` (requires `--metrics-out`) the smoke batch runs
//! under an aggressive 1-in-2 trace sampling policy and the registry's
//! flight-recorder ring is dumped to `PATH` as `kwdb-flightrec-v1` JSON —
//! the input to `metrics_check --flight` and `kwdb-doctor`.

use kwdb::dispatch::{Catalog, Dispatcher};
use kwdb::engine::{
    GraphEngine, GraphSemantics, RelationalConfig, RelationalEngine, SearchRequest, XmlEngine,
};
use kwdb_datasets::{generate_dblp, DblpConfig};
use kwdb_obs::{MetricsRegistry, SamplePolicy};
use std::sync::Arc;
use std::time::Instant;

/// Histogram family for experiment wall-clock time (label `experiment`).
const EXPERIMENT_LATENCY: &str = "kwdb_experiment_latency_ns";

fn main() {
    let mut metrics_out: Option<String> = None;
    let mut flight_out: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--metrics-out" || arg == "--flight-out" {
            match args.next() {
                Some(path) if arg == "--metrics-out" => metrics_out = Some(path),
                Some(path) => flight_out = Some(path),
                None => {
                    eprintln!("{arg} requires a path");
                    std::process::exit(1);
                }
            }
        } else {
            ids.push(arg);
        }
    }
    if flight_out.is_some() && metrics_out.is_none() {
        eprintln!("--flight-out requires --metrics-out (the recorder lives on the registry)");
        std::process::exit(1);
    }

    let registry = metrics_out
        .as_ref()
        .map(|_| Arc::new(MetricsRegistry::new()));

    let run_one = |id: &str, run: fn() -> kwdb_bench::Report| {
        let started = Instant::now();
        run().print();
        if let Some(reg) = &registry {
            reg.histogram(EXPERIMENT_LATENCY, &[("experiment", id)])
                .record_duration(started.elapsed());
        }
    };

    if ids.is_empty() {
        for (id, run) in kwdb_bench::all_experiments() {
            run_one(id, run);
        }
    } else {
        for id in &ids {
            match kwdb_bench::experiment_by_id(id) {
                Some(run) => run_one(id, run),
                None => {
                    eprintln!("unknown experiment '{id}' (expected e01…e40)");
                    std::process::exit(1);
                }
            }
        }
    }

    if let (Some(path), Some(reg)) = (metrics_out, registry) {
        if flight_out.is_some() {
            // Sample every 2nd smoke query up to a full trace, so the dump
            // kwdb-doctor analyzes carries span trees to export.
            reg.set_sample_policy(SamplePolicy::every(2));
        }
        dispatcher_smoke(&reg);
        let json = kwdb_obs::export::to_json(&reg.snapshot());
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics snapshot written to {path}");
        if let Some(fpath) = flight_out {
            let dump = reg.flight().dump();
            let n = dump.records.len();
            if let Err(e) = std::fs::write(&fpath, dump.to_json()) {
                eprintln!("failed to write {fpath}: {e}");
                std::process::exit(1);
            }
            eprintln!("flight recorder dump ({n} records) written to {fpath}");
        }
    }
}

/// A small mixed batch through registry-wired engines and a dispatcher, so
/// the exported snapshot contains every engine and dispatcher metric family
/// the validator checks.
fn dispatcher_smoke(registry: &Arc<MetricsRegistry>) {
    let mut catalog = Catalog::new();
    catalog.register(
        "dblp",
        RelationalEngine::new(generate_dblp(&DblpConfig {
            n_papers: 60,
            n_authors: 30,
            ..Default::default()
        }))
        .with_registry(Arc::clone(registry)),
    );
    // A second relational engine pinned to 4 intra-query workers, so the
    // snapshot carries the `parallel_cn` algorithm label (and its CN
    // accounting) even when this host resolves the default to one worker.
    catalog.register(
        "dblp_par",
        RelationalEngine::with_config(
            generate_dblp(&DblpConfig {
                n_papers: 60,
                n_authors: 30,
                ..Default::default()
            }),
            RelationalConfig {
                intra_query_workers: 4,
                ..Default::default()
            },
        )
        .with_registry(Arc::clone(registry)),
    );
    catalog.register(
        "social",
        GraphEngine::new(kwdb_datasets::graphs::generate_graph(&Default::default()))
            .with_registry(Arc::clone(registry)),
    );
    catalog.register(
        "bib",
        XmlEngine::from_tree(kwdb_datasets::generate_bib_xml(&Default::default()))
            .with_registry(Arc::clone(registry)),
    );
    let batch: Vec<(String, SearchRequest)> = vec![
        ("dblp".into(), SearchRequest::new("data query").k(3)),
        (
            "social".into(),
            SearchRequest::new("kw0 kw1")
                .k(3)
                .semantics(GraphSemantics::SteinerExact),
        ),
        (
            "social".into(),
            SearchRequest::new("kw0 kw1")
                .k(3)
                .semantics(GraphSemantics::DistinctRoot),
        ),
        ("bib".into(), SearchRequest::new("data query").k(3)),
        (
            "dblp".into(),
            SearchRequest::new("data query")
                .k(3)
                .budget(kwdb::common::Budget::unlimited().with_max_candidates(1)),
        ),
        ("dblp_par".into(), SearchRequest::new("data query").k(3)),
        ("dblp_par".into(), SearchRequest::new("xml data").k(5)),
        // Faceted queries (serial and parallel) so the exported snapshot
        // carries the kwdb_facet_* families and a populated facets phase.
        (
            "dblp".into(),
            SearchRequest::new("data query")
                .k(3)
                .facet(kwdb::common::FacetSpec::terms("conference.name", 5))
                .summaries(3),
        ),
        (
            "dblp_par".into(),
            SearchRequest::new("data query")
                .k(3)
                .facet(kwdb::common::FacetSpec::terms("conference.name", 5)),
        ),
    ];
    let dispatcher = Dispatcher::with_workers(catalog, 4).with_registry(Arc::clone(registry));
    let out = dispatcher.execute_concurrent(&batch);
    assert!(
        out.responses.iter().all(|r| r.is_ok()),
        "dispatcher smoke batch must succeed"
    );
    // Replay the same batch serially three times so the snapshot carries
    // result-cache hits *and* misses for every engine. Under the 1-in-2
    // sampling policy a promoted query bypasses the cache, but promotion
    // parity flips between consecutive serial passes (9 queries per pass):
    // each engine's repeated query consults the cache in the second AND
    // fourth passes, so whichever of those runs first warms the entry and
    // the other hits it — regardless of how the concurrent pass
    // interleaved its ticks. The capped query keeps bypassing, so the
    // truncation family stays populated, and 36 total records fit the
    // default flight ring without drops.
    for _ in 0..3 {
        let replay = dispatcher.execute_serial(&batch);
        assert!(
            replay.responses.iter().all(|r| r.is_ok()),
            "dispatcher smoke replay must succeed"
        );
    }
}
