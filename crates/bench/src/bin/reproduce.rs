//! Regenerate the tutorial's experiment tables.
//!
//! ```sh
//! cargo run -p kwdb-bench --bin reproduce            # all experiments
//! cargo run -p kwdb-bench --bin reproduce e04 e06    # a selection
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for (_, run) in kwdb_bench::all_experiments() {
            run().print();
        }
        return;
    }
    for id in &args {
        match kwdb_bench::experiment_by_id(id) {
            Some(run) => run().print(),
            None => {
                eprintln!("unknown experiment '{id}' (expected e01…e34)");
                std::process::exit(1);
            }
        }
    }
}
