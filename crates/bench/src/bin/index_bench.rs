//! Index build + intersection micro-benchmark, exported as a
//! `kwdb-metrics-v1` snapshot.
//!
//! ```sh
//! cargo run --release -p kwdb-bench --bin index_bench -- BENCH_index.json
//! cargo run --release -p kwdb-bench --bin index_bench -- \
//!     BENCH_index.json --compare BENCH_baseline_index.json
//! ```
//!
//! Builds the substrate indexes over the synthetic datasets in **both**
//! posting layouts (plain sorted arrays and delta-encoded bit-packed
//! blocks), records build-time/terms/postings/bytes figures under the same
//! metric families the engines publish at query time (the block variant
//! under `<index>_blocks`), times the shared intersection kernels — slice
//! and cursor, both layouts — over adversarial list-size ratios, and writes
//! the registry snapshot to the given path (the CI `index-bench` artifact).
//!
//! Always enforced: the block-compressed relational text index must be at
//! most half the plain layout's posting bytes. With `--compare BASELINE`,
//! gauges and kernel timings are additionally checked against a previous
//! snapshot; timing regressions beyond the noise threshold fail the run.

use kwdb_common::index::{kernels, Layout, Posting, PostingStore};
use kwdb_common::Rng;
use kwdb_datasets::{generate_bib_xml, generate_dblp, DblpConfig};
use kwdb_graphsearch::blinks::Blinks;
use kwdb_obs::registry::Snapshot;
use kwdb_obs::{record_index_stats, MetricsRegistry};
use kwdb_xml::XmlIndex;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Histogram: one shared-kernel intersection, labels `kernel` × `ratio`.
const INTERSECT_NS: &str = "kwdb_index_intersect_ns";
/// Gauge family the index size figures live in (see `kwdb_obs::families`).
const POSTING_BYTES: &str = "kwdb_index_posting_bytes";
/// Compressed : plain posting-bytes ceiling for the relational text index.
const MAX_COMPRESSED_RATIO: f64 = 0.5;
/// A kernel timing may grow this much over the baseline before the compare
/// mode calls it a regression (micro-benchmarks on shared CI runners are
/// noisy; sizes are deterministic and compared much tighter).
const TIMING_NOISE: f64 = 1.5;
/// Dataset generators are seeded, so size gauges should be stable; allow a
/// little drift for intentional generator/config tweaks.
const SIZE_DRIFT: f64 = 0.10;

/// A minimal document-id posting for the cursor-kernel benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Doc(u32);

impl Posting for Doc {
    type SortKey = u32;
    fn sort_key(&self) -> u32 {
        self.0
    }
    fn key64(&self) -> u64 {
        self.0 as u64
    }
    fn from_parts(key: u64, _extras: &[u64]) -> Self {
        Doc(key as u32)
    }
    fn coalesce(&mut self, other: &Self) -> bool {
        self == other
    }
    fn occurrences(&self) -> u64 {
        1
    }
    fn same_doc(&self, other: &Self) -> bool {
        self == other
    }
}

fn sorted_list(rng: &mut Rng, len: usize, gap: u32) -> Vec<u32> {
    let mut v = Vec::with_capacity(len);
    let mut x = 0u32;
    for _ in 0..len {
        x += 1 + rng.gen_range(0u32..gap.max(1));
        v.push(x);
    }
    v
}

fn store_with(lists: &[&[u32]], layout: Layout) -> PostingStore<Doc> {
    let mut st = PostingStore::new();
    for (i, list) in lists.iter().enumerate() {
        let term = format!("t{i}");
        for &v in *list {
            st.add(&term, Doc(v));
        }
    }
    st.finalize_layout(layout);
    st
}

fn bench_intersections(reg: &MetricsRegistry) {
    let mut rng = Rng::seed_from_u64(42);
    let small = sorted_list(&mut rng, 1_000, 512);
    for ratio in [1usize, 8, 64, 512] {
        let large = sorted_list(&mut rng, 1_000 * ratio, (512 / ratio).max(1) as u32);
        let ratio_label = ratio.to_string();
        for (kernel, f) in [
            (
                "linear",
                kernels::intersect_linear as fn(&[u32], &[u32]) -> Vec<u32>,
            ),
            ("gallop", kernels::intersect_gallop),
            ("auto", kernels::intersect),
        ] {
            let hist = reg.histogram(
                INTERSECT_NS,
                &[("kernel", kernel), ("ratio", ratio_label.as_str())],
            );
            let mut hits = 0usize;
            for _ in 0..50 {
                let start = Instant::now();
                hits = f(&small, &large).len();
                hist.record_duration(start.elapsed());
            }
            println!("intersect {kernel:<13} ratio 1:{ratio:<4} -> {hits} common elements");
        }
        // Cursor kernel on both layouts: same lists behind a posting store,
        // intersected with mutual galloping `seek`. The block cursor decodes
        // lazily and skips whole blocks, so it must stay within noise of the
        // plain cursor.
        for layout in [Layout::Plain, Layout::Blocks] {
            let st = store_with(&[&small, &large], layout);
            let (sa, sb) = (st.sym("t0").unwrap(), st.sym("t1").unwrap());
            let kernel = match layout {
                Layout::Plain => "cursor_plain",
                Layout::Blocks => "cursor_blocks",
            };
            let hist = reg.histogram(
                INTERSECT_NS,
                &[("kernel", kernel), ("ratio", ratio_label.as_str())],
            );
            let mut out: Vec<Doc> = Vec::new();
            let mut hits = 0usize;
            for _ in 0..50 {
                let start = Instant::now();
                out.clear();
                let mut a = st.postings(sa).cursor();
                let mut b = st.postings(sb).cursor();
                kernels::intersect_cursors(&mut a, &mut b, &mut out);
                hits = out.len();
                hist.record_duration(start.elapsed());
            }
            println!("intersect {kernel:<13} ratio 1:{ratio:<4} -> {hits} common elements");
        }
    }
}

/// Compare `current` against a `baseline` snapshot: size gauges within
/// [`SIZE_DRIFT`], intersection timing means within [`TIMING_NOISE`].
/// Returns the number of violations (also printed).
fn compare_snapshots(current: &Snapshot, baseline: &Snapshot) -> usize {
    let mut violations = 0usize;
    for (id, base) in &baseline.gauges {
        if id.name != POSTING_BYTES {
            continue;
        }
        let Some((_, cur)) = current.gauges.iter().find(|(cid, _)| cid == id) else {
            println!("MISSING gauge {:?} {:?}", id.name, id.labels);
            violations += 1;
            continue;
        };
        let (b, c) = (*base as f64, *cur as f64);
        if b > 0.0 && (c - b).abs() / b > SIZE_DRIFT {
            println!(
                "SIZE DRIFT {:?} {:?}: baseline {} -> current {}",
                id.name, id.labels, base, cur
            );
            violations += 1;
        }
    }
    for (id, base) in &baseline.histograms {
        if id.name != INTERSECT_NS || base.count == 0 {
            continue;
        }
        let Some((_, cur)) = current.histograms.iter().find(|(cid, _)| cid == id) else {
            println!("MISSING histogram {:?} {:?}", id.name, id.labels);
            violations += 1;
            continue;
        };
        if cur.count == 0 {
            continue;
        }
        let base_mean = base.sum as f64 / base.count as f64;
        let cur_mean = cur.sum as f64 / cur.count as f64;
        if cur_mean > base_mean * TIMING_NOISE {
            println!(
                "TIMING REGRESSION {:?}: baseline mean {:.0}ns -> current {:.0}ns (> {:.1}x)",
                id.labels, base_mean, cur_mean, TIMING_NOISE
            );
            violations += 1;
        } else {
            println!(
                "timing ok {:?}: {:.0}ns vs baseline {:.0}ns",
                id.labels, cur_mean, base_mean
            );
        }
    }
    violations
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_index.json".into());
    let baseline_path = args
        .iter()
        .position(|a| a == "--compare")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reg = Arc::new(MetricsRegistry::new());

    // Relational text index (built inside dataset generation), both layouts.
    let mut db = generate_dblp(&DblpConfig {
        n_papers: 500,
        n_authors: 200,
        ..Default::default()
    });
    assert!(db.is_index_fresh(), "generator must build the text index");
    let rel_plain = db
        .text_index()
        .expect("generator builds the index")
        .index_stats();
    record_index_stats(&reg, "relational_text", &rel_plain);
    db.set_posting_layout(Layout::Blocks);
    let rel_blocks = db
        .text_index()
        .expect("generator builds the index")
        .index_stats();
    record_index_stats(&reg, "relational_text_blocks", &rel_blocks);

    // XML keyword index, both layouts.
    let tree = generate_bib_xml(&Default::default());
    let mut ix = XmlIndex::build(&tree);
    record_index_stats(&reg, "xml_keyword", &ix.index_stats());
    ix.set_layout(Layout::Blocks);
    record_index_stats(&reg, "xml_keyword_blocks", &ix.index_stats());

    // Graph keyword index (incremental, no build wall-clock of its own),
    // both layouts, and the BLINKS node→keyword distance index.
    let mut g = kwdb_datasets::graphs::generate_graph(&Default::default());
    record_index_stats(&reg, "graph_keyword", &g.keyword_index_stats());
    g.set_keyword_index_layout(Layout::Blocks);
    record_index_stats(&reg, "graph_keyword_blocks", &g.keyword_index_stats());
    let n2k = Blinks::new(&g).build_full_index();
    record_index_stats(&reg, "graph_node2kw", &n2k.index_stats());

    for (name, stats) in [
        ("relational_text", &rel_plain),
        ("relational_text_blocks", &rel_blocks),
        ("xml_keyword_blocks", &ix.index_stats()),
        ("graph_keyword_blocks", &g.keyword_index_stats()),
        ("graph_node2kw", &n2k.index_stats()),
    ] {
        println!(
            "{name:<22} terms {:>6}  postings {:>8}  bytes {:>10}  blocks {:>6}  build {:?}",
            stats.terms, stats.postings, stats.posting_bytes, stats.blocks, stats.build
        );
    }
    let ratio = rel_blocks.posting_bytes as f64 / rel_plain.posting_bytes.max(1) as f64;
    println!(
        "relational_text compression: {} -> {} bytes ({:.2}x of plain)",
        rel_plain.posting_bytes, rel_blocks.posting_bytes, ratio
    );
    assert!(
        ratio <= MAX_COMPRESSED_RATIO,
        "block layout must be <= {MAX_COMPRESSED_RATIO}x of plain posting bytes, got {ratio:.2}x"
    );

    bench_intersections(&reg);

    let snapshot = reg.snapshot();
    let json = kwdb_obs::export::to_json(&snapshot);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("index bench snapshot written to {out}");

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = kwdb_obs::export::from_json(&text)
            .unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e:?}"));
        let violations = compare_snapshots(&snapshot, &baseline);
        if violations > 0 {
            println!("{violations} regression(s) against {path}");
            return ExitCode::FAILURE;
        }
        println!("no regressions against {path}");
    }
    ExitCode::SUCCESS
}
