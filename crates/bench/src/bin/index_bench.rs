//! Index build + intersection micro-benchmark, exported as a
//! `kwdb-metrics-v1` snapshot.
//!
//! ```sh
//! cargo run --release -p kwdb-bench --bin index_bench -- BENCH_index.json
//! ```
//!
//! Builds all four substrate indexes over the synthetic datasets, records
//! their build-time/terms/postings/bytes figures under the same metric
//! families the engines publish at query time, times the shared
//! intersection kernels over adversarial list-size ratios, and writes the
//! registry snapshot to the given path (the CI `index-bench` artifact).

use kwdb_common::index::kernels;
use kwdb_common::Rng;
use kwdb_datasets::{generate_bib_xml, generate_dblp, DblpConfig};
use kwdb_graphsearch::blinks::Blinks;
use kwdb_obs::{record_index_stats, MetricsRegistry};
use kwdb_xml::XmlIndex;
use std::sync::Arc;
use std::time::Instant;

/// Histogram: one shared-kernel intersection, labels `kernel` × `ratio`.
const INTERSECT_NS: &str = "kwdb_index_intersect_ns";

fn sorted_list(rng: &mut Rng, len: usize, gap: u32) -> Vec<u32> {
    let mut v = Vec::with_capacity(len);
    let mut x = 0u32;
    for _ in 0..len {
        x += 1 + rng.gen_range(0u32..gap.max(1));
        v.push(x);
    }
    v
}

fn bench_intersections(reg: &MetricsRegistry) {
    let mut rng = Rng::seed_from_u64(42);
    let small = sorted_list(&mut rng, 1_000, 512);
    for ratio in [1usize, 8, 64, 512] {
        let large = sorted_list(&mut rng, 1_000 * ratio, (512 / ratio).max(1) as u32);
        let ratio_label = ratio.to_string();
        for (kernel, f) in [
            (
                "linear",
                kernels::intersect_linear as fn(&[u32], &[u32]) -> Vec<u32>,
            ),
            ("gallop", kernels::intersect_gallop),
            ("auto", kernels::intersect),
        ] {
            let hist = reg.histogram(
                INTERSECT_NS,
                &[("kernel", kernel), ("ratio", ratio_label.as_str())],
            );
            let mut hits = 0usize;
            for _ in 0..50 {
                let start = Instant::now();
                hits = f(&small, &large).len();
                hist.record_duration(start.elapsed());
            }
            println!("intersect {kernel:<7} ratio 1:{ratio:<4} -> {hits} common elements");
        }
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_index.json".into());
    let reg = Arc::new(MetricsRegistry::new());

    // Relational text index (built inside dataset generation).
    let db = generate_dblp(&DblpConfig {
        n_papers: 500,
        n_authors: 200,
        ..Default::default()
    });
    assert!(db.is_index_fresh(), "generator must build the text index");
    record_index_stats(&reg, "relational_text", &db.text_index().index_stats());

    // XML keyword index.
    let tree = generate_bib_xml(&Default::default());
    let ix = XmlIndex::build(&tree);
    record_index_stats(&reg, "xml_keyword", &ix.index_stats());

    // Graph keyword index (incremental, no build wall-clock of its own) and
    // the BLINKS node→keyword distance index.
    let g = kwdb_datasets::graphs::generate_graph(&Default::default());
    record_index_stats(&reg, "graph_keyword", &g.keyword_index_stats());
    let n2k = Blinks::new(&g).build_full_index();
    record_index_stats(&reg, "graph_node2kw", &n2k.index_stats());

    for (name, stats) in [
        ("relational_text", db.text_index().index_stats()),
        ("xml_keyword", ix.index_stats()),
        ("graph_keyword", g.keyword_index_stats()),
        ("graph_node2kw", n2k.index_stats()),
    ] {
        println!(
            "{name:<16} terms {:>6}  postings {:>8}  bytes {:>10}  build {:?}",
            stats.terms, stats.postings, stats.posting_bytes, stats.build
        );
    }

    bench_intersections(&reg);

    let json = kwdb_obs::export::to_json(&reg.snapshot());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("index bench snapshot written to {out}");
}
