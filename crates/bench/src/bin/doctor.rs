//! kwdb-doctor — offline analysis of flight-recorder dumps and metrics
//! snapshots.
//!
//! ```sh
//! # Analyze a flight recorder dump written by `reproduce --flight-out`:
//! cargo run -p kwdb-bench --bin kwdb-doctor -- BENCH_flight.json
//! cargo run -p kwdb-bench --bin kwdb-doctor -- BENCH_flight.json --top 5
//!
//! # Export the slowest traced query as Chrome/Perfetto trace_event JSON
//! # (load it at chrome://tracing or ui.perfetto.dev):
//! cargo run -p kwdb-bench --bin kwdb-doctor -- BENCH_flight.json --chrome-out trace.json
//!
//! # Diff two kwdb-metrics-v1 snapshots (counters, gauges, histogram p99s):
//! cargo run -p kwdb-bench --bin kwdb-doctor -- --diff old.json new.json
//! ```
//!
//! The dump format (`kwdb-flightrec-v1`) is self-contained: every record
//! carries its per-phase durations, truncation/cache outcome, and — for
//! sampled or slow queries — a full span tree, so tail-latency forensics
//! needs no access to the process that served the queries.

use kwdb_obs::{chrome, FlightDump, MetricId, QueryRecord, Snapshot};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--diff") {
        match &args[1..] {
            [a, b] => diff_snapshots(a, b),
            _ => usage(),
        }
        return;
    }

    let mut dump_path: Option<&str> = None;
    let mut top = 10usize;
    let mut chrome_out: Option<&str> = None;
    let mut metrics_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => usage(),
            },
            "--chrome-out" => match it.next() {
                Some(p) => chrome_out = Some(p),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics_path = Some(p),
                None => usage(),
            },
            p if !p.starts_with("--") && dump_path.is_none() => dump_path = Some(p),
            _ => usage(),
        }
    }
    let Some(path) = dump_path else { usage() };
    analyze(path, top, chrome_out, metrics_path);
}

fn usage() -> ! {
    eprintln!(
        "usage: kwdb-doctor <flight.json> [--top N] [--chrome-out PATH] [--metrics SNAPSHOT]"
    );
    eprintln!("       kwdb-doctor --diff <old-metrics.json> <new-metrics.json>");
    std::process::exit(2);
}

fn load_dump(path: &str) -> FlightDump {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    FlightDump::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not a valid kwdb-flightrec-v1 dump: {e}");
        std::process::exit(1);
    })
}

fn ms(d: Duration) -> String {
    format!("{:.3}ms", d.as_nanos() as f64 / 1e6)
}

/// The phase that dominated one record's latency.
fn dominant_phase(r: &QueryRecord) -> (&'static str, Duration) {
    [
        ("parse", r.phases.parse),
        ("build", r.phases.build),
        ("plan", r.phases.plan),
        ("evaluate", r.phases.evaluate),
        ("facets", r.phases.facets),
    ]
    .into_iter()
    .max_by_key(|(_, d)| *d)
    .unwrap_or(("parse", Duration::ZERO))
}

fn analyze(path: &str, top: usize, chrome_out: Option<&str>, metrics_path: Option<&str>) {
    let dump = load_dump(path);
    let snapshot = metrics_path.map(load_snapshot);
    println!(
        "{path}: {} records (capacity {}, {} dropped)",
        dump.records.len(),
        dump.capacity,
        dump.dropped
    );
    if dump.records.is_empty() {
        return;
    }

    // Top-N slowest.
    let mut by_latency: Vec<&QueryRecord> = dump.records.iter().collect();
    by_latency.sort_by_key(|r| std::cmp::Reverse(r.total()));
    println!("\n== top {} slowest ==", top.min(by_latency.len()));
    println!(
        "{:>6}  {:<24}  {:<26}  {:>12}  {:<10}  {:<13}  {:<5}  flags",
        "seq", "executor", "digest", "total", "dominant", "truncation", "cache"
    );
    for r in by_latency.iter().take(top) {
        let (phase, d) = dominant_phase(r);
        let mut flags = Vec::new();
        if r.slow {
            flags.push("slow");
        }
        if r.sampled {
            flags.push("sampled");
        }
        if r.trace.is_some() {
            flags.push("traced");
        }
        println!(
            "{:>6}  {:<24}  {:<26}  {:>12}  {:<10}  {:<13}  {:<5}  {}",
            r.seq,
            format!("{}/{}", r.engine, r.algorithm),
            r.digest,
            ms(r.total()),
            format!("{phase} {}", ms(d)),
            r.truncation
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            r.cache.as_str(),
            flags.join(",")
        );
    }

    // Per-executor phase breakdown.
    let mut executors: Vec<(String, String)> = dump
        .records
        .iter()
        .map(|r| (r.engine.clone(), r.algorithm.clone()))
        .collect();
    executors.sort();
    executors.dedup();
    println!("\n== per-executor phase breakdown ==");
    println!(
        "{:<24}  {:>5}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
        "executor", "n", "parse", "build", "plan", "evaluate", "facets", "total"
    );
    for (engine, algorithm) in &executors {
        let recs: Vec<&QueryRecord> = dump
            .records
            .iter()
            .filter(|r| &r.engine == engine && &r.algorithm == algorithm)
            .collect();
        let sum = |f: fn(&QueryRecord) -> Duration| -> Duration { recs.iter().map(|r| f(r)).sum() };
        println!(
            "{:<24}  {:>5}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
            format!("{engine}/{algorithm}"),
            recs.len(),
            ms(sum(|r| r.phases.parse)),
            ms(sum(|r| r.phases.build)),
            ms(sum(|r| r.phases.plan)),
            ms(sum(|r| r.phases.evaluate)),
            ms(sum(|r| r.phases.facets)),
            ms(sum(|r| r.total())),
        );
    }

    // Per-engine generation and segment census: the newest record per
    // engine carries the state the engine last served at; the generation
    // span shows how much mutation the window covered.
    let mut engines: Vec<&str> = dump.records.iter().map(|r| r.engine.as_str()).collect();
    engines.sort();
    engines.dedup();
    println!("\n== per-engine generations ==");
    println!(
        "{:<14}  {:>10}  {:>10}  {:>9}  {:>7}",
        "engine", "gen(first)", "gen(last)", "realtime", "sealed"
    );
    for engine in &engines {
        let mut recs: Vec<&QueryRecord> = dump
            .records
            .iter()
            .filter(|r| &r.engine == engine)
            .collect();
        recs.sort_by_key(|r| r.seq);
        let (first, last) = (recs[0], recs[recs.len() - 1]);
        println!(
            "{:<14}  {:>10}  {:>10}  {:>9}  {:>7}",
            engine, first.generation, last.generation, last.segments_realtime, last.segments_sealed
        );
    }

    // Truncation and cache outcome summaries.
    let truncated: Vec<&QueryRecord> = dump
        .records
        .iter()
        .filter(|r| r.truncation.is_some())
        .collect();
    println!("\n== outcomes ==");
    println!(
        "truncated: {}/{} ({} deadline, {} candidate_cap)",
        truncated.len(),
        dump.records.len(),
        truncated
            .iter()
            .filter(|r| r.truncation.map(|t| t.to_string()) == Some("deadline".into()))
            .count(),
        truncated
            .iter()
            .filter(|r| r.truncation.map(|t| t.to_string()) == Some("candidate_cap".into()))
            .count(),
    );
    let cache_count = |k: &str| {
        dump.records
            .iter()
            .filter(|r| r.cache.as_str() == k)
            .count()
    };
    println!(
        "plan cache: {} hit, {} miss, {} n/a",
        cache_count("hit"),
        cache_count("miss"),
        cache_count("none")
    );
    println!(
        "traces: {} of {} records ({} sampled by policy, {} flagged slow)",
        dump.records.iter().filter(|r| r.trace.is_some()).count(),
        dump.records.len(),
        dump.records.iter().filter(|r| r.sampled).count(),
        dump.records.iter().filter(|r| r.slow).count(),
    );

    // Per-engine result-cache census from the dump; with `--metrics` the
    // eviction count and live entry/byte gauges from the same run's
    // snapshot fill in the columns the records can't carry.
    println!("\n== result cache ==");
    println!(
        "{:<14}  {:>8}  {:>6}  {:>6}  {:>8}  {:>8}  {:>9}  {:>7}  {:>10}",
        "engine",
        "consults",
        "hits",
        "misses",
        "hit-rate",
        "bypassed",
        "evictions",
        "entries",
        "bytes"
    );
    for engine in &engines {
        let outcome = |k: &str| -> u64 {
            dump.records
                .iter()
                .filter(|r| &r.engine == engine && r.result_cache.as_str() == k)
                .count() as u64
        };
        let (hits, misses, bypassed) = (outcome("hit"), outcome("miss"), outcome("none"));
        let consults = hits + misses;
        let rate = if consults > 0 {
            format!("{:.1}%", 100.0 * hits as f64 / consults as f64)
        } else {
            "-".into()
        };
        let series = |family: &str, counters: bool| -> Option<i128> {
            let snap = snapshot.as_ref()?;
            let matches = |id: &MetricId| {
                id.name == family
                    && id
                        .labels
                        .iter()
                        .any(|(k, v)| k == "engine" && v.as_str() == *engine)
            };
            Some(if counters {
                snap.counters
                    .iter()
                    .filter(|(id, _)| matches(id))
                    .map(|(_, v)| *v as i128)
                    .sum()
            } else {
                snap.gauges
                    .iter()
                    .filter(|(id, _)| matches(id))
                    .map(|(_, v)| *v as i128)
                    .sum()
            })
        };
        let opt = |v: Option<i128>| v.map(|n| n.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "{:<14}  {:>8}  {:>6}  {:>6}  {:>8}  {:>8}  {:>9}  {:>7}  {:>10}",
            engine,
            consults,
            hits,
            misses,
            rate,
            bypassed,
            opt(series(kwdb_obs::families::RESULT_CACHE_EVICTIONS, true)),
            opt(series(kwdb_obs::families::RESULT_CACHE_ENTRIES, false)),
            opt(series(kwdb_obs::families::RESULT_CACHE_BYTES, false)),
        );
    }

    // Chrome export: the slowest record that carries a span tree.
    if let Some(out) = chrome_out {
        let Some(rec) = by_latency.iter().find(|r| r.trace.is_some()) else {
            eprintln!("no record carries a trace; nothing to export");
            std::process::exit(1);
        };
        let trace = rec.trace.as_ref().expect("filtered on is_some");
        let json = chrome::to_chrome_trace(trace);
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
        println!(
            "\nchrome trace of seq {} ({}/{}, {}) written to {out}",
            rec.seq,
            rec.engine,
            rec.algorithm,
            ms(rec.total())
        );
    }
}

fn load_snapshot(path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    kwdb_obs::export::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not a valid kwdb-metrics-v1 snapshot: {e}");
        std::process::exit(1);
    })
}

/// `name{k="v",...}` rendering of one series identity.
fn fmt_id(id: &MetricId) -> String {
    if id.labels.is_empty() {
        return id.name.clone();
    }
    let labels: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    format!("{}{{{}}}", id.name, labels.join(","))
}

/// Print every counter/gauge/histogram that changed between two snapshots.
fn diff_snapshots(a_path: &str, b_path: &str) {
    let a = load_snapshot(a_path);
    let b = load_snapshot(b_path);
    println!("diff {a_path} -> {b_path}");
    let mut changes = 0usize;

    let a_counters: std::collections::BTreeMap<_, _> =
        a.counters.iter().map(|(id, v)| (id.clone(), *v)).collect();
    let b_counters: std::collections::BTreeMap<_, _> =
        b.counters.iter().map(|(id, v)| (id.clone(), *v)).collect();
    let mut counter_ids: Vec<_> = a_counters.keys().chain(b_counters.keys()).collect();
    counter_ids.sort();
    counter_ids.dedup();
    for id in counter_ids {
        let (va, vb) = (
            a_counters.get(id).copied().unwrap_or(0),
            b_counters.get(id).copied().unwrap_or(0),
        );
        if va != vb {
            println!(
                "  counter {}: {va} -> {vb} ({:+})",
                fmt_id(id),
                vb as i128 - va as i128
            );
            changes += 1;
        }
    }

    let a_gauges: std::collections::BTreeMap<_, _> =
        a.gauges.iter().map(|(id, v)| (id.clone(), *v)).collect();
    let b_gauges: std::collections::BTreeMap<_, _> =
        b.gauges.iter().map(|(id, v)| (id.clone(), *v)).collect();
    let mut gauge_ids: Vec<_> = a_gauges.keys().chain(b_gauges.keys()).collect();
    gauge_ids.sort();
    gauge_ids.dedup();
    for id in gauge_ids {
        let (va, vb) = (
            a_gauges.get(id).copied().unwrap_or(0),
            b_gauges.get(id).copied().unwrap_or(0),
        );
        if va != vb {
            println!("  gauge {}: {va} -> {vb} ({:+})", fmt_id(id), vb - va);
            changes += 1;
        }
    }

    let a_hists: std::collections::BTreeMap<_, _> =
        a.histograms.iter().map(|(id, h)| (id.clone(), h)).collect();
    let b_hists: std::collections::BTreeMap<_, _> =
        b.histograms.iter().map(|(id, h)| (id.clone(), h)).collect();
    let mut hist_ids: Vec<_> = a_hists.keys().chain(b_hists.keys()).collect();
    hist_ids.sort();
    hist_ids.dedup();
    for id in hist_ids {
        match (a_hists.get(id), b_hists.get(id)) {
            (Some(ha), Some(hb)) if ha != hb => {
                println!(
                    "  histogram {}: count {} -> {}, p99 {} -> {}ns",
                    fmt_id(id),
                    ha.count,
                    hb.count,
                    ha.quantile(0.99),
                    hb.quantile(0.99)
                );
                changes += 1;
            }
            (Some(ha), None) => {
                println!(
                    "  histogram {}: removed (was count {})",
                    fmt_id(id),
                    ha.count
                );
                changes += 1;
            }
            (None, Some(hb)) => {
                println!("  histogram {}: added (count {})", fmt_id(id), hb.count);
                changes += 1;
            }
            _ => {}
        }
    }

    if changes == 0 {
        println!("  snapshots are identical");
    } else {
        println!("  {changes} series changed");
    }
}
