//! Validate a `kwdb-metrics-v1` JSON snapshot written by
//! `reproduce --metrics-out`.
//!
//! ```sh
//! cargo run -p kwdb-bench --bin metrics_check -- BENCH_metrics.json
//! cargo run -p kwdb-bench --bin metrics_check -- BENCH_metrics.json --flight BENCH_flight.json
//! ```
//!
//! Exits non-zero (naming what's missing) unless the file parses as an
//! exact registry snapshot and contains every required metric family —
//! this is what the CI observability job runs against the uploaded
//! artifact, so a refactor that silently stops recording a family fails
//! the build instead of going dark in dashboards.
//!
//! With `--flight DUMP` the companion `kwdb-flightrec-v1` dump written by
//! `reproduce --flight-out` is cross-checked against the snapshot: the ring
//! never exceeds its capacity, sampled records carry traces, and — when the
//! ring never dropped a record — the per-executor sums of record totals and
//! per-phase durations agree *exactly* with the registry's latency
//! histogram sums (both sides track exact nanosecond sums, so any skew
//! means a query was sealed without reaching one of the two sinks).

use kwdb_obs::{families, FlightDump, Snapshot};

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut flight_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--flight" {
            match args.next() {
                Some(p) => flight_path = Some(p),
                None => {
                    eprintln!("--flight requires a path");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(arg);
        }
    }
    let Some(path) = paths.first().cloned() else {
        eprintln!("usage: metrics_check <snapshot.json> [--flight <dump.json>]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let snapshot = match kwdb_obs::export::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path} is not a valid kwdb-metrics-v1 snapshot: {e}");
            std::process::exit(1);
        }
    };

    let present = snapshot.family_names();
    let required = [
        families::QUERIES,
        families::QUERY_LATENCY,
        families::PHASE_LATENCY,
        families::OPERATORS,
        families::CANDIDATES,
        families::PLAN_CACHE,
        families::TRUNCATED,
        families::PLAN_CACHE_SIZE,
        families::PLAN_CACHE_GENERATIONS,
        families::DISPATCH_QUEUE_WAIT,
        families::DISPATCH_INFLIGHT,
        families::DISPATCH_REQUESTS,
        families::DISPATCH_WORKER_REQUESTS,
        families::INDEX_BUILD,
        families::INDEX_TERMS,
        families::INDEX_POSTINGS,
        families::INDEX_POSTING_BYTES,
        families::CN_EVALUATED,
        families::CN_PRUNED,
        families::JOIN_PROBE_ROWS,
        families::INTRA_WORKERS,
        families::FACET_QUERIES,
        families::FACET_VALUES,
        families::FACET_INEXACT,
        families::FLIGHT_DROPPED,
        families::FLIGHT_ENTRIES,
        families::TRACE_SAMPLED,
        families::ENGINE_GENERATION,
        families::SEGMENTS,
        families::SEGMENT_MERGES,
        families::INGESTED_TUPLES,
        families::RESULT_CACHE_HITS,
        families::RESULT_CACHE_MISSES,
        families::RESULT_CACHE_EVICTIONS,
        families::RESULT_CACHE_ENTRIES,
        families::RESULT_CACHE_BYTES,
        families::TUPLESET_CACHE_HITS,
        families::TUPLESET_CACHE_MISSES,
        "kwdb_experiment_latency_ns",
    ];
    let missing: Vec<&str> = required
        .iter()
        .copied()
        .filter(|f| !present.contains(f))
        .collect();
    if !missing.is_empty() {
        eprintln!("{path}: missing metric families: {missing:?}");
        eprintln!("present: {present:?}");
        std::process::exit(1);
    }
    if snapshot.counter_total(families::QUERIES) == 0 {
        eprintln!("{path}: {} recorded no queries", families::QUERIES);
        std::process::exit(1);
    }

    // CN accounting: every candidate network a monotone top-k run generates
    // is either evaluated or pruned — nothing may fall through the counters.
    // Only the monotone executors do CN-level accounting (SPARK's
    // skyline-sweep reports 0/0), so the generated total is filtered to
    // their algorithm labels; the CN counters themselves are zero everywhere
    // else and can be summed whole.
    let cn_accounted = snapshot.counter_total(families::CN_EVALUATED)
        + snapshot.counter_total(families::CN_PRUNED);
    let has = |id: &kwdb_obs::MetricId, k: &str, vs: &[&str]| {
        id.labels
            .iter()
            .any(|(lk, lv)| lk == k && vs.contains(&lv.as_str()))
    };
    let cn_generated: u64 = snapshot
        .counters
        .iter()
        .filter(|(id, _)| {
            id.name == families::CANDIDATES
                && has(id, "kind", &["generated"])
                && has(id, "algorithm", &["global_pipeline", "parallel_cn"])
        })
        .map(|(_, v)| *v)
        .sum();
    if cn_generated == 0 {
        eprintln!(
            "{path}: no CNs generated by the monotone executors — the CN accounting check is vacuous"
        );
        std::process::exit(1);
    }
    if cn_accounted != cn_generated {
        eprintln!(
            "{path}: CN accounting broken: {} + {} = {cn_accounted} but {} (kind=generated, monotone algorithms) = {cn_generated}",
            families::CN_EVALUATED,
            families::CN_PRUNED,
            families::CANDIDATES,
        );
        std::process::exit(1);
    }

    // Result-cache sanity: the smoke batch replays its queries, so a
    // snapshot with no hits (or no misses) means the cache was silently
    // disabled — or consulted queries stopped being counted.
    let rc_hits = snapshot.counter_total(families::RESULT_CACHE_HITS);
    let rc_misses = snapshot.counter_total(families::RESULT_CACHE_MISSES);
    if rc_hits == 0 || rc_misses == 0 {
        eprintln!(
            "{path}: result cache recorded {rc_hits} hits / {rc_misses} misses — the replayed smoke batch must produce both"
        );
        std::process::exit(1);
    }

    // The exporter and parser must agree exactly: re-serialize and re-parse.
    let rt = kwdb_obs::export::from_json(&kwdb_obs::export::to_json(&snapshot))
        .expect("round-trip parse");
    if rt != snapshot {
        eprintln!("{path}: JSON round-trip changed the snapshot");
        std::process::exit(1);
    }

    println!(
        "{path}: ok — {} families, {} queries recorded",
        present.len(),
        snapshot.counter_total(families::QUERIES)
    );

    if let Some(fpath) = flight_path {
        check_flight(&fpath, &snapshot);
    }
}

/// Cross-check a flight-recorder dump against the metrics snapshot from the
/// same run.
fn check_flight(fpath: &str, snapshot: &Snapshot) {
    let text = match std::fs::read_to_string(fpath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {fpath}: {e}");
            std::process::exit(1);
        }
    };
    let dump = match FlightDump::from_json(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{fpath} is not a valid kwdb-flightrec-v1 dump: {e}");
            std::process::exit(1);
        }
    };
    if dump.records.is_empty() {
        eprintln!("{fpath}: flight recorder dump holds no records");
        std::process::exit(1);
    }
    if dump.records.len() > dump.capacity {
        eprintln!(
            "{fpath}: {} records exceed the declared capacity {}",
            dump.records.len(),
            dump.capacity
        );
        std::process::exit(1);
    }
    let traced = dump.records.iter().filter(|r| r.trace.is_some()).count();
    if traced == 0 {
        eprintln!("{fpath}: no record carries a trace — sampling never promoted a query");
        std::process::exit(1);
    }
    for r in &dump.records {
        if r.sampled && r.trace.is_none() {
            eprintln!(
                "{fpath}: record seq {} is marked sampled but has no trace",
                r.seq
            );
            std::process::exit(1);
        }
    }

    // The self-instruments must reflect the ring the dump came from.
    let entries_gauge: i64 = snapshot
        .gauges
        .iter()
        .filter(|(id, _)| id.name == families::FLIGHT_ENTRIES)
        .map(|(_, v)| *v)
        .sum();
    if entries_gauge != dump.records.len() as i64 {
        eprintln!(
            "{fpath}: {} = {entries_gauge} but the dump holds {} records",
            families::FLIGHT_ENTRIES,
            dump.records.len()
        );
        std::process::exit(1);
    }
    let dropped_counter = snapshot.counter_total(families::FLIGHT_DROPPED);
    if dropped_counter != dump.dropped {
        eprintln!(
            "{fpath}: {} = {dropped_counter} but the dump reports {} dropped",
            families::FLIGHT_DROPPED,
            dump.dropped
        );
        std::process::exit(1);
    }

    // With zero drops the ring retained every sealed query, so its per-
    // executor totals must equal the registry's exact histogram sums.
    if dump.dropped == 0 {
        let label = |id: &kwdb_obs::MetricId, key: &str| -> Option<String> {
            id.labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        };
        let mut failures = 0u32;
        let mut executors: Vec<(String, String)> = dump
            .records
            .iter()
            .map(|r| (r.engine.clone(), r.algorithm.clone()))
            .collect();
        executors.sort();
        executors.dedup();
        for (engine, algorithm) in &executors {
            let recs: Vec<_> = dump
                .records
                .iter()
                .filter(|r| &r.engine == engine && &r.algorithm == algorithm)
                .collect();
            let rec_total: u128 = recs.iter().map(|r| r.total().as_nanos()).sum();
            let hist = snapshot.histograms.iter().find(|(id, _)| {
                id.name == families::QUERY_LATENCY
                    && label(id, "engine").as_deref() == Some(engine)
                    && label(id, "algorithm").as_deref() == Some(algorithm)
            });
            let Some((_, hist)) = hist else {
                eprintln!(
                    "{fpath}: no {} histogram for {engine}/{algorithm}",
                    families::QUERY_LATENCY
                );
                failures += 1;
                continue;
            };
            if hist.count != recs.len() as u64 || u128::from(hist.sum) != rec_total {
                eprintln!(
                    "{fpath}: {engine}/{algorithm}: dump has {} records summing {rec_total}ns, registry histogram has count {} sum {}ns",
                    recs.len(),
                    hist.count,
                    hist.sum
                );
                failures += 1;
            }
            for phase in ["parse", "build", "plan", "evaluate", "facets"] {
                let rec_phase: u128 = recs
                    .iter()
                    .map(|r| {
                        match phase {
                            "parse" => r.phases.parse,
                            "build" => r.phases.build,
                            "plan" => r.phases.plan,
                            "evaluate" => r.phases.evaluate,
                            _ => r.phases.facets,
                        }
                        .as_nanos()
                    })
                    .sum();
                let ph = snapshot.histograms.iter().find(|(id, _)| {
                    id.name == families::PHASE_LATENCY
                        && label(id, "engine").as_deref() == Some(engine)
                        && label(id, "algorithm").as_deref() == Some(algorithm)
                        && label(id, "phase").as_deref() == Some(phase)
                });
                let Some((_, ph)) = ph else {
                    eprintln!(
                        "{fpath}: no {} histogram for {engine}/{algorithm} phase {phase}",
                        families::PHASE_LATENCY
                    );
                    failures += 1;
                    continue;
                };
                if u128::from(ph.sum) != rec_phase {
                    eprintln!(
                        "{fpath}: {engine}/{algorithm} phase {phase}: dump sums {rec_phase}ns, registry histogram sums {}ns",
                        ph.sum
                    );
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!("{fpath}: dump/registry disagreement ({failures} failures)");
            std::process::exit(1);
        }

        // Result-cache accounting: every query that consulted the result
        // cache sealed a record with a hit-or-miss outcome, and every
        // bypass (disabled, traced, budget-capped) sealed `none`. With
        // zero drops the ring holds all of them, so the per-engine outcome
        // census must equal the counter families exactly.
        let mut engines: Vec<String> = dump.records.iter().map(|r| r.engine.clone()).collect();
        engines.sort();
        engines.dedup();
        let mut rc_failures = 0u32;
        for engine in &engines {
            let outcome_count = |o: kwdb_obs::CacheOutcome| -> u64 {
                dump.records
                    .iter()
                    .filter(|r| &r.engine == engine && r.result_cache == o)
                    .count() as u64
            };
            let counter = |family: &str| -> u64 {
                snapshot
                    .counters
                    .iter()
                    .filter(|(id, _)| {
                        id.name == family && label(id, "engine").as_deref() == Some(engine.as_str())
                    })
                    .map(|(_, v)| *v)
                    .sum()
            };
            for (family, outcome) in [
                (families::RESULT_CACHE_HITS, kwdb_obs::CacheOutcome::Hit),
                (families::RESULT_CACHE_MISSES, kwdb_obs::CacheOutcome::Miss),
            ] {
                let recs = outcome_count(outcome);
                let total = counter(family);
                if recs != total {
                    eprintln!(
                        "{fpath}: {engine}: {recs} records with result_cache={} but {family} = {total}",
                        outcome.as_str()
                    );
                    rc_failures += 1;
                }
            }
        }
        if rc_failures > 0 {
            eprintln!("{fpath}: result-cache outcome census disagrees ({rc_failures} failures)");
            std::process::exit(1);
        }
    }

    println!(
        "{fpath}: ok — {} records ({traced} traced, {} dropped) agree with the registry",
        dump.records.len(),
        dump.dropped
    );
}
