//! Validate a `kwdb-metrics-v1` JSON snapshot written by
//! `reproduce --metrics-out`.
//!
//! ```sh
//! cargo run -p kwdb-bench --bin metrics_check -- BENCH_metrics.json
//! ```
//!
//! Exits non-zero (naming what's missing) unless the file parses as an
//! exact registry snapshot and contains every required metric family —
//! this is what the CI observability job runs against the uploaded
//! artifact, so a refactor that silently stops recording a family fails
//! the build instead of going dark in dashboards.

use kwdb_obs::families;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: metrics_check <snapshot.json>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let snapshot = match kwdb_obs::export::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path} is not a valid kwdb-metrics-v1 snapshot: {e}");
            std::process::exit(1);
        }
    };

    let present = snapshot.family_names();
    let required = [
        families::QUERIES,
        families::QUERY_LATENCY,
        families::PHASE_LATENCY,
        families::OPERATORS,
        families::CANDIDATES,
        families::PLAN_CACHE,
        families::TRUNCATED,
        families::PLAN_CACHE_SIZE,
        families::PLAN_CACHE_GENERATIONS,
        families::DISPATCH_QUEUE_WAIT,
        families::DISPATCH_INFLIGHT,
        families::DISPATCH_REQUESTS,
        families::DISPATCH_WORKER_REQUESTS,
        families::INDEX_BUILD,
        families::INDEX_TERMS,
        families::INDEX_POSTINGS,
        families::INDEX_POSTING_BYTES,
        "kwdb_experiment_latency_ns",
    ];
    let missing: Vec<&str> = required
        .iter()
        .copied()
        .filter(|f| !present.contains(f))
        .collect();
    if !missing.is_empty() {
        eprintln!("{path}: missing metric families: {missing:?}");
        eprintln!("present: {present:?}");
        std::process::exit(1);
    }
    if snapshot.counter_total(families::QUERIES) == 0 {
        eprintln!("{path}: {} recorded no queries", families::QUERIES);
        std::process::exit(1);
    }

    // The exporter and parser must agree exactly: re-serialize and re-parse.
    let rt = kwdb_obs::export::from_json(&kwdb_obs::export::to_json(&snapshot))
        .expect("round-trip parse");
    if rt != snapshot {
        eprintln!("{path}: JSON round-trip changed the snapshot");
        std::process::exit(1);
    }

    println!(
        "{path}: ok — {} families, {} queries recorded",
        present.len(),
        snapshot.counter_total(families::QUERIES)
    );
}
