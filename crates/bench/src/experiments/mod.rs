//! Experiment implementations, grouped by technique family.

pub mod ambiguity;
pub mod evalx;
pub mod explorex;
pub mod extensions;
pub mod formsx;
pub mod graphs;
pub mod relational;
pub mod xmlx;
