//! Result-exploration experiments (E15, E27–E32).

use crate::Report;
use kwdb_common::text::tokenize;
use kwdb_explore::clouds::{co_occurring_terms, top_terms_popularity, top_terms_relevance};
use kwdb_explore::cluster::{cluster_by_context, describable_clusters};
use kwdb_explore::diff::{differentiate, Feature};
use kwdb_explore::expand::expand_all;
use kwdb_explore::facets::{build_fixed, build_greedy, FacetTable, LogModel, LogQuery, NavNode};
use kwdb_explore::tableagg::{aggregate_search, AggTable};
use kwdb_explore::textcube::{top_cells, TextCube};
use kwdb_xml::{XmlBuilder, XmlIndex};
use std::collections::HashSet;

/// E15 (slides 86–93): faceted navigation cost.
pub fn e15_facets() -> Report {
    let mut rows_data = Vec::new();
    // apartments across neighborhoods/prices/pets (a larger slide-87 shape)
    for n in 0..48 {
        let nbhd = ["redmond", "bellevue", "seattle", "kirkland"][n % 4];
        let price = ["500-1000", "1000-1500", "1500-2000"][n % 3];
        let pets = ["yes", "no"][n % 2];
        rows_data.push(vec![nbhd.to_string(), price.to_string(), pets.to_string()]);
    }
    let table = FacetTable::new(
        vec!["neighborhood".into(), "price".into(), "pets".into()],
        rows_data,
    );
    let log: Vec<LogQuery> = (0..20)
        .map(|i| {
            if i % 4 == 0 {
                vec![("neighborhood".to_string(), "redmond".to_string())]
            } else {
                vec![("price".to_string(), "500-1000".to_string())]
            }
        })
        .collect();
    let model = LogModel::new(&log);
    let all: Vec<usize> = (0..48).collect();
    let flat = NavNode::Leaf { rows: all.clone() };
    let greedy = build_greedy(&table, &model, all.clone(), 2);
    let fixed = build_fixed(
        &table,
        &["pets".to_string(), "neighborhood".to_string()],
        all,
    );
    let rows = vec![
        format!(
            "flat SHOWALL cost:        {:.2}",
            flat.expected_cost(&model)
        ),
        format!(
            "fixed (pets→nbhd) cost:   {:.2}",
            fixed.expected_cost(&model)
        ),
        format!(
            "greedy tree cost:         {:.2}",
            greedy.expected_cost(&model)
        ),
        "greedy splits on the log's popular facet first and wins".into(),
    ];
    Report {
        id: "e15",
        title: "Faceted navigation cost model",
        claim: "slides 86–93: the greedy tree minimizes expected navigation cost vs alternatives",
        rows,
    }
}

/// E27 (slides 150–153): result differentiation.
pub fn e27_differentiation() -> Report {
    let results = vec![
        vec![
            Feature::new("conf:year", "2000"),
            Feature::new("paper:title", "olap"),
            Feature::new("paper:title", "data mining"),
            Feature::new("paper:title", "network"),
            Feature::new("author:country", "usa"),
        ],
        vec![
            Feature::new("conf:year", "2010"),
            Feature::new("paper:title", "cloud"),
            Feature::new("paper:title", "scalability"),
            Feature::new("paper:title", "network"),
            Feature::new("author:country", "usa"),
        ],
    ];
    let mut rows = Vec::new();
    for budget in [1usize, 2, 3] {
        let t = differentiate(&results, budget);
        let rendered: Vec<String> = t
            .selections
            .iter()
            .map(|sel| {
                sel.iter()
                    .map(|f| format!("{}={}", f.ftype, f.value))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .collect();
        rows.push(format!(
            "budget {budget}: DoD {} | {}",
            t.dod,
            rendered.join(" || ")
        ));
    }
    rows.push("shared features (network, usa) never enter the table".into());
    Report {
        id: "e27",
        title: "Result differentiation (DoD)",
        claim: "slides 151–152: selected features maximize visible differences, not shared noise",
        rows,
    }
}

/// E28 (slides 155–162): clustering, both flavors.
pub fn e28_clustering() -> Report {
    // XBridge context clusters
    let mut b = XmlBuilder::new("bib");
    for (venue, n) in [("conference", 4usize), ("journal", 2), ("workshop", 1)] {
        b.open(venue);
        for i in 0..n {
            b.open("paper")
                .leaf("title", &format!("keyword query processing {i}"))
                .close();
        }
        b.close();
    }
    let tree = b.build();
    let results: Vec<_> = tree
        .iter()
        .filter(|&n| tree.label(n) == "paper")
        .enumerate()
        .map(|(i, n)| (n, 10.0 - i as f64))
        .collect();
    let ctx = cluster_by_context(&tree, &results);
    let mut rows = vec!["XBridge context clusters:".to_string()];
    for c in &ctx {
        rows.push(format!(
            "  {:<28} {} members, score {:.1}",
            c.description,
            c.members.len(),
            c.score
        ));
    }
    // describable clusters on the auction instance
    let mut a = XmlBuilder::new("auctions");
    for (s, buyer, auc) in [
        ("Bob", "Mary", "Tom"),
        ("Frank", "Tom", "Louis"),
        ("Tom", "Peter", "Mark"),
        ("Tom", "Alice", "Louis"),
    ] {
        a.open("auction")
            .leaf("seller", s)
            .leaf("buyer", buyer)
            .leaf("auctioneer", auc)
            .close();
    }
    let at = a.build();
    let aix = XmlIndex::build(&at);
    let aresults: Vec<_> = at.iter().filter(|&n| at.label(n) == "auction").collect();
    rows.push("describable clusters for Q = {tom}:".into());
    for c in describable_clusters(&at, &aix, &aresults, &["tom"]) {
        rows.push(format!(
            "  {:<18} {} auctions",
            c.description,
            c.members.len()
        ));
    }
    Report {
        id: "e28",
        title: "Result clustering",
        claim: "slides 156/161: root-context clusters; keyword roles yield describable clusters",
        rows,
    }
}

fn events() -> (AggTable, Vec<Vec<String>>) {
    let data: Vec<(&str, &str, &str)> = vec![
        ("dec", "tx", "US Open Pool Best of 19 ranking"),
        ("dec", "tx", "Cowboy dream run motorcycle beer"),
        ("dec", "tx", "SPAM museum party classical american food"),
        ("oct", "mi", "Motorcycle rallies tournament round robin"),
        ("oct", "mi", "Michigan pool exhibition non-ranking"),
        ("sep", "mi", "American food history best food from usa"),
    ];
    let t = AggTable {
        attributes: vec!["month".into(), "state".into()],
        values: data
            .iter()
            .map(|(m, s, _)| vec![m.to_string(), s.to_string()])
            .collect(),
        text: data.iter().map(|(_, _, d)| tokenize(d)).collect(),
    };
    let q = vec![
        tokenize("motorcycle"),
        tokenize("pool"),
        tokenize("american food"),
    ];
    (t, q)
}

/// E29 (slides 16, 164–165): aggregate table analysis.
pub fn e29_table_analysis() -> Report {
    let (table, query) = events();
    let clusters = aggregate_search(&table, &query);
    let mut rows = vec![
        "Q = {motorcycle, pool, american food}, interesting attrs {month, state}:".to_string(),
    ];
    for c in &clusters {
        rows.push(format!("  {:<10} covering rows {:?}", c.display(), c.rows));
    }
    rows.push("matches the slide's output: {December Texas} and {* Michigan}".into());
    Report {
        id: "e29",
        title: "Aggregate keyword queries (minimal group-bys)",
        claim: "slide 165: the qualifying clusters are {dec, tx} and {*, mi}",
        rows,
    }
}

/// E30 (slides 166–167): text-cube TopCells.
pub fn e30_text_cube() -> Report {
    let cube = TextCube {
        dimensions: vec!["brand".into(), "model".into(), "cpu".into(), "os".into()],
        values: vec![
            vec![
                "acer".into(),
                "aoa110".into(),
                "1.6ghz".into(),
                "win7".into(),
            ],
            vec![
                "acer".into(),
                "aoa110".into(),
                "1.7ghz".into(),
                "win7".into(),
            ],
            vec![
                "asus".into(),
                "eeepc".into(),
                "1.7ghz".into(),
                "vista".into(),
            ],
        ],
        docs: vec![
            tokenize("lightweight powerful laptop"),
            tokenize("powerful processor laptop"),
            tokenize("large disk powerful laptop"),
        ],
    };
    let cells = top_cells(&cube, &["powerful", "laptop"], 2, 6);
    let mut rows = vec!["Q = {powerful, laptop}, min support 2:".to_string()];
    for c in &cells {
        rows.push(format!(
            "  {:<32} support {} score {:.2}",
            c.display(),
            c.support,
            c.score
        ));
    }
    rows.push("the slide's cells {Acer, AOA110, *, *} and {*, *, 1.7GHz, *} both qualify".into());
    Report {
        id: "e30",
        title: "TopCells in a text cube",
        claim: "slides 166–167: common feature combinations of relevant products, not just rows",
        rows,
    }
}

/// E31 (slides 76–78): data clouds.
pub fn e31_data_clouds() -> Report {
    let docs: Vec<Vec<String>> = vec![
        tokenize("xml keyword search data systems"),
        tokenize("xml xpath query evaluation data data"),
        tokenize("xml schema validation data"),
        tokenize("graph search ranking"),
    ];
    #[allow(clippy::type_complexity)]
    let weighted: Vec<(f64, Vec<(f64, Vec<String>)>)> = vec![
        (
            9.0,
            vec![
                (1.0, tokenize("keyword search")),
                (0.2, tokenize("data systems")),
            ],
        ),
        (
            6.0,
            vec![
                (1.0, tokenize("xpath query")),
                (0.2, tokenize("data data evaluation")),
            ],
        ),
        (
            2.0,
            vec![
                (1.0, tokenize("schema validation")),
                (0.2, tokenize("data")),
            ],
        ),
    ];
    let pop = top_terms_popularity(&docs, &["xml"], 3);
    let rel = top_terms_relevance(&weighted, &["xml"], 3);
    let co = co_occurring_terms(&docs, &["xml", "data"], 3);
    let rows = vec![
        format!("popularity ranking: {pop:?}"),
        format!("relevance ranking:  {rel:?}"),
        format!("co-occurring (no materialization): {co:?}"),
        "popularity surfaces the generic 'data'; relevance prefers title terms of good results"
            .into(),
    ];
    Report {
        id: "e31",
        title: "Data clouds term suggestion",
        claim: "slide 77: relevance-weighted term ranking beats raw popularity on generic terms",
        rows,
    }
}

/// E32 (slides 80–82): query expansion per cluster.
pub fn e32_query_expansion() -> Report {
    let docs: Vec<Vec<String>> = vec![
        tokenize("java oo language developed at sun"),
        tokenize("java software platform applet language"),
        tokenize("java three languages programming"),
        tokenize("java island of indonesia"),
        tokenize("java island has four provinces"),
        tokenize("java band formed in paris"),
        tokenize("java band active from 1972 to 1983"),
    ];
    let clusters: Vec<HashSet<usize>> = vec![
        HashSet::from([0, 1, 2]),
        HashSet::from([3, 4]),
        HashSet::from([5, 6]),
    ];
    let expanded = expand_all(&docs, &["java"], &clusters, 2);
    let mut rows = Vec::new();
    for (i, e) in expanded.iter().enumerate() {
        rows.push(format!(
            "cluster {}: query {:?} F = {:.2}",
            i + 1,
            e.terms,
            e.f_measure
        ));
    }
    rows.push("each expanded query retrieves its own sense of 'java'".into());
    Report {
        id: "e32",
        title: "Cluster-describing query expansion",
        claim: "slides 81–82: per-cluster expansions maximize F-measure against the cluster",
        rows,
    }
}
