//! XML keyword-search experiments (E04, E12, E24–E26).

use crate::Report;
use kwdb_datasets::xmlgen::{generate_bib_xml, generate_slca_workload, BibConfig};
use kwdb_xml::{PathStats, XmlIndex};
use kwdb_xmlsearch::elca::elca;
use kwdb_xmlsearch::slca::{multiway_slca, slca_indexed_lookup_eager, slca_scan_eager};
use kwdb_xmlsearch::{ntc, snippet, xreal, xseek};

/// E04 (slides 112, 138–140): SLCA work tracks |S_min|, not |S_max|.
pub fn e04_slca_complexity() -> Report {
    let n_common = 20_000;
    let mut rows = vec![format!(
        "{:>8} {:>8} {:>12} {:>11} {:>12} {:>12}",
        "|Smin|", "|Smax|", "ILE-anchors", "ILE-probes", "scan-probes", "BMS-anchors"
    )];
    for n_rare in [10usize, 100, 1000, 10_000] {
        let tree = generate_slca_workload(50, n_common, n_rare, 7);
        let ix = XmlIndex::build(&tree);
        let kws = ["common", "rare"];
        let (r1, ile) = slca_indexed_lookup_eager(&tree, &ix, &kws).unwrap();
        let (r2, scan) = slca_scan_eager(&tree, &ix, &kws).unwrap();
        let (r3, bms) = multiway_slca(&tree, &ix, &kws).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        rows.push(format!(
            "{n_rare:>8} {n_common:>8} {:>12} {:>11} {:>12} {:>12}",
            ile.anchors, ile.probes, scan.probes, bms.anchors
        ));
    }
    rows.push("ILE work is O(|Smin|·log|Smax|); scan pays O(|Smax|) pointer advances".into());
    Report {
        id: "e04",
        title: "SLCA complexity: ILE vs Scan vs Multiway",
        claim: "slide 138: Indexed-Lookup-Eager runs in O(k·d·|Smin|·log|Smax|)",
        rows,
    }
}

/// E12 (slides 42–43): NTC's exact slide numbers.
pub fn e12_ntc() -> Report {
    let author_paper = ntc::JointDistribution::from_instances(&[
        vec![1, 1],
        vec![2, 2],
        vec![3, 2],
        vec![4, 3],
        vec![5, 3],
        vec![5, 4],
    ]);
    let editor_paper = ntc::JointDistribution::from_instances(&[vec![1, 1], vec![2, 2]]);
    let rows = vec![
        format!(
            "author–paper: H(A)={:.2} H(P)={:.2} H(A,P)={:.2} I={:.2} I*={:.2}",
            author_paper.marginal_entropy(0),
            author_paper.marginal_entropy(1),
            author_paper.joint_entropy(),
            author_paper.total_correlation(),
            author_paper.ntc()
        ),
        format!(
            "editor–paper: H(E)={:.2} H(P)={:.2} H(E,P)={:.2} I={:.2} I*={:.2}",
            editor_paper.marginal_entropy(0),
            editor_paper.marginal_entropy(1),
            editor_paper.joint_entropy(),
            editor_paper.total_correlation(),
            editor_paper.ntc()
        ),
        "matches the slides: H(A)=2.25, H(P)=1.92, I=1.59; editor case I=1.0".into(),
        "editor–paper is the tighter structure (higher I*) — ranked first".into(),
    ];
    Report {
        id: "e12",
        title: "NTC: normalized total correlation",
        claim: "slides 42–43: I(A,P)=2.25+1.92−2.58=1.59; I(E,P)=1.0; rank by normalized I*",
        rows,
    }
}

fn bib() -> kwdb_xml::XmlTree {
    generate_bib_xml(&BibConfig {
        n_conferences: 5,
        n_journals: 2,
        papers_per_venue: 15,
        ..Default::default()
    })
}

/// E24 (slides 37–38): XReal return-type inference.
pub fn e24_xreal() -> Report {
    let tree = bib();
    let stats = PathStats::build(&tree);
    let kws = ["widom", "data"];
    let ranked = xreal::infer_return_types(&stats, &kws);
    let mut rows = vec![format!("query {kws:?}")];
    for t in ranked.iter().take(4) {
        rows.push(format!("  {:<26} {:.3}", t.path, t.score));
    }
    rows.push(format!(
        "phdthesis-style empty types score exactly 0 ({} candidates total)",
        ranked.len()
    ));
    Report {
        id: "e24",
        title: "XReal search-for type inference",
        claim: "slide 37: /conf/paper scores highest; types that cannot cover all keywords get 0",
        rows,
    }
}

/// E25 (slide 51): XSeek keyword roles and return nodes.
pub fn e25_xseek() -> Report {
    let mut b = kwdb_xml::XmlBuilder::new("bib");
    for (name, inst) in [
        ("John Smith", "Univ of Toronto"),
        ("Mary Jones", "MIT"),
        ("John Doe", "Stanford"),
    ] {
        b.open("author")
            .leaf("name", name)
            .leaf("institution", inst)
            .close();
    }
    let tree = b.build();
    let ix = XmlIndex::build(&tree);
    let stats = PathStats::build(&tree);
    let mut rows = Vec::new();
    for query in [vec!["john", "institution"], vec!["john", "toronto"]] {
        let roles = xseek::keyword_roles(&tree, &ix, &query);
        let specs = xseek::infer_return(&tree, &ix, &stats, &query).unwrap();
        let desc: Vec<String> = specs
            .iter()
            .map(|s| match s {
                xseek::ReturnSpec::Explicit { label, nodes } => {
                    format!("explicit {label} ({} nodes)", nodes.len())
                }
                xseek::ReturnSpec::Entity { node } => {
                    format!("entity {}", tree.label(*node))
                }
            })
            .collect();
        rows.push(format!("Q={query:?} roles={roles:?} → {}", desc.join("; ")));
    }
    rows.push("label keyword ⇒ explicit return; pure value query ⇒ author entity".into());
    Report {
        id: "e25",
        title: "XSeek return-node inference",
        claim:
            "slide 51: 'John, institution' returns institutions; 'John, Toronto' returns the author",
        rows,
    }
}

/// E26 (slides 147–148): snippet quality vs budget.
pub fn e26_snippets() -> Report {
    let tree = bib();
    let ix = XmlIndex::build(&tree);
    let kws = ["data", "query"];
    let (results, _) = slca_indexed_lookup_eager(&tree, &ix, &kws).unwrap();
    let mut rows = Vec::new();
    if let Some(&root) = results.first() {
        // snippet the enclosing venue for context
        let venue = tree.parent(root).unwrap_or(root);
        for budget in [3usize, 6, 12] {
            let s = snippet::generate(&tree, venue, &kws, budget);
            let txt = s.render(&tree);
            let covered = kws
                .iter()
                .filter(|k| txt.to_lowercase().contains(**k))
                .count();
            rows.push(format!(
                "budget {budget:>2}: {:>2} nodes, {covered}/2 keywords witnessed, {} chars",
                s.nodes.len(),
                txt.len()
            ));
        }
    }
    rows.push(
        "snippets stay self-contained (ancestor-closed) and keyword witnesses enter first".into(),
    );
    // ELCA sanity alongside (slide 140's engine family)
    let (e, _) = elca(&tree, &ix, &kws).unwrap();
    rows.push(format!(
        "(context: {} SLCA vs {} ELCA results on this query)",
        results.len(),
        e.len()
    ));
    Report {
        id: "e26",
        title: "Query-biased XML snippets",
        claim: "slides 147–148: size-bounded, self-contained snippets covering the query",
        rows,
    }
}
