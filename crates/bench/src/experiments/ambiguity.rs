//! Keyword-ambiguity experiments (E08–E10, E16, E33).

use crate::Report;
use kwdb_datasets::products::{corrupt, generate_laptops, product_query_log};
use kwdb_qclean::autocomplete::{tastier_search, ForwardIndex, Trie};
use kwdb_qclean::keywordpp::{KeywordPlusPlus, Mapping};
use kwdb_qclean::segment::{clean_query, ValuePhraseModel};
use kwdb_qclean::spell::SpellCorrector;
use kwdb_qclean::xclean::clean_with_guarantee;
use kwdb_relational::TupleId;

fn corrector(db: &kwdb_relational::Database) -> SpellCorrector {
    let ix = db.text_index().expect("bench database is indexed");
    SpellCorrector::from_vocab(ix.terms().map(|t| (t.to_string(), ix.doc_freq(t) as u64)))
}

/// E08 (slides 66–68): cleaning accuracy and the slide example.
pub fn e08_query_cleaning() -> Report {
    // the slide-68 example
    let values = [
        "Apple iPad nano",
        "Apple iPod nano",
        "Apple iPad nano",
        "at&t wireless",
    ];
    let mut sc = SpellCorrector::new();
    for v in &values {
        for t in kwdb_common::text::tokenize(v) {
            sc.add_word(t, 1);
        }
    }
    let model = ValuePhraseModel::from_values(&values);
    let dirty: Vec<String> = ["appl", "ipd", "nan", "att"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cleaned = clean_query(&sc, &model, &dirty, 2).unwrap();

    // accuracy sweep on the generated product vocabulary
    let (db, _) = generate_laptops(60, 5);
    let sc2 = corrector(&db);
    let ix = db.text_index().expect("bench database is indexed");
    let (mut recovered, mut total) = (0, 0);
    for (i, term) in ix.terms().enumerate() {
        if term.len() < 4 {
            continue;
        }
        total += 1;
        let bad = corrupt(term, i as u64 * 7 + 1);
        if sc2
            .correct(&bad, 2)
            .map(|c| c.word == term)
            .unwrap_or(false)
        {
            recovered += 1;
        }
    }
    let rows = vec![
        format!("slide 68: 'appl ipd nan att' → {}", cleaned.display()),
        format!(
            "vocabulary recovery after 1-edit corruption: {recovered}/{total} ({:.0}%)",
            100.0 * recovered as f64 / total as f64
        ),
    ];
    Report {
        id: "e08",
        title: "Noisy-channel cleaning + segmentation",
        claim: "slides 66–68: joint correction+segmentation recovers {apple ipad nano} {at&t}",
        rows,
    }
}

/// E09 (slides 69–70): XClean's non-empty-result guarantee.
pub fn e09_xclean_guarantee() -> Report {
    let (db, table) = generate_laptops(60, 5);
    let sc = corrector(&db);
    let oracle = |tokens: &[String]| -> bool {
        db.table(table).iter().any(|(rid, _)| {
            let toks = db.tuple_tokens(TupleId::new(table, rid));
            tokens.iter().all(|t| toks.iter().any(|x| x == t))
        })
    };
    let cases: Vec<Vec<String>> = vec![
        vec!["lenvo".into(), "laptp".into()],
        vec!["gamming".into(), "pavilon".into()],
        vec!["ultrbook".into(), "asuss".into()],
    ];
    let mut rows = Vec::new();
    let mut guaranteed = 0;
    for dirty in &cases {
        match clean_with_guarantee(&sc, dirty, 2, oracle) {
            Some(c) => {
                let ok = oracle(&c.tokens);
                guaranteed += usize::from(ok);
                rows.push(format!("{dirty:?} → {:?} (non-empty: {ok})", c.tokens));
            }
            None => rows.push(format!("{dirty:?} → no valid cleaning")),
        }
    }
    rows.push(format!(
        "{guaranteed}/{} cleanings certified non-empty",
        cases.len()
    ));
    Report {
        id: "e09",
        title: "XClean: guaranteed-valid suggestions",
        claim: "slide 70: every returned cleaning has results; no rare-token bias",
        rows,
    }
}

/// E10 (slides 72–73): TASTIER pruning power.
pub fn e10_tastier() -> Report {
    let (db, table) = generate_laptops(200, 9);
    let ix = db.text_index().expect("bench database is indexed");
    let trie = Trie::build(ix.terms().map(|t| t.to_string()));
    let mut fwd = ForwardIndex::new();
    for (rid, _) in db.table(table).iter() {
        for tok in db.tuple_tokens(TupleId::new(table, rid)) {
            if let Some(id) = trie.token_id(&tok) {
                fwd.add(rid.0 as u64, id);
            }
        }
    }
    let mut rows = vec![format!(
        "{:<22} {:>10} {:>10} {:>8}",
        "prefixes", "candidates", "survivors", "pruned%"
    )];
    // model names are random per row, so model+brand prefixes genuinely prune
    for prefixes in [
        vec!["alph", "zen"],
        vec!["carb", "think"],
        vec!["del", "pav"],
        vec!["len", "lap"],
    ] {
        let (examined, survivors) = tastier_search(&trie, &fwd, &prefixes);
        let pruned = if examined == 0 {
            0.0
        } else {
            100.0 * (examined - survivors.len()) as f64 / examined as f64
        };
        rows.push(format!(
            "{:<22} {examined:>10} {:>10} {pruned:>7.0}%",
            format!("{prefixes:?}"),
            survivors.len()
        ));
    }
    rows.push(format!(
        "trie over {} tokens; forward index prunes without result generation",
        trie.len()
    ));
    Report {
        id: "e10",
        title: "TASTIER type-ahead search",
        claim: "slide 73: candidates from the rarest prefix, pruned by the δ-step forward index",
        rows,
    }
}

/// E16 (slides 95–100): Keyword++ precision/recall improvement.
pub fn e16_keywordpp() -> Report {
    let (db, table) = generate_laptops(80, 11);
    let mut kpp = KeywordPlusPlus::new(&db, table, vec![1], vec![2, 3]);
    kpp.learn(&product_query_log(13, 60));
    let mut rows = Vec::new();
    for kw in ["ibm", "small", "big"] {
        match kpp.mapping(kw) {
            Some(Mapping::Eq {
                column,
                value,
                score,
            }) => rows.push(format!(
                "'{kw}' → column {column} = {value}  (score {score:.2})"
            )),
            Some(Mapping::OrderBy {
                column,
                ascending,
                score,
            }) => rows.push(format!(
                "'{kw}' → ORDER BY column {column} {} (score {score:.2})",
                if *ascending { "ASC" } else { "DESC" }
            )),
            None => rows.push(format!("'{kw}' → unmapped")),
        }
    }
    // recall comparison (the slide's low-recall LIKE problem)
    let q = ["small", "ibm", "laptop"];
    let literal = kpp.keyword_results(&q).len();
    let translated = kpp.execute(&kpp.translate(&q)).len();
    rows.push(format!(
        "query {q:?}: literal LIKE {literal} rows vs translated {translated} rows"
    ));
    Report {
        id: "e16",
        title: "Keyword++ predicate mapping",
        claim: "slides 95–99: DQPs map 'IBM'→Brand=Lenovo and 'small'→ORDER BY size ASC",
        rows,
    }
}

/// E33 (slide 12): the whole ambiguity pipeline in one session.
pub fn e33_pipeline() -> Report {
    let (db, table) = generate_laptops(60, 7);
    let sc = corrector(&db);
    let ix = db.text_index().expect("bench database is indexed");
    let values: Vec<String> = db
        .table(table)
        .iter()
        .map(|(_, row)| row[0].to_string())
        .collect();
    let model = ValuePhraseModel::from_values(&values);
    let mut rows = Vec::new();
    // 1. clean
    let dirty: Vec<String> = vec!["lenvo".into(), "laptp".into()];
    let cleaned = clean_query(&sc, &model, &dirty, 2).unwrap();
    rows.push(format!("clean:    {dirty:?} → {}", cleaned.display()));
    // 2. complete
    let trie = Trie::build(ix.terms().map(|t| t.to_string()));
    let completions = trie.complete("len");
    rows.push(format!(
        "complete: 'len' → {:?}",
        &completions[..completions.len().min(3)]
    ));
    // 3. rewrite non-quantitative
    let mut kpp = KeywordPlusPlus::new(&db, table, vec![1], vec![2, 3]);
    kpp.learn(&product_query_log(5, 40));
    let tq = kpp.translate(&["small", "lenovo", "laptop"]);
    rows.push(format!(
        "rewrite:  'small lenovo laptop' → {} predicates + {:?}",
        tq.predicates.len(),
        tq.residual
    ));
    // 4. execute
    let hits = kpp.execute(&tq);
    rows.push(format!(
        "execute:  {} products, smallest screens first",
        hits.len()
    ));
    Report {
        id: "e33",
        title: "End-to-end ambiguity pipeline",
        claim: "slide 12: cleaning → completion → refinement → rewriting as one session",
        rows,
    }
}
