//! Query-form experiments (E11, E13, E14).

use crate::Report;
use kwdb_forms::generate::{FormGenConfig, FormGenerator};
use kwdb_forms::precis::WeightedSchema;
use kwdb_forms::relatedness::{composed_estimate, participation, relatedness};
use kwdb_forms::select::FormIndex;
use kwdb_relational::{ColumnType, Database, TableBuilder};

/// E11 (slide 40): participation ratios on the slide's instance.
pub fn e11_participation() -> Report {
    let mut db = Database::new();
    db.create_table(
        TableBuilder::new("paper")
            .column("pid", ColumnType::Int)
            .column("title", ColumnType::Text)
            .primary_key("pid"),
    )
    .unwrap();
    db.create_table(
        TableBuilder::new("author")
            .column("aid", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("pid", ColumnType::Int)
            .primary_key("aid")
            .foreign_key("pid", "paper"),
    )
    .unwrap();
    db.create_table(
        TableBuilder::new("editor")
            .column("eid", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("pid", ColumnType::Int)
            .primary_key("eid")
            .foreign_key("pid", "paper"),
    )
    .unwrap();
    for pid in 1..=4 {
        db.insert("paper", vec![pid.into(), format!("p{pid}").into()])
            .unwrap();
    }
    for (aid, pid) in [(1, 1), (2, 2), (3, 2), (4, 3), (5, 4)] {
        db.insert(
            "author",
            vec![aid.into(), format!("a{aid}").into(), pid.into()],
        )
        .unwrap();
    }
    db.insert(
        "author",
        vec![6.into(), "a6".into(), kwdb_common::Value::Null],
    )
    .unwrap();
    db.insert("editor", vec![1.into(), "e1".into(), 1.into()])
        .unwrap();
    db.insert("editor", vec![2.into(), "e2".into(), 2.into()])
        .unwrap();
    db.build_text_index();
    let a = db.table_id("author").unwrap();
    let p = db.table_id("paper").unwrap();
    let e = db.table_id("editor").unwrap();
    let rows = vec![
        format!("P(A→P) = {:.4} (slide: 5/6)", participation(&db, &[a, p])),
        format!("P(P→A) = {:.4} (slide: 1)", participation(&db, &[p, a])),
        format!("P(E→P) = {:.4} (slide: 1)", participation(&db, &[e, p])),
        format!("P(P→E) = {:.4} (slide: 0.5)", participation(&db, &[p, e])),
        format!("relatedness(A,P) = {:.4}", relatedness(&db, &[a, p])),
        format!(
            "3-hop: exact P(A→P→E) = {:.4} vs product estimate {:.4} (slide: 4/6 ≠ 1·0.5 scale)",
            participation(&db, &[a, p, e]),
            composed_estimate(&db, &[a, p, e])
        ),
    ];
    Report {
        id: "e11",
        title: "Related entity types: participation ratios",
        claim: "slide 40: P(A→P)=5/6, P(P→A)=1, P(E→P)=1, P(P→E)=0.5; chains compose approximately",
        rows,
    }
}

/// E13 (slide 52): Précis path-weight pruning.
pub fn e13_precis() -> Report {
    let mut s = WeightedSchema::new();
    s.add_edge("person", "name", 1.0);
    s.add_edge("person", "review", 0.8);
    s.add_edge("review", "conference", 0.9);
    s.add_edge("conference", "sponsor", 0.5);
    s.add_edge("conference", "year", 1.0);
    s.add_edge("conference", "pname", 1.0);
    let w = s.path_weights("person");
    let kept = s.expand("person", 0.4, 10);
    let kept_names: Vec<&str> = kept.iter().map(|(n, _)| n.as_str()).collect();
    let rows = vec![
        format!("weight(person→sponsor) = {:.2} (0.8·0.9·0.5)", w["sponsor"]),
        format!("threshold 0.4 keeps: {kept_names:?}"),
        format!("sponsor pruned: {}", !kept_names.contains(&"sponsor")),
    ];
    Report {
        id: "e13",
        title: "Précis weighted return expansion",
        claim: "slide 52: path weight 0.36 < 0.4 prunes `sponsor` from the result schema",
        rows,
    }
}

/// E14 (slides 55–63): form generation + keyword selection.
pub fn e14_form_selection() -> Report {
    let mut db = Database::new();
    kwdb_relational::database::dblp_schema(&mut db).unwrap();
    db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
        .unwrap();
    db.insert("author", vec![1.into(), "John Smith".into()])
        .unwrap();
    db.insert("author", vec![2.into(), "Jane Roe".into()])
        .unwrap();
    db.insert(
        "paper",
        vec![1.into(), "XML keyword search".into(), 1.into()],
    )
    .unwrap();
    db.insert(
        "paper",
        vec![2.into(), "query optimization".into(), 1.into()],
    )
    .unwrap();
    db.insert("write", vec![1.into(), 1.into(), 1.into()])
        .unwrap();
    db.insert("write", vec![2.into(), 2.into(), 2.into()])
        .unwrap();
    db.build_text_index();

    let forms = FormGenerator::new(&db, FormGenConfig::default()).generate();
    let ix = FormIndex::build(&db, forms);
    let mut rows = vec![format!("{} forms generated offline", ix.forms().len())];
    for query in [vec!["john", "xml"], vec!["conference", "year"]] {
        let ranked = ix.select(&db, &query, 3);
        rows.push(format!("query {query:?}:"));
        for r in &ranked {
            rows.push(format!(
                "  [{:.2}] {}",
                r.score,
                ix.forms()[r.form_index].display(&db)
            ));
        }
    }
    rows.push(
        "'John, XML' resolves to author–write–paper forms via schema-term substitution".into(),
    );
    Report {
        id: "e14",
        title: "Query forms: generation and selection",
        claim: "slides 55–58: offline queriability-ranked forms; online keyword→form matching",
        rows,
    }
}
