//! Evaluation-framework experiments (E17, E18).

use crate::Report;
use kwdb_eval::axioms::{
    check_data_consistency, check_data_monotonicity, check_query_consistency,
    check_query_monotonicity, SlcaEngine, XmlSearchEngine,
};
use kwdb_eval::inex::{agp, fragment_score, gp_at_k};
use kwdb_xml::{NodeId, XmlBuilder, XmlTree};

/// E17 (slides 104–106): INEX metrics under the tolerance reading model.
pub fn e17_inex() -> Report {
    // a fragment: relevant head, long irrelevant middle, relevant tail
    let mut frag = vec![true; 40];
    frag.extend(vec![false; 120]);
    frag.extend(vec![true; 40]);
    let total_relevant = 80;
    let mut rows = vec![format!(
        "{:>10} {:>7} {:>10} {:>8} {:>6}",
        "tolerance", "read", "precision", "recall", "F"
    )];
    for tol in [10usize, 50, 200] {
        let s = fragment_score(&frag, total_relevant, Some(tol));
        rows.push(format!(
            "{tol:>10} {:>7} {:>10.3} {:>8.3} {:>6.3}",
            s.read, s.precision, s.recall, s.f_measure
        ));
    }
    // ranked-list metrics
    let scores = [0.9, 0.6, 0.0, 0.3];
    rows.push(format!(
        "ranked list {scores:?}: gP@1 {:.2}, gP@3 {:.2}, AgP {:.3}",
        gp_at_k(&scores, 1),
        gp_at_k(&scores, 3),
        agp(&scores)
    ));
    rows.push("a small tolerance stops the user inside the irrelevant gap — recall halves".into());
    Report {
        id: "e17",
        title: "INEX metrics",
        claim: "slides 105–106: char-level P/R/F with a tolerance reading model; gP@k and AgP",
        rows,
    }
}

fn slide109() -> XmlTree {
    let mut b = XmlBuilder::new("conf");
    b.leaf("name", "SIGMOD")
        .leaf("year", "2007")
        .open("paper")
        .leaf("title", "keyword")
        .leaf("author", "Mark")
        .close()
        .open("paper")
        .leaf("title", "XML")
        .leaf("author", "Yang")
        .close()
        .open("demo")
        .leaf("title", "Top-k")
        .leaf("author", "Soliman")
        .close();
    b.build()
}

/// E18 (slides 108–109): the axioms detect the slide's violation.
pub fn e18_axioms() -> Report {
    let tree = slide109();
    let q: Vec<String> = vec!["paper".into(), "mark".into()];
    let reference = SlcaEngine;
    let mut rows = Vec::new();
    // reference engine passes all four
    let paper = tree
        .iter()
        .find(|&n| tree.label(n) == "paper")
        .expect("paper node");
    let checks = [
        (
            "query monotonicity",
            check_query_monotonicity(&reference, &tree, &q, "sigmod"),
        ),
        (
            "query consistency",
            check_query_consistency(&reference, &tree, &q, "sigmod"),
        ),
        (
            "data monotonicity",
            check_data_monotonicity(&reference, &tree, &q, paper, "author", "Mark"),
        ),
        (
            "data consistency",
            check_data_consistency(&reference, &tree, &q, paper, "author", "Mark"),
        ),
    ];
    for (name, r) in checks {
        rows.push(format!(
            "SLCA engine, {name}: {}",
            if r.is_satisfied() { "✓" } else { "✗" }
        ));
    }
    // the slide's broken engine
    let demo = tree.iter().find(|&n| tree.label(n) == "demo").unwrap();
    let broken = move |t: &XmlTree, kws: &[String]| -> Vec<NodeId> {
        if kws.contains(&"sigmod".to_string()) {
            vec![demo]
        } else {
            SlcaEngine.search(t, kws)
        }
    };
    let verdict = check_query_consistency(&broken, &tree, &q, "sigmod");
    rows.push(format!(
        "slide-109 engine (returns the demo for Q∪{{sigmod}}): query consistency {}",
        if verdict.is_satisfied() {
            "✓ (BUG)"
        } else {
            "✗ — violation detected"
        }
    ));
    Report {
        id: "e18",
        title: "Axiomatic evaluation",
        claim: "slide 109: an engine returning a subtree without the new keyword violates query consistency",
        rows,
    }
}
