//! Relational keyword-search experiments (E01, E02, E06, E07, E21–E23).

use crate::Report;
use kwdb_datasets::{generate_dblp, DblpConfig};
use kwdb_relational::database::dblp_schema;
use kwdb_relational::{ColumnType, Database, ExecStats, TableBuilder};
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::mesh::evaluate_shared;
use kwdb_relsearch::parallel::{
    estimate_cost, operator_level_makespan, partition_lpt, partition_sharing_aware,
};
use kwdb_relsearch::rdbms_power;
use kwdb_relsearch::spark::{block_pipeline, naive_spark, skyline_sweep};
use kwdb_relsearch::topk::{global_pipeline, naive, single_pipeline, sparse, TopKQuery};
use kwdb_relsearch::{evaluate_cn, ResultScorer, TupleSets};

/// E01 (slide 7): scattered tuples are assembled automatically — the
/// "expected surprise" university example.
pub fn e01_expected_surprise() -> Report {
    let mut db = Database::new();
    db.create_table(
        TableBuilder::new("university")
            .column("uid", ColumnType::Int)
            .column("uname", ColumnType::Text)
            .primary_key("uid"),
    )
    .unwrap();
    db.create_table(
        TableBuilder::new("student")
            .column("sid", ColumnType::Int)
            .column("sname", ColumnType::Text)
            .column("uid", ColumnType::Int)
            .primary_key("sid")
            .foreign_key("uid", "university"),
    )
    .unwrap();
    db.create_table(
        TableBuilder::new("project")
            .column("pid", ColumnType::Int)
            .column("pname", ColumnType::Text)
            .primary_key("pid"),
    )
    .unwrap();
    db.create_table(
        TableBuilder::new("participation")
            .column("id", ColumnType::Int)
            .column("pid", ColumnType::Int)
            .column("sid", ColumnType::Int)
            .primary_key("id")
            .foreign_key("pid", "project")
            .foreign_key("sid", "student"),
    )
    .unwrap();
    db.insert("university", vec![12.into(), "UC Berkeley".into()])
        .unwrap();
    db.insert(
        "student",
        vec![6055.into(), "Margo Seltzer".into(), 12.into()],
    )
    .unwrap();
    db.insert("project", vec![5.into(), "Berkeley DB".into()])
        .unwrap();
    db.insert("participation", vec![1.into(), 5.into(), 6055.into()])
        .unwrap();
    db.build_text_index();

    let keywords = vec!["seltzer".to_string(), "berkeley".to_string()];
    let ts = TupleSets::build(&db, &keywords).unwrap();
    let oracle = MaskOracle::from_tuplesets(&ts);
    let mut generator = CnGenerator::new(db.schema_graph(), &oracle, CnGenConfig::default());
    let cns = generator.generate();
    let scorer = ResultScorer::new(&db);
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &keywords,
    };
    let stats = ExecStats::new();
    let hits = naive(&q, 5, &stats);
    let mut rows = vec![format!(
        "{} CNs generated, {} answers",
        cns.len(),
        hits.len()
    )];
    for h in &hits {
        let rendered: Vec<String> = h
            .result
            .tuples
            .iter()
            .map(|&t| db.format_tuple(t))
            .collect();
        rows.push(format!("[{:.2}] {}", h.score, rendered.join(" ⋈ ")));
    }
    rows.push("expected surprise: the student and the project both surface".into());
    Report {
        id: "e01",
        title: "Expected surprise (Seltzer ⋈ Berkeley)",
        claim: "slide 7: scattered but collectively relevant tuples are assembled automatically",
        rows,
    }
}

/// E02 (slides 28, 115): CN counts explode with keyword count and Tmax.
pub fn e02_cn_explosion() -> Report {
    let mut db = Database::new();
    dblp_schema(&mut db).unwrap();
    let tables: Vec<_> = ["author", "paper", "conference", "write", "cite"]
        .iter()
        .map(|t| db.table_id(t).unwrap())
        .collect();
    let mut rows = vec![format!(
        "{:>4} {:>5} {:>9} {:>10} {:>10}",
        "k", "Tmax", "CNs", "partials", "dups"
    )];
    for k in 2..=3 {
        for tmax in [3usize, 5, 6] {
            let oracle = MaskOracle::schema_level(&tables, k);
            let mut g = CnGenerator::new(
                db.schema_graph(),
                &oracle,
                CnGenConfig {
                    max_size: tmax,
                    dedupe: true,
                    max_cns: 0,
                },
            );
            let cns = g.generate();
            rows.push(format!(
                "{k:>4} {tmax:>5} {:>9} {:>10} {:>10}",
                cns.len(),
                g.partials_enqueued,
                g.duplicates_pruned
            ));
        }
    }
    rows.push("growth is superlinear in both k and Tmax (slide: ~0.2M CNs at scale)".into());
    Report {
        id: "e02",
        title: "Candidate-network explosion",
        claim: "slides 28/115: valid CN counts grow sharply with keywords and size bound",
        rows,
    }
}

fn bench_db() -> Database {
    generate_dblp(&DblpConfig {
        n_conferences: 8,
        n_authors: 120,
        n_papers: 400,
        ..Default::default()
    })
}

fn setup_query(
    db: &Database,
    keywords: &[String],
    max_size: usize,
) -> (TupleSets, Vec<kwdb_relsearch::CandidateNetwork>) {
    let ts = TupleSets::build(db, keywords).unwrap();
    let oracle = MaskOracle::from_tuplesets(&ts);
    let mut generator = CnGenerator::new(
        db.schema_graph(),
        &oracle,
        CnGenConfig {
            max_size,
            dedupe: true,
            max_cns: 400,
        },
    );
    let cns = generator.generate();
    (ts, cns)
}

/// E06 (slide 116): top-k strategies' work for small k.
pub fn e06_topk_strategies() -> Report {
    let db = bench_db();
    let scorer = ResultScorer::new(&db);
    let keywords = vec!["data".to_string(), "query".to_string()];
    let (ts, cns) = setup_query(&db, &keywords, 4);
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &keywords,
    };
    let mut rows = vec![format!(
        "{:>3} {:>16} {:>12} {:>12} {:>10}",
        "k", "strategy", "scanned", "probes", "joins"
    )];
    type Strategy<'s> = &'s dyn Fn(usize, &ExecStats);
    let strategies: [(&str, Strategy); 4] = [
        ("naive", &|k, s| {
            naive(&q, k, s);
        }),
        ("sparse", &|k, s| {
            sparse(&q, k, s);
        }),
        ("single-pipeline", &|k, s| {
            single_pipeline(&q, k, s);
        }),
        ("global-pipeline", &|k, s| {
            global_pipeline(&q, k, s);
        }),
    ];
    for k in [1usize, 10, 50] {
        for (name, f) in strategies {
            let stats = ExecStats::new();
            f(k, &stats);
            let s = stats.snapshot();
            rows.push(format!(
                "{k:>3} {name:>16} {:>12} {:>12} {:>10}",
                s.tuples_scanned, s.join_probes, s.joins_executed
            ));
        }
    }
    rows.push("pipeline ≪ sparse ≪ naive for small k; the gap narrows as k grows".into());
    Report {
        id: "e06",
        title: "DISCOVER2 top-k execution strategies",
        claim:
            "slide 116: Global Pipeline touches far fewer tuples than Sparse/Naive for top-k ≪ all",
        rows,
    }
}

/// E07 (slide 117): SPARK under the non-monotonic score.
pub fn e07_spark() -> Report {
    let db = bench_db();
    let scorer = ResultScorer::new(&db);
    let keywords = vec!["data".to_string(), "search".to_string()];
    let (ts, cns) = setup_query(&db, &keywords, 4);
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &keywords,
    };
    let mut rows = vec![format!(
        "{:>16} {:>12} {:>12} {:>10}",
        "algorithm", "scanned", "probes", "joins"
    )];
    let k = 10;
    #[allow(clippy::type_complexity)]
    let runs: Vec<(&str, Box<dyn Fn(&ExecStats) -> usize>)> = vec![
        (
            "naive",
            Box::new(|s: &ExecStats| naive_spark(&q, k, s).len()),
        ),
        (
            "skyline-sweep",
            Box::new(|s: &ExecStats| skyline_sweep(&q, k, s).len()),
        ),
        (
            "block-pipeline",
            Box::new(|s: &ExecStats| block_pipeline(&q, k, 8, s).len()),
        ),
    ];
    let mut counts = Vec::new();
    for (name, f) in runs {
        let stats = ExecStats::new();
        let n = f(&stats);
        counts.push(n);
        let s = stats.snapshot();
        rows.push(format!(
            "{name:>16} {:>12} {:>12} {:>10}",
            s.tuples_scanned, s.join_probes, s.joins_executed
        ));
    }
    rows.push(format!(
        "all return the same top-{k} ({} results); the sweeps prune via the watf bound",
        counts[0]
    ));
    Report {
        id: "e07",
        title: "SPARK: non-monotonic top-k",
        claim:
            "slide 117: Skyline-Sweep and Block-Pipeline beat naive evaluation under SPARK's score",
        rows,
    }
}

/// E21 (slides 126–127): distinct-core answers entirely via relational ops.
pub fn e21_rdbms_power() -> Report {
    let db = bench_db();
    let mut rows = vec![format!(
        "{:>5} {:>9} {:>12} {:>12}",
        "Dmax", "cores", "probes", "scanned"
    )];
    for d_max in [1u32, 2, 3] {
        let (cores, stats) = rdbms_power::search(&db, &["data", "query"], d_max, 10_000);
        rows.push(format!(
            "{d_max:>5} {:>9} {:>12} {:>12}",
            cores.len(),
            stats.join_probes,
            stats.tuples_scanned
        ));
    }
    rows.push("semi-naive Pairs iteration: both answers and work grow with Dmax".into());
    Report {
        id: "e21",
        title: "Keyword search with the power of RDBMS",
        claim: "slides 126–127: distinct-core semantics computed via semi-join/join/group-by only",
        rows,
    }
}

/// E22 (slides 130–133): parallel CN partitioning quality.
pub fn e22_parallel() -> Report {
    let db = bench_db();
    let keywords = vec!["data".to_string(), "query".to_string()];
    let (ts, cns) = setup_query(&db, &keywords, 5);
    let costs: Vec<f64> = cns.iter().map(|cn| estimate_cost(&db, &ts, cn)).collect();
    let total: f64 = costs.iter().sum();
    let mut rows = vec![format!(
        "{:>6} {:>12} {:>14} {:>15}",
        "cores", "LPT", "sharing-aware", "operator-level"
    )];
    for cores in [1usize, 2, 4, 8] {
        let lpt = partition_lpt(&costs, cores).makespan();
        let aware = partition_sharing_aware(&cns, &costs, cores).makespan();
        let op = operator_level_makespan(&cns, cores);
        rows.push(format!("{cores:>6} {lpt:>12.0} {aware:>14.0} {op:>15.1}"));
    }
    rows.push(format!(
        "{} CNs, total cost {total:.0}; sharing-aware ≤ LPT at every core count",
        cns.len()
    ));
    Report {
        id: "e22",
        title: "Parallel CN computing",
        claim: "slides 130–133: sharing-aware partitioning lowers makespan vs oblivious LPT",
        rows,
    }
}

/// E23 (slides 134–135): operator mesh sharing.
pub fn e23_mesh() -> Report {
    let db = bench_db();
    let keywords = vec!["data".to_string(), "query".to_string()];
    let (ts, cns) = setup_query(&db, &keywords, 5);
    let s_ind = ExecStats::new();
    for cn in &cns {
        let _ = evaluate_cn(&db, cn, &ts, &s_ind);
    }
    let s_shared = ExecStats::new();
    let (_, mesh) = evaluate_shared(&db, &ts, &cns, &s_shared);
    let rows = vec![
        format!("{} CNs over the query", cns.len()),
        format!(
            "independent: {} joins, {} probes",
            s_ind.snapshot().joins_executed,
            s_ind.snapshot().join_probes
        ),
        format!(
            "mesh:        {} joins, {} probes ({} subtrees computed, {} cache hits, {} CNs pruned)",
            s_shared.snapshot().joins_executed,
            s_shared.snapshot().join_probes,
            mesh.subtrees_computed,
            mesh.cache_hits,
            mesh.cns_pruned
        ),
    ];
    Report {
        id: "e23",
        title: "Operator mesh / SPARK2 sharing",
        claim: "slides 134–135: overlapping CNs share sub-expression evaluation",
        rows,
    }
}
