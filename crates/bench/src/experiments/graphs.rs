//! Graph keyword-search experiments (E03, E05, E19, E20, E34).

use crate::Report;
use kwdb_datasets::graphs::{generate_graph, GraphConfig};
use kwdb_graph::hub::{HubIndex, HubSelection};
use kwdb_graph::shortest::distance;
use kwdb_graph::{DataGraph, NodeId};
use kwdb_graphsearch::{approx, blinks::Blinks, community, ease, BanksI, BanksII, Dpbf};

/// The slide-30 graph, used by E03.
fn slide30() -> DataGraph {
    let mut g = DataGraph::new();
    let a = g.add_node("n", "k1");
    let b = g.add_node("n", "");
    let c = g.add_node("n", "k2");
    let d = g.add_node("n", "k3");
    let e = g.add_node("n", "k1");
    g.add_edge(a, b, 5.0);
    g.add_edge(b, c, 2.0);
    g.add_edge(b, d, 3.0);
    g.add_edge(a, c, 6.0);
    g.add_edge(a, d, 7.0);
    g.add_edge(e, b, 10.0);
    g.add_edge(e, c, 11.0);
    g
}

/// E03 (slide 30): the worked group-Steiner example.
pub fn e03_gst_slide_example() -> Report {
    let g = slide30();
    let kws = ["k1", "k2", "k3"];
    let dpbf = Dpbf::new(&g);
    let results = dpbf.search(&kws, 3);
    let mut rows = Vec::new();
    for (i, t) in results.iter().enumerate() {
        rows.push(format!("top-{}: {}", i + 1, t.display(&g)));
    }
    rows.push(format!(
        "top-1 cost {} — a(b(c,d)) beats the direct a(c,d) at 13; e's matches never used",
        results[0].cost
    ));
    Report {
        id: "e03",
        title: "Group Steiner tree worked example",
        claim: "slide 30: top-1 GST is a(b(c,d)) with cost 10, not a(c,d) with 13",
        rows,
    }
}

/// E05 (slides 113–114): engine comparison on random graphs.
pub fn e05_graph_engines() -> Report {
    let mut rows = vec![format!(
        "{:>7} {:>10} {:>11} {:>11} {:>10} {:>10} {:>10}",
        "nodes", "DPBF-cost", "BANKS1-cost", "BANKS2-cost", "DPBF-work", "B1-work", "B2-work"
    )];
    for n in [500usize, 2000, 8000] {
        let g = generate_graph(&GraphConfig {
            n_nodes: n,
            n_keywords: 3,
            matches_per_keyword: 8,
            seed: 11,
            ..Default::default()
        });
        let kws = ["kw0", "kw1", "kw2"];
        let dpbf = Dpbf::new(&g);
        let unlimited = kwdb_common::Budget::unlimited();
        let (exact, _, dpbf_work) = dpbf.search_budgeted(&kws, 1, &unlimited);
        let b1 = BanksI::new(&g);
        let (r1, _, b1_work) = b1.search_budgeted(&kws, 1, &unlimited);
        let mut b2 = BanksII::new(&g);
        let r2 = b2.search(&kws, 1);
        rows.push(format!(
            "{n:>7} {:>10.1} {:>11.1} {:>11.1} {:>10} {:>10} {:>10}",
            exact.first().map(|t| t.cost).unwrap_or(f64::NAN),
            r1.first().map(|t| t.cost).unwrap_or(f64::NAN),
            r2.first().map(|t| t.cost).unwrap_or(f64::NAN),
            dpbf_work.states_popped,
            b1_work.nodes_expanded,
            b2.nodes_expanded
        ));
    }
    rows.push(
        "DPBF is exact; BANKS costs sit at or slightly above it with less bookkeeping".into(),
    );
    Report {
        id: "e05",
        title: "Graph engines: quality vs work",
        claim: "slides 113–114: approximations trade small cost gaps for cheaper expansion",
        rows,
    }
}

/// E19 (slide 122): hub index — exactness and size.
pub fn e19_hub_index() -> Report {
    let g = generate_graph(&GraphConfig {
        n_nodes: 300,
        avg_degree: 3.0,
        seed: 5,
        ..Default::default()
    });
    let n = g.node_count();
    let mut rows = vec![format!(
        "{:>6} {:>10} {:>12} {:>12} {:>8}",
        "hubs", "strategy", "entries", "vs-n²", "exact?"
    )];
    for (n_hubs, strategy, name) in [
        (0usize, HubSelection::HighestDegree, "none"),
        (10, HubSelection::HighestDegree, "degree"),
        (30, HubSelection::HighestDegree, "degree"),
        (30, HubSelection::Strided { stride: 7 }, "strided"),
    ] {
        let ix = HubIndex::build(&g, n_hubs, strategy);
        // verify exactness on a node sample
        let mut exact = true;
        for i in (0..n).step_by(n / 15) {
            for j in (0..n).step_by(n / 15) {
                let (a, b) = (NodeId(i as u32), NodeId(j as u32));
                if ix.distance(a, b) != distance(&g, a, b) {
                    exact = false;
                }
            }
        }
        rows.push(format!(
            "{n_hubs:>6} {name:>10} {:>12} {:>11.1}% {:>8}",
            ix.entry_count(),
            100.0 * ix.entry_count() as f64 / (n * n) as f64,
            exact
        ));
    }
    rows.push("good hubs shrink the stored d* maps while answers stay exact".into());
    Report {
        id: "e19",
        title: "Hub-based distance index",
        claim: "slide 122: d(x,y) = min(d*, d*+dH+d*) is exact with far less than O(V²) space",
        rows,
    }
}

/// E20 (slide 123): BLINKS early termination.
pub fn e20_blinks() -> Report {
    let g = generate_graph(&GraphConfig {
        n_nodes: 4000,
        n_keywords: 2,
        matches_per_keyword: 15,
        seed: 23,
        ..Default::default()
    });
    let kws = ["kw0", "kw1"];
    let bl = Blinks::new(&g);
    let ix = bl.build_index(&kws);
    let mut rows = vec![format!(
        "{:>3} {:>14} {:>14} {:>12}",
        "k", "sorted-access", "random-access", "banks-work"
    )];
    for k in [1usize, 5, 20] {
        let unlimited = kwdb_common::Budget::unlimited();
        let (res, _, bl_work) = bl.search_budgeted(&ix, &kws, k, &unlimited);
        let banks = BanksI::new(&g);
        let (_, _, banks_work) = banks.search_budgeted(&kws, k, &unlimited);
        rows.push(format!(
            "{k:>3} {:>14} {:>14} {:>12}",
            bl_work.sorted_accesses, bl_work.random_accesses, banks_work.nodes_expanded
        ));
        assert!(!res.is_empty());
    }
    rows.push("TA stops after a handful of accesses; BANKS expands thousands of nodes".into());
    Report {
        id: "e20",
        title: "BLINKS: node→keyword index + TA",
        claim: "slide 123: precomputed keyword distances let the threshold algorithm stop early",
        rows,
    }
}

/// E34 (slides 29, 31): the answer-semantics zoo on one graph.
pub fn e34_semantics_zoo() -> Report {
    let g = generate_graph(&GraphConfig {
        n_nodes: 400,
        n_keywords: 2,
        matches_per_keyword: 6,
        seed: 31,
        ..Default::default()
    });
    let kws = ["kw0", "kw1"];
    let dpbf = Dpbf::new(&g);
    let steiner = dpbf.search(&kws, 5);
    let bl = Blinks::new(&g);
    let ix = bl.build_index(&kws);
    let droot = bl.search(&ix, &kws, 5);
    let cores = community::search(&g, &kws, 4.0, 50);
    let subgraphs = ease::search(&g, &kws, 3, 5);
    let spt = approx::spt_heuristic(&g, &kws);
    let rows = vec![
        format!(
            "group Steiner trees (DPBF):   {} answers, best cost {:.1}",
            steiner.len(),
            steiner.first().map(|t| t.cost).unwrap_or(f64::NAN)
        ),
        format!(
            "distinct root (BLINKS):       {} answers, best cost {:.1}",
            droot.len(),
            droot.first().map(|t| t.cost).unwrap_or(f64::NAN)
        ),
        format!(
            "distinct core (communities):  {} distinct match combinations",
            cores.len()
        ),
        format!(
            "r-radius Steiner (EASE, r=3): {} subgraphs, best score {:.2}",
            subgraphs.len(),
            subgraphs.first().map(|s| s.score).unwrap_or(f64::NAN)
        ),
        format!(
            "SPT heuristic:                cost {:.1} (≤ {}× optimal)",
            spt.as_ref().map(|t| t.cost).unwrap_or(f64::NAN),
            kws.len()
        ),
        "the taxonomy: trees (exact/approx) vs roots vs cores vs subgraphs".into(),
    ];
    Report {
        id: "e34",
        title: "Answer-semantics zoo",
        claim: "slides 29/31: the semantics differ in granularity — trees, roots, cores, subgraphs",
        rows,
    }
}
