//! Experiments for the remaining surveyed techniques (E35–E38): keyword
//! binding (SUITS/IQP), probabilistic XPath inference, interconnection
//! semantics, and database selection.

use crate::Report;
use kwdb_forms::generate::{FormGenConfig, FormGenerator};
use kwdb_forms::iqp::Interpreter;
use kwdb_graphsearch::proximity_search::proximity_search;
use kwdb_relational::database::dblp_schema;
use kwdb_relational::{Database, TableId};
use kwdb_relsearch::cn::{CnGenConfig, CnGenerator, MaskOracle};
use kwdb_relsearch::dbselect::{select_databases, KeywordRelationshipSummary};
use kwdb_relsearch::timebound::partial_search;
use kwdb_relsearch::topk::TopKQuery;
use kwdb_relsearch::{ResultScorer, TupleSets};
use kwdb_xml::{PathStats, XmlBuilder, XmlIndex};
use kwdb_xmlsearch::{interconnection, xpath_infer};

fn small_dblp() -> Database {
    let mut db = Database::new();
    dblp_schema(&mut db).unwrap();
    db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
        .unwrap();
    db.insert("author", vec![1.into(), "Jennifer Widom".into()])
        .unwrap();
    db.insert("author", vec![2.into(), "XML Fan".into()])
        .unwrap();
    db.insert(
        "paper",
        vec![1.into(), "XML keyword search".into(), 1.into()],
    )
    .unwrap();
    db.insert("paper", vec![2.into(), "XML views".into(), 1.into()])
        .unwrap();
    db.insert("write", vec![1.into(), 1.into(), 1.into()])
        .unwrap();
    db.build_text_index();
    db
}

/// E35 (slides 44–46): SUITS/IQP structured interpretation of keywords.
pub fn e35_iqp() -> Report {
    let db = small_dblp();
    let forms = FormGenerator::new(&db, FormGenConfig::default()).generate();
    let no_log = Interpreter::new(&db, forms.clone(), &[]);
    let mut rows = vec!["query {widom, xml} without a log (data priors only):".to_string()];
    for i in no_log.interpret(&["widom", "xml"], 2) {
        rows.push(format!(
            "  [{:.4}] {}  (SUITS heuristic {:.2})",
            i.score,
            i.display(&db, no_log.templates()),
            no_log.suits_score(&i)
        ));
    }
    // a log biased toward author-name predicates flips the binding of "xml"
    let author = db.table_id("author").unwrap();
    let author_template = forms
        .iter()
        .position(|f| f.tables.contains(&author))
        .expect("author template");
    let log: Vec<(usize, Vec<(TableId, usize)>)> = (0..50)
        .map(|_| (author_template, vec![(author, 1)]))
        .collect();
    let with_log = Interpreter::new(&db, forms, &log);
    rows.push("query {xml} with an author-heavy log:".into());
    for i in with_log.interpret(&["xml"], 1) {
        rows.push(format!(
            "  [{:.4}] {}",
            i.score,
            i.display(&db, with_log.templates())
        ));
    }
    rows.push("slide 46's question — 'what if no query log?' — answered by the data prior".into());
    Report {
        id: "e35",
        title: "SUITS/IQP keyword binding",
        claim: "slides 44–46: Pr[A,T|Q] ∝ ΠPr[Aᵢ|T]·Pr[T]; the log shifts interpretations",
        rows,
    }
}

/// E36 (slides 47–48): probabilistic keyword → XPath inference.
pub fn e36_xpath_inference() -> Report {
    let mut b = XmlBuilder::new("bib");
    b.open("conf");
    for (title, author) in [
        ("xml search", "widom"),
        ("xml views", "widom"),
        ("graph mining", "ullman"),
    ] {
        b.open("paper")
            .leaf("title", title)
            .leaf("author", author)
            .close();
    }
    b.close();
    let stats = PathStats::build(&b.build());
    let mut rows = Vec::new();
    for q in [vec!["widom", "xml"], vec!["xml"]] {
        rows.push(format!("query {q:?}:"));
        for iq in xpath_infer::infer(&stats, &q, 3) {
            rows.push(format!("  [{:.3}] {}", iq.prob, iq.xpath));
        }
    }
    rows.push("bindings scored by P(~kw | path); combinations via aggregation/nesting".into());
    Report {
        id: "e36",
        title: "Probabilistic XPath inference",
        claim: "slides 47–48: keyword bindings reduce to valid XPath queries with updated probabilities",
        rows,
    }
}

/// E37 (slide 34): interconnection semantics filter unrelated matches.
pub fn e37_interconnection() -> Report {
    let mut b = XmlBuilder::new("conf");
    b.open("paper")
        .leaf("author", "Alice")
        .leaf("author", "Bob")
        .close()
        .open("paper")
        .leaf("author", "Carol")
        .close();
    let tree = b.build();
    let ix = XmlIndex::build(&tree);
    let related = interconnection::search(&tree, &ix, &["alice", "bob"], 10).unwrap();
    let unrelated = interconnection::search(&tree, &ix, &["alice", "carol"], 10).unwrap();
    let rows = vec![
        format!("{{alice, bob}} (co-authors): {} answer(s)", related.len()),
        format!(
            "{{alice, carol}} (different papers): {} answer(s) — path repeats 'paper'",
            unrelated.len()
        ),
        "plain LCA would connect both pairs through the conf root; XSEarch filters the second"
            .into(),
    ];
    Report {
        id: "e37",
        title: "XSEarch interconnection semantics",
        claim: "slide 34: matches related iff their connecting path has no repeated labels",
        rows,
    }
}

/// E38 (slide 168): keyword-based database selection.
pub fn e38_db_selection() -> Report {
    // database A: widom writes xml papers (connected)
    let db_a = small_dblp();
    // database B: both terms present, never connected (no write rows)
    let mut db_b = Database::new();
    dblp_schema(&mut db_b).unwrap();
    db_b.insert("conference", vec![1.into(), "VLDB".into(), 2008.into()])
        .unwrap();
    db_b.insert("author", vec![1.into(), "Widom".into()])
        .unwrap();
    db_b.insert("paper", vec![1.into(), "XML data".into(), 1.into()])
        .unwrap();
    db_b.build_text_index();
    let summaries = vec![
        (
            "db-connected".to_string(),
            KeywordRelationshipSummary::build(&db_a, 2, 50),
        ),
        (
            "db-presence-only".to_string(),
            KeywordRelationshipSummary::build(&db_b, 2, 50),
        ),
    ];
    let ranked = select_databases(&summaries, &["widom", "xml"], 5);
    let mut rows = vec!["query {widom, xml} routed across 2 databases:".to_string()];
    for (name, score) in &ranked {
        rows.push(format!("  {name}: {score:.3}"));
    }
    rows.push(format!(
        "{} of 2 selected — presence without keyword relationships scores 0",
        ranked.len()
    ));
    Report {
        id: "e38",
        title: "Keyword-based database selection",
        claim: "slide 168: route queries by keyword-relationship summaries, not keyword presence",
        rows,
    }
}

/// E39 (slides 119–120): budgeted search hands hard queries to forms.
pub fn e39_timebound() -> Report {
    let db = kwdb_datasets::generate_dblp(&kwdb_datasets::DblpConfig {
        n_authors: 100,
        n_papers: 300,
        ..Default::default()
    });
    let keywords = vec!["data".to_string(), "query".to_string()];
    let ts = TupleSets::build(&db, &keywords).unwrap();
    let oracle = MaskOracle::from_tuplesets(&ts);
    let mut g = CnGenerator::new(
        db.schema_graph(),
        &oracle,
        CnGenConfig {
            max_size: 5,
            dedupe: true,
            max_cns: 200,
        },
    );
    let cns = g.generate();
    let scorer = ResultScorer::new(&db);
    let q = TopKQuery {
        db: &db,
        ts: &ts,
        cns: &cns,
        scorer: &scorer,
        keywords: &keywords,
    };
    let mut rows = vec![format!("{} CNs in the search space", cns.len())];
    for budget in [0u64, 2_000, u64::MAX] {
        let out = partial_search(&q, 5, budget, &db);
        rows.push(format!(
            "budget {:>12}: {} results, {} residual forms, complete: {}",
            if budget == u64::MAX {
                "∞".to_string()
            } else {
                budget.to_string()
            },
            out.results.len(),
            out.residual_forms.len(),
            out.complete
        ));
    }
    rows.push("small budgets answer the easy part and summarize the rest as forms".into());
    Report {
        id: "e39",
        title: "Time-bounded search + residual forms",
        claim:
            "slides 119–120: run for a preset budget, hand unexplored space to the user as forms",
        rows,
    }
}

/// E40 (slides 25, 122): proximity search, the family's ancestor.
pub fn e40_proximity() -> Report {
    let db = kwdb_datasets::generate_dblp(&kwdb_datasets::DblpConfig {
        n_authors: 60,
        n_papers: 150,
        ..Default::default()
    });
    let (g, _) = kwdb_graph::graph::from_database(&db, kwdb_graph::graph::EdgeWeighting::Uniform);
    let hits = proximity_search(&g, "query", "widom", 5);
    let mut rows = vec![format!(
        "find 'query' near 'widom': {} hits over {} nodes",
        hits.len(),
        g.node_count()
    )];
    for h in hits.iter().take(3) {
        rows.push(format!(
            "  node {} — score {:.3}, nearest widom at distance {}",
            h.node.0, h.score, h.min_dist
        ));
    }
    rows.push("ranked by Σ 1/(1+d²): near objects dominate, multiples reinforce".into());
    Report {
        id: "e40",
        title: "Proximity search (find X near Y)",
        claim: "slide 25: the ancestor of keyword search — rank find-objects by distance to near-objects",
        rows,
    }
}
