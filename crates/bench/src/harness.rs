//! Minimal Criterion-compatible micro-benchmark harness.
//!
//! The container builds offline, so the real `criterion` crate is not
//! available; this module re-implements the small API surface our bench
//! files use (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size`, `b.iter`, and the
//! `criterion_group!`/`criterion_main!` macros) on top of
//! `std::time::Instant`. Each benchmark runs a short warm-up, then takes
//! `sample_size` timed samples and reports the median, mean, and minimum
//! per-iteration time. Pass a substring as the first CLI argument to run
//! only matching benchmarks.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 30;
/// Target wall-clock spend per sample; iteration counts are calibrated so
/// one sample takes roughly this long.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
const WARM_UP_TIME: Duration = Duration::from_millis(150);

/// Benchmark identifier: a function name plus a parameter rendered into the
/// reported label as `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Top-level harness state: holds the CLI filter and prints results.
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        // First non-flag CLI argument filters benchmarks by substring
        // (mirrors `cargo bench -- <filter>`). Flags such as `--bench` that
        // cargo passes through are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            c: self,
            group_name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    fn matches(&self, full_label: &str) -> bool {
        match &self.filter {
            Some(f) => full_label.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (Criterion's knob of the same
    /// name; kept ≥ 2 so the median is meaningful).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<BenchLabel>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group_name, name.into().0);
        if self.c.matches(&label) {
            run_benchmark(&label, self.sample_size, |b| routine(b));
        }
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.group_name, id.label);
        if self.c.matches(&label) {
            run_benchmark(&label, self.sample_size, |b| routine(b, input));
        }
        self
    }

    /// End the group (kept for Criterion API compatibility; prints a blank
    /// separator line).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Accepts both `&str` and `BenchmarkId` where Criterion does.
pub struct BenchLabel(String);

impl From<&str> for BenchLabel {
    fn from(s: &str) -> Self {
        BenchLabel(s.to_string())
    }
}

impl From<String> for BenchLabel {
    fn from(s: String) -> Self {
        BenchLabel(s)
    }
}

impl From<BenchmarkId> for BenchLabel {
    fn from(id: BenchmarkId) -> Self {
        BenchLabel(id.label)
    }
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    /// Iterations to run in the current timed sample.
    iters: u64,
    /// Wall-clock time of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut routine: F) {
    // Warm-up: grow the iteration count until one sample costs roughly
    // TARGET_SAMPLE_TIME, also warming caches and branch predictors.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_start = Instant::now();
    loop {
        routine(&mut b);
        if warm_up_start.elapsed() >= WARM_UP_TIME {
            break;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        if per_iter > 0.0 && b.elapsed < TARGET_SAMPLE_TIME {
            let want = TARGET_SAMPLE_TIME.as_secs_f64() / per_iter;
            b.iters = (want.ceil() as u64).clamp(b.iters, b.iters.saturating_mul(8).max(1));
        }
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        routine(&mut b);
        samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
    }
    samples.sort_by(|a, c| a.total_cmp(c));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    println!(
        "  {label:<44} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min),
        samples.len(),
        b.iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Criterion-compatible: collect benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-compatible: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Re-export the macros under the harness module path so bench files can
// `use kwdb_bench::harness::{criterion_group, criterion_main, ...}` exactly
// as they previously imported from `criterion`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_function_slash_parameter() {
        let id = BenchmarkId::new("dpbf", 40);
        assert_eq!(id.label, "dpbf/40");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn fmt_time_picks_unit() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }

    #[test]
    fn bencher_runs_and_times() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }
}
