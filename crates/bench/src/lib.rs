//! Experiment harness: every table/figure-equivalent claim of the tutorial
//! (see DESIGN.md's per-experiment index) has a function here that
//! regenerates it. The `reproduce` binary prints them; EXPERIMENTS.md
//! records the outputs next to the paper's claims.

pub mod experiments;
pub mod harness;

/// One experiment's regenerated "table".
#[derive(Debug, Clone)]
pub struct Report {
    pub id: &'static str,
    pub title: &'static str,
    /// The tutorial claim this reproduces (slide reference included).
    pub claim: &'static str,
    /// Table rows, already formatted.
    pub rows: Vec<String>,
}

impl Report {
    pub fn print(&self) {
        println!("== {} — {}", self.id, self.title);
        println!("   claim: {}", self.claim);
        for r in &self.rows {
            println!("   {r}");
        }
        println!();
    }
}

/// All experiments as `(id, runner)` pairs, in id order.
#[allow(clippy::type_complexity)] // a function-pointer table is the point
pub fn all_experiments() -> Vec<(&'static str, fn() -> Report)> {
    use experiments::*;
    vec![
        ("e01", relational::e01_expected_surprise as fn() -> Report),
        ("e02", relational::e02_cn_explosion),
        ("e03", graphs::e03_gst_slide_example),
        ("e04", xmlx::e04_slca_complexity),
        ("e05", graphs::e05_graph_engines),
        ("e06", relational::e06_topk_strategies),
        ("e07", relational::e07_spark),
        ("e08", ambiguity::e08_query_cleaning),
        ("e09", ambiguity::e09_xclean_guarantee),
        ("e10", ambiguity::e10_tastier),
        ("e11", formsx::e11_participation),
        ("e12", xmlx::e12_ntc),
        ("e13", formsx::e13_precis),
        ("e14", formsx::e14_form_selection),
        ("e15", explorex::e15_facets),
        ("e16", ambiguity::e16_keywordpp),
        ("e17", evalx::e17_inex),
        ("e18", evalx::e18_axioms),
        ("e19", graphs::e19_hub_index),
        ("e20", graphs::e20_blinks),
        ("e21", relational::e21_rdbms_power),
        ("e22", relational::e22_parallel),
        ("e23", relational::e23_mesh),
        ("e24", xmlx::e24_xreal),
        ("e25", xmlx::e25_xseek),
        ("e26", xmlx::e26_snippets),
        ("e27", explorex::e27_differentiation),
        ("e28", explorex::e28_clustering),
        ("e29", explorex::e29_table_analysis),
        ("e30", explorex::e30_text_cube),
        ("e31", explorex::e31_data_clouds),
        ("e32", explorex::e32_query_expansion),
        ("e33", ambiguity::e33_pipeline),
        ("e34", graphs::e34_semantics_zoo),
        ("e35", extensions::e35_iqp),
        ("e36", extensions::e36_xpath_inference),
        ("e37", extensions::e37_interconnection),
        ("e38", extensions::e38_db_selection),
        ("e39", extensions::e39_timebound),
        ("e40", extensions::e40_proximity),
    ]
}

/// Look up one experiment by id (`e01` … `e40`).
pub fn experiment_by_id(id: &str) -> Option<fn() -> Report> {
    all_experiments()
        .into_iter()
        .find(|(eid, _)| *eid == id)
        .map(|(_, f)| f)
}
