//! Property tests over random graphs: the hub index must always agree with
//! Dijkstra, block partitions must cover every node exactly once, and the
//! keyword-distance index must match direct shortest-path computation.

use kwdb_common::Rng;
use kwdb_graph::blocks::BlockPartition;
use kwdb_graph::hub::{HubIndex, HubSelection};
use kwdb_graph::shortest::distance;
use kwdb_graph::{DataGraph, NodeId, NodeKeywordIndex};

fn build_graph(n: usize, edges: &[(u8, u8, u8)], keyword_nodes: &[u8]) -> DataGraph {
    let mut g = DataGraph::new();
    let kw: std::collections::HashSet<usize> =
        keyword_nodes.iter().map(|&k| k as usize % n).collect();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| g.add_node("n", if kw.contains(&i) { "kw" } else { "" }))
        .collect();
    for &(u, v, w) in edges {
        let (u, v) = (u as usize % n, v as usize % n);
        if u != v {
            g.add_edge(ids[u], ids[v], (w % 5 + 1) as f64);
        }
    }
    g
}

fn rand_edges(rng: &mut Rng, lo: usize, hi: usize) -> Vec<(u8, u8, u8)> {
    let len = rng.gen_range(lo..hi);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0u8..=255),
                rng.gen_range(0u8..=255),
                rng.gen_range(0u8..=255),
            )
        })
        .collect()
}

#[test]
fn hub_index_always_exact() {
    let mut rng = Rng::seed_from_u64(71);
    for _ in 0..40 {
        let n = rng.gen_range(2usize..12);
        let edges = rand_edges(&mut rng, 1, 24);
        let n_hubs = rng.gen_index(4);
        let g = build_graph(n, &edges, &[]);
        let ix = HubIndex::build(&g, n_hubs, HubSelection::HighestDegree);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (NodeId(i as u32), NodeId(j as u32));
                assert_eq!(
                    ix.distance(a, b),
                    distance(&g, a, b),
                    "hub index wrong for {a:?}→{b:?}"
                );
            }
        }
    }
}

#[test]
fn block_partition_covers_exactly_once() {
    let mut rng = Rng::seed_from_u64(72);
    for _ in 0..40 {
        let n = rng.gen_range(1usize..30);
        let edges = rand_edges(&mut rng, 0, 40);
        let blocks = rng.gen_range(1usize..6);
        let g = build_graph(n, &edges, &[]);
        let p = BlockPartition::build(&g, blocks);
        assert_eq!(p.block_of.len(), n);
        let total: usize = p.blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, n);
        // consistency between the two views
        for (bi, members) in p.blocks.iter().enumerate() {
            for m in members {
                assert_eq!(p.block_of[m], bi);
            }
        }
        // portals really have cross-block edges
        for &u in &p.portals {
            assert!(g
                .neighbors(u)
                .iter()
                .any(|&(v, _)| p.block_of[&u] != p.block_of[&v]));
        }
    }
}

#[test]
fn keyword_index_matches_direct_search() {
    let mut rng = Rng::seed_from_u64(73);
    for _ in 0..40 {
        let n = rng.gen_range(2usize..10);
        let edges = rand_edges(&mut rng, 1, 20);
        let n_kw = rng.gen_range(1usize..4);
        let kw_nodes: Vec<u8> = (0..n_kw).map(|_| rng.gen_range(0u8..=255)).collect();
        let g = build_graph(n, &edges, &kw_nodes);
        let ix = NodeKeywordIndex::build(&g, &["kw"], None);
        let sources = g.keyword_nodes("kw");
        assert!(!sources.is_empty());
        for node in g.iter() {
            let direct = sources
                .iter()
                .filter_map(|s| distance(&g, node, s))
                .fold(None::<f64>, |acc, d| Some(acc.map_or(d, |a| a.min(d))));
            assert_eq!(ix.dist(node, "kw"), direct, "node {node:?}");
        }
        // sorted list is ascending and complete
        let list = ix.sorted_list("kw");
        assert!(list.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(list.len(), ix.entry_count());
    }
}
