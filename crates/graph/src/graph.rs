//! Weighted data graphs with keyword content.

use kwdb_common::index::{IndexStats, Layout, Postings, SegmentCounts, SegmentedIndex};
use kwdb_common::intern::{Interner, Sym};
use kwdb_common::text::tokenize;
use kwdb_relational::{Database, TupleId};
use std::collections::HashMap;

/// Graph node identifier (dense, insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A graph node *is* its posting: node-id ordered, deduplicated on insert.
impl kwdb_common::index::Posting for NodeId {
    type SortKey = NodeId;

    fn sort_key(&self) -> NodeId {
        *self
    }

    fn key64(&self) -> u64 {
        self.0 as u64
    }

    fn from_parts(key: u64, _extras: &[u64]) -> Self {
        NodeId(key as u32)
    }

    fn coalesce(&mut self, other: &Self) -> bool {
        self == other
    }

    fn same_doc(&self, other: &Self) -> bool {
        self == other
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    kind: Sym,
    /// Normalized content keywords of this node.
    terms: Vec<String>,
    /// Original tuple, when the graph is a database view.
    tuple: Option<TupleId>,
}

/// A weighted undirected graph whose nodes carry keyword content.
///
/// Edge weights are *costs* (lower = closer); keyword search engines minimize
/// total edge weight of answer trees. Parallel edges are collapsed to the
/// cheapest at insertion.
#[derive(Debug, Clone, Default)]
pub struct DataGraph {
    nodes: Vec<NodeData>,
    adj: Vec<Vec<(NodeId, f64)>>,
    kinds: Interner,
    /// keyword → sorted node list, segment-backed: appends land in the
    /// realtime segment (node ids ascend, so lists stay sorted);
    /// [`commit_keyword_index`](Self::commit_keyword_index) seals them.
    kw_index: SegmentedIndex<NodeId>,
    edge_count: usize,
    /// Bumped by every structural mutation (node or edge added), so
    /// derived structures (BLINKS node→keyword index, hub distances) can
    /// invalidate lazily instead of eagerly rebuilding.
    generation: u64,
}

impl DataGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node of `kind` whose content is tokenized from `content`.
    pub fn add_node(&mut self, kind: &str, content: &str) -> NodeId {
        self.add_node_inner(kind, content, None)
    }

    fn add_node_inner(&mut self, kind: &str, content: &str, tuple: Option<TupleId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let kind = self.kinds.intern(kind);
        let terms = tokenize(content);
        for t in &terms {
            self.kw_index.add(t, id);
        }
        self.nodes.push(NodeData { kind, terms, tuple });
        self.adj.push(Vec::new());
        self.generation += 1;
        id
    }

    /// Add an undirected edge of weight `w` (≥ 0). Parallel edges keep the
    /// smaller weight; self-loops are ignored.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        assert!(w >= 0.0, "edge weights are costs and must be non-negative");
        if u == v {
            return;
        }
        if let Some(slot) = self.adj[u.0 as usize].iter_mut().find(|(x, _)| *x == v) {
            if w < slot.1 {
                slot.1 = w;
                self.adj[v.0 as usize]
                    .iter_mut()
                    .find(|(x, _)| *x == u)
                    .expect("undirected edge symmetric")
                    .1 = w;
                self.generation += 1;
            }
            return;
        }
        self.adj[u.0 as usize].push((v, w));
        self.adj[v.0 as usize].push((u, w));
        self.edge_count += 1;
        self.generation += 1;
    }

    /// The graph's data generation: bumped by every structural change
    /// (node added, edge added, edge weight lowered). Derived structures
    /// cache the generation they were built at and invalidate lazily.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, f64)] {
        &self.adj[n.0 as usize]
    }

    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.0 as usize].len()
    }

    pub fn kind(&self, n: NodeId) -> &str {
        self.kinds.resolve(self.nodes[n.0 as usize].kind)
    }

    pub fn terms(&self, n: NodeId) -> &[String] {
        &self.nodes[n.0 as usize].terms
    }

    /// The originating tuple when this graph is a database view.
    pub fn tuple(&self, n: NodeId) -> Option<TupleId> {
        self.nodes[n.0 as usize].tuple
    }

    /// All distinct terms appearing in any node's content, in dictionary id
    /// order — the graph's keyword vocabulary.
    pub fn vocabulary(&self) -> impl Iterator<Item = &str> {
        self.kw_index.terms()
    }

    /// Resolve a query term to its dense id — one dictionary lookup. Do this
    /// once per query term, then fetch node lists by `Sym`.
    pub fn keyword_sym(&self, term: &str) -> Option<Sym> {
        self.kw_index.sym(term)
    }

    /// Sorted nodes whose content contains `term`.
    pub fn keyword_nodes(&self, term: &str) -> Postings<'_, NodeId> {
        self.kw_index.postings_str(term)
    }

    /// Sorted nodes for an already-resolved term.
    pub fn keyword_nodes_sym(&self, sym: Sym) -> Postings<'_, NodeId> {
        self.kw_index.postings(sym)
    }

    /// Does node `n` contain `term`?
    pub fn node_has_term(&self, n: NodeId, term: &str) -> bool {
        self.keyword_nodes(term).contains(&n)
    }

    /// The keyword index's physical layout.
    pub fn keyword_index_layout(&self) -> Layout {
        self.kw_index.layout()
    }

    /// Re-encode the keyword index into `layout`. The graph index grows
    /// incrementally (nodes append in ascending id order without a
    /// finalize), so compression is opt-in once the graph is fully built;
    /// later `add_node` calls decode the touched lists back to plain.
    pub fn set_keyword_index_layout(&mut self, layout: Layout) {
        self.kw_index.finalize_layout(layout);
    }

    /// Keyword-index size figures (terms, postings, bytes). Build time is
    /// unset: the graph index grows incrementally with the nodes.
    pub fn keyword_index_stats(&self) -> IndexStats {
        self.kw_index.index_stats()
    }

    /// Seal the keyword index's realtime segment into an immutable
    /// compressed segment (folding at the segment cap).
    pub fn commit_keyword_index(&mut self) -> SegmentCounts {
        self.kw_index.commit()
    }

    /// Compact the keyword index's segments into one.
    pub fn merge_keyword_index(&mut self) -> SegmentCounts {
        self.kw_index.merge()
    }

    /// Realtime/sealed segment census of the keyword index.
    pub fn keyword_segment_counts(&self) -> SegmentCounts {
        self.kw_index.segment_counts()
    }

    /// Cumulative segment merges the keyword index has performed.
    pub fn keyword_index_merges(&self) -> u64 {
        self.kw_index.merges()
    }

    /// Iterate all node ids.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adj[u.0 as usize]
            .iter()
            .find(|(x, _)| *x == v)
            .map(|(_, w)| *w)
    }
}

/// Incremental builder that tracks tuple → node mapping while converting a
/// relational database.
#[derive(Debug)]
pub struct GraphBuilder {
    g: DataGraph,
    by_tuple: HashMap<TupleId, NodeId>,
}

impl GraphBuilder {
    pub fn new() -> Self {
        GraphBuilder {
            g: DataGraph::new(),
            by_tuple: HashMap::new(),
        }
    }

    pub fn add_tuple(&mut self, kind: &str, content: &str, tuple: TupleId) -> NodeId {
        let id = self.g.add_node_inner(kind, content, Some(tuple));
        self.by_tuple.insert(tuple, id);
        id
    }

    pub fn node_of(&self, tuple: TupleId) -> Option<NodeId> {
        self.by_tuple.get(&tuple).copied()
    }

    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        self.g.add_edge(u, v, w);
    }

    pub fn finish(self) -> (DataGraph, HashMap<TupleId, NodeId>) {
        (self.g, self.by_tuple)
    }
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Edge-weighting policy for the database view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeWeighting {
    /// All FK edges cost 1 — the textbook data graph.
    Uniform,
    /// `w(u→v) = 1 + ln(1 + indegree(v))`: edges into popular nodes cost
    /// more, BANKS' prestige-aware weighting (Bhalotia et al., ICDE 02).
    LogDegree,
}

/// Build the tuple graph of a relational database: one node per tuple
/// (content = its indexed text columns), one edge per foreign-key reference.
pub fn from_database(
    db: &Database,
    weighting: EdgeWeighting,
) -> (DataGraph, HashMap<TupleId, NodeId>) {
    let mut b = GraphBuilder::new();
    for t in db.tables() {
        for (rid, _row) in t.iter() {
            let tid = TupleId::new(t.id, rid);
            let content = db.tuple_tokens(tid).join(" ");
            b.add_tuple(&t.schema.name, &content, tid);
        }
    }
    // First pass: collect FK edges as (from,to) node pairs.
    let mut pairs = Vec::new();
    for t in db.tables() {
        for (rid, _row) in t.iter() {
            let tid = TupleId::new(t.id, rid);
            let u = b.node_of(tid).expect("node added above");
            for nbr in db.fk_neighbors(tid) {
                let v = b.node_of(nbr).expect("all tuples added");
                pairs.push((u, v));
            }
        }
    }
    match weighting {
        EdgeWeighting::Uniform => {
            for (u, v) in pairs {
                b.add_edge(u, v, 1.0);
            }
        }
        EdgeWeighting::LogDegree => {
            // indegree = number of FK references pointing at a node
            let mut indeg: HashMap<NodeId, usize> = HashMap::new();
            for &(_, v) in &pairs {
                *indeg.entry(v).or_insert(0) += 1;
            }
            for (u, v) in pairs {
                let w = 1.0 + (1.0 + indeg[&v] as f64).ln();
                b.add_edge(u, v, w);
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::database::dblp_schema;

    #[test]
    fn nodes_and_keyword_index() {
        let mut g = DataGraph::new();
        let a = g.add_node("author", "Jennifer Widom");
        let p = g.add_node("paper", "XML keyword search");
        g.add_edge(a, p, 1.0);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.keyword_nodes("widom"), &[a]);
        assert_eq!(g.keyword_nodes("xml"), &[p]);
        assert!(g.node_has_term(p, "keyword"));
        assert!(!g.node_has_term(a, "keyword"));
        assert_eq!(g.kind(a), "author");
    }

    #[test]
    fn parallel_edges_keep_min_weight() {
        let mut g = DataGraph::new();
        let a = g.add_node("x", "");
        let b = g.add_node("x", "");
        g.add_edge(a, b, 5.0);
        g.add_edge(a, b, 2.0);
        g.add_edge(a, b, 7.0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(a, b), Some(2.0));
        assert_eq!(g.edge_weight(b, a), Some(2.0));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = DataGraph::new();
        let a = g.add_node("x", "");
        g.add_edge(a, a, 1.0);
        assert_eq!(g.edge_count(), 0);
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Widom".into()]).unwrap();
        db.insert("author", vec![2.into(), "Ullman".into()])
            .unwrap();
        db.insert("paper", vec![10.into(), "XML search".into(), 1.into()])
            .unwrap();
        db.insert("write", vec![100.into(), 1.into(), 10.into()])
            .unwrap();
        db.insert("write", vec![101.into(), 2.into(), 10.into()])
            .unwrap();
        db.build_text_index();
        db
    }

    #[test]
    fn database_view_has_tuple_nodes_and_fk_edges() {
        let db = sample_db();
        let (g, by_tuple) = from_database(&db, EdgeWeighting::Uniform);
        assert_eq!(g.node_count(), 6);
        // edges: paper→conf, write1→author1, write1→paper, write2→author2, write2→paper
        assert_eq!(g.edge_count(), 5);
        assert_eq!(by_tuple.len(), 6);
        // author Widom node carries its tuple id and keyword
        let widom = g.keyword_nodes("widom");
        assert_eq!(widom.len(), 1);
        assert!(g.tuple(widom.first().unwrap()).is_some());
    }

    #[test]
    fn log_degree_weighting_penalizes_popular_targets() {
        let db = sample_db();
        let (g, _) = from_database(&db, EdgeWeighting::LogDegree);
        // the paper node is referenced twice (both writes) → heavier edges
        let paper = g.keyword_nodes("xml").first().unwrap();
        let conf = g.keyword_nodes("sigmod").first().unwrap();
        let w_into_paper = g
            .neighbors(paper)
            .iter()
            .find(|(n, _)| g.kind(*n) == "write")
            .map(|(_, w)| *w)
            .unwrap();
        let w_into_conf = g.edge_weight(paper, conf).unwrap();
        assert!(w_into_paper > w_into_conf);
    }
}
