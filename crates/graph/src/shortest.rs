//! Shortest paths: Dijkstra, multi-source Dijkstra, and hop-bounded BFS.

use crate::graph::{DataGraph, NodeId};
use kwdb_common::Score;
use std::collections::{BinaryHeap, HashMap};

/// Result of a Dijkstra run: distance and predecessor maps.
#[derive(Debug, Clone, Default)]
pub struct ShortestPaths {
    pub dist: HashMap<NodeId, f64>,
    pub pred: HashMap<NodeId, NodeId>,
}

impl ShortestPaths {
    /// Reconstruct the path from the source to `target` (inclusive), or
    /// `None` if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        self.dist.get(&target)?;
        let mut path = vec![target];
        let mut cur = target;
        while let Some(&p) = self.pred.get(&cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Dijkstra from `source`, optionally stopping once `target` is settled
/// and/or pruning at `max_dist`. `avoid` nodes are never *expanded* (but can
/// be settled) — the hub index uses this to compute hub-avoiding distances.
pub fn dijkstra(
    g: &DataGraph,
    source: NodeId,
    target: Option<NodeId>,
    max_dist: Option<f64>,
    avoid_expanding: &dyn Fn(NodeId) -> bool,
) -> ShortestPaths {
    let mut out = ShortestPaths::default();
    let mut heap: BinaryHeap<std::cmp::Reverse<(Score, NodeId)>> = BinaryHeap::new();
    out.dist.insert(source, 0.0);
    heap.push(std::cmp::Reverse((Score(0.0), source)));
    while let Some(std::cmp::Reverse((Score(d), u))) = heap.pop() {
        if let Some(&best) = out.dist.get(&u) {
            if d > best {
                continue; // stale entry
            }
        }
        if target == Some(u) {
            break;
        }
        if u != source && avoid_expanding(u) {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if let Some(md) = max_dist {
                if nd > md {
                    continue;
                }
            }
            if out.dist.get(&v).is_none_or(|&cur| nd < cur) {
                out.dist.insert(v, nd);
                out.pred.insert(v, u);
                heap.push(std::cmp::Reverse((Score(nd), v)));
            }
        }
    }
    out
}

/// Plain single-source Dijkstra over the whole graph.
pub fn dijkstra_all(g: &DataGraph, source: NodeId) -> ShortestPaths {
    dijkstra(g, source, None, None, &|_| false)
}

/// Shortest distance between two nodes, or `None` if disconnected.
pub fn distance(g: &DataGraph, a: NodeId, b: NodeId) -> Option<f64> {
    dijkstra(g, a, Some(b), None, &|_| false)
        .dist
        .get(&b)
        .copied()
}

/// Multi-source Dijkstra: distance from every node to the nearest of
/// `sources`. Returns `(dist, nearest-source)` maps — the node-to-keyword
/// index is built from this with the keyword's match list as sources.
///
/// Ties are broken deterministically: among equidistant sources the one
/// with the **smallest node id** wins, so independent implementations of
/// nearest-match semantics (e.g. the RDBMS-powered formulation) agree
/// exactly.
pub fn multi_source(
    g: &DataGraph,
    sources: impl IntoIterator<Item = NodeId>,
    max_dist: Option<f64>,
) -> (HashMap<NodeId, f64>, HashMap<NodeId, NodeId>) {
    // Dijkstra over the lexicographic key (dist, origin).
    let mut best: HashMap<NodeId, (f64, NodeId)> = HashMap::new();
    let mut heap: BinaryHeap<std::cmp::Reverse<(Score, NodeId, NodeId)>> = BinaryHeap::new();
    for s in sources {
        let cand = (0.0, s);
        if best.get(&s).is_none_or(|&cur| cand < cur) {
            best.insert(s, cand);
            heap.push(std::cmp::Reverse((Score(0.0), s, s)));
        }
    }
    while let Some(std::cmp::Reverse((Score(d), org, u))) = heap.pop() {
        if best.get(&u).is_some_and(|&(bd, bo)| (d, org) > (bd, bo)) {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if let Some(md) = max_dist {
                if nd > md {
                    continue;
                }
            }
            let cand = (nd, org);
            if best.get(&v).is_none_or(|&cur| cand < cur) {
                best.insert(v, cand);
                heap.push(std::cmp::Reverse((Score(nd), org, v)));
            }
        }
    }
    let mut dist = HashMap::with_capacity(best.len());
    let mut origin = HashMap::with_capacity(best.len());
    for (n, (d, o)) in best {
        dist.insert(n, d);
        origin.insert(n, o);
    }
    (dist, origin)
}

/// Nodes within `hops` edges of `source` (unweighted BFS), including it.
pub fn within_hops(g: &DataGraph, source: NodeId, hops: usize) -> HashMap<NodeId, usize> {
    let mut seen: HashMap<NodeId, usize> = HashMap::new();
    seen.insert(source, 0);
    let mut frontier = vec![source];
    for h in 1..=hops {
        let mut next = Vec::new();
        for &u in &frontier {
            for &(v, _) in g.neighbors(u) {
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(v) {
                    e.insert(h);
                    next.push(v);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph a—b—c—d with weights 1, 2, 3 plus a shortcut a—d weight 10.
    fn path_graph() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let ids: Vec<NodeId> = (0..4).map(|i| g.add_node("n", &format!("w{i}"))).collect();
        g.add_edge(ids[0], ids[1], 1.0);
        g.add_edge(ids[1], ids[2], 2.0);
        g.add_edge(ids[2], ids[3], 3.0);
        g.add_edge(ids[0], ids[3], 10.0);
        (g, ids)
    }

    #[test]
    fn dijkstra_finds_shortest() {
        let (g, ids) = path_graph();
        assert_eq!(distance(&g, ids[0], ids[3]), Some(6.0));
        assert_eq!(distance(&g, ids[0], ids[0]), Some(0.0));
    }

    #[test]
    fn path_reconstruction() {
        let (g, ids) = path_graph();
        let sp = dijkstra_all(&g, ids[0]);
        assert_eq!(
            sp.path_to(ids[3]).unwrap(),
            vec![ids[0], ids[1], ids[2], ids[3]]
        );
        assert_eq!(sp.path_to(ids[0]).unwrap(), vec![ids[0]]);
    }

    #[test]
    fn disconnected_is_none() {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "");
        let b = g.add_node("n", "");
        assert_eq!(distance(&g, a, b), None);
        let sp = dijkstra_all(&g, a);
        assert!(sp.path_to(b).is_none());
    }

    #[test]
    fn avoid_expanding_blocks_through_traffic() {
        let (g, ids) = path_graph();
        // Avoid expanding b: the only route to d is the direct 10-edge.
        let block = ids[1];
        let sp = dijkstra(&g, ids[0], None, None, &|n| n == block);
        assert_eq!(sp.dist[&ids[3]], 10.0);
        // b itself is still settled (distance 1) — it's a border node.
        assert_eq!(sp.dist[&ids[1]], 1.0);
    }

    #[test]
    fn max_dist_prunes() {
        let (g, ids) = path_graph();
        let sp = dijkstra(&g, ids[0], None, Some(3.0), &|_| false);
        assert!(sp.dist.contains_key(&ids[2]));
        assert!(!sp.dist.contains_key(&ids[3]));
    }

    #[test]
    fn multi_source_tracks_origin() {
        let (g, ids) = path_graph();
        let (dist, origin) = multi_source(&g, [ids[0], ids[3]], None);
        assert_eq!(dist[&ids[1]], 1.0);
        assert_eq!(origin[&ids[1]], ids[0]);
        // c is equidistant from both sources (a–b–c = 3 = d–c); the
        // deterministic tie-break picks the smaller node id
        assert_eq!(dist[&ids[2]], 3.0);
        assert_eq!(origin[&ids[2]], ids[0]);
    }

    #[test]
    fn within_hops_counts_edges_not_weights() {
        let (g, ids) = path_graph();
        let h = within_hops(&g, ids[0], 1);
        // a's 1-hop neighbourhood: a, b, d (via the shortcut)
        assert_eq!(h.len(), 3);
        assert_eq!(h[&ids[3]], 1);
    }
}
