//! Data-graph substrate for kwdb.
//!
//! Graph-based keyword search (BANKS, DPBF, BLINKS, EASE, …) models the
//! database as a graph: tuples (or XML elements, or RDF resources) are nodes,
//! foreign keys are edges, and answers are small connecting structures. This
//! crate provides:
//!
//! * [`graph::DataGraph`] — weighted undirected graphs with node kinds,
//!   content keywords, and a keyword → node index;
//! * [`graph::from_database`] — the tuple-graph view of a relational
//!   [`Database`](kwdb_relational::Database) (node per tuple, edge per FK
//!   pair), the representation BANKS introduced;
//! * [`shortest`] — Dijkstra and multi-source Dijkstra;
//! * [`hub`] — the hub-based distance index of Goldman et al. (VLDB 98):
//!   `d(x,y) = min(d*(x,y), d*(x,A) + d_H(A,B) + d*(B,y))`;
//! * [`node2kw`] — node-to-keyword distance lists (the SLINKS/BLINKS index),
//!   with distance-sorted cursors for threshold-algorithm consumption;
//! * [`blocks`] — BFS block partitioning with portal nodes, the BLINKS
//!   bi-level layout.

pub mod blocks;
pub mod graph;
pub mod hub;
pub mod node2kw;
pub mod shortest;

pub use graph::{DataGraph, GraphBuilder, NodeId};
pub use hub::HubIndex;
pub use node2kw::NodeKeywordIndex;
