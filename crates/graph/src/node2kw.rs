//! Node-to-keyword distance index — SLINKS/BLINKS (He et al., SIGMOD 07),
//! tutorial slides 123–125.
//!
//! For each keyword `k` the index stores, for every node `r`, the distance
//! from `r` to the nearest node matching `k`. Space is `O(K·|V|)` instead of
//! `O(|V|²)`. Two access paths are provided:
//!
//! * random access `dist(r, k)` — the probe Fagin's TA needs;
//! * a distance-sorted cursor per keyword — TA's sorted access.
//!
//! Keywords are interned into a [`TermDict`], so the TA loop resolves each
//! query keyword to a [`Sym`] once and then performs its (per candidate ×
//! keyword) random accesses on dense ids — no string hashing in the loop.
//!
//! Building uses one multi-source Dijkstra per keyword (sources = the
//! keyword's match nodes), optionally distance-capped (the `D` threshold of
//! the D-reachability indexes, Markowetz et al. ICDE 09).

use crate::graph::{DataGraph, NodeId};
use crate::shortest::multi_source;
use kwdb_common::index::{IndexStats, TermDict};
use kwdb_common::intern::Sym;
use std::collections::HashMap;
use std::time::Duration;

/// Distance lists for a set of keywords.
#[derive(Debug, Clone, Default)]
pub struct NodeKeywordIndex {
    dict: TermDict,
    /// Per keyword (dense by `Sym`): node → (distance, nearest match node).
    dist: Vec<HashMap<NodeId, (f64, NodeId)>>,
    /// Per keyword: nodes sorted by ascending distance (ties by node id).
    sorted: Vec<Vec<(NodeId, f64)>>,
    build_time: Option<Duration>,
}

impl NodeKeywordIndex {
    /// Build for the given `keywords` over `g`. `max_dist` caps the index
    /// range (distances beyond it are treated as unreachable).
    pub fn build<S: AsRef<str>>(g: &DataGraph, keywords: &[S], max_dist: Option<f64>) -> Self {
        let start = std::time::Instant::now();
        let mut ix = NodeKeywordIndex::default();
        for k in keywords {
            let k = k.as_ref();
            let sources = g.keyword_nodes(k);
            let (d, origin) = multi_source(g, sources, max_dist);
            let mut entry: HashMap<NodeId, (f64, NodeId)> = HashMap::with_capacity(d.len());
            let mut sorted: Vec<(NodeId, f64)> = Vec::with_capacity(d.len());
            for (&n, &dd) in &d {
                entry.insert(n, (dd, origin[&n]));
                sorted.push((n, dd));
            }
            sorted.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let sym = ix.dict.intern(k);
            let slot = sym.0 as usize;
            if slot < ix.dist.len() {
                // duplicate keyword in the input: recompute is identical
                ix.dist[slot] = entry;
                ix.sorted[slot] = sorted;
            } else {
                ix.dist.push(entry);
                ix.sorted.push(sorted);
            }
        }
        ix.build_time = Some(start.elapsed());
        ix
    }

    /// Resolve a keyword to its dense id — one dictionary lookup. Do this
    /// once per query keyword, then probe by `Sym`.
    pub fn sym(&self, keyword: &str) -> Option<Sym> {
        self.dict.lookup(keyword)
    }

    /// Distance from `node` to the nearest match of `keyword`.
    pub fn dist(&self, node: NodeId, keyword: &str) -> Option<f64> {
        self.dist_sym(node, self.sym(keyword)?)
    }

    /// [`dist`](Self::dist) for an already-resolved keyword.
    pub fn dist_sym(&self, node: NodeId, sym: Sym) -> Option<f64> {
        self.dist[sym.0 as usize].get(&node).map(|&(d, _)| d)
    }

    /// The nearest match node of `keyword` from `node`.
    pub fn nearest_match(&self, node: NodeId, keyword: &str) -> Option<NodeId> {
        self.nearest_match_sym(node, self.sym(keyword)?)
    }

    /// [`nearest_match`](Self::nearest_match) for an already-resolved keyword.
    pub fn nearest_match_sym(&self, node: NodeId, sym: Sym) -> Option<NodeId> {
        self.dist[sym.0 as usize].get(&node).map(|&(_, m)| m)
    }

    /// Distance-sorted list `(node, dist)` for `keyword` — TA sorted access.
    pub fn sorted_list(&self, keyword: &str) -> &[(NodeId, f64)] {
        self.sym(keyword)
            .map(|s| self.sorted_list_sym(s))
            .unwrap_or(&[])
    }

    /// [`sorted_list`](Self::sorted_list) for an already-resolved keyword.
    pub fn sorted_list_sym(&self, sym: Sym) -> &[(NodeId, f64)] {
        &self.sorted[sym.0 as usize]
    }

    /// Total stored entries, for index-size reporting.
    pub fn entry_count(&self) -> usize {
        self.dist.iter().map(|m| m.len()).sum()
    }

    pub fn keywords(&self) -> impl Iterator<Item = &str> {
        self.dict.terms()
    }

    /// Whole-index size figures: terms = indexed keywords, postings =
    /// distance entries, with the build wall-clock.
    pub fn index_stats(&self) -> IndexStats {
        let postings = self.entry_count();
        IndexStats::new(
            self.dict.len(),
            postings,
            postings * std::mem::size_of::<(NodeId, (f64, NodeId))>(),
        )
        .with_build(self.build_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a(x) — b — c(y) — d, unit weights.
    fn line() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "x");
        let b = g.add_node("n", "");
        let c = g.add_node("n", "y");
        let d = g.add_node("n", "");
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 1.0);
        g.add_edge(c, d, 1.0);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn distances_to_nearest_match() {
        let (g, ids) = line();
        let ix = NodeKeywordIndex::build(&g, &["x", "y"], None);
        assert_eq!(ix.dist(ids[0], "x"), Some(0.0));
        assert_eq!(ix.dist(ids[3], "x"), Some(3.0));
        assert_eq!(ix.dist(ids[1], "y"), Some(1.0));
        assert_eq!(ix.nearest_match(ids[3], "x"), Some(ids[0]));
    }

    #[test]
    fn sorted_access_is_ascending() {
        let (g, _) = line();
        let ix = NodeKeywordIndex::build(&g, &["x"], None);
        let list = ix.sorted_list("x");
        assert_eq!(list.len(), 4);
        assert!(list.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(list[0].1, 0.0);
    }

    #[test]
    fn max_dist_caps_index_size() {
        let (g, ids) = line();
        let full = NodeKeywordIndex::build(&g, &["x"], None);
        let capped = NodeKeywordIndex::build(&g, &["x"], Some(1.0));
        assert!(capped.entry_count() < full.entry_count());
        assert_eq!(capped.dist(ids[3], "x"), None);
        assert_eq!(capped.dist(ids[1], "x"), Some(1.0));
    }

    #[test]
    fn missing_keyword_is_empty() {
        let (g, ids) = line();
        let ix = NodeKeywordIndex::build(&g, &["x"], None);
        assert_eq!(ix.dist(ids[0], "zzz"), None);
        assert!(ix.sorted_list("zzz").is_empty());
        assert!(ix.sym("zzz").is_none());
    }

    #[test]
    fn multiple_matches_pick_nearest() {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "k");
        let b = g.add_node("n", "");
        let c = g.add_node("n", "k");
        g.add_edge(a, b, 5.0);
        g.add_edge(b, c, 1.0);
        let ix = NodeKeywordIndex::build(&g, &["k"], None);
        assert_eq!(ix.dist(b, "k"), Some(1.0));
        assert_eq!(ix.nearest_match(b, "k"), Some(c));
    }

    #[test]
    fn sym_probes_match_string_probes() {
        let (g, ids) = line();
        let ix = NodeKeywordIndex::build(&g, &["x", "y"], None);
        let x = ix.sym("x").unwrap();
        for &n in &ids {
            assert_eq!(ix.dist_sym(n, x), ix.dist(n, "x"));
            assert_eq!(ix.nearest_match_sym(n, x), ix.nearest_match(n, "x"));
        }
        assert_eq!(ix.sorted_list_sym(x), ix.sorted_list("x"));
    }

    #[test]
    fn duplicate_keywords_dont_desync() {
        let (g, ids) = line();
        let ix = NodeKeywordIndex::build(&g, &["x", "x", "y"], None);
        assert_eq!(ix.dist(ids[3], "x"), Some(3.0));
        assert_eq!(ix.dist(ids[1], "y"), Some(1.0));
        let stats = ix.index_stats();
        assert_eq!(stats.terms, 2);
        assert!(stats.build.is_some());
    }
}
