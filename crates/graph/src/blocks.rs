//! Block partitioning with portal nodes — the BLINKS bi-level layout
//! (He et al., SIGMOD 07) and the hyper-graph partitioning TASTIER uses.
//!
//! The graph is split into roughly equal-size connected blocks by
//! round-robin BFS growth; nodes incident to a cross-block edge are
//! *portals*. BLINKS then builds intra-block indexes and routes inter-block
//! search through portals.

use crate::graph::{DataGraph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// A partition of a graph's nodes into blocks.
#[derive(Debug, Clone)]
pub struct BlockPartition {
    /// node → block id
    pub block_of: HashMap<NodeId, usize>,
    /// block id → member nodes
    pub blocks: Vec<Vec<NodeId>>,
    /// Portal nodes: endpoints of cross-block edges.
    pub portals: HashSet<NodeId>,
}

impl BlockPartition {
    /// Partition `g` into (at most) `n_blocks` blocks by round-robin BFS:
    /// seeds are spread across the node range, and each block claims one
    /// frontier node per round, keeping sizes balanced.
    pub fn build(g: &DataGraph, n_blocks: usize) -> Self {
        let n = g.node_count();
        let n_blocks = n_blocks.clamp(1, n.max(1));
        let mut block_of: HashMap<NodeId, usize> = HashMap::with_capacity(n);
        let mut blocks: Vec<Vec<NodeId>> = vec![Vec::new(); n_blocks];
        let mut queues: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); n_blocks];

        // Spread seeds over the id range.
        let mut unassigned: Vec<NodeId> = g.iter().collect();
        #[allow(clippy::needless_range_loop)] // b indexes two parallel vecs
        for b in 0..n_blocks {
            let seed_idx = b * n / n_blocks;
            queues[b].push_back(unassigned[seed_idx]);
        }
        let mut assigned = 0usize;
        let mut next_unseeded = 0usize;
        while assigned < n {
            let mut progressed = false;
            for b in 0..n_blocks {
                // Claim the first unassigned node in this block's frontier.
                while let Some(u) = queues[b].pop_front() {
                    if block_of.contains_key(&u) {
                        continue;
                    }
                    block_of.insert(u, b);
                    blocks[b].push(u);
                    assigned += 1;
                    progressed = true;
                    for &(v, _) in g.neighbors(u) {
                        if !block_of.contains_key(&v) {
                            queues[b].push_back(v);
                        }
                    }
                    break;
                }
            }
            if !progressed {
                // Disconnected remainder: seed the smallest block with the
                // next unassigned node.
                while next_unseeded < unassigned.len()
                    && block_of.contains_key(&unassigned[next_unseeded])
                {
                    next_unseeded += 1;
                }
                if next_unseeded >= unassigned.len() {
                    break;
                }
                let smallest = (0..n_blocks).min_by_key(|&b| blocks[b].len()).unwrap_or(0);
                queues[smallest].push_back(unassigned[next_unseeded]);
            }
        }
        unassigned.clear();

        // Portals: endpoints of cross-block edges.
        let mut portals = HashSet::new();
        for u in g.iter() {
            for &(v, _) in g.neighbors(u) {
                if block_of[&u] != block_of[&v] {
                    portals.insert(u);
                    portals.insert(v);
                }
            }
        }
        BlockPartition {
            block_of,
            blocks,
            portals,
        }
    }

    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Size of the largest block divided by the ideal size — 1.0 is perfect
    /// balance.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.blocks.iter().map(|b| b.len()).sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.blocks.len() as f64;
        let max = self.blocks.iter().map(|b| b.len()).max().unwrap_or(0) as f64;
        max / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(w: usize, h: usize) -> DataGraph {
        let mut g = DataGraph::new();
        let ids: Vec<NodeId> = (0..w * h)
            .map(|i| g.add_node("n", &format!("n{i}")))
            .collect();
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    g.add_edge(ids[i], ids[i + 1], 1.0);
                }
                if y + 1 < h {
                    g.add_edge(ids[i], ids[i + w], 1.0);
                }
            }
        }
        g
    }

    #[test]
    fn every_node_assigned_exactly_once() {
        let g = grid(6, 6);
        let p = BlockPartition::build(&g, 4);
        assert_eq!(p.block_of.len(), 36);
        let total: usize = p.blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, 36);
    }

    #[test]
    fn blocks_are_balanced() {
        let g = grid(8, 8);
        let p = BlockPartition::build(&g, 4);
        assert!(p.imbalance() < 1.5, "imbalance {}", p.imbalance());
    }

    #[test]
    fn portals_are_cross_block_endpoints() {
        let g = grid(4, 4);
        let p = BlockPartition::build(&g, 2);
        assert!(!p.portals.is_empty());
        for &u in &p.portals {
            let has_cross = g
                .neighbors(u)
                .iter()
                .any(|&(v, _)| p.block_of[&u] != p.block_of[&v]);
            assert!(has_cross);
        }
    }

    #[test]
    fn single_block_has_no_portals() {
        let g = grid(3, 3);
        let p = BlockPartition::build(&g, 1);
        assert!(p.portals.is_empty());
        assert_eq!(p.n_blocks(), 1);
    }

    #[test]
    fn disconnected_components_all_assigned() {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "");
        let b = g.add_node("n", "");
        let c = g.add_node("n", "");
        let d = g.add_node("n", "");
        g.add_edge(a, b, 1.0);
        g.add_edge(c, d, 1.0);
        let p = BlockPartition::build(&g, 2);
        assert_eq!(p.block_of.len(), 4);
    }
}
