//! Hub-based distance index (Goldman et al., *Proximity Search in
//! Databases*, VLDB 98) — tutorial slide 122.
//!
//! Storing all-pairs distances costs `O(|V|²)`; instead, select a hub set `H`
//! (ideally balanced separators), store
//!
//! * `d*(u, v)` — shortest distances **not crossing any hub** (hubs may be
//!   endpoints), which stay local when hubs separate the graph, and
//! * `d_H(A, B)` — full pairwise distances between hubs,
//!
//! and answer `d(x, y) = min(d*(x, y), min_{A,B∈H} d*(x,A) + d_H(A,B) + d*(B,y))`.

use crate::graph::{DataGraph, NodeId};
use crate::shortest::{dijkstra, dijkstra_all};
use std::collections::{HashMap, HashSet};

/// Hub-selection strategy (an ablation axis in the benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HubSelection {
    /// Highest-degree nodes — degree correlates with being a separator in
    /// FK graphs (hub relations like `write` touch everything).
    HighestDegree,
    /// Every `stride`-th node — a baseline to ablate against.
    Strided { stride: usize },
}

/// The precomputed index.
#[derive(Debug, Clone)]
pub struct HubIndex {
    hubs: Vec<NodeId>,
    hub_pos: HashMap<NodeId, usize>,
    /// d*(u, ·): hub-avoiding distances from every node. Key is the source.
    local: HashMap<NodeId, HashMap<NodeId, f64>>,
    /// Dense hub-to-hub distance matrix (f64::INFINITY when disconnected).
    hub_dist: Vec<Vec<f64>>,
}

impl HubIndex {
    /// Build the index with `n_hubs` hubs chosen by `selection`.
    pub fn build(g: &DataGraph, n_hubs: usize, selection: HubSelection) -> Self {
        let hubs = select_hubs(g, n_hubs, selection);
        let hub_set: HashSet<NodeId> = hubs.iter().copied().collect();
        // d*: run hub-avoiding Dijkstra from every node. Hubs themselves are
        // sources too (they may be endpoints of d*).
        let mut local = HashMap::with_capacity(g.node_count());
        for u in g.iter() {
            let sp = dijkstra(g, u, None, None, &|n| hub_set.contains(&n));
            local.insert(u, sp.dist);
        }
        // d_H via full Dijkstra from each hub.
        let mut hub_dist = vec![vec![f64::INFINITY; hubs.len()]; hubs.len()];
        for (i, &h) in hubs.iter().enumerate() {
            let sp = dijkstra_all(g, h);
            for (j, &h2) in hubs.iter().enumerate() {
                if let Some(&d) = sp.dist.get(&h2) {
                    hub_dist[i][j] = d;
                }
            }
        }
        let hub_pos = hubs.iter().enumerate().map(|(i, &h)| (h, i)).collect();
        HubIndex {
            hubs,
            hub_pos,
            local,
            hub_dist,
        }
    }

    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }

    /// Index size in stored distance entries — the space the hub scheme is
    /// trading against `O(|V|²)`.
    pub fn entry_count(&self) -> usize {
        self.local.values().map(|m| m.len()).sum::<usize>() + self.hubs.len().pow(2)
    }

    /// Query the distance between `x` and `y`; `None` if disconnected.
    pub fn distance(&self, x: NodeId, y: NodeId) -> Option<f64> {
        let lx = self.local.get(&x)?;
        let ly = self.local.get(&y)?;
        let mut best = lx.get(&y).copied().unwrap_or(f64::INFINITY);
        // Reachable hubs from x and from y, with d* distances.
        for (&a, &da) in lx.iter().filter(|(n, _)| self.hub_pos.contains_key(n)) {
            let ia = self.hub_pos[&a];
            for (&b, &db) in ly.iter().filter(|(n, _)| self.hub_pos.contains_key(n)) {
                let ib = self.hub_pos[&b];
                let total = da + self.hub_dist[ia][ib] + db;
                if total < best {
                    best = total;
                }
            }
        }
        (best < f64::INFINITY).then_some(best)
    }
}

fn select_hubs(g: &DataGraph, n_hubs: usize, selection: HubSelection) -> Vec<NodeId> {
    let n_hubs = n_hubs.min(g.node_count());
    match selection {
        HubSelection::HighestDegree => {
            let mut nodes: Vec<NodeId> = g.iter().collect();
            nodes.sort_by_key(|&n| std::cmp::Reverse(g.degree(n)));
            nodes.truncate(n_hubs);
            nodes.sort();
            nodes
        }
        HubSelection::Strided { stride } => {
            let stride = stride.max(1);
            g.iter().step_by(stride).take(n_hubs).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest::distance;

    /// Two triangles joined through a single cut vertex `c`.
    fn barbell() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let ids: Vec<NodeId> = (0..7).map(|i| g.add_node("n", &format!("n{i}"))).collect();
        // triangle 1: 0-1-2
        g.add_edge(ids[0], ids[1], 1.0);
        g.add_edge(ids[1], ids[2], 1.0);
        g.add_edge(ids[0], ids[2], 1.0);
        // cut vertex 3 links the triangles
        g.add_edge(ids[2], ids[3], 1.0);
        g.add_edge(ids[3], ids[4], 1.0);
        // triangle 2: 4-5-6
        g.add_edge(ids[4], ids[5], 1.0);
        g.add_edge(ids[5], ids[6], 1.0);
        g.add_edge(ids[4], ids[6], 1.0);
        (g, ids)
    }

    #[test]
    fn hub_distances_match_dijkstra() {
        let (g, _) = barbell();
        let ix = HubIndex::build(&g, 1, HubSelection::HighestDegree);
        for x in g.iter() {
            for y in g.iter() {
                assert_eq!(
                    ix.distance(x, y),
                    distance(&g, x, y),
                    "mismatch for {x:?}→{y:?}"
                );
            }
        }
    }

    #[test]
    fn cut_vertex_is_chosen_as_hub() {
        let (g, ids) = barbell();
        let ix = HubIndex::build(&g, 1, HubSelection::HighestDegree);
        // highest-degree nodes are 2, 3, 4 (degree 3); any separates well,
        // but there must be exactly one hub.
        assert_eq!(ix.hubs().len(), 1);
        let _ = ids;
    }

    #[test]
    fn disconnected_returns_none() {
        let mut g = DataGraph::new();
        let a = g.add_node("n", "");
        let b = g.add_node("n", "");
        let c = g.add_node("n", "");
        g.add_edge(a, b, 1.0);
        let ix = HubIndex::build(&g, 1, HubSelection::HighestDegree);
        assert_eq!(ix.distance(a, c), None);
        assert_eq!(ix.distance(a, b), Some(1.0));
    }

    #[test]
    fn strided_selection_works_too() {
        let (g, _) = barbell();
        let ix = HubIndex::build(&g, 3, HubSelection::Strided { stride: 2 });
        for x in g.iter() {
            for y in g.iter() {
                assert_eq!(ix.distance(x, y), distance(&g, x, y));
            }
        }
    }

    #[test]
    fn good_hubs_shrink_local_maps() {
        let (g, _) = barbell();
        let with_hub = HubIndex::build(&g, 1, HubSelection::HighestDegree);
        let no_hub = HubIndex::build(&g, 0, HubSelection::HighestDegree);
        assert!(with_hub.entry_count() < no_hub.entry_count());
    }
}
