//! Evaluating keyword search systems (tutorial slides 103–109).
//!
//! Two complementary methodologies:
//!
//! * [`inex`] — benchmark-style evaluation as run by the INEX campaigns:
//!   assessors highlight relevant character fragments, a tolerance-bounded
//!   reading model decides how much of each result the user actually reads,
//!   and ranked lists are scored with generalized precision (gP@k) and its
//!   average (AgP);
//! * [`axioms`] — the axiomatic framework of Liu & Chen (VLDB 08): four
//!   cheap, dataset-independent sanity properties — data/query monotonicity
//!   and data/query consistency — as executable checkers that flag
//!   abnormal engine behaviour (slide 109's query-consistency violation).

pub mod axioms;
pub mod inex;

pub use axioms::{AxiomReport, XmlSearchEngine};
pub use inex::{agp, fragment_score, gp_at_k, FragmentScore};
