//! The axiomatic evaluation framework (Liu & Chen, VLDB 08) — tutorial
//! slides 107–109.
//!
//! Describing the *right* results for every query is impossible, but
//! abnormal behaviour shows up when comparing one engine's results on two
//! similar inputs. Four axioms, each an executable checker over any
//! [`XmlSearchEngine`] (AND semantics assumed):
//!
//! * **query monotonicity** — adding a keyword cannot grow the result count;
//! * **query consistency** — every result of the extended query contains
//!   the new keyword (slide 109's violation example);
//! * **data monotonicity** — inserting a node cannot shrink the result
//!   count;
//! * **data consistency** — any new result after inserting a node contains
//!   the new node.

use kwdb_xml::{NodeId, XmlIndex, XmlTree};
use std::collections::HashSet;

/// Anything that answers XML keyword queries with result subtree roots.
pub trait XmlSearchEngine {
    fn search(&self, tree: &XmlTree, keywords: &[String]) -> Vec<NodeId>;
}

impl<F> XmlSearchEngine for F
where
    F: Fn(&XmlTree, &[String]) -> Vec<NodeId>,
{
    fn search(&self, tree: &XmlTree, keywords: &[String]) -> Vec<NodeId> {
        self(tree, keywords)
    }
}

/// The reference SLCA engine, for cross-checking candidate engines.
pub struct SlcaEngine;

impl XmlSearchEngine for SlcaEngine {
    fn search(&self, tree: &XmlTree, keywords: &[String]) -> Vec<NodeId> {
        let ix = XmlIndex::build(tree);
        kwdb_xmlsearch::slca_indexed_lookup_eager(tree, &ix, keywords)
            .map(|(r, _)| r)
            .unwrap_or_default()
    }
}

/// Outcome of one axiom check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiomReport {
    Satisfied,
    Violated { detail: String },
}

impl AxiomReport {
    pub fn is_satisfied(&self) -> bool {
        matches!(self, AxiomReport::Satisfied)
    }
}

/// Query monotonicity: `|results(Q ∪ {k})| ≤ |results(Q)|`.
pub fn check_query_monotonicity(
    engine: &dyn XmlSearchEngine,
    tree: &XmlTree,
    query: &[String],
    extra: &str,
) -> AxiomReport {
    let base = engine.search(tree, query).len();
    let mut extended = query.to_vec();
    extended.push(extra.to_string());
    let ext = engine.search(tree, &extended).len();
    if ext <= base {
        AxiomReport::Satisfied
    } else {
        AxiomReport::Violated {
            detail: format!("adding '{extra}' grew results from {base} to {ext}"),
        }
    }
}

/// Query consistency: every result of `Q ∪ {k}` contains `k` in its subtree
/// (as text or label).
pub fn check_query_consistency(
    engine: &dyn XmlSearchEngine,
    tree: &XmlTree,
    query: &[String],
    extra: &str,
) -> AxiomReport {
    let mut extended = query.to_vec();
    extended.push(extra.to_string());
    let ix = XmlIndex::build(tree);
    let matches: HashSet<NodeId> = ix.nodes(extra).iter().collect();
    for r in engine.search(tree, &extended) {
        let ok = tree.subtree(r).into_iter().any(|n| matches.contains(&n));
        if !ok {
            return AxiomReport::Violated {
                detail: format!(
                    "result {} ({}) lacks the new keyword '{extra}'",
                    r.0,
                    tree.label_path(r)
                ),
            };
        }
    }
    AxiomReport::Satisfied
}

/// Insert a new leaf `<label>text</label>` under `parent`, producing a new
/// tree (trees are immutable; the checker rebuilds). Returns the new tree
/// and the Dewey path of the inserted node.
pub fn with_added_leaf(
    tree: &XmlTree,
    parent: NodeId,
    label: &str,
    text: &str,
) -> (XmlTree, String) {
    // rebuild via the builder, appending the new leaf as parent's last child
    fn rebuild(
        tree: &XmlTree,
        node: NodeId,
        b: &mut kwdb_xml::XmlBuilder,
        target: NodeId,
        label: &str,
        text: &str,
    ) {
        if let Some(t) = tree.text(node) {
            b.text(t);
        }
        for &c in tree.children(node) {
            b.open(tree.label(c));
            rebuild(tree, c, b, target, label, text);
            b.close();
        }
        if node == target {
            b.leaf(label, text);
        }
    }
    let mut b = kwdb_xml::XmlBuilder::new(tree.label(tree.root()));
    rebuild(tree, tree.root(), &mut b, parent, label, text);
    let new_tree = b.build();
    let path = format!("{}/{}", tree.label_path(parent), label);
    (new_tree, path)
}

/// Data monotonicity: adding a node cannot shrink the result count.
pub fn check_data_monotonicity(
    engine: &dyn XmlSearchEngine,
    tree: &XmlTree,
    query: &[String],
    parent: NodeId,
    label: &str,
    text: &str,
) -> AxiomReport {
    let base = engine.search(tree, query).len();
    let (bigger, _) = with_added_leaf(tree, parent, label, text);
    let after = engine.search(&bigger, query).len();
    if after >= base {
        AxiomReport::Satisfied
    } else {
        AxiomReport::Violated {
            detail: format!("adding a node shrank results from {base} to {after}"),
        }
    }
}

/// Data consistency: every *new* result after insertion contains the new
/// node in its subtree.
pub fn check_data_consistency(
    engine: &dyn XmlSearchEngine,
    tree: &XmlTree,
    query: &[String],
    parent: NodeId,
    label: &str,
    text: &str,
) -> AxiomReport {
    let before: HashSet<String> = engine
        .search(tree, query)
        .into_iter()
        .map(|n| tree.dewey(n).to_string())
        .collect();
    let (bigger, _) = with_added_leaf(tree, parent, label, text);
    // the new node is parent's last child in the rebuilt tree
    let new_parent = bigger
        .node_at(tree.dewey(parent))
        .expect("parent position preserved by append-only rebuild");
    let new_node = *bigger.children(new_parent).last().expect("leaf added");
    for r in engine.search(&bigger, query) {
        let dewey = bigger.dewey(r).to_string();
        if before.contains(&dewey) {
            continue; // existing result
        }
        let contains_new = bigger.subtree(r).contains(&new_node);
        if !contains_new {
            return AxiomReport::Violated {
                detail: format!("new result {dewey} does not contain the inserted node"),
            };
        }
    }
    AxiomReport::Satisfied
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_xml::XmlBuilder;

    /// Slide 109's conf instance.
    fn slide109() -> XmlTree {
        let mut b = XmlBuilder::new("conf");
        b.leaf("name", "SIGMOD")
            .leaf("year", "2007")
            .open("paper")
            .leaf("title", "keyword")
            .leaf("author", "Mark")
            .close()
            .open("paper")
            .leaf("title", "XML")
            .leaf("author", "Yang")
            .close()
            .open("demo")
            .leaf("title", "Top-k")
            .leaf("author", "Soliman")
            .close();
        b.build()
    }

    fn q(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn reference_engine_satisfies_all_axioms() {
        let t = slide109();
        let e = SlcaEngine;
        assert!(check_query_monotonicity(&e, &t, &q(&["paper", "mark"]), "sigmod").is_satisfied());
        assert!(check_query_consistency(&e, &t, &q(&["paper", "mark"]), "sigmod").is_satisfied());
        let paper2 = t.children(t.root())[3];
        assert!(
            check_data_monotonicity(&e, &t, &q(&["paper", "mark"]), paper2, "author", "Mark")
                .is_satisfied()
        );
        assert!(
            check_data_consistency(&e, &t, &q(&["paper", "mark"]), paper2, "author", "Mark")
                .is_satisfied()
        );
    }

    #[test]
    fn slide109_query_consistency_violation_detected() {
        // A broken engine: for the extended query it returns the demo
        // subtree, which lacks "sigmod" — the slide's violation.
        let t = slide109();
        let demo = t.children(t.root())[4];
        let broken = move |tree: &XmlTree, keywords: &[String]| -> Vec<NodeId> {
            if keywords.contains(&"sigmod".to_string()) {
                vec![demo]
            } else {
                SlcaEngine.search(tree, keywords)
            }
        };
        let report = check_query_consistency(&broken, &t, &q(&["paper", "mark"]), "sigmod");
        assert!(!report.is_satisfied());
        match report {
            AxiomReport::Violated { detail } => assert!(detail.contains("sigmod")),
            _ => unreachable!(),
        }
    }

    #[test]
    fn query_monotonicity_violation_detected() {
        let t = slide109();
        let spammy = |tree: &XmlTree, keywords: &[String]| -> Vec<NodeId> {
            // returns more results the longer the query
            tree.iter().take(keywords.len() * 2).collect()
        };
        let report = check_query_monotonicity(&spammy, &t, &q(&["paper"]), "mark");
        assert!(!report.is_satisfied());
    }

    #[test]
    fn data_monotonicity_violation_detected() {
        let t = slide109();
        let base_len = t.len();
        let shrinking = move |tree: &XmlTree, _: &[String]| -> Vec<NodeId> {
            // returns fewer results on bigger documents
            if tree.len() > base_len {
                vec![]
            } else {
                vec![tree.root()]
            }
        };
        let paper = t.children(t.root())[2];
        let report = check_data_monotonicity(&shrinking, &t, &q(&["mark"]), paper, "x", "y");
        assert!(!report.is_satisfied());
    }

    #[test]
    fn with_added_leaf_preserves_existing_structure() {
        let t = slide109();
        let paper = t.children(t.root())[2];
        let (bigger, path) = with_added_leaf(&t, paper, "keyword", "extra");
        assert_eq!(bigger.len(), t.len() + 1);
        assert_eq!(path, "/conf/paper/keyword");
        // old nodes still resolvable at their Dewey positions
        for n in t.iter() {
            let m = bigger.node_at(t.dewey(n)).expect("position preserved");
            assert_eq!(t.label(n), bigger.label(m));
        }
    }
}
