//! INEX-style metrics (tutorial slides 104–106).
//!
//! INEX scores a retrieved XML fragment at character granularity against
//! assessor-highlighted ground truth, under a **tolerance reading model**:
//! the user reads the fragment in order and stops after `tolerance`
//! consecutive non-relevant characters. Precision is the relevant fraction
//! of what was read; recall is the fraction of all relevant characters that
//! were read; F is their harmonic mean. A ranked list is summarized by
//! generalized precision `gP@k` (mean score of the first k results) and
//! `AgP` (mean of gP over every k).

/// Score of one retrieved fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentScore {
    pub precision: f64,
    pub recall: f64,
    pub f_measure: f64,
    /// Characters actually read under the tolerance model.
    pub read: usize,
}

/// Score one fragment: `relevance[i]` says whether the fragment's `i`-th
/// character is relevant; `total_relevant` is the corpus-wide relevant
/// character count (for recall); `tolerance` is the consecutive-irrelevant
/// budget before the user stops reading (`None` = reads everything).
pub fn fragment_score(
    relevance: &[bool],
    total_relevant: usize,
    tolerance: Option<usize>,
) -> FragmentScore {
    // reading model: stop after `tolerance` consecutive irrelevant chars
    let mut read = relevance.len();
    if let Some(tol) = tolerance {
        let mut run = 0usize;
        for (i, &rel) in relevance.iter().enumerate() {
            if rel {
                run = 0;
            } else {
                run += 1;
                if run > tol {
                    read = i + 1;
                    break;
                }
            }
        }
    }
    let relevant_read = relevance[..read].iter().filter(|&&r| r).count();
    let precision = if read == 0 {
        0.0
    } else {
        relevant_read as f64 / read as f64
    };
    let recall = if total_relevant == 0 {
        0.0
    } else {
        relevant_read as f64 / total_relevant as f64
    };
    let f_measure = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    FragmentScore {
        precision,
        recall,
        f_measure,
        read,
    }
}

/// Generalized precision at rank `k`: the mean fragment score of the first
/// `k` results (scores beyond the list count as 0 — a short list is not
/// rewarded for stopping early).
pub fn gp_at_k(scores: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let sum: f64 = scores.iter().take(k).sum();
    sum / k as f64
}

/// Average generalized precision over all ranks `1..=n`.
pub fn agp(scores: &[f64]) -> f64 {
    let n = scores.len();
    if n == 0 {
        return 0.0;
    }
    (1..=n).map(|k| gp_at_k(scores, k)).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_common::Rng;

    fn rand_bools(rng: &mut Rng, max_len: usize) -> Vec<bool> {
        let len = rng.gen_index(max_len);
        (0..len).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn perfect_fragment() {
        let s = fragment_score(&[true, true, true], 3, Some(2));
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f_measure, 1.0);
        assert_eq!(s.read, 3);
    }

    #[test]
    fn tolerance_stops_reading() {
        // slide 105: reading stops in the long irrelevant gap, so the
        // trailing relevant chunk is never seen
        let mut rel = vec![true; 4];
        rel.extend(vec![false; 10]);
        rel.extend(vec![true; 6]);
        let s = fragment_score(&rel, 10, Some(3));
        assert_eq!(s.read, 8); // 4 relevant + 4 irrelevant (tolerance 3 exceeded)
        assert!((s.recall - 0.4).abs() < 1e-12, "only 4 of 10 relevant read");
        assert!((s.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_tolerance_reads_everything() {
        let mut rel = vec![true; 2];
        rel.extend(vec![false; 50]);
        rel.extend(vec![true; 2]);
        let s = fragment_score(&rel, 4, None);
        assert_eq!(s.read, 54);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn empty_and_irrelevant_fragments() {
        let s = fragment_score(&[], 5, Some(2));
        assert_eq!(s.f_measure, 0.0);
        let s = fragment_score(&[false, false], 5, Some(10));
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.f_measure, 0.0);
    }

    #[test]
    fn gp_and_agp() {
        let scores = [1.0, 0.5, 0.0];
        assert_eq!(gp_at_k(&scores, 1), 1.0);
        assert_eq!(gp_at_k(&scores, 2), 0.75);
        assert_eq!(gp_at_k(&scores, 3), 0.5);
        // short list penalized at deeper ranks
        assert_eq!(gp_at_k(&scores, 6), 0.25);
        let expected = (1.0 + 0.75 + 0.5) / 3.0;
        assert!((agp(&scores) - expected).abs() < 1e-12);
        assert_eq!(agp(&[]), 0.0);
    }

    #[test]
    fn front_loaded_ranking_scores_higher() {
        let good = [1.0, 0.2];
        let bad = [0.2, 1.0];
        assert!(agp(&good) > agp(&bad));
    }

    #[test]
    fn metrics_bounded() {
        let mut rng = Rng::seed_from_u64(21);
        for _ in 0..300 {
            let rel = rand_bools(&mut rng, 40);
            let tol = rng.gen_range(0usize..6);
            let total = rel.iter().filter(|&&r| r).count().max(1);
            let s = fragment_score(&rel, total, Some(tol));
            assert!((0.0..=1.0).contains(&s.precision));
            assert!((0.0..=1.0).contains(&s.recall));
            assert!((0.0..=1.0).contains(&s.f_measure));
            assert!(s.read <= rel.len());
        }
    }

    #[test]
    fn larger_tolerance_reads_at_least_as_much() {
        let mut rng = Rng::seed_from_u64(22);
        for _ in 0..300 {
            let mut rel = rand_bools(&mut rng, 40);
            if rel.is_empty() {
                rel.push(true);
            }
            let s1 = fragment_score(&rel, 10, Some(1));
            let s2 = fragment_score(&rel, 10, Some(5));
            assert!(s2.read >= s1.read, "{rel:?}");
            assert!(s2.recall >= s1.recall, "{rel:?}");
        }
    }
}
