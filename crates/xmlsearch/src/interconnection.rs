//! Interconnection semantics — XSEarch (Cohen, Mamou, Kanza & Sagiv,
//! VLDB 03), tutorial slide 34's "many more ?LCAs".
//!
//! Not every LCA is meaningful: in a bibliography, two authors related only
//! through the *document root* are not "interconnected". XSEarch's rule:
//! two match nodes are related iff the tree path between them contains **no
//! two distinct nodes with the same label** (other than the endpoints) — a
//! repeated label on the path means the connection crosses two different
//! entities of the same type (two different papers, say), which users read
//! as unrelated. An answer is a set of matches, one per keyword, that are
//! pairwise interconnected.

use kwdb_common::Result;
use kwdb_xml::{NodeId, XmlIndex, XmlTree};

/// Is the path between `a` and `b` free of repeated labels?
/// (Endpoints may share a label — "two authors of one paper" are related.)
pub fn interconnected(tree: &XmlTree, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return true;
    }
    let lca = tree.lca(a, b);
    // collect interior labels on both legs (excluding endpoints a and b)
    let mut labels = std::collections::HashSet::new();
    let mut dup = false;
    let mut walk = |from: NodeId| {
        let mut cur = from;
        while cur != lca {
            if cur != a && cur != b && !labels.insert(tree.label(cur).to_string()) {
                dup = true;
            }
            cur = tree.parent(cur).expect("lca is an ancestor");
        }
    };
    walk(a);
    walk(b);
    // the LCA itself is interior unless it is an endpoint
    if lca != a && lca != b && !labels.insert(tree.label(lca).to_string()) {
        dup = true;
    }
    !dup
}

/// An XSEarch answer: one match per keyword, pairwise interconnected,
/// reported by its LCA (the subtree a user would read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterconnectedAnswer {
    pub matches: Vec<NodeId>,
    pub lca: NodeId,
}

/// All interconnected answers for `keywords` (AND semantics). Bounded by
/// `max_answers` since match combinations multiply.
pub fn search<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
    max_answers: usize,
) -> Result<Vec<InterconnectedAnswer>> {
    let Some(lists) = index.lists_for(keywords) else {
        return Ok(Vec::new());
    };
    // The mixed-radix enumeration needs random access into every list, so
    // decode the (possibly block-compressed) views once up front.
    let lists: Vec<Vec<NodeId>> = lists.iter().map(|l| l.to_vec()).collect();
    let mut out = Vec::new();
    let mut combo = vec![0usize; lists.len()];
    'enumerate: loop {
        let matches: Vec<NodeId> = combo.iter().zip(&lists).map(|(&i, l)| l[i]).collect();
        let ok = (0..matches.len())
            .all(|i| (i + 1..matches.len()).all(|j| interconnected(tree, matches[i], matches[j])));
        if ok {
            let lca = matches
                .iter()
                .skip(1)
                .fold(matches[0], |acc, &m| tree.lca(acc, m));
            out.push(InterconnectedAnswer { matches, lca });
            if out.len() >= max_answers {
                break;
            }
        }
        // advance the mixed-radix counter
        let mut pos = 0;
        loop {
            if pos == combo.len() {
                break 'enumerate;
            }
            combo[pos] += 1;
            if combo[pos] < lists[pos].len() {
                break;
            }
            combo[pos] = 0;
            pos += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_xml::XmlBuilder;

    /// Two papers under one conf: authors within a paper are related;
    /// authors across papers are not (the path repeats "paper").
    fn bib() -> XmlTree {
        let mut b = XmlBuilder::new("conf");
        b.open("paper")
            .leaf("author", "Alice")
            .leaf("author", "Bob")
            .close()
            .open("paper")
            .leaf("author", "Carol")
            .close();
        b.build()
    }

    #[test]
    fn coauthors_are_interconnected() {
        let t = bib();
        let ix = XmlIndex::build(&t);
        let alice = ix.nodes("alice").first().unwrap();
        let bob = ix.nodes("bob").first().unwrap();
        assert!(interconnected(&t, alice, bob), "path: author-paper-author");
    }

    #[test]
    fn authors_of_different_papers_are_not() {
        let t = bib();
        let ix = XmlIndex::build(&t);
        let alice = ix.nodes("alice").first().unwrap();
        let carol = ix.nodes("carol").first().unwrap();
        // path crosses paper–conf–paper: "paper" repeats
        assert!(!interconnected(&t, alice, carol));
    }

    #[test]
    fn search_returns_only_related_pairs() {
        let t = bib();
        let ix = XmlIndex::build(&t);
        let answers = search(&t, &ix, &["alice", "bob"], 10).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(t.label(answers[0].lca), "paper");
        let none = search(&t, &ix, &["alice", "carol"], 10).unwrap();
        assert!(none.is_empty(), "cross-paper pair must be filtered");
    }

    #[test]
    fn same_node_is_self_interconnected() {
        let t = bib();
        let ix = XmlIndex::build(&t);
        let alice = ix.nodes("alice").first().unwrap();
        assert!(interconnected(&t, alice, alice));
    }

    #[test]
    fn missing_keyword_gives_empty() {
        let t = bib();
        let ix = XmlIndex::build(&t);
        assert!(search(&t, &ix, &["alice", "zzz"], 10).unwrap().is_empty());
    }

    #[test]
    fn max_answers_bounds_enumeration() {
        let t = bib();
        let ix = XmlIndex::build(&t);
        // "author" label matches 3 nodes; pairs with themselves etc.
        let answers = search(&t, &ix, &["author"], 2).unwrap();
        assert_eq!(answers.len(), 2);
    }
}
