//! XML keyword search.
//!
//! The tutorial's XML track has two halves, both implemented here:
//!
//! **Finding results** (slides 32–34, 137–141): subtrees rooted at
//! ?LCA nodes —
//! * [`slca`] — Smallest LCAs via Indexed-Lookup-Eager and Scan-Eager
//!   (Xu & Papakonstantinou, SIGMOD 05), plus Multiway-SLCA (WWW 07);
//! * [`elca`](mod@crate::elca) — Exclusive LCAs via the Index-Stack candidate + verify scheme
//!   (EDBT 08 / XRank SIGMOD 03), ranked by [`xrank`]'s ElemRank authority;
//! * [`interconnection`] — XSEarch's interconnection semantics: matches
//!   related iff their connecting path has no repeated labels
//!   (Cohen et al., VLDB 03; slide 34);
//!
//! **Interpreting queries and results**:
//! * [`xseek`] — keyword-role analysis and return-node inference
//!   (Liu & Chen, SIGMOD 07; slides 51 and 161);
//! * [`xreal`] — statistics-driven search-for-type inference
//!   (Bao et al., ICDE 09; slides 37–38);
//! * [`ntc`] — normalized total correlation for design-independent
//!   structural ranking (Termehchy & Winslett, CIKM 09; slides 41–43);
//! * [`xpath_infer`] — probabilistic keyword→XPath inference
//!   (Petkova et al., ECIR 09; slides 47–48);
//! * [`snippet`] — query-biased result snippets (Huang et al., SIGMOD 08;
//!   slides 147–148).

pub mod elca;
pub mod interconnection;
pub mod ntc;
pub mod slca;
pub mod snippet;
pub mod xpath_infer;
pub mod xrank;
pub mod xreal;
pub mod xseek;

pub use elca::elca;
pub use slca::{multiway_slca, slca_indexed_budgeted, slca_indexed_lookup_eager, slca_scan_eager};
