//! Exclusive Lowest Common Ancestors — XRank's answer semantics
//! (Guo et al., SIGMOD 03) computed with the candidate + verification scheme
//! of the Index-Stack algorithm (Xu & Papakonstantinou, EDBT 08) —
//! tutorial slides 34, 140.
//!
//! A node `v` is an **ELCA** iff its subtree still contains a match of every
//! keyword after removing the subtrees of all descendants of `v` that
//! themselves contain all keywords. ELCAs are a superset of SLCAs: on the
//! slide-109 instance, `conf` is an ELCA for `{paper, Mark}` (its extra
//! `paper` nodes witness the cover) even though a paper below it also covers.
//!
//! Following EDBT 08: `ELCA ⊆ ∪_{v ∈ S₁} slca({v}, S₂, …, S_k)`, so the
//! per-anchor SLCA candidates are generated first and each is verified with
//! child-interval probes.

use crate::slca::covering_nodes;
use kwdb_common::index::Postings;
use kwdb_common::Result;
use kwdb_xml::{NodeId, XmlIndex, XmlTree};

/// ELCA statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElcaStats {
    pub candidates: usize,
    /// Interval probes performed during verification.
    pub probes: usize,
}

/// Compute the ELCA set in document order.
pub fn elca<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
) -> Result<(Vec<NodeId>, ElcaStats)> {
    let mut stats = ElcaStats::default();
    let Some(lists) = index.lists_for(keywords) else {
        return Ok((Vec::new(), stats));
    };
    let sizes = tree.subtree_sizes();
    // Candidate generation: each driver anchor's per-anchor SLCA, plus all
    // of its ancestors that gain extra witnesses — per EDBT 08 the candidate
    // set ∪ slca({v}, rest) suffices; anchors from the *smallest* list.
    let (driver, others) = lists.split_first().expect("at least one keyword");
    let mut candidates: Vec<NodeId> = Vec::new();
    for v in driver.iter() {
        candidates.push(per_anchor_slca(tree, v, others));
    }
    candidates.sort();
    candidates.dedup();
    stats.candidates = candidates.len();

    // Verification: v is an ELCA iff every keyword has a match in span(v)
    // that is not inside any covering child-subtree of v. Lists are resolved
    // once here; verification below never touches the dictionary again.
    let all_lists: Vec<Postings<'_, NodeId>> =
        keywords.iter().map(|k| index.nodes(k.as_ref())).collect();
    let mut out = Vec::new();
    for &v in &candidates {
        if verify_elca(tree, &sizes, &all_lists, v, &mut stats) {
            out.push(v);
        }
    }
    Ok((out, stats))
}

/// Brute-force oracle, straight from the definition.
pub fn elca_brute_force<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
) -> Vec<NodeId> {
    let covering: std::collections::HashSet<NodeId> =
        covering_nodes(tree, index, keywords).into_iter().collect();
    let lists: Vec<Postings<'_, NodeId>> =
        keywords.iter().map(|k| index.nodes(k.as_ref())).collect();
    let mut out = Vec::new();
    for v in tree.iter() {
        // matches of each keyword in subtree(v), excluding matches under any
        // proper descendant of v that covers all keywords
        let ok = lists.iter().all(|list| {
            list.iter().any(|m| {
                if !(tree.is_ancestor(v, m) || v == m) {
                    return false;
                }
                // walk from m up to v; if any intermediate covers, excluded
                let mut cur = m;
                while cur != v {
                    if covering.contains(&cur) {
                        return false;
                    }
                    cur = tree.parent(cur).expect("v is an ancestor");
                }
                true
            })
        });
        if ok {
            out.push(v);
        }
    }
    out
}

/// Deepest ancestor of `v` covering every other keyword via nearest matches.
fn per_anchor_slca(tree: &XmlTree, v: NodeId, others: &[Postings<'_, NodeId>]) -> NodeId {
    let vd = tree.dewey(v);
    let mut best = vd.depth();
    for list in others {
        let l = list.left_match(v);
        let r = list.right_match(v);
        let lcp = [l, r]
            .iter()
            .flatten()
            .map(|&u| vd.lca(tree.dewey(u)).depth())
            .max()
            .unwrap_or(0);
        best = best.min(lcp);
    }
    let prefix = kwdb_xml::Dewey::from_path(vd.components()[..best].to_vec());
    tree.node_at(&prefix).expect("prefix resolves")
}

/// Does `v` have, for every keyword, a witness match not swallowed by a
/// covering child subtree?
fn verify_elca(
    tree: &XmlTree,
    sizes: &[u32],
    all_lists: &[Postings<'_, NodeId>],
    v: NodeId,
    stats: &mut ElcaStats,
) -> bool {
    let span_end = NodeId(v.0 + sizes[v.0 as usize]);
    all_lists.iter().all(|list| {
        // cursor positioned at the first match ≥ v; witnesses live in
        // [v, span_end)
        let mut cur = list.cursor();
        cur.seek(v.0 as u64);
        stats.probes += 2;
        while let Some(m) = cur.next() {
            if m >= span_end {
                break;
            }
            if m == v {
                return true; // match on v itself is always a witness
            }
            // the child of v on the path to m
            let child = child_toward(tree, v, m);
            if !covers_all(sizes, all_lists, child, stats) {
                return true;
            }
        }
        false
    })
}

/// The child of `v` that is an ancestor-or-self of descendant `m`.
fn child_toward(tree: &XmlTree, v: NodeId, m: NodeId) -> NodeId {
    let vd = tree.dewey(v).depth();
    let md = tree.dewey(m).components();
    let ord = md[vd];
    tree.children(v)[ord as usize]
}

/// Does `c`'s subtree contain a match of every keyword?
fn covers_all(
    sizes: &[u32],
    all_lists: &[Postings<'_, NodeId>],
    c: NodeId,
    stats: &mut ElcaStats,
) -> bool {
    let end = NodeId(c.0 + sizes[c.0 as usize]);
    all_lists.iter().all(|list| {
        stats.probes += 1;
        list.right_match(c).is_some_and(|m| m < end)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_common::Rng;
    use kwdb_xml::XmlBuilder;

    /// Slide 109's instance: a conf with two papers and a demo; ELCA of
    /// {paper, mark} differs from SLCA.
    fn slide109() -> XmlTree {
        let mut b = XmlBuilder::new("conf");
        b.leaf("name", "SIGMOD")
            .leaf("year", "2007")
            .open("paper")
            .leaf("title", "keyword")
            .leaf("author", "Mark")
            .close()
            .open("paper")
            .leaf("title", "XML")
            .leaf("author", "Yang")
            .close()
            .open("demo")
            .leaf("title", "Top-k")
            .leaf("author", "Soliman")
            .close();
        b.build()
    }

    #[test]
    fn elca_strictly_contains_slca_on_slide_instance() {
        let t = slide109();
        let ix = XmlIndex::build(&t);
        let kws = ["paper", "mark"];
        let (e, _) = elca(&t, &ix, &kws).unwrap();
        let brute = elca_brute_force(&t, &ix, &kws);
        assert_eq!(e, brute);
        // paper1 covers both keywords (label "paper" + author Mark);
        // conf is ALSO an ELCA: witness "paper" = paper2 (not covering),
        // witness "mark" = ... none outside paper1 → actually conf's only
        // mark is inside covering paper1, so conf is NOT an ELCA here.
        let (s, _) = crate::slca::slca_indexed_lookup_eager(&t, &ix, &kws).unwrap();
        assert_eq!(e, s, "on this instance ELCA == SLCA");
        assert_eq!(e.len(), 1);
        assert_eq!(t.label(e[0]), "paper");
    }

    #[test]
    fn conf_becomes_elca_with_extra_witnesses() {
        // Add a Mark demo author: now conf has witnesses for both keywords
        // outside the covering paper (paper2 for "paper", demo's Mark for
        // "mark")… but the demo itself does not cover (label ≠ paper), so
        // conf IS an ELCA while SLCA stays the single paper.
        let mut b = XmlBuilder::new("conf");
        b.open("paper")
            .leaf("author", "Mark")
            .close()
            .open("paper")
            .leaf("author", "Yang")
            .close()
            .open("demo")
            .leaf("author", "Mark")
            .close();
        let t = b.build();
        let ix = XmlIndex::build(&t);
        let kws = ["paper", "mark"];
        let (e, _) = elca(&t, &ix, &kws).unwrap();
        let brute = elca_brute_force(&t, &ix, &kws);
        assert_eq!(e, brute);
        let (s, _) = crate::slca::slca_indexed_lookup_eager(&t, &ix, &kws).unwrap();
        assert!(e.len() > s.len(), "ELCA {e:?} must exceed SLCA {s:?}");
        assert!(e.iter().any(|&n| t.label(n) == "conf"));
    }

    #[test]
    fn missing_keyword_empty() {
        let t = slide109();
        let ix = XmlIndex::build(&t);
        let (e, _) = elca(&t, &ix, &["paper", "zzz"]).unwrap();
        assert!(e.is_empty());
    }

    fn random_tree(structure: &[(usize, u8)]) -> XmlTree {
        let mut b = XmlBuilder::new("r");
        let mut depth = 0usize;
        for &(pops, kw) in structure {
            for _ in 0..pops.min(depth) {
                b.close();
                depth -= 1;
            }
            b.open("n");
            depth += 1;
            match kw {
                1 => {
                    b.text("ka");
                }
                2 => {
                    b.text("kb");
                }
                3 => {
                    b.text("ka kb");
                }
                _ => {}
            }
        }
        for _ in 0..depth {
            b.close();
        }
        b.build()
    }

    fn rand_structure(rng: &mut Rng) -> Vec<(usize, u8)> {
        let len = rng.gen_range(1usize..40);
        (0..len)
            .map(|_| (rng.gen_index(3), rng.gen_range(0u8..4)))
            .collect()
    }

    #[test]
    fn elca_matches_brute_force() {
        let mut rng = Rng::seed_from_u64(61);
        for _ in 0..64 {
            let t = random_tree(&rand_structure(&mut rng));
            let ix = XmlIndex::build(&t);
            let kws = ["ka", "kb"];
            let fast = elca(&t, &ix, &kws).unwrap().0;
            let brute = elca_brute_force(&t, &ix, &kws);
            assert_eq!(fast, brute);
        }
    }

    #[test]
    fn slca_subset_of_elca() {
        let mut rng = Rng::seed_from_u64(62);
        for _ in 0..64 {
            let t = random_tree(&rand_structure(&mut rng));
            let ix = XmlIndex::build(&t);
            let kws = ["ka", "kb"];
            let (s, _) = crate::slca::slca_indexed_lookup_eager(&t, &ix, &kws).unwrap();
            let (e, _) = elca(&t, &ix, &kws).unwrap();
            for n in s {
                assert!(e.contains(&n), "SLCA node missing from ELCA");
            }
        }
    }
}
