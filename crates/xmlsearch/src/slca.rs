//! Smallest Lowest Common Ancestors (Xu & Papakonstantinou, SIGMOD 05;
//! Sun et al., WWW 07) — tutorial slides 33, 138–139.
//!
//! The SLCA set of `Q = {k₁,…,k_l}` is the set of nodes whose subtree
//! contains a match of every keyword and none of whose descendants does —
//! the "min redundancy" answer semantics. Three algorithms:
//!
//! * [`slca_indexed_lookup_eager`] — drive from the *smallest* match list;
//!   for each anchor, binary-probe the other lists (`lm`/`rm`), giving
//!   `O(k·d·|S_min|·log|S_max|)` — the complexity claim E04 measures;
//! * [`slca_scan_eager`] — same candidates with linear pointer advances,
//!   better when `|S_min| ≈ |S_max|` (the crossover E04 sweeps);
//! * [`multiway_slca`] — anchor skipping (WWW 07): after an SLCA is found,
//!   anchors inside its subtree are skipped wholesale.
//!
//! [`slca_brute_force`] is the test oracle.

use kwdb_common::index::Postings;
use kwdb_common::{Budget, Result, TruncationReason};
use kwdb_xml::{NodeId, XmlIndex, XmlTree};

/// Shared probe counters, reported by E04.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlcaStats {
    /// Anchors consumed from the driving list.
    pub anchors: usize,
    /// Binary-search probes (ILE) or pointer advances (scan).
    pub probes: usize,
}

/// Indexed-Lookup-Eager SLCA.
pub fn slca_indexed_lookup_eager<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
) -> Result<(Vec<NodeId>, SlcaStats)> {
    let (roots, stats, _) = slca_indexed_budgeted(tree, index, keywords, &Budget::unlimited())?;
    Ok((roots, stats))
}

/// [`slca_indexed_lookup_eager`] under an execution [`Budget`]: every anchor
/// consumed from the driving list counts as one candidate. An exhausted
/// budget returns the antichain of the candidates computed so far plus the
/// [`TruncationReason`] — a sound partial answer, since each candidate
/// depends only on its own anchor.
pub fn slca_indexed_budgeted<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
    budget: &Budget,
) -> Result<(Vec<NodeId>, SlcaStats, Option<TruncationReason>)> {
    let mut stats = SlcaStats::default();
    let mut truncation = None;
    let Some(lists) = index.lists_for(keywords) else {
        return Ok((Vec::new(), stats, truncation));
    };
    let (driver, others) = lists.split_first().expect("at least one keyword");
    let mut candidates: Vec<NodeId> = Vec::new();
    for v in driver.iter() {
        if let Some(reason) = budget.truncation_at(stats.anchors as u64) {
            truncation = Some(reason);
            break;
        }
        stats.anchors += 1;
        candidates.push(anchor_candidate(tree, v, others, &mut stats));
    }
    Ok((antichain(tree, candidates), stats, truncation))
}

/// Scan-Eager SLCA: identical candidates via monotone pointer advances.
pub fn slca_scan_eager<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
) -> Result<(Vec<NodeId>, SlcaStats)> {
    let mut stats = SlcaStats::default();
    let Some(lists) = index.lists_for(keywords) else {
        return Ok((Vec::new(), stats));
    };
    let (driver, others) = lists.split_first().expect("at least one keyword");
    // one cursor per other list, advanced monotonically with the anchors;
    // each remembers the last node it stepped over (the left neighbor)
    let mut cursors: Vec<_> = others
        .iter()
        .map(|l| (l.cursor(), None::<NodeId>))
        .collect();
    let mut candidates: Vec<NodeId> = Vec::new();
    for v in driver.iter() {
        stats.anchors += 1;
        let mut best_prefix = usize::MAX;
        let vd = tree.dewey(v);
        for (cursor, passed) in cursors.iter_mut() {
            // advance cursor past nodes < v
            while let Some(u) = cursor.peek() {
                if u >= v {
                    break;
                }
                *passed = Some(u);
                cursor.advance();
                stats.probes += 1;
            }
            let right = cursor.peek();
            let left = *passed;
            let lcp = [left, right]
                .iter()
                .flatten()
                .map(|&u| vd.lca(tree.dewey(u)).depth())
                .max()
                .unwrap_or(0);
            best_prefix = best_prefix.min(lcp);
        }
        if best_prefix == usize::MAX {
            best_prefix = vd.depth();
        }
        let anc = ancestor_at_depth(tree, v, best_prefix);
        candidates.push(anc);
    }
    Ok((antichain(tree, candidates), stats))
}

/// Multiway-SLCA (Sun et al.'s BMS): each round anchors on the *maximum*
/// of the lists' current heads, computes that anchor's candidate, then
/// advances every list past the anchor (`skip_after`). Every round consumes
/// at least one node from each list, and whole prefixes dominated by another
/// list's head are skipped without individual anchor computations.
pub fn multiway_slca<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
) -> Result<(Vec<NodeId>, SlcaStats)> {
    let mut stats = SlcaStats::default();
    let Some(lists) = index.lists_for(keywords) else {
        return Ok((Vec::new(), stats));
    };
    let mut cursors: Vec<_> = lists.iter().map(|l| l.cursor()).collect();
    let mut candidates: Vec<NodeId> = Vec::new();
    loop {
        // current heads; stop when any list is exhausted
        let mut anchor: Option<(NodeId, usize)> = None;
        let mut exhausted = false;
        for (j, cursor) in cursors.iter_mut().enumerate() {
            match cursor.peek() {
                Some(h) => {
                    if anchor.is_none_or(|(a, _)| h > a) {
                        anchor = Some((h, j));
                    }
                }
                None => {
                    exhausted = true;
                    break;
                }
            }
        }
        if exhausted {
            break;
        }
        let (a, aj) = anchor.expect("nonempty lists");
        stats.anchors += 1;
        let others: Vec<Postings<'_, NodeId>> = lists
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != aj)
            .map(|(_, l)| *l)
            .collect();
        candidates.push(anchor_candidate(tree, a, &others, &mut stats));
        // skip_after: advance every list past the anchor
        for cursor in cursors.iter_mut() {
            cursor.seek(a.0 as u64 + 1);
        }
    }
    Ok((antichain(tree, candidates), stats))
}

/// Brute-force oracle: O(n · k · matches).
pub fn slca_brute_force<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
) -> Vec<NodeId> {
    let covering = covering_nodes(tree, index, keywords);
    covering
        .iter()
        .filter(|&&v| !covering.iter().any(|&u| u != v && tree.is_ancestor(v, u)))
        .copied()
        .collect()
}

/// Nodes whose subtree contains a match of every keyword (the full LCA set).
pub fn covering_nodes<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
) -> Vec<NodeId> {
    let sizes = tree.subtree_sizes();
    // One index lookup per keyword, not one per (node, keyword) pair.
    let lists: Vec<Postings<'_, NodeId>> =
        keywords.iter().map(|k| index.nodes(k.as_ref())).collect();
    tree.iter()
        .filter(|&v| {
            let end = NodeId(v.0 + sizes[v.0 as usize]);
            lists
                .iter()
                .all(|list| list.right_match(v).is_some_and(|m| m < end))
        })
        .collect()
}

/// ILE anchor step: the deepest ancestor of `v` whose subtree covers every
/// other keyword via `v`'s nearest matches.
fn anchor_candidate(
    tree: &XmlTree,
    v: NodeId,
    others: &[Postings<'_, NodeId>],
    stats: &mut SlcaStats,
) -> NodeId {
    let vd = tree.dewey(v);
    let mut best_prefix = vd.depth();
    for list in others {
        stats.probes += 2;
        let left = list.left_match(v);
        let right = list.right_match(v);
        let lcp = [left, right]
            .iter()
            .flatten()
            .map(|&u| vd.lca(tree.dewey(u)).depth())
            .max()
            .unwrap_or(0);
        best_prefix = best_prefix.min(lcp);
    }
    ancestor_at_depth(tree, v, best_prefix)
}

/// The ancestor of `v` at Dewey depth `depth`.
fn ancestor_at_depth(tree: &XmlTree, v: NodeId, depth: usize) -> NodeId {
    let d = tree.dewey(v);
    let prefix = kwdb_xml::Dewey::from_path(d.components()[..depth.min(d.depth())].to_vec());
    tree.node_at(&prefix).expect("ancestor prefix resolves")
}

/// Reduce candidates (any order) to the SLCA antichain: sort in document
/// order, dedupe, and drop any node that is an ancestor of its successor.
fn antichain(tree: &XmlTree, mut candidates: Vec<NodeId>) -> Vec<NodeId> {
    candidates.sort();
    candidates.dedup();
    let mut out: Vec<NodeId> = Vec::with_capacity(candidates.len());
    for c in candidates {
        // pop ancestors of c (they are not smallest)
        while let Some(&last) = out.last() {
            if tree.is_ancestor(last, c) {
                out.pop();
            } else {
                break;
            }
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_common::Rng;
    use kwdb_xml::XmlBuilder;

    /// The slide-33 instance: two papers; SLCA must exclude the conf root.
    fn slide33() -> XmlTree {
        let mut b = XmlBuilder::new("conf");
        b.leaf("name", "SIGMOD")
            .leaf("year", "2007")
            .open("paper")
            .leaf("title", "keyword")
            .leaf("author", "Mark")
            .leaf("author", "Chen")
            .close()
            .open("paper")
            .leaf("title", "RDF")
            .leaf("author", "Mark")
            .leaf("author", "Zhang")
            .close();
        b.build()
    }

    fn all_algorithms(
        tree: &XmlTree,
        keywords: &[&str],
    ) -> (Vec<NodeId>, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
        let ix = XmlIndex::build(tree);
        let (a, _) = slca_indexed_lookup_eager(tree, &ix, keywords).unwrap();
        let (b, _) = slca_scan_eager(tree, &ix, keywords).unwrap();
        let (c, _) = multiway_slca(tree, &ix, keywords).unwrap();
        let d = slca_brute_force(tree, &ix, keywords);
        (a, b, c, d)
    }

    #[test]
    fn slide33_keyword_mark() {
        let t = slide33();
        let (ile, scan, multi, brute) = all_algorithms(&t, &["keyword", "mark"]);
        // only the first paper contains both
        assert_eq!(brute.len(), 1);
        assert_eq!(t.label(brute[0]), "paper");
        assert_eq!(ile, brute);
        assert_eq!(scan, brute);
        assert_eq!(multi, brute);
    }

    #[test]
    fn ancestor_descendant_pruned() {
        let t = slide33();
        // "mark" alone: both papers match via authors; SLCAs are the two
        // author leaves (not the papers)
        let (ile, _, _, brute) = all_algorithms(&t, &["mark"]);
        assert_eq!(ile, brute);
        assert_eq!(ile.len(), 2);
        assert!(ile.iter().all(|&n| t.label(n) == "author"));
    }

    #[test]
    fn root_is_slca_for_cross_subtree_queries() {
        let t = slide33();
        let (ile, scan, multi, brute) = all_algorithms(&t, &["rdf", "keyword"]);
        assert_eq!(brute.len(), 1);
        assert_eq!(t.label(brute[0]), "conf");
        assert_eq!(ile, brute);
        assert_eq!(scan, brute);
        assert_eq!(multi, brute);
    }

    #[test]
    fn missing_keyword_is_empty() {
        let t = slide33();
        let (ile, scan, multi, brute) = all_algorithms(&t, &["mark", "zzz"]);
        assert!(ile.is_empty() && scan.is_empty() && multi.is_empty() && brute.is_empty());
    }

    #[test]
    fn label_matches_participate() {
        let t = slide33();
        // query on structure term "paper" + value "rdf"
        let (ile, _, _, brute) = all_algorithms(&t, &["paper", "rdf"]);
        assert_eq!(ile, brute);
        assert_eq!(ile.len(), 1);
        assert_eq!(t.label(ile[0]), "paper");
    }

    #[test]
    fn multiway_uses_fewer_anchors() {
        // x-matches cluster before the y-matches: BMS's max-head anchoring
        // skips the dominated prefixes wholesale, ILE anchors on every
        // driver node.
        let mut b = XmlBuilder::new("root");
        for _ in 0..5 {
            b.leaf("p", "x");
        }
        for _ in 0..5 {
            b.leaf("p", "y");
        }
        b.leaf("p", "x");
        b.leaf("p", "y");
        let t = b.build();
        let ix = XmlIndex::build(&t);
        let (res_ile, st_ile) = slca_indexed_lookup_eager(&t, &ix, &["x", "y"]).unwrap();
        let (res_multi, st_multi) = multiway_slca(&t, &ix, &["x", "y"]).unwrap();
        assert_eq!(res_ile, res_multi);
        assert!(
            st_multi.anchors < st_ile.anchors,
            "multiway {} vs ile {}",
            st_multi.anchors,
            st_ile.anchors
        );
    }

    /// Random tree generator for property tests.
    fn random_tree(structure: &[(usize, u8)]) -> XmlTree {
        // structure: (parent-pop levels, keyword code 0..4)
        let mut b = XmlBuilder::new("r");
        let mut depth = 0usize;
        for &(pops, kw) in structure {
            for _ in 0..pops.min(depth) {
                b.close();
                depth -= 1;
            }
            b.open("n");
            depth += 1;
            match kw {
                1 => {
                    b.text("ka");
                }
                2 => {
                    b.text("kb");
                }
                3 => {
                    b.text("ka kb");
                }
                _ => {}
            }
        }
        for _ in 0..depth {
            b.close();
        }
        b.build()
    }

    fn rand_structure(rng: &mut Rng) -> Vec<(usize, u8)> {
        let len = rng.gen_range(1usize..40);
        (0..len)
            .map(|_| (rng.gen_index(3), rng.gen_range(0u8..4)))
            .collect()
    }

    #[test]
    fn algorithms_agree_with_brute_force() {
        let mut rng = Rng::seed_from_u64(51);
        for _ in 0..64 {
            let t = random_tree(&rand_structure(&mut rng));
            let ix = XmlIndex::build(&t);
            let kws = ["ka", "kb"];
            let brute = slca_brute_force(&t, &ix, &kws);
            let (ile, _) = slca_indexed_lookup_eager(&t, &ix, &kws).unwrap();
            let (scan, _) = slca_scan_eager(&t, &ix, &kws).unwrap();
            let (multi, _) = multiway_slca(&t, &ix, &kws).unwrap();
            assert_eq!(&ile, &brute, "ILE mismatch");
            assert_eq!(&scan, &brute, "scan mismatch");
            assert_eq!(&multi, &brute, "multiway mismatch");
        }
    }

    #[test]
    fn slca_is_antichain() {
        let mut rng = Rng::seed_from_u64(52);
        for _ in 0..64 {
            let t = random_tree(&rand_structure(&mut rng));
            let ix = XmlIndex::build(&t);
            let (res, _) = slca_indexed_lookup_eager(&t, &ix, &["ka", "kb"]).unwrap();
            for (i, &a) in res.iter().enumerate() {
                for &b in &res[i + 1..] {
                    assert!(!t.is_ancestor(a, b) && !t.is_ancestor(b, a));
                }
            }
        }
    }

    #[test]
    fn slca_subset_of_covering() {
        let mut rng = Rng::seed_from_u64(53);
        for _ in 0..64 {
            let t = random_tree(&rand_structure(&mut rng));
            let ix = XmlIndex::build(&t);
            let kws = ["ka", "kb"];
            let covering = covering_nodes(&t, &ix, &kws);
            let (res, _) = slca_indexed_lookup_eager(&t, &ix, &kws).unwrap();
            for n in res {
                assert!(covering.contains(&n));
            }
        }
    }
}
