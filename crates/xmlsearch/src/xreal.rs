//! XReal: statistics-driven inference of the *search-for node type*
//! (Bao et al., ICDE 09) — tutorial slides 37–38.
//!
//! For query `Q = {k₁,…,k_l}` XReal scores every label path `T` by
//!
//! ```text
//! C(T) = ln(1 + Π_k f(T, k)) · r^{depth(T)}
//! ```
//!
//! where `f(T, k)` is the number of `T`-typed nodes whose subtree contains
//! `k` (from [`kwdb_xml::PathStats`]) and `r < 1` gently prefers higher
//! (more general) types. The product guarantees the slide-37 behaviour: a
//! type that cannot match *all* keywords scores exactly 0
//! (`/phdthesis/paper → 0`), and `/conf/paper` outranks `/journal/paper`
//! when conference papers dominate the keyword statistics.

use kwdb_xml::{NodeId, PathStats, XmlIndex, XmlTree};

/// Depth-reduction factor `r`.
const DEPTH_FACTOR: f64 = 0.8;

/// A scored candidate return type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeScore {
    pub path: String,
    pub score: f64,
}

/// Rank all label paths as search-for types for `keywords`, best first.
/// Paths that cannot cover every keyword are omitted (score 0).
pub fn infer_return_types<S: AsRef<str>>(stats: &PathStats, keywords: &[S]) -> Vec<TypeScore> {
    let mut out: Vec<TypeScore> = stats
        .paths()
        .filter_map(|(path, _)| {
            let mut product = 1.0f64;
            for k in keywords {
                let f = stats.term_node_count(path, k.as_ref());
                if f == 0 {
                    return None;
                }
                product *= f as f64;
            }
            let depth = PathStats::path_depth(path) as i32;
            let score = (1.0 + product).ln() * DEPTH_FACTOR.powi(depth);
            Some(TypeScore {
                path: path.to_string(),
                score,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.path.cmp(&b.path))
    });
    out
}

/// Score of one specific path (0 when it cannot cover all keywords).
pub fn type_score<S: AsRef<str>>(stats: &PathStats, path: &str, keywords: &[S]) -> f64 {
    let mut product = 1.0f64;
    for k in keywords {
        let f = stats.term_node_count(path, k.as_ref());
        if f == 0 {
            return 0.0;
        }
        product *= f as f64;
    }
    (1.0 + product).ln() * DEPTH_FACTOR.powi(PathStats::path_depth(path) as i32)
}

/// XReal phase 2: score the *instances* of the chosen type. Leaf content
/// contributes tf·ief; internal nodes aggregate their children — here
/// computed directly over subtree term frequencies.
pub fn score_instances<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    type_path: &str,
    keywords: &[S],
) -> Vec<(NodeId, f64)> {
    let n_nodes = tree.len() as f64;
    let sizes = tree.subtree_sizes();
    let mut out: Vec<(NodeId, f64)> = tree
        .iter()
        .filter(|&n| tree.label_path(n) == type_path)
        .map(|n| {
            let end = NodeId(n.0 + sizes[n.0 as usize]);
            let score: f64 = keywords
                .iter()
                .map(|k| {
                    let list = index.nodes(k.as_ref());
                    let tf = list.count_between(n, end) as f64;
                    if tf == 0.0 {
                        0.0
                    } else {
                        let ief = (n_nodes / (list.len() as f64)).ln().max(0.0) + 1.0;
                        (1.0 + tf.ln()) * ief
                    }
                })
                .sum();
            (n, score)
        })
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_xml::XmlBuilder;

    /// Slide 37's shape: Widom's XML papers live under conf; journals have
    /// fewer; phdthesis has none.
    fn bib() -> kwdb_xml::XmlTree {
        let mut b = XmlBuilder::new("bib");
        b.open("conf");
        for i in 0..3 {
            b.open("paper")
                .leaf("author", "Widom")
                .leaf("title", &format!("XML study {i}"))
                .close();
        }
        b.close();
        b.open("journal");
        b.open("paper")
            .leaf("author", "Widom")
            .leaf("title", "XML journal work")
            .close();
        b.open("paper")
            .leaf("author", "Other")
            .leaf("title", "Relational")
            .close();
        b.close();
        b.open("phdthesis");
        b.open("paper")
            .leaf("author", "Student")
            .leaf("title", "Thesis on graphs")
            .close();
        b.close();
        b.build()
    }

    #[test]
    fn conf_paper_outranks_journal_paper() {
        let t = bib();
        let stats = kwdb_xml::PathStats::build(&t);
        let kws = ["widom", "xml"];
        let ranked = infer_return_types(&stats, &kws);
        assert!(!ranked.is_empty());
        let pos = |p: &str| ranked.iter().position(|ts| ts.path == p);
        let conf = pos("/bib/conf/paper").expect("conf paper is a candidate");
        let journal = pos("/bib/journal/paper").expect("journal paper is a candidate");
        assert!(
            conf < journal,
            "conf {conf} must rank above journal {journal}"
        );
        // phdthesis/paper can't match → absent (score 0 per slide 37)
        assert!(pos("/bib/phdthesis/paper").is_none());
        assert_eq!(type_score(&stats, "/bib/phdthesis/paper", &kws), 0.0);
    }

    #[test]
    fn depth_factor_prefers_types_over_deep_leaves() {
        let t = bib();
        let stats = kwdb_xml::PathStats::build(&t);
        // With a single keyword contained in both paper and title, the
        // shallower path must get the depth advantage when counts are equal.
        let s_paper = type_score(&stats, "/bib/journal/paper", &["xml"]);
        let s_title = type_score(&stats, "/bib/journal/paper/title", &["xml"]);
        assert!(s_paper > s_title);
    }

    #[test]
    fn instances_ranked_by_content() {
        let t = bib();
        let ix = kwdb_xml::XmlIndex::build(&t);
        let ranked = score_instances(&t, &ix, "/bib/conf/paper", &["widom", "xml"]);
        assert_eq!(ranked.len(), 3);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(ranked[0].1 > 0.0);
    }

    #[test]
    fn no_candidates_for_unmatched_keyword() {
        let t = bib();
        let stats = kwdb_xml::PathStats::build(&t);
        assert!(infer_return_types(&stats, &["widom", "zzz"]).is_empty());
    }
}
