//! XSeek: inferring return nodes from keyword roles and data semantics
//! (Liu & Chen, SIGMOD 07) — tutorial slide 51.
//!
//! Query keywords play two roles: *predicates* (value matches, like SQL
//! selections) and *return specifiers* (label matches without an
//! accompanying value, like SQL projections). Data nodes are classified as
//! **entities** (node types that repeat under one parent type — the `*`-node
//! rule), **attributes** (non-repeating leaf types) or connections. XSeek's
//! inference:
//!
//! * a keyword matching a label with no value predicate on it → that label
//!   is an **explicit return node**;
//! * otherwise the result's return node is **implicit**: the lowest entity
//!   ancestor-or-self of the match context (the SLCA).

use crate::slca::slca_indexed_lookup_eager;
use kwdb_common::Result;
use kwdb_xml::{NodeId, PathStats, XmlIndex, XmlTree};

/// What to return for one query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReturnSpec {
    /// A label keyword asked for this node type explicitly.
    Explicit { label: String, nodes: Vec<NodeId> },
    /// The entity inferred to be the result's subject.
    Entity { node: NodeId },
}

/// Node classification per XSeek's data-semantics rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    Entity,
    Attribute,
    Connection,
}

/// Classify a node: its label path is an *entity type* when instances
/// repeat under a single parent instance on average; a leaf that does not
/// repeat is an *attribute*; everything else is a connection node.
pub fn classify(tree: &XmlTree, stats: &PathStats, n: NodeId) -> NodeClass {
    let path = tree.label_path(n);
    let parent_path = match tree.parent(n) {
        Some(p) => tree.label_path(p),
        None => return NodeClass::Entity, // the root stands for the whole doc
    };
    let repeats = stats.node_count(&path) > stats.node_count(&parent_path);
    if repeats {
        NodeClass::Entity
    } else if tree.children(n).is_empty() {
        NodeClass::Attribute
    } else {
        NodeClass::Connection
    }
}

/// The lowest entity ancestor-or-self of `n`.
pub fn lowest_entity(tree: &XmlTree, stats: &PathStats, n: NodeId) -> NodeId {
    let mut cur = Some(n);
    while let Some(x) = cur {
        if classify(tree, stats, x) == NodeClass::Entity {
            return x;
        }
        cur = tree.parent(x);
    }
    tree.root()
}

/// Role each query keyword plays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeywordRole {
    /// Matches node labels only → a return specifier.
    Label,
    /// Matches node values (possibly labels too) → a predicate.
    Value,
    /// No matches at all.
    Unmatched,
}

/// Determine each keyword's role from the index: a keyword whose matches
/// are all label-only matches is a return specifier.
pub fn keyword_roles<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    keywords: &[S],
) -> Vec<KeywordRole> {
    keywords
        .iter()
        .map(|k| {
            let k = k.as_ref();
            let matches = index.nodes(k);
            if matches.is_empty() {
                return KeywordRole::Unmatched;
            }
            let has_value_match = matches.iter().any(|n| {
                tree.text(n)
                    .map(|t| kwdb_common::text::tokenize(t).iter().any(|tok| tok == k))
                    .unwrap_or(false)
            });
            if has_value_match {
                KeywordRole::Value
            } else {
                KeywordRole::Label
            }
        })
        .collect()
}

/// Full XSeek inference: run SLCA on the query, then produce a return
/// specification per result.
pub fn infer_return<S: AsRef<str>>(
    tree: &XmlTree,
    index: &XmlIndex,
    stats: &PathStats,
    keywords: &[S],
) -> Result<Vec<ReturnSpec>> {
    let roles = keyword_roles(tree, index, keywords);
    let (slcas, _) = slca_indexed_lookup_eager(tree, index, keywords)?;
    let sizes = tree.subtree_sizes();
    let mut out = Vec::with_capacity(slcas.len());
    for &s in &slcas {
        // explicit return: some keyword is a pure label specifier
        let explicit = keywords
            .iter()
            .zip(&roles)
            .find(|(_, r)| **r == KeywordRole::Label);
        match explicit {
            Some((k, _)) => {
                let k = k.as_ref();
                let end = NodeId(s.0 + sizes[s.0 as usize]);
                // the matching label nodes inside this result's subtree
                let list = index.nodes(k);
                let mut nodes: Vec<NodeId> = list.collect_between(s, end);
                if nodes.is_empty() {
                    // label lives outside the SLCA subtree (e.g. sibling
                    // attribute of the matched entity): take label nodes
                    // under the lowest entity instead
                    let ent = lowest_entity(tree, stats, s);
                    let e_end = NodeId(ent.0 + sizes[ent.0 as usize]);
                    nodes = list.collect_between(ent, e_end);
                }
                out.push(ReturnSpec::Explicit {
                    label: k.to_string(),
                    nodes,
                });
            }
            None => out.push(ReturnSpec::Entity {
                node: lowest_entity(tree, stats, s),
            }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_xml::XmlBuilder;

    /// Slide 51's shape: authors with names and institutions.
    fn authors() -> XmlTree {
        let mut b = XmlBuilder::new("bib");
        for (name, inst) in [
            ("John Smith", "Univ of Toronto"),
            ("Mary Jones", "MIT"),
            ("John Doe", "Stanford"),
        ] {
            b.open("author")
                .leaf("name", name)
                .leaf("institution", inst)
                .close();
        }
        b.build()
    }

    #[test]
    fn entity_attribute_classification() {
        let t = authors();
        let stats = kwdb_xml::PathStats::build(&t);
        let author1 = t.children(t.root())[0];
        let name1 = t.children(author1)[0];
        assert_eq!(classify(&t, &stats, author1), NodeClass::Entity);
        assert_eq!(classify(&t, &stats, name1), NodeClass::Attribute);
        assert_eq!(classify(&t, &stats, t.root()), NodeClass::Entity);
    }

    #[test]
    fn value_query_returns_author_entity() {
        // Q2 = {john, toronto}: both are value matches → return the author
        let t = authors();
        let ix = kwdb_xml::XmlIndex::build(&t);
        let stats = kwdb_xml::PathStats::build(&t);
        let specs = infer_return(&t, &ix, &stats, &["john", "toronto"]).unwrap();
        assert_eq!(specs.len(), 1);
        match &specs[0] {
            ReturnSpec::Entity { node } => assert_eq!(t.label(*node), "author"),
            other => panic!("expected entity return, got {other:?}"),
        }
    }

    #[test]
    fn label_keyword_is_explicit_return() {
        // Q1 = {john, institution}: "institution" matches labels only →
        // explicit return of the institution node(s) of each John
        let t = authors();
        let ix = kwdb_xml::XmlIndex::build(&t);
        let stats = kwdb_xml::PathStats::build(&t);
        let roles = keyword_roles(&t, &ix, &["john", "institution"]);
        assert_eq!(roles, vec![KeywordRole::Value, KeywordRole::Label]);
        let specs = infer_return(&t, &ix, &stats, &["john", "institution"]).unwrap();
        assert!(!specs.is_empty());
        for spec in &specs {
            match spec {
                ReturnSpec::Explicit { label, nodes } => {
                    assert_eq!(label, "institution");
                    assert!(!nodes.is_empty());
                    assert!(nodes.iter().all(|&n| t.label(n) == "institution"));
                }
                other => panic!("expected explicit return, got {other:?}"),
            }
        }
    }

    #[test]
    fn unmatched_keyword_role() {
        let t = authors();
        let ix = kwdb_xml::XmlIndex::build(&t);
        let roles = keyword_roles(&t, &ix, &["zzz"]);
        assert_eq!(roles, vec![KeywordRole::Unmatched]);
    }

    #[test]
    fn lowest_entity_walks_up_from_attribute() {
        let t = authors();
        let stats = kwdb_xml::PathStats::build(&t);
        let author1 = t.children(t.root())[0];
        let name1 = t.children(author1)[0];
        assert_eq!(lowest_entity(&t, &stats, name1), author1);
        assert_eq!(lowest_entity(&t, &stats, author1), author1);
    }
}
