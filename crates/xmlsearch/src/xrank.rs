//! ElemRank: XRank's authority ranking for XML elements
//! (Guo et al., SIGMOD 03) — the ranking half of slide 137's engine.
//!
//! PageRank adapted to element trees: authority flows from parents to
//! children (containment is an endorsement), from children back to parents
//! (an element aggregates its content's importance), with the two directions
//! weighted differently. ELCA answers are ranked by the authority of their
//! result roots combined with keyword proximity.

use kwdb_rank::pagerank::{PageRank, PageRankConfig};
use kwdb_xml::{NodeId, XmlTree};

/// Forward (parent→child) vs backward (child→parent) flow weights.
const DOWNWARD: f64 = 1.0;
const UPWARD: f64 = 0.7;

/// Compute ElemRank authorities for every node.
pub fn elem_rank(tree: &XmlTree) -> Vec<f64> {
    let mut pr = PageRank::new(tree.len());
    for n in tree.iter() {
        for &c in tree.children(n) {
            pr.add_edge(n.0 as usize, c.0 as usize, DOWNWARD, UPWARD);
        }
    }
    pr.run(&PageRankConfig::default())
}

/// Rank result roots by `authority · proximity` where proximity is the
/// reciprocal subtree size (XRank combines both signals).
pub fn rank_results(tree: &XmlTree, results: &[NodeId]) -> Vec<(NodeId, f64)> {
    let authority = elem_rank(tree);
    let sizes = tree.subtree_sizes();
    let mut out: Vec<(NodeId, f64)> = results
        .iter()
        .map(|&r| {
            let score = authority[r.0 as usize] / (1.0 + (sizes[r.0 as usize] as f64).ln());
            (r, score)
        })
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_xml::XmlBuilder;

    fn tree() -> XmlTree {
        let mut b = XmlBuilder::new("bib");
        b.open("conf");
        for i in 0..5 {
            b.open("paper").leaf("title", &format!("t{i}")).close();
        }
        b.close();
        b.open("workshop");
        b.open("paper").leaf("title", "w0").close();
        b.close();
        b.build()
    }

    #[test]
    fn authorities_form_a_distribution() {
        let t = tree();
        let a = elem_rank(&t);
        assert_eq!(a.len(), t.len());
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(a.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn hub_venue_outranks_sparse_venue() {
        let t = tree();
        let a = elem_rank(&t);
        let conf = t.children(t.root())[0];
        let workshop = t.children(t.root())[1];
        assert!(
            a[conf.0 as usize] > a[workshop.0 as usize],
            "a venue with 5 papers aggregates more authority than one with 1"
        );
    }

    #[test]
    fn rank_results_orders_descending() {
        let t = tree();
        let papers: Vec<NodeId> = t.iter().filter(|&n| t.label(n) == "paper").collect();
        let ranked = rank_results(&t, &papers);
        assert_eq!(ranked.len(), papers.len());
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
