//! Probabilistic keyword → XPath query inference
//! (Petkova, Croft & Diao, ECIR 09) — tutorial slides 47–48.
//!
//! Each keyword gets candidate *bindings* `path[~kw]`, scored by the
//! language-model probability of the keyword under that path's content.
//! Combinations of bindings are reduced to valid XPath queries by the
//! paper's operators, updating probabilities along the way:
//!
//! * **aggregation** — two bindings on the same path fuse:
//!   `//a[~x] + //a[~y] → //a[~x y]`, `Pr = Pr(A)·Pr(B)`;
//! * **nesting** — different paths combine under their deepest common
//!   ancestor path `p`: `p[.//s₁ ~ x][.//s₂ ~ y]`, weighted by the
//!   structural probability that the ancestor type actually contains both;
//!
//! the top-k valid queries come out of a best-first enumeration over
//! binding combinations (the paper's A* search).

use kwdb_xml::PathStats;

/// A candidate binding of one keyword to a label path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathBinding {
    pub path: String,
    pub keyword: String,
    /// `Pr[~kw | path]`: fraction of the path's nodes containing the keyword.
    pub prob: f64,
}

/// An inferred XPath query with its probability.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredQuery {
    pub xpath: String,
    pub prob: f64,
}

/// Candidate bindings of `keyword`: every path whose subtrees contain it,
/// scored by the language-model term density `Pr[kw | doc(path)]` — the
/// keyword's weight among all tokens under the path. Density punishes
/// over-general bindings: the document root contains every keyword but
/// dilutes each one, so specific paths win (the paper's `pLM`).
pub fn bindings(stats: &PathStats, keyword: &str) -> Vec<PathBinding> {
    let mut out: Vec<PathBinding> = stats
        .paths()
        .filter_map(|(path, s)| {
            let f = s.term_nodes.get(keyword).copied().unwrap_or(0);
            (f > 0).then(|| PathBinding {
                path: path.to_string(),
                keyword: keyword.to_string(),
                prob: f as f64 / s.token_count.max(1) as f64,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        b.prob
            .partial_cmp(&a.prob)
            .unwrap()
            .then(a.path.len().cmp(&b.path.len()))
            .then(a.path.cmp(&b.path))
    });
    out
}

/// Deepest common prefix path of two label paths (`/a/b/c`, `/a/b/d` → `/a/b`).
fn common_ancestor_path(a: &str, b: &str) -> String {
    let pa: Vec<&str> = a.split('/').filter(|s| !s.is_empty()).collect();
    let pb: Vec<&str> = b.split('/').filter(|s| !s.is_empty()).collect();
    let n = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
    if n == 0 {
        String::from("/")
    } else {
        format!("/{}", pa[..n].join("/"))
    }
}

/// Relative step from ancestor path `anc` to descendant path `desc`
/// (`/a/b`, `/a/b/c/d` → `c/d`; empty when equal).
fn relative_steps(anc: &str, desc: &str) -> String {
    desc.strip_prefix(anc)
        .unwrap_or(desc)
        .trim_start_matches('/')
        .to_string()
}

/// Combine two bindings into one XPath query via aggregation or nesting.
pub fn combine(stats: &PathStats, a: &PathBinding, b: &PathBinding) -> InferredQuery {
    if a.path == b.path {
        // aggregation
        return InferredQuery {
            xpath: format!("{}[~\"{} {}\"]", a.path, a.keyword, b.keyword),
            prob: a.prob * b.prob,
        };
    }
    // nesting under the deepest common ancestor
    let anc = common_ancestor_path(&a.path, &b.path);
    let (ra, rb) = (relative_steps(&anc, &a.path), relative_steps(&anc, &b.path));
    // structural probability: does the ancestor type exist and dominate both
    // branches? estimated from instance counts.
    let anc_count = stats.node_count(&anc).max(1) as f64;
    let struct_prob =
        (stats.node_count(&a.path).min(stats.node_count(&b.path)) as f64 / anc_count).min(1.0);
    let pa = if ra.is_empty() {
        format!("[~\"{}\"]", a.keyword)
    } else {
        format!("[.//{} ~ \"{}\"]", ra, a.keyword)
    };
    let pb = if rb.is_empty() {
        format!("[~\"{}\"]", b.keyword)
    } else {
        format!("[.//{} ~ \"{}\"]", rb, b.keyword)
    };
    InferredQuery {
        xpath: format!("{anc}{pa}{pb}"),
        prob: a.prob * b.prob * struct_prob,
    }
}

/// Infer the top-k XPath queries for a two-keyword query (the tutorial's
/// running shape); single keywords degenerate to their best bindings.
pub fn infer<S: AsRef<str>>(stats: &PathStats, keywords: &[S], k: usize) -> Vec<InferredQuery> {
    match keywords.len() {
        0 => Vec::new(),
        1 => bindings(stats, keywords[0].as_ref())
            .into_iter()
            .take(k)
            .map(|b| InferredQuery {
                xpath: format!("{}[~\"{}\"]", b.path, b.keyword),
                prob: b.prob,
            })
            .collect(),
        _ => {
            // pairwise combination of the first two keywords' bindings,
            // best-first by probability product (beam of 8 each)
            let ba = bindings(stats, keywords[0].as_ref());
            let bb = bindings(stats, keywords[1].as_ref());
            let mut out: Vec<InferredQuery> = Vec::new();
            for a in ba.iter().take(8) {
                for b in bb.iter().take(8) {
                    out.push(combine(stats, a, b));
                }
            }
            out.sort_by(|x, y| {
                y.prob
                    .partial_cmp(&x.prob)
                    .unwrap()
                    .then(x.xpath.len().cmp(&y.xpath.len()))
                    .then(x.xpath.cmp(&y.xpath))
            });
            out.dedup_by(|a, b| a.xpath == b.xpath);
            out.truncate(k);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_xml::{PathStats, XmlBuilder};

    fn bib() -> PathStats {
        let mut b = XmlBuilder::new("bib");
        b.open("conf");
        for (title, author) in [
            ("xml search", "widom"),
            ("xml views", "widom"),
            ("graphs", "ullman"),
        ] {
            b.open("paper")
                .leaf("title", title)
                .leaf("author", author)
                .close();
        }
        b.close();
        PathStats::build(&b.build())
    }

    #[test]
    fn bindings_scored_by_term_density() {
        let s = bib();
        let bs = bindings(&s, "xml");
        assert!(!bs.is_empty());
        // title tokens: "xml search","xml views","graphs" → 5 tokens,
        // 2 title nodes contain "xml" → density 2/5; conf dilutes it
        let title = bs
            .iter()
            .find(|b| b.path == "/bib/conf/paper/title")
            .unwrap();
        assert!((title.prob - 2.0 / 5.0).abs() < 1e-12, "{}", title.prob);
        let conf = bs.iter().find(|b| b.path == "/bib/conf").unwrap();
        assert!(conf.prob < title.prob, "general bindings must be diluted");
        // best-first ordering puts the densest path first
        assert_eq!(bs[0].path, "/bib/conf/paper/title");
        assert!(bindings(&s, "zzz").is_empty());
    }

    #[test]
    fn aggregation_on_same_path() {
        let s = bib();
        let a = PathBinding {
            path: "/bib/conf/paper".into(),
            keyword: "xml".into(),
            prob: 0.6,
        };
        let b = PathBinding {
            path: "/bib/conf/paper".into(),
            keyword: "search".into(),
            prob: 0.5,
        };
        let q = combine(&s, &a, &b);
        assert_eq!(q.xpath, "/bib/conf/paper[~\"xml search\"]");
        assert!((q.prob - 0.3).abs() < 1e-12);
    }

    #[test]
    fn nesting_under_common_ancestor() {
        let s = bib();
        let a = PathBinding {
            path: "/bib/conf/paper/title".into(),
            keyword: "xml".into(),
            prob: 2.0 / 3.0,
        };
        let b = PathBinding {
            path: "/bib/conf/paper/author".into(),
            keyword: "widom".into(),
            prob: 2.0 / 3.0,
        };
        let q = combine(&s, &a, &b);
        assert!(q.xpath.starts_with("/bib/conf/paper["), "{}", q.xpath);
        assert!(q.xpath.contains("title ~ \"xml\""));
        assert!(q.xpath.contains("author ~ \"widom\""));
        assert!(q.prob > 0.0);
    }

    #[test]
    fn infer_widom_xml_targets_the_paper() {
        let s = bib();
        let top = infer(&s, &["widom", "xml"], 3);
        assert!(!top.is_empty());
        // the best interpretation anchors at a paper-or-deeper path and
        // mentions both keywords
        assert!(top[0].xpath.contains("widom") && top[0].xpath.contains("xml"));
        assert!(top.windows(2).all(|w| w[0].prob >= w[1].prob));
    }

    #[test]
    fn single_keyword_degenerates_to_bindings() {
        let s = bib();
        let top = infer(&s, &["widom"], 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].xpath.ends_with("[~\"widom\"]"));
    }

    #[test]
    fn path_helpers() {
        assert_eq!(common_ancestor_path("/a/b/c", "/a/b/d"), "/a/b");
        assert_eq!(common_ancestor_path("/a", "/x"), "/");
        assert_eq!(relative_steps("/a/b", "/a/b/c/d"), "c/d");
        assert_eq!(relative_steps("/a/b", "/a/b"), "");
    }
}
