//! Query-biased XML result snippets (Huang, Liu & Chen, SIGMOD 08) —
//! tutorial slides 147–148.
//!
//! A result subtree can be huge; a snippet is a small, self-contained
//! excerpt that lets the user judge relevance without opening the result.
//! The paper's ingredients, reproduced here:
//!
//! * **keywords** — at least one witness per query keyword;
//! * **key of the result** — the identifying first attribute of the root
//!   entity (a paper's title, an author's name);
//! * **entities** — the entity nodes on paths to kept leaves (snippets stay
//!   self-contained: every kept node's ancestors are kept);
//! * **dominant features** — the most frequent attribute label among the
//!   result's leaves, summarizing what the result is mostly about.
//!
//! Choosing an optimal size-bounded snippet is NP-hard (slide 148); the
//! greedy below scores leaves by role and adds root paths until the node
//! budget is exhausted.

use kwdb_common::text::tokenize;
use kwdb_xml::{NodeId, XmlTree};
use std::collections::{BTreeSet, HashMap};

/// A generated snippet: the kept nodes (always ancestor-closed within the
/// result subtree) in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snippet {
    pub root: NodeId,
    pub nodes: Vec<NodeId>,
}

impl Snippet {
    /// Render with `…` elision markers for dropped children.
    pub fn render(&self, tree: &XmlTree) -> String {
        let kept: BTreeSet<NodeId> = self.nodes.iter().copied().collect();
        let mut s = String::new();
        render_node(tree, self.root, &kept, &mut s);
        s
    }
}

fn render_node(tree: &XmlTree, n: NodeId, kept: &BTreeSet<NodeId>, out: &mut String) {
    let label = tree.label(n);
    out.push('<');
    out.push_str(label);
    out.push('>');
    if let Some(t) = tree.text(n) {
        out.push_str(t);
    }
    let mut elided = false;
    for &c in tree.children(n) {
        if kept.contains(&c) {
            render_node(tree, c, kept, out);
        } else {
            elided = true;
        }
    }
    if elided {
        out.push('…');
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

/// Generate a snippet of at most `budget` nodes for the result rooted at
/// `root`.
pub fn generate<S: AsRef<str>>(
    tree: &XmlTree,
    root: NodeId,
    keywords: &[S],
    budget: usize,
) -> Snippet {
    let subtree = tree.subtree(root);
    let budget = budget.max(1);
    // score each node: keyword witness > result key > dominant feature
    let kw_set: Vec<&str> = keywords.iter().map(|k| k.as_ref()).collect();
    // dominant feature: most frequent leaf label in the subtree
    let mut label_freq: HashMap<&str, usize> = HashMap::new();
    for &n in &subtree {
        if tree.children(n).is_empty() {
            *label_freq.entry(tree.label(n)).or_insert(0) += 1;
        }
    }
    let dominant = label_freq
        .iter()
        .max_by_key(|&(l, c)| (*c, std::cmp::Reverse(l)))
        .map(|(&l, _)| l);
    // the result key: the first leaf child of the root
    let key_node = tree
        .children(root)
        .iter()
        .copied()
        .find(|&c| tree.children(c).is_empty());

    let mut scored: Vec<(f64, NodeId)> = Vec::new();
    let mut kw_covered: Vec<bool> = vec![false; kw_set.len()];
    for &n in &subtree {
        if n == root {
            continue;
        }
        let mut score = 0.0;
        let toks: Vec<String> = tree.text(n).map(tokenize).unwrap_or_default();
        let label = tree.label(n).to_lowercase();
        for (i, k) in kw_set.iter().enumerate() {
            if toks.iter().any(|t| t == k) || label == *k {
                // first witness of an uncovered keyword is worth the most
                score += if kw_covered[i] { 2.0 } else { 10.0 };
                kw_covered[i] = true;
            }
        }
        if Some(n) == key_node {
            score += 5.0;
        }
        if dominant == Some(tree.label(n)) && tree.children(n).is_empty() {
            score += 1.0;
        }
        if score > 0.0 {
            scored.push((score, n));
        }
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));

    // greedily add nodes with their root paths while within budget
    let mut kept: BTreeSet<NodeId> = BTreeSet::new();
    kept.insert(root);
    for (_, n) in scored {
        // path from n up to root
        let mut path = Vec::new();
        let mut cur = n;
        while cur != root {
            path.push(cur);
            cur = tree.parent(cur).expect("n is inside the result subtree");
        }
        let new_nodes = path.iter().filter(|p| !kept.contains(p)).count();
        if kept.len() + new_nodes > budget {
            continue;
        }
        kept.extend(path);
    }
    Snippet {
        root,
        nodes: kept.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_xml::XmlBuilder;

    /// Slide 148's shape: an ICDE conference with papers.
    fn conf() -> XmlTree {
        let mut b = XmlBuilder::new("conf");
        b.leaf("name", "ICDE").leaf("year", "2010");
        for (title, country) in [
            ("data quality", "USA"),
            ("query processing", "USA"),
            ("graph mining", "Canada"),
            ("stream joins", "USA"),
        ] {
            b.open("paper")
                .leaf("title", title)
                .open("author")
                .leaf("country", country)
                .close()
                .close();
        }
        b.build()
    }

    #[test]
    fn snippet_contains_keyword_witness_and_key() {
        let t = conf();
        let s = generate(&t, t.root(), &["icde"], 6);
        let rendered = s.render(&t);
        assert!(
            rendered.contains("ICDE"),
            "missing keyword witness: {rendered}"
        );
        assert!(s.nodes.contains(&t.root()));
        assert!(s.nodes.len() <= 6);
    }

    #[test]
    fn budget_is_respected_and_elision_marked() {
        let t = conf();
        let s = generate(&t, t.root(), &["icde"], 3);
        assert!(s.nodes.len() <= 3);
        let rendered = s.render(&t);
        assert!(
            rendered.contains('…'),
            "dropped children must be elided: {rendered}"
        );
    }

    #[test]
    fn snippet_is_ancestor_closed() {
        let t = conf();
        let s = generate(&t, t.root(), &["usa", "query"], 8);
        let kept: std::collections::HashSet<NodeId> = s.nodes.iter().copied().collect();
        for &n in &s.nodes {
            if n != s.root {
                assert!(
                    kept.contains(&t.parent(n).unwrap()),
                    "orphan node in snippet"
                );
            }
        }
    }

    #[test]
    fn all_keywords_witnessed_when_budget_allows() {
        let t = conf();
        let s = generate(&t, t.root(), &["query", "canada"], 12);
        let rendered = s.render(&t).to_lowercase();
        assert!(rendered.contains("query"));
        assert!(rendered.contains("canada"));
    }

    #[test]
    fn dominant_feature_present_with_large_budget() {
        let t = conf();
        let s = generate(&t, t.root(), &["icde"], t.len());
        let rendered = s.render(&t);
        // "country"/"title" repeat — with a full budget, dominant leaves are in
        assert!(rendered.matches("title").count() >= 2 || rendered.matches("country").count() >= 2);
    }
}
