//! NTC: design-independent ranking via normalized total correlation
//! (Termehchy & Winslett, CIKM 09) — tutorial slides 41–43.
//!
//! How strongly are the entity types along an answer's structure *actually*
//! related in the data? Unweighted schema edges treat `author–paper` and
//! `editor–paper` the same; NTC instead measures the statistical cohesion of
//! the co-occurrence distribution:
//!
//! ```text
//! I(X₁,…,Xₙ)  = Σᵢ H(Xᵢ) − H(X₁,…,Xₙ)          (total correlation)
//! I*(X₁,…,Xₙ) = f(n) · I / H(X₁,…,Xₙ),  f(n) = n²/(n−1)²
//! ```
//!
//! Answers are ranked by the `I*` of their structure — query-independent,
//! computable offline from instance statistics.

use std::collections::HashMap;

/// A joint co-occurrence distribution over `n` entity-type dimensions.
/// Each row is one relationship instance combination with its count.
#[derive(Debug, Clone, Default)]
pub struct JointDistribution {
    rows: Vec<(Vec<u32>, f64)>,
    dims: usize,
}

impl JointDistribution {
    /// Build from raw instance tuples (each a vector of value ids, one per
    /// dimension). Counts accumulate per distinct combination.
    pub fn from_instances(instances: &[Vec<u32>]) -> Self {
        assert!(!instances.is_empty(), "need at least one instance");
        let dims = instances[0].len();
        let mut counts: HashMap<Vec<u32>, f64> = HashMap::new();
        for inst in instances {
            assert_eq!(inst.len(), dims, "ragged instance");
            *counts.entry(inst.clone()).or_insert(0.0) += 1.0;
        }
        let mut rows: Vec<(Vec<u32>, f64)> = counts.into_iter().collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        JointDistribution { rows, dims }
    }

    pub fn dims(&self) -> usize {
        self.dims
    }

    fn total(&self) -> f64 {
        self.rows.iter().map(|(_, c)| c).sum()
    }

    /// Shannon entropy (bits) of the marginal on dimension `d`.
    pub fn marginal_entropy(&self, d: usize) -> f64 {
        let total = self.total();
        let mut m: HashMap<u32, f64> = HashMap::new();
        for (vals, c) in &self.rows {
            *m.entry(vals[d]).or_insert(0.0) += c;
        }
        entropy(m.values().map(|c| c / total))
    }

    /// Shannon entropy (bits) of the full joint distribution.
    pub fn joint_entropy(&self) -> f64 {
        let total = self.total();
        entropy(self.rows.iter().map(|(_, c)| c / total))
    }

    /// Total correlation `I = Σ H(Xᵢ) − H(joint)`.
    pub fn total_correlation(&self) -> f64 {
        let sum: f64 = (0..self.dims).map(|d| self.marginal_entropy(d)).sum();
        sum - self.joint_entropy()
    }

    /// Normalized total correlation `I* = f(n)·I / H(joint)`.
    /// Zero when the joint entropy is zero (a single deterministic row).
    pub fn ntc(&self) -> f64 {
        let h = self.joint_entropy();
        if h == 0.0 {
            return 0.0;
        }
        let n = self.dims as f64;
        let f = if n <= 1.0 {
            1.0
        } else {
            (n * n) / ((n - 1.0) * (n - 1.0))
        };
        f * self.total_correlation() / h
    }
}

fn entropy(probs: impl Iterator<Item = f64>) -> f64 {
    probs.filter(|&p| p > 0.0).map(|p| -p * p.log2()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The slide-42 author–paper table: six authorship facts, five distinct
    /// authors (one writing twice), four papers (two written twice).
    fn author_paper() -> JointDistribution {
        JointDistribution::from_instances(&[
            vec![1, 1],
            vec![2, 2],
            vec![3, 2],
            vec![4, 3],
            vec![5, 3],
            vec![5, 4],
        ])
    }

    /// The slide-43 editor–paper table: two editors, each editing a distinct
    /// paper half the time.
    fn editor_paper() -> JointDistribution {
        JointDistribution::from_instances(&[vec![1, 1], vec![2, 2]])
    }

    #[test]
    fn slide42_exact_entropies() {
        let d = author_paper();
        assert!(
            (d.marginal_entropy(0) - 2.2516).abs() < 1e-3,
            "H(A) = {}",
            d.marginal_entropy(0)
        );
        assert!(
            (d.marginal_entropy(1) - 1.9183).abs() < 1e-3,
            "H(P) = {}",
            d.marginal_entropy(1)
        );
        assert!((d.joint_entropy() - 2.5850).abs() < 1e-3);
        assert!(
            (d.total_correlation() - 1.585).abs() < 1e-2,
            "I = {}",
            d.total_correlation()
        );
    }

    #[test]
    fn slide43_editor_paper_is_perfectly_correlated() {
        let d = editor_paper();
        assert!((d.marginal_entropy(0) - 1.0).abs() < 1e-12);
        assert!((d.marginal_entropy(1) - 1.0).abs() < 1e-12);
        assert!((d.joint_entropy() - 1.0).abs() < 1e-12);
        assert!((d.total_correlation() - 1.0).abs() < 1e-12);
        // I* = 4 · 1/1 = 4
        assert!((d.ntc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn editor_structure_outranks_author_structure() {
        // Knowing the editor pins down the paper exactly; knowing an author
        // only mostly — NTC must rank editor–paper as the tighter structure.
        let a = author_paper();
        let e = editor_paper();
        assert!(e.ntc() > a.ntc(), "editor {} ≤ author {}", e.ntc(), a.ntc());
    }

    #[test]
    fn independent_variables_have_zero_correlation() {
        // full cross product: knowing one tells nothing about the other
        let mut inst = Vec::new();
        for a in 0..3 {
            for p in 0..3 {
                inst.push(vec![a, p]);
            }
        }
        let d = JointDistribution::from_instances(&inst);
        assert!(d.total_correlation().abs() < 1e-12);
        assert!(d.ntc().abs() < 1e-12);
    }

    #[test]
    fn deterministic_single_row_is_zero_ntc() {
        let d = JointDistribution::from_instances(&[vec![1, 1], vec![1, 1]]);
        assert_eq!(d.ntc(), 0.0);
    }

    #[test]
    fn three_way_distribution() {
        let d = JointDistribution::from_instances(&[vec![1, 1, 1], vec![2, 2, 2], vec![3, 3, 3]]);
        // perfectly correlated triple: I = 3·H − H = 2·log2(3); f(3) = 9/4
        let h = (3.0f64).log2();
        assert!((d.total_correlation() - 2.0 * h).abs() < 1e-9);
        assert!((d.ntc() - 2.25 * 2.0 * h / h).abs() < 1e-9);
    }
}
