//! QUnits: queried units in database search (Nandi & Jagadish, CIDR 09) —
//! tutorial slides 26, 64.
//!
//! A QUnit is "a basic, independent semantic unit of information in the DB"
//! — e.g. *a director with the movies they directed*. QUnits are defined
//! over the schema (root table + related tables to fold in), materialized
//! into flat documents, and retrieved with plain keyword search: the
//! simplest possible interface, everything structural decided offline.

use kwdb_rank::{CorpusStats, TfIdf};
use kwdb_relational::{Database, TableId, TupleId};

/// A QUnit definition: root entity plus related tables whose connected rows
/// fold into each unit.
#[derive(Debug, Clone)]
pub struct QUnitDef {
    pub name: String,
    pub root: TableId,
    /// Tables folded in: any table FK-adjacent to the root or to `write`-style
    /// join tables adjacent to the root (one hop of folding).
    pub include: Vec<TableId>,
}

/// A materialized QUnit instance.
#[derive(Debug, Clone)]
pub struct QUnit {
    pub def_name: String,
    pub root: TupleId,
    /// All folded tuples (root first).
    pub tuples: Vec<TupleId>,
    /// The flattened text document.
    pub text: Vec<String>,
}

/// Materialize all instances of a definition.
pub fn materialize(db: &Database, def: &QUnitDef) -> Vec<QUnit> {
    let root_table = db.table(def.root);
    let mut units = Vec::with_capacity(root_table.len());
    for (rid, _) in root_table.iter() {
        let root = TupleId::new(def.root, rid);
        let mut tuples = vec![root];
        // fold one and two hops: direct FK neighbors, and rows of included
        // tables referencing the root (or referencing via a join table)
        collect_related(db, root, def, &mut tuples);
        let mut text = Vec::new();
        for &t in &tuples {
            text.extend(db.tuple_tokens(t));
        }
        units.push(QUnit {
            def_name: def.name.clone(),
            root,
            tuples,
            text,
        });
    }
    units
}

fn collect_related(db: &Database, root: TupleId, def: &QUnitDef, out: &mut Vec<TupleId>) {
    // rows referencing the root
    let root_pk = match db.table(root.table).schema.primary_key {
        Some(pk) => db.table(root.table).get(root.row, pk).clone(),
        None => return,
    };
    for e in db
        .schema_graph()
        .edges()
        .iter()
        .filter(|e| e.to == root.table)
    {
        let referencing = db.table(e.from);
        for (rid, row) in referencing.iter() {
            if row[e.fk_column] != root_pk {
                continue;
            }
            let t = TupleId::new(e.from, rid);
            if def.include.contains(&e.from) && !out.contains(&t) {
                out.push(t);
            }
            // hop through join tables: tuples referenced by this row
            for nbr in db.fk_neighbors(t) {
                if nbr != root && def.include.contains(&nbr.table) && !out.contains(&nbr) {
                    out.push(nbr);
                }
            }
        }
    }
    // direct FK targets of the root
    for nbr in db.fk_neighbors(root) {
        if def.include.contains(&nbr.table) && !out.contains(&nbr) {
            out.push(nbr);
        }
    }
}

/// Keyword search over materialized QUnits: AND semantics, tf·idf ranking.
pub fn search<'u, S: AsRef<str>>(
    units: &'u [QUnit],
    keywords: &[S],
    k: usize,
) -> Vec<(&'u QUnit, f64)> {
    let mut stats = CorpusStats::new();
    for u in units {
        stats.add_doc(&u.text);
    }
    let scorer = TfIdf::new(&stats);
    let mut scored: Vec<(&QUnit, f64)> = units
        .iter()
        .filter(|u| {
            keywords
                .iter()
                .all(|kw| u.text.iter().any(|t| t == kw.as_ref()))
        })
        .map(|u| (u, scorer.score(keywords, &u.text)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.root.cmp(&b.0.root)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::{ColumnType, TableBuilder};

    /// Slide 26: directors and the movies they directed.
    fn imdb() -> (Database, QUnitDef) {
        let mut db = Database::new();
        db.create_table(
            TableBuilder::new("director")
                .column("did", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("did"),
        )
        .unwrap();
        db.create_table(
            TableBuilder::new("movie")
                .column("mid", ColumnType::Int)
                .column("title", ColumnType::Text)
                .column("year", ColumnType::Int)
                .column("did", ColumnType::Int)
                .primary_key("mid")
                .foreign_key("did", "director"),
        )
        .unwrap();
        db.insert("director", vec![101.into(), "Woody Allen".into()])
            .unwrap();
        db.insert("director", vec![102.into(), "Stanley Kubrick".into()])
            .unwrap();
        db.insert(
            "movie",
            vec![1.into(), "Match Point".into(), 2005.into(), 101.into()],
        )
        .unwrap();
        db.insert(
            "movie",
            vec![
                2.into(),
                "Melinda and Melinda".into(),
                2004.into(),
                101.into(),
            ],
        )
        .unwrap();
        db.insert(
            "movie",
            vec![3.into(), "The Shining".into(), 1980.into(), 102.into()],
        )
        .unwrap();
        db.build_text_index();
        let def = QUnitDef {
            name: "director+movies".into(),
            root: db.table_id("director").unwrap(),
            include: vec![db.table_id("movie").unwrap()],
        };
        (db, def)
    }

    #[test]
    fn materializes_director_with_movies() {
        let (db, def) = imdb();
        let units = materialize(&db, &def);
        assert_eq!(units.len(), 2);
        let allen = units
            .iter()
            .find(|u| u.text.contains(&"woody".to_string()))
            .unwrap();
        assert_eq!(allen.tuples.len(), 3); // director + 2 movies
        assert!(allen.text.contains(&"melinda".to_string()));
        assert!(!allen.text.contains(&"shining".to_string()));
    }

    #[test]
    fn keyword_search_retrieves_the_right_unit() {
        let (db, def) = imdb();
        let units = materialize(&db, &def);
        let hits = search(&units, &["woody", "match"], 5);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].0.text.contains(&"allen".to_string()));
        // cross-unit keywords have no answer: the unit is the result granule
        assert!(search(&units, &["woody", "shining"], 5).is_empty());
    }

    #[test]
    fn ranking_prefers_stronger_matches() {
        let (db, def) = imdb();
        let units = materialize(&db, &def);
        let hits = search(&units, &["melinda"], 5);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].1 > 0.0);
    }
}
