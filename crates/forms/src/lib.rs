//! Query forms: structure from templates (tutorial slides 11, 40, 52–64).
//!
//! Forms resolve keyword ambiguity by letting users pick a structured
//! template instead of inferring one. The pieces:
//!
//! * [`relatedness`] — generalized participation ratios between entity
//!   types (Jayapandian & Jagadish, VLDB 08; slide 40);
//! * [`queriability`] — how likely a table/attribute is to be queried:
//!   PageRank-style navigation model over the schema graph, non-null
//!   ratios, and operator-specific attribute scores (slides 60–63);
//! * [`generate`] — offline form generation: skeleton templates (connected
//!   schema subtrees) ranked by queriability, filled with predicate and
//!   output attributes (Chu et al. SIGMOD 09, step 1–2; slide 56);
//! * [`select`] — online keyword → form matching with IR ranking and
//!   two-level grouping (Chu et al.; slides 57–58);
//! * [`qunit`] — QUnits: materialized semantic units retrieved by keyword
//!   (Nandi & Jagadish, CIDR 09; slides 26, 64);
//! * [`precis`] — Précis: weighted-path bounded return expansion
//!   (Koutrika et al., ICDE 06; slide 52);
//! * [`iqp`] — SUITS/IQP keyword-binding interpretation: keyword queries
//!   scored into structured queries via template priors and binding
//!   probabilities (slides 44–46).

pub mod generate;
pub mod iqp;
pub mod precis;
pub mod queriability;
pub mod qunit;
pub mod relatedness;
pub mod select;

pub use generate::{Form, FormGenerator};
pub use select::FormIndex;
