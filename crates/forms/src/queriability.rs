//! Queriability: which schema elements will users ask about?
//! (Jayapandian & Jagadish, PVLDB 08) — tutorial slides 60–63.
//!
//! * **Entity queriability** — adapt PageRank to data navigation over the
//!   schema graph, spreading weight along FK edges proportionally to their
//!   instance fan-out (slide 60's `inproceedings → author` example);
//! * **Attribute queriability** — the non-null occurrence ratio of the
//!   attribute among its parent's instances (slide 62);
//! * **Operator-specific queriability** (slide 63) — highly selective
//!   attributes suit selections, text attributes projections, single-valued
//!   mandatory attributes order-by, numeric attributes aggregation.

use kwdb_common::value::ValueType;
use kwdb_rank::pagerank::{PageRank, PageRankConfig};
use kwdb_relational::{Database, TableId};
use std::collections::HashMap;

/// Entity (table) queriability via fan-out-weighted PageRank.
pub fn entity_queriability(db: &Database) -> HashMap<TableId, f64> {
    let n = db.table_count();
    let mut pr = PageRank::new(n);
    for e in db.schema_graph().edges() {
        // instance fan-out of the edge: avg referencing rows per referenced
        let from_rows = db.table(e.from).len().max(1) as f64;
        let to_rows = db.table(e.to).len().max(1) as f64;
        let fanout = from_rows / to_rows;
        // navigation flows both ways; weight each direction by how many
        // instances a step reaches on average
        pr.add_edge(e.from.0 as usize, e.to.0 as usize, 1.0, fanout);
    }
    let ranks = pr.run(&PageRankConfig::default());
    ranks
        .into_iter()
        .enumerate()
        .map(|(i, r)| (TableId(i as u32), r))
        .collect()
}

/// Attribute queriability: non-null ratio (slide 62).
pub fn attribute_queriability(db: &Database, table: TableId, col: usize) -> f64 {
    let t = db.table(table);
    if t.is_empty() {
        return 0.0;
    }
    let non_null = t.iter().filter(|(_, row)| !row[col].is_null()).count();
    non_null as f64 / t.len() as f64
}

/// The operators a form can use an attribute for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operator {
    Selection,
    Projection,
    OrderBy,
    Aggregation,
}

/// Operator-specific queriability (slide 63's rules, made quantitative).
pub fn operator_queriability(db: &Database, table: TableId, col: usize, op: Operator) -> f64 {
    let t = db.table(table);
    if t.is_empty() {
        return 0.0;
    }
    let base = attribute_queriability(db, table, col);
    let ty = t.schema.columns[col].ty;
    match op {
        Operator::Selection => {
            // selectivity: distinct values / rows — names are selective,
            // flags are not
            let distinct: std::collections::HashSet<&kwdb_common::Value> =
                t.iter().map(|(r, _)| t.get(r, col)).collect();
            base * distinct.len() as f64 / t.len() as f64
        }
        Operator::Projection => {
            // informative text: average token count of text values
            if ty != ValueType::Text {
                return 0.0;
            }
            let (mut toks, mut vals) = (0usize, 0usize);
            for (_, row) in t.iter() {
                if let Some(s) = row[col].as_text() {
                    toks += kwdb_common::text::tokenize(s).len();
                    vals += 1;
                }
            }
            if vals == 0 {
                0.0
            } else {
                base * (toks as f64 / vals as f64).min(10.0) / 10.0
            }
        }
        Operator::OrderBy => {
            // single-valued and mandatory: non-null ratio is the signal; only
            // ordered types qualify
            if matches!(ty, ValueType::Int | ValueType::Float | ValueType::Text) {
                base
            } else {
                0.0
            }
        }
        Operator::Aggregation => {
            if matches!(ty, ValueType::Int | ValueType::Float) {
                base
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::database::dblp_schema;
    use kwdb_relational::{ColumnType, TableBuilder};

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        for aid in 1..=4 {
            db.insert(
                "author",
                vec![aid.into(), format!("author number {aid}").into()],
            )
            .unwrap();
        }
        for pid in 1..=6 {
            db.insert(
                "paper",
                vec![
                    (pid + 100).into(),
                    format!("a longer descriptive paper title number {pid}").into(),
                    1.into(),
                ],
            )
            .unwrap();
        }
        let mut wid = 0;
        for pid in 1..=6 {
            for aid in 1..=2 {
                wid += 1;
                db.insert("write", vec![wid.into(), aid.into(), (pid + 100).into()])
                    .unwrap();
            }
        }
        db.build_text_index();
        db
    }

    #[test]
    fn frequently_navigated_entities_rank_high() {
        let db = db();
        let q = entity_queriability(&db);
        let paper = db.table_id("paper").unwrap();
        let cite = db.table_id("cite").unwrap();
        // papers are navigation hubs; the empty cite table is not
        assert!(q[&paper] > q[&cite]);
        let total: f64 = q.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn non_null_ratio() {
        let mut db = Database::new();
        db.create_table(
            TableBuilder::new("t")
                .column("a", ColumnType::Int)
                .column("b", ColumnType::Text),
        )
        .unwrap();
        db.insert("t", vec![1.into(), "x".into()]).unwrap();
        db.insert("t", vec![2.into(), kwdb_common::Value::Null])
            .unwrap();
        let t = db.table_id("t").unwrap();
        assert_eq!(attribute_queriability(&db, t, 0), 1.0);
        assert_eq!(attribute_queriability(&db, t, 1), 0.5);
    }

    #[test]
    fn selective_attribute_suits_selection() {
        let db = db();
        let author = db.table_id("author").unwrap();
        // names are all distinct → high selection score
        let sel = operator_queriability(&db, author, 1, Operator::Selection);
        assert!(sel > 0.9);
    }

    #[test]
    fn text_fields_suit_projection_numerics_aggregation() {
        let db = db();
        let paper = db.table_id("paper").unwrap();
        let title_proj = operator_queriability(&db, paper, 1, Operator::Projection);
        let pid_proj = operator_queriability(&db, paper, 0, Operator::Projection);
        assert!(title_proj > 0.0);
        assert_eq!(pid_proj, 0.0);
        let conf = db.table_id("conference").unwrap();
        let year_agg = operator_queriability(&db, conf, 2, Operator::Aggregation);
        let name_agg = operator_queriability(&db, conf, 1, Operator::Aggregation);
        assert!(year_agg > 0.0);
        assert_eq!(name_agg, 0.0);
    }

    #[test]
    fn order_by_requires_ordered_type() {
        let mut db = Database::new();
        db.create_table(
            TableBuilder::new("t")
                .column("flag", ColumnType::Bool)
                .column("year", ColumnType::Int),
        )
        .unwrap();
        db.insert("t", vec![true.into(), 2007.into()]).unwrap();
        let t = db.table_id("t").unwrap();
        assert_eq!(operator_queriability(&db, t, 0, Operator::OrderBy), 0.0);
        assert!(operator_queriability(&db, t, 1, Operator::OrderBy) > 0.0);
    }
}
