//! Online form selection: keyword query → ranked, grouped forms
//! (Chu et al., SIGMOD 09) — tutorial slides 57–58.
//!
//! Each form is indexed as a document of its schema terms (table names,
//! attribute names). A keyword query is expanded by substituting keywords
//! with schema terms ("John, XML" also tries "author, XML", "John, paper",
//! "author, paper"); forms matching any variant under AND semantics are
//! returned, ranked by tf·idf, and grouped two-level: first by skeleton,
//! then by query class.

use crate::generate::Form;
use kwdb_common::text::tokenize;
use kwdb_rank::{CorpusStats, TfIdf};
use kwdb_relational::{Database, TableId};
use std::collections::HashMap;

/// SQL query classes for second-level grouping (slide 58).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryClass {
    Select,
    Aggregate,
    GroupBy,
    UnionIntersect,
}

/// A searchable index over generated forms.
#[derive(Debug)]
pub struct FormIndex {
    forms: Vec<Form>,
    /// Schema-term document per form.
    docs: Vec<Vec<String>>,
    stats: CorpusStats,
    /// Schema vocabulary: term → tables whose name/attributes mention it.
    schema_terms: HashMap<String, Vec<TableId>>,
}

/// A form group identity: the skeleton plus the SQL query class.
pub type GroupKey = (Vec<TableId>, QueryClass);

/// A ranked, grouped selection result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedForm {
    pub form_index: usize,
    pub score: f64,
    /// First-level group: skeleton key.
    pub skeleton: Vec<TableId>,
}

impl FormIndex {
    /// Index `forms` over `db`'s schema vocabulary.
    pub fn build(db: &Database, forms: Vec<Form>) -> Self {
        let mut docs = Vec::with_capacity(forms.len());
        let mut stats = CorpusStats::new();
        for f in &forms {
            let mut doc: Vec<String> = Vec::new();
            for &t in &f.tables {
                doc.extend(tokenize(&db.table(t).schema.name));
            }
            for &(t, c) in f.predicates.iter().chain(&f.outputs) {
                doc.extend(tokenize(&db.table(t).schema.columns[c].name));
            }
            stats.add_doc(&doc);
            docs.push(doc);
        }
        let mut schema_terms: HashMap<String, Vec<TableId>> = HashMap::new();
        for t in db.tables() {
            for tok in tokenize(&t.schema.name) {
                schema_terms.entry(tok).or_default().push(t.id);
            }
            for c in &t.schema.columns {
                for tok in tokenize(&c.name) {
                    schema_terms.entry(tok).or_default().push(t.id);
                }
            }
        }
        FormIndex {
            forms,
            docs,
            stats,
            schema_terms,
        }
    }

    pub fn forms(&self) -> &[Form] {
        &self.forms
    }

    /// Query variants: the original plus versions where value keywords are
    /// replaced by schema terms of the tables that contain them in the data
    /// (slide 57's "John" → "author").
    pub fn query_variants<S: AsRef<str>>(&self, db: &Database, query: &[S]) -> Vec<Vec<String>> {
        let Ok(ix) = db.text_index() else {
            // No fresh index → no data evidence; keep the literal query.
            return vec![query.iter().map(|k| k.as_ref().to_string()).collect()];
        };
        let mut variants: Vec<Vec<String>> =
            vec![query.iter().map(|k| k.as_ref().to_string()).collect()];
        for (i, k) in query.iter().enumerate() {
            let k = k.as_ref();
            if self.schema_terms.contains_key(k) {
                continue; // already a schema term
            }
            // tables whose data contains this keyword
            let mut tables: Vec<TableId> = ix.postings(k).iter().map(|p| p.tuple.table).collect();
            tables.dedup();
            let mut new_variants = Vec::new();
            for v in &variants {
                for &t in &tables {
                    let mut nv = v.clone();
                    nv[i] = db.table(t).schema.name.clone();
                    new_variants.push(nv);
                }
            }
            variants.extend(new_variants);
        }
        variants.dedup();
        variants
    }

    /// Rank forms for a keyword query: a form matches if some variant's
    /// schema-term tokens all appear in its document; score = best variant
    /// tf·idf.
    pub fn select<S: AsRef<str>>(&self, db: &Database, query: &[S], k: usize) -> Vec<RankedForm> {
        let variants = self.query_variants(db, query);
        let scorer = TfIdf::new(&self.stats);
        let mut out: Vec<RankedForm> = Vec::new();
        for (fi, doc) in self.docs.iter().enumerate() {
            let mut best = 0.0f64;
            for v in &variants {
                // AND over the schema terms present in this variant
                let schema_tokens: Vec<&String> = v
                    .iter()
                    .filter(|t| self.schema_terms.contains_key(*t))
                    .collect();
                if schema_tokens.is_empty() {
                    continue;
                }
                if schema_tokens.iter().all(|t| doc.contains(t)) {
                    let s = scorer.score(&schema_tokens, doc);
                    best = best.max(s);
                }
            }
            if best > 0.0 {
                out.push(RankedForm {
                    form_index: fi,
                    score: best * (1.0 + self.forms[fi].score),
                    skeleton: self.forms[fi].skeleton_key(),
                });
            }
        }
        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.form_index.cmp(&b.form_index))
        });
        out.truncate(k);
        out
    }

    /// Two-level grouping of a ranked list: skeleton → class → members.
    pub fn group(
        &self,
        ranked: &[RankedForm],
        class_of: impl Fn(&Form) -> QueryClass,
    ) -> Vec<(GroupKey, Vec<usize>)> {
        let mut groups: HashMap<(Vec<TableId>, QueryClass), Vec<usize>> = HashMap::new();
        for r in ranked {
            let class = class_of(&self.forms[r.form_index]);
            groups
                .entry((r.skeleton.clone(), class))
                .or_default()
                .push(r.form_index);
        }
        let mut out: Vec<_> = groups.into_iter().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{FormGenConfig, FormGenerator};
    use kwdb_relational::database::dblp_schema;
    use kwdb_relational::Database;

    fn setup() -> (Database, FormIndex) {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "John Smith".into()])
            .unwrap();
        db.insert(
            "paper",
            vec![1.into(), "XML keyword search".into(), 1.into()],
        )
        .unwrap();
        db.insert("write", vec![1.into(), 1.into(), 1.into()])
            .unwrap();
        db.build_text_index();
        let forms = FormGenerator::new(&db, FormGenConfig::default()).generate();
        let ix = FormIndex::build(&db, forms);
        (db, ix)
    }

    #[test]
    fn variants_substitute_schema_terms() {
        let (db, ix) = setup();
        let vs = ix.query_variants(&db, &["john", "xml"]);
        // original + john→author, xml→paper, both
        assert!(vs.contains(&vec!["john".to_string(), "xml".to_string()]));
        assert!(vs.contains(&vec!["author".to_string(), "xml".to_string()]));
        assert!(vs.contains(&vec!["john".to_string(), "paper".to_string()]));
        assert!(vs.contains(&vec!["author".to_string(), "paper".to_string()]));
    }

    #[test]
    fn john_xml_selects_author_paper_forms_first() {
        let (db, ix) = setup();
        let ranked = ix.select(&db, &["john", "xml"], 5);
        assert!(!ranked.is_empty());
        let a = db.table_id("author").unwrap();
        let p = db.table_id("paper").unwrap();
        let top = &ix.forms()[ranked[0].form_index];
        assert!(
            top.tables.contains(&a) && top.tables.contains(&p),
            "top form should join author and paper: {:?}",
            top.tables
        );
    }

    #[test]
    fn schema_term_queries_match_directly() {
        let (db, ix) = setup();
        let ranked = ix.select(&db, &["conference", "year"], 5);
        assert!(!ranked.is_empty());
        let c = db.table_id("conference").unwrap();
        assert!(ix.forms()[ranked[0].form_index].tables.contains(&c));
    }

    #[test]
    fn grouping_is_by_skeleton_and_class() {
        let (db, ix) = setup();
        let ranked = ix.select(&db, &["john", "xml"], 20);
        let groups = ix.group(&ranked, |f| {
            if f.tables.len() > 2 {
                QueryClass::Aggregate
            } else {
                QueryClass::Select
            }
        });
        let total: usize = groups.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, ranked.len());
        // all members of a group share the skeleton
        for ((skel, _), members) in &groups {
            for &m in members {
                assert_eq!(&ix.forms()[m].skeleton_key(), skel);
            }
        }
    }

    #[test]
    fn nonsense_query_selects_nothing() {
        let (db, ix) = setup();
        assert!(ix.select(&db, &["zzzqqq"], 5).is_empty());
    }
}
