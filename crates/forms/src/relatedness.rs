//! Related entity types via generalized participation ratios
//! (Jayapandian & Jagadish, VLDB 08) — tutorial slide 40.
//!
//! `P(E₁ → E₂)` is the fraction of `E₁` instances connected (through the FK
//! path between the two tables) to at least one `E₂` instance; the
//! relatedness of the pair is the average of both directions. Longer chains
//! compose approximately: `P(A → P → E) ≈ P(A → P) · P(P → E)` — slide 40
//! shows the approximation is *not* exact, which
//! `tests::composition_is_approximate` reproduces.

use kwdb_relational::{Database, RowId, TableId};
use std::collections::HashSet;

/// Instances of `from` connected to ≥1 instance of `to` along `path`
/// (a table sequence; consecutive tables must share a schema edge).
fn connected_rows(db: &Database, path: &[TableId]) -> HashSet<RowId> {
    assert!(path.len() >= 2, "path needs at least two tables");
    // walk from the far end backwards, semi-joining row sets
    let mut alive: HashSet<RowId> = db
        .table(*path.last().unwrap())
        .iter()
        .map(|(r, _)| r)
        .collect();
    for w in path.windows(2).rev() {
        let (near, far) = (w[0], w[1]);
        let edge = db
            .schema_graph()
            .edges()
            .iter()
            .find(|e| (e.from == near && e.to == far) || (e.from == far && e.to == near))
            .unwrap_or_else(|| panic!("no FK between {near:?} and {far:?}"));
        let (near_col, far_col) = if edge.from == near {
            (edge.fk_column, edge.pk_column)
        } else {
            (edge.pk_column, edge.fk_column)
        };
        let far_table = db.table(far);
        let keys: HashSet<&kwdb_common::Value> = alive
            .iter()
            .map(|&r| far_table.get(r, far_col))
            .filter(|v| !v.is_null())
            .collect();
        let near_table = db.table(near);
        alive = near_table
            .iter()
            .filter(|&(_, row)| {
                let v = &row[near_col];
                !v.is_null() && keys.contains(v)
            })
            .map(|(r, _)| r)
            .collect();
    }
    alive
}

/// `P(path[0] → path[last])`: participation ratio along a table path.
pub fn participation(db: &Database, path: &[TableId]) -> f64 {
    let total = db.table(path[0]).len();
    if total == 0 {
        return 0.0;
    }
    connected_rows(db, path).len() as f64 / total as f64
}

/// Slide 40's symmetric relatedness of two entity types along a path:
/// `[P(E₁→E₂) + P(E₂→E₁)] / 2`.
pub fn relatedness(db: &Database, path: &[TableId]) -> f64 {
    let mut rev: Vec<TableId> = path.to_vec();
    rev.reverse();
    (participation(db, path) + participation(db, &rev)) / 2.0
}

/// The product approximation for a 3-hop chain:
/// `P(A → B → C) ≈ P(A → B) · P(B → C)`.
pub fn composed_estimate(db: &Database, path: &[TableId]) -> f64 {
    path.windows(2).map(|w| participation(db, w)).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::{ColumnType, TableBuilder};

    /// Slide 40's instance: 6 authors (5 connected to papers), papers all
    /// authored, editors fully connected to papers, half the papers edited.
    fn db() -> (Database, TableId, TableId, TableId) {
        let mut db = Database::new();
        let p = db
            .create_table(
                TableBuilder::new("paper")
                    .column("pid", ColumnType::Int)
                    .column("title", ColumnType::Text)
                    .primary_key("pid"),
            )
            .unwrap();
        let a = db
            .create_table(
                TableBuilder::new("author")
                    .column("aid", ColumnType::Int)
                    .column("name", ColumnType::Text)
                    .column("pid", ColumnType::Int)
                    .primary_key("aid")
                    .foreign_key("pid", "paper"),
            )
            .unwrap();
        let e = db
            .create_table(
                TableBuilder::new("editor")
                    .column("eid", ColumnType::Int)
                    .column("name", ColumnType::Text)
                    .column("pid", ColumnType::Int)
                    .primary_key("eid")
                    .foreign_key("pid", "paper"),
            )
            .unwrap();
        // 4 papers, every paper has an author (P(P→A)=1)
        for pid in 1..=4 {
            db.insert("paper", vec![pid.into(), format!("paper {pid}").into()])
                .unwrap();
        }
        // 6 authors: 5 wrote papers (P(A→P)=5/6), one did not
        for (aid, pid) in [
            (1, Some(1)),
            (2, Some(2)),
            (3, Some(2)),
            (4, Some(3)),
            (5, Some(4)),
        ] {
            db.insert(
                "author",
                vec![
                    aid.into(),
                    format!("author {aid}").into(),
                    pid.map(kwdb_common::Value::from)
                        .unwrap_or(kwdb_common::Value::Null),
                ],
            )
            .unwrap();
        }
        db.insert(
            "author",
            vec![6.into(), "author 6".into(), kwdb_common::Value::Null],
        )
        .unwrap();
        // 2 editors, each editing a paper (P(E→P)=1); papers edited: 2 of 4
        db.insert("editor", vec![1.into(), "ed 1".into(), 1.into()])
            .unwrap();
        db.insert("editor", vec![2.into(), "ed 2".into(), 2.into()])
            .unwrap();
        db.build_text_index();
        (db, a, p, e)
    }

    #[test]
    fn slide40_participation_ratios() {
        let (db, a, p, e) = db();
        assert!((participation(&db, &[a, p]) - 5.0 / 6.0).abs() < 1e-12);
        assert!((participation(&db, &[p, a]) - 1.0).abs() < 1e-12);
        assert!((participation(&db, &[e, p]) - 1.0).abs() < 1e-12);
        assert!((participation(&db, &[p, e]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relatedness_is_symmetric_average() {
        let (db, a, p, _) = db();
        let r = relatedness(&db, &[a, p]);
        assert!((r - (5.0 / 6.0 + 1.0) / 2.0).abs() < 1e-12);
        assert!((r - relatedness(&db, &[p, a])).abs() < 1e-12);
    }

    #[test]
    fn composition_is_approximate() {
        // Slide 40: P(A→P→E) ≈ P(A→P)·P(P→E), but the true 3-hop ratio
        // differs (4/6 ≠ 5/6 · 1/2).
        let (db, a, p, e) = db();
        let exact = participation(&db, &[a, p, e]);
        let approx = composed_estimate(&db, &[a, p, e]);
        // authors connected to an edited paper: authors of papers 1, 2 →
        // authors 1, 2, 3 → 3/6
        assert!((exact - 3.0 / 6.0).abs() < 1e-12);
        assert!((approx - 5.0 / 6.0 * 0.5).abs() < 1e-12);
        assert!(
            (exact - approx).abs() > 1e-6,
            "slide 40: composition is approximate"
        );
    }

    #[test]
    fn empty_table_participation_zero() {
        let mut db = Database::new();
        db.create_table(
            TableBuilder::new("x")
                .column("id", ColumnType::Int)
                .primary_key("id"),
        )
        .unwrap();
        db.create_table(
            TableBuilder::new("y")
                .column("id", ColumnType::Int)
                .column("xid", ColumnType::Int)
                .primary_key("id")
                .foreign_key("xid", "x"),
        )
        .unwrap();
        let x = db.table_id("x").unwrap();
        let y = db.table_id("y").unwrap();
        assert_eq!(participation(&db, &[y, x]), 0.0);
    }
}
