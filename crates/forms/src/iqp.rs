//! Interpreting keyword queries as structured queries: SUITS and IQP
//! (Zhou et al. 07; Demidova, Zhou & Nejdl, TKDE 11) — tutorial
//! slides 44–46.
//!
//! A *structured interpretation* of `Q = {k₁,…,k_l}` is a query template
//! (a join skeleton with predicate attributes) plus a **binding** of each
//! keyword to one attribute. Two scoring regimes:
//!
//! * **IQP** — probabilistic: `Pr[A, T | Q] ∝ Π_i Pr[Aᵢ | T] · Pr[T]`,
//!   with the template prior `Pr[T]` estimated from a query log and the
//!   binding probability from where the keyword actually occurs in the
//!   data (slide 46's "what if no query log?" is answered by the data
//!   estimate with an add-one prior);
//! * **SUITS** — heuristic (slide 45): favor interpretations with few
//!   expected results, high coverage of the bound attribute's value, and
//!   most keywords matched.

use crate::generate::Form;
use kwdb_relational::{Database, TableId};
use std::collections::HashMap;

/// One keyword bound to a predicate attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    pub keyword: String,
    pub table: TableId,
    pub column: usize,
    /// Rows of `table` whose column value contains the keyword.
    pub matches: usize,
    /// Average fraction of the matched value's tokens the keyword covers.
    pub coverage: f64,
}

/// A fully-bound structured interpretation.
#[derive(Debug, Clone)]
pub struct Interpretation {
    /// Index into the interpreter's templates.
    pub template: usize,
    pub bindings: Vec<Binding>,
    pub score: f64,
}

impl Interpretation {
    /// Render like `author.name='widom' ∧ paper.title='xml' [author⋈write⋈paper]`.
    pub fn display(&self, db: &Database, templates: &[Form]) -> String {
        let preds: Vec<String> = self
            .bindings
            .iter()
            .map(|b| {
                format!(
                    "{}.{}~'{}'",
                    db.table(b.table).schema.name,
                    db.table(b.table).schema.columns[b.column].name,
                    b.keyword
                )
            })
            .collect();
        let tables: Vec<&str> = templates[self.template]
            .tables
            .iter()
            .map(|&t| db.table(t).schema.name.as_str())
            .collect();
        format!("{} [{}]", preds.join(" ∧ "), tables.join("⋈"))
    }
}

/// The interpreter: templates plus log-derived priors.
pub struct Interpreter<'a> {
    db: &'a Database,
    templates: Vec<Form>,
    /// `Pr[T]`: smoothed template popularity from the log.
    template_prior: Vec<f64>,
    /// attribute → smoothed log usage count.
    attr_usage: HashMap<(TableId, usize), f64>,
}

impl<'a> Interpreter<'a> {
    /// Build from templates and a log of past structured queries, each
    /// recorded as `(template index, attributes used)`.
    pub fn new(
        db: &'a Database,
        templates: Vec<Form>,
        log: &[(usize, Vec<(TableId, usize)>)],
    ) -> Self {
        let mut counts = vec![1.0f64; templates.len()]; // add-one smoothing
        let mut attr_usage: HashMap<(TableId, usize), f64> = HashMap::new();
        for (t, attrs) in log {
            if *t < templates.len() {
                counts[*t] += 1.0;
            }
            for &a in attrs {
                *attr_usage.entry(a).or_insert(0.0) += 1.0;
            }
        }
        let total: f64 = counts.iter().sum();
        Interpreter {
            db,
            template_prior: counts.into_iter().map(|c| c / total).collect(),
            templates,
            attr_usage,
        }
    }

    pub fn templates(&self) -> &[Form] {
        &self.templates
    }

    /// Candidate bindings of one keyword: every predicate attribute of any
    /// template whose values contain it.
    pub fn candidate_bindings(&self, keyword: &str) -> Vec<Binding> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for form in &self.templates {
            for &(t, c) in &form.predicates {
                if !seen.insert((t, c)) {
                    continue;
                }
                let table = self.db.table(t);
                let mut matches = 0usize;
                let mut coverage = 0.0;
                for (_, row) in table.iter() {
                    if let Some(text) = row[c].as_text() {
                        let toks = kwdb_common::text::tokenize(text);
                        if toks.iter().any(|x| x == keyword) {
                            matches += 1;
                            coverage += 1.0 / toks.len().max(1) as f64;
                        }
                    }
                }
                if matches > 0 {
                    out.push(Binding {
                        keyword: keyword.to_string(),
                        table: t,
                        column: c,
                        matches,
                        coverage: coverage / matches as f64,
                    });
                }
            }
        }
        out
    }

    /// `Pr[A | T]`-style binding weight: the data likelihood (fraction of
    /// the keyword's occurrences that live in this attribute) blended with
    /// the attribute's log usage.
    fn binding_weight(&self, b: &Binding, total_matches: usize) -> f64 {
        let data = b.matches as f64 / total_matches.max(1) as f64;
        let log = self
            .attr_usage
            .get(&(b.table, b.column))
            .copied()
            .unwrap_or(0.0);
        data * (1.0 + log)
    }

    /// IQP interpretation: enumerate per-template bindings, score with
    /// `Π Pr[Aᵢ|T] · Pr[T]`, return the top-k.
    pub fn interpret<S: AsRef<str>>(&self, keywords: &[S], k: usize) -> Vec<Interpretation> {
        let per_kw: Vec<Vec<Binding>> = keywords
            .iter()
            .map(|kw| self.candidate_bindings(kw.as_ref()))
            .collect();
        if per_kw.iter().any(|c| c.is_empty()) {
            return Vec::new();
        }
        let totals: Vec<usize> = per_kw
            .iter()
            .map(|cands| cands.iter().map(|b| b.matches).sum())
            .collect();
        let mut out: Vec<Interpretation> = Vec::new();
        for (ti, form) in self.templates.iter().enumerate() {
            // bindings usable under this template: attribute must belong to
            // one of the template's tables
            let usable: Vec<Vec<&Binding>> = per_kw
                .iter()
                .map(|cands| {
                    cands
                        .iter()
                        .filter(|b| form.tables.contains(&b.table))
                        .collect::<Vec<_>>()
                })
                .collect();
            if usable.iter().any(|u| u.is_empty()) {
                continue;
            }
            // enumerate the (small) cartesian product
            let mut idx = vec![0usize; usable.len()];
            loop {
                let bindings: Vec<Binding> = idx
                    .iter()
                    .zip(&usable)
                    .map(|(&i, u)| u[i].clone())
                    .collect();
                let mut score = self.template_prior[ti];
                for (b, &total) in bindings.iter().zip(&totals) {
                    score *= self.binding_weight(b, total);
                }
                out.push(Interpretation {
                    template: ti,
                    bindings,
                    score,
                });
                let mut pos = 0;
                loop {
                    if pos == idx.len() {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] < usable[pos].len() {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if pos == idx.len() {
                    break;
                }
            }
        }
        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.template.cmp(&b.template))
        });
        out.truncate(k);
        out
    }

    /// SUITS heuristic score (slide 45) for a bound interpretation:
    /// small expected results + high value coverage + all keywords matched.
    pub fn suits_score(&self, interp: &Interpretation) -> f64 {
        let expected: f64 = interp.bindings.iter().map(|b| b.matches as f64).product();
        let coverage: f64 = interp.bindings.iter().map(|b| b.coverage).sum::<f64>()
            / interp.bindings.len().max(1) as f64;
        let matched = 1.0; // interpretations bind every keyword by construction
        (1.0 / (1.0 + expected.ln_1p())) + coverage + matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{FormGenConfig, FormGenerator};
    use kwdb_relational::database::dblp_schema;

    fn setup() -> (Database, Vec<Form>) {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "XML Fan".into()])
            .unwrap();
        db.insert(
            "paper",
            vec![1.into(), "XML keyword search".into(), 1.into()],
        )
        .unwrap();
        db.insert("paper", vec![2.into(), "XML views".into(), 1.into()])
            .unwrap();
        db.insert("write", vec![1.into(), 1.into(), 1.into()])
            .unwrap();
        db.build_text_index();
        let forms = FormGenerator::new(&db, FormGenConfig::default()).generate();
        (db, forms)
    }

    #[test]
    fn bindings_found_where_keyword_occurs() {
        let (db, forms) = setup();
        let interp = Interpreter::new(&db, forms, &[]);
        let widom = interp.candidate_bindings("widom");
        assert_eq!(widom.len(), 1);
        assert_eq!(widom[0].table, db.table_id("author").unwrap());
        // "xml" occurs in author names AND paper titles → two candidates
        let xml = interp.candidate_bindings("xml");
        assert_eq!(xml.len(), 2);
        assert!(interp.candidate_bindings("zzz").is_empty());
    }

    #[test]
    fn data_likelihood_prefers_the_dominant_attribute() {
        // "xml" appears in 2 paper titles but only 1 author name → the
        // paper.title binding should outrank author.name without any log.
        let (db, forms) = setup();
        let interp = Interpreter::new(&db, forms, &[]);
        let top = interp.interpret(&["widom", "xml"], 1);
        assert!(!top.is_empty());
        let xml_binding = &top[0].bindings[1];
        assert_eq!(xml_binding.table, db.table_id("paper").unwrap());
    }

    #[test]
    fn query_log_shifts_the_interpretation() {
        let (db, forms) = setup();
        let author = db.table_id("author").unwrap();
        let name_col = 1;
        // a log heavily using author.name (on an author-containing template)
        // pulls "xml" toward the author despite the weaker data likelihood
        let author_template = forms
            .iter()
            .position(|f| f.tables.contains(&author))
            .expect("some template joins the author table");
        let log: Vec<(usize, Vec<(TableId, usize)>)> = (0..50)
            .map(|_| (author_template, vec![(author, name_col)]))
            .collect();
        let interp = Interpreter::new(&db, forms, &log);
        let top = interp.interpret(&["xml"], 1);
        assert_eq!(top[0].bindings[0].table, author, "log prior should win");
    }

    #[test]
    fn suits_prefers_selective_covering_bindings() {
        let (db, forms) = setup();
        let interp = Interpreter::new(&db, forms, &[]);
        let all = interp.interpret(&["widom"], 10);
        assert!(!all.is_empty());
        let scores: Vec<f64> = all.iter().map(|i| interp.suits_score(i)).collect();
        assert!(scores.iter().all(|s| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn unmatched_keyword_has_no_interpretation() {
        let (db, forms) = setup();
        let interp = Interpreter::new(&db, forms, &[]);
        assert!(interp.interpret(&["widom", "zzz"], 5).is_empty());
    }

    #[test]
    fn display_renders_bindings_and_template() {
        let (db, forms) = setup();
        let interp = Interpreter::new(&db, forms.clone(), &[]);
        let top = interp.interpret(&["widom"], 1);
        let s = top[0].display(&db, interp.templates());
        assert!(s.contains("author.name~'widom'"), "{s}");
    }
}
