//! Précis: fine-grained return expansion with weighted schema paths
//! (Koutrika, Simitsis & Ioannidis, ICDE 06) — tutorial slide 52.
//!
//! When a result's anchor table is chosen, which related attributes join
//! the answer? Précis walks the *weighted* schema graph from the anchor and
//! keeps an attribute iff
//!
//! * the product of edge weights on its path ≥ a minimum-weight threshold,
//!   and
//! * the total kept attributes stay within a maximum count,
//!
//! both user/admin-specified. Slide 52's example: with threshold 0.4,
//! `person → review → conference → sponsor` at `0.8·0.9·0.5 = 0.36` prunes
//! `sponsor`.

use std::collections::{BinaryHeap, HashMap};

/// A weighted schema graph for Précis (node = table/attribute name; weights
/// in `(0, 1]` express relationship importance).
#[derive(Debug, Clone, Default)]
pub struct WeightedSchema {
    adj: HashMap<String, Vec<(String, f64)>>,
}

impl WeightedSchema {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an undirected weighted edge.
    pub fn add_edge(&mut self, a: &str, b: &str, w: f64) {
        assert!(w > 0.0 && w <= 1.0, "Précis weights lie in (0, 1]");
        self.adj
            .entry(a.to_string())
            .or_default()
            .push((b.to_string(), w));
        self.adj
            .entry(b.to_string())
            .or_default()
            .push((a.to_string(), w));
    }

    /// Best (maximum-product) path weight from `anchor` to every node —
    /// a Dijkstra in the log domain.
    pub fn path_weights(&self, anchor: &str) -> HashMap<String, f64> {
        let mut best: HashMap<String, f64> = HashMap::new();
        let mut heap: BinaryHeap<(kwdb_common::Score, String)> = BinaryHeap::new();
        best.insert(anchor.to_string(), 1.0);
        heap.push((kwdb_common::Score(1.0), anchor.to_string()));
        while let Some((kwdb_common::Score(w), node)) = heap.pop() {
            if best.get(&node).is_some_and(|&b| w < b) {
                continue;
            }
            for (nbr, ew) in self.adj.get(&node).into_iter().flatten() {
                let nw = w * ew;
                if best.get(nbr).is_none_or(|&b| nw > b) {
                    best.insert(nbr.clone(), nw);
                    heap.push((kwdb_common::Score(nw), nbr.clone()));
                }
            }
        }
        best
    }

    /// The Précis expansion: nodes whose best path weight ≥ `min_weight`,
    /// strongest first, at most `max_nodes` (anchor excluded from the count).
    pub fn expand(&self, anchor: &str, min_weight: f64, max_nodes: usize) -> Vec<(String, f64)> {
        let weights = self.path_weights(anchor);
        let mut out: Vec<(String, f64)> = weights
            .into_iter()
            .filter(|(n, w)| n != anchor && *w >= min_weight)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(max_nodes);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The slide-52 schema: person —1.0— name; person —0.8— review —0.9—
    /// conference —0.5— sponsor; conference —1.0— year, pname.
    fn schema() -> WeightedSchema {
        let mut s = WeightedSchema::new();
        s.add_edge("person", "name", 1.0);
        s.add_edge("person", "review", 0.8);
        s.add_edge("review", "conference", 0.9);
        s.add_edge("conference", "sponsor", 0.5);
        s.add_edge("conference", "year", 1.0);
        s.add_edge("conference", "pname", 1.0);
        s
    }

    #[test]
    fn slide52_sponsor_pruned_at_threshold_04() {
        let s = schema();
        let w = s.path_weights("person");
        assert!((w["sponsor"] - 0.36).abs() < 1e-12, "0.8·0.9·0.5 = 0.36");
        let kept = s.expand("person", 0.4, 10);
        assert!(kept.iter().all(|(n, _)| n != "sponsor"));
        assert!(kept.iter().any(|(n, _)| n == "conference")); // 0.72 ≥ 0.4
        assert!(kept.iter().any(|(n, _)| n == "year")); // 0.72·1.0
    }

    #[test]
    fn lower_threshold_admits_sponsor() {
        let s = schema();
        let kept = s.expand("person", 0.3, 10);
        assert!(kept.iter().any(|(n, _)| n == "sponsor"));
    }

    #[test]
    fn max_nodes_caps_expansion() {
        let s = schema();
        let kept = s.expand("person", 0.0, 2);
        assert_eq!(kept.len(), 2);
        // strongest first: name (1.0) then review (0.8)
        assert_eq!(kept[0].0, "name");
        assert_eq!(kept[1].0, "review");
    }

    #[test]
    fn best_path_is_max_product() {
        let mut s = WeightedSchema::new();
        s.add_edge("a", "b", 0.5);
        s.add_edge("b", "c", 0.5);
        s.add_edge("a", "c", 0.3);
        let w = s.path_weights("a");
        // direct 0.3 beats 0.25 via b
        assert!((w["c"] - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn invalid_weight_rejected() {
        let mut s = WeightedSchema::new();
        s.add_edge("a", "b", 1.5);
    }
}
