//! Offline form generation (Chu et al., SIGMOD 09, offline phase;
//! Jayapandian & Jagadish, PVLDB 08) — tutorial slides 55–56, 59–63.
//!
//! 1. enumerate *skeleton templates*: connected subtrees of the schema
//!    graph up to a size bound (the joins of the eventual SQL);
//! 2. rank skeletons by the queriability of their tables;
//! 3. fill each skeleton with predicate attributes (selection-queriable)
//!    and output attributes (projection-queriable).

use crate::queriability::{entity_queriability, operator_queriability, Operator};
use kwdb_relational::{Database, TableId};
use std::collections::BTreeSet;

/// A query form: an incomplete SQL query over a join skeleton.
#[derive(Debug, Clone, PartialEq)]
pub struct Form {
    /// Joined tables (the skeleton), sorted.
    pub tables: Vec<TableId>,
    /// `(table, column)` pairs the user fills with `op expr`.
    pub predicates: Vec<(TableId, usize)>,
    /// `(table, column)` pairs projected in the output.
    pub outputs: Vec<(TableId, usize)>,
    /// Combined queriability score.
    pub score: f64,
}

impl Form {
    /// The skeleton identity (for grouping): the sorted table multiset.
    pub fn skeleton_key(&self) -> Vec<TableId> {
        self.tables.clone()
    }

    /// Render as an incomplete SQL string.
    pub fn display(&self, db: &Database) -> String {
        let tables: Vec<&str> = self
            .tables
            .iter()
            .map(|&t| db.table(t).schema.name.as_str())
            .collect();
        let preds: Vec<String> = self
            .predicates
            .iter()
            .map(|&(t, c)| {
                format!(
                    "{}.{} op expr",
                    db.table(t).schema.name,
                    db.table(t).schema.columns[c].name
                )
            })
            .collect();
        let outs: Vec<String> = self
            .outputs
            .iter()
            .map(|&(t, c)| {
                format!(
                    "{}.{}",
                    db.table(t).schema.name,
                    db.table(t).schema.columns[c].name
                )
            })
            .collect();
        format!(
            "SELECT {} FROM {} WHERE {}",
            if outs.is_empty() {
                "*".to_string()
            } else {
                outs.join(", ")
            },
            tables.join(", "),
            preds.join(" AND ")
        )
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct FormGenConfig {
    /// Maximum tables per skeleton.
    pub max_tables: usize,
    /// Maximum predicate attributes per form.
    pub max_predicates: usize,
    /// Maximum output attributes per form.
    pub max_outputs: usize,
    /// Number of forms to keep.
    pub max_forms: usize,
}

impl Default for FormGenConfig {
    fn default() -> Self {
        FormGenConfig {
            max_tables: 3,
            max_predicates: 2,
            max_outputs: 3,
            max_forms: 50,
        }
    }
}

/// The offline form generator.
#[derive(Debug)]
pub struct FormGenerator<'a> {
    db: &'a Database,
    cfg: FormGenConfig,
}

impl<'a> FormGenerator<'a> {
    pub fn new(db: &'a Database, cfg: FormGenConfig) -> Self {
        FormGenerator { db, cfg }
    }

    /// Generate ranked forms.
    pub fn generate(&self) -> Vec<Form> {
        let eq = entity_queriability(self.db);
        // skeletons: connected table sets up to max_tables, via BFS growth
        let mut skeletons: BTreeSet<Vec<TableId>> = BTreeSet::new();
        for t in self.db.tables() {
            grow(self.db, vec![t.id], &mut skeletons, self.cfg.max_tables);
        }
        let mut forms: Vec<Form> = skeletons
            .into_iter()
            .map(|tables| self.fill(tables, &eq))
            .collect();
        forms.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.tables.cmp(&b.tables)));
        forms.truncate(self.cfg.max_forms);
        forms
    }

    /// Pick predicate and output attributes for a skeleton.
    fn fill(&self, tables: Vec<TableId>, eq: &std::collections::HashMap<TableId, f64>) -> Form {
        let mut preds: Vec<(f64, TableId, usize)> = Vec::new();
        let mut outs: Vec<(f64, TableId, usize)> = Vec::new();
        for &t in &tables {
            let schema = &self.db.table(t).schema;
            for c in 0..schema.arity() {
                // skip key columns for predicates/outputs: users type values,
                // not surrogate ids
                if Some(c) == schema.primary_key
                    || schema.foreign_keys.iter().any(|fk| fk.column == c)
                {
                    continue;
                }
                let s = operator_queriability(self.db, t, c, Operator::Selection);
                if s > 0.0 {
                    preds.push((s, t, c));
                }
                let p = operator_queriability(self.db, t, c, Operator::Projection);
                if p > 0.0 {
                    outs.push((p, t, c));
                }
            }
        }
        preds.sort_by(|a, b| b.0.total_cmp(&a.0).then((a.1, a.2).cmp(&(b.1, b.2))));
        outs.sort_by(|a, b| b.0.total_cmp(&a.0).then((a.1, a.2).cmp(&(b.1, b.2))));
        let entity_score: f64 = tables
            .iter()
            .map(|t| eq.get(t).copied().unwrap_or(0.0))
            .sum();
        let attr_score: f64 = preds
            .iter()
            .take(self.cfg.max_predicates)
            .map(|p| p.0)
            .sum();
        Form {
            score: entity_score * (1.0 + attr_score) / tables.len() as f64,
            predicates: preds
                .into_iter()
                .take(self.cfg.max_predicates)
                .map(|(_, t, c)| (t, c))
                .collect(),
            outputs: outs
                .into_iter()
                .take(self.cfg.max_outputs)
                .map(|(_, t, c)| (t, c))
                .collect(),
            tables,
        }
    }
}

/// Grow connected table sets (skeletons are sets: join paths are implied by
/// the schema graph).
fn grow(db: &Database, current: Vec<TableId>, out: &mut BTreeSet<Vec<TableId>>, max: usize) {
    let mut key = current.clone();
    key.sort();
    if !out.insert(key) {
        return;
    }
    if current.len() >= max {
        return;
    }
    for &t in &current {
        for (_, nbr) in db.schema_graph().neighbors(t) {
            if !current.contains(&nbr) {
                let mut next = current.clone();
                next.push(nbr);
                grow(db, next, out, max);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::database::dblp_schema;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        for aid in 1..=3 {
            db.insert("author", vec![aid.into(), format!("author {aid}").into()])
                .unwrap();
        }
        for pid in 1..=4 {
            db.insert(
                "paper",
                vec![
                    pid.into(),
                    format!("interesting paper about topic {pid}").into(),
                    1.into(),
                ],
            )
            .unwrap();
        }
        db.insert("write", vec![1.into(), 1.into(), 1.into()])
            .unwrap();
        db.insert("write", vec![2.into(), 2.into(), 2.into()])
            .unwrap();
        db.build_text_index();
        db
    }

    #[test]
    fn generates_connected_ranked_forms() {
        let db = db();
        let generator = FormGenerator::new(&db, FormGenConfig::default());
        let forms = generator.generate();
        assert!(!forms.is_empty());
        assert!(forms.windows(2).all(|w| w[0].score >= w[1].score));
        // the author–write–paper skeleton must be present
        let a = db.table_id("author").unwrap();
        let w = db.table_id("write").unwrap();
        let p = db.table_id("paper").unwrap();
        let mut key = vec![a, w, p];
        key.sort();
        assert!(forms.iter().any(|f| f.skeleton_key() == key));
    }

    #[test]
    fn predicates_exclude_key_columns() {
        let db = db();
        let generator = FormGenerator::new(&db, FormGenConfig::default());
        for f in generator.generate() {
            for &(t, c) in f.predicates.iter().chain(&f.outputs) {
                let schema = &db.table(t).schema;
                assert_ne!(Some(c), schema.primary_key);
                assert!(!schema.foreign_keys.iter().any(|fk| fk.column == c));
            }
        }
    }

    #[test]
    fn display_renders_incomplete_sql() {
        let db = db();
        let generator = FormGenerator::new(
            &db,
            FormGenConfig {
                max_tables: 1,
                ..Default::default()
            },
        );
        let forms = generator.generate();
        let author_form = forms
            .iter()
            .find(|f| f.tables.len() == 1 && db.table(f.tables[0]).schema.name == "author")
            .expect("single-table author form");
        let sql = author_form.display(&db);
        assert!(sql.contains("FROM author"));
        assert!(sql.contains("author.name op expr"));
    }

    #[test]
    fn max_tables_bounds_skeletons() {
        let db = db();
        let generator = FormGenerator::new(
            &db,
            FormGenConfig {
                max_tables: 2,
                max_forms: 1000,
                ..Default::default()
            },
        );
        assert!(generator.generate().iter().all(|f| f.tables.len() <= 2));
    }
}
