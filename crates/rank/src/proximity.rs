//! Proximity-based ranking factors (tutorial slides 145, 158–160).
//!
//! Structured results are trees or subgraphs; the tutorial lists the standard
//! proximity adaptations: total (weighted) tree size, sum of root-to-match
//! path lengths, and XBridge's refinements — discounting path segments longer
//! than the average document depth and rewarding tightly coupled results by
//! discounting shared path prefixes.

/// Score from total result size: smaller results score higher.
/// `1 / (1 + size)` maps size 0 → 1.0 and decays smoothly.
pub fn size_score(total_edge_weight: f64) -> f64 {
    1.0 / (1.0 + total_edge_weight.max(0.0))
}

/// Score from root-to-match distances: the reciprocal of the summed path
/// lengths (BANKS-style tree cost as a relevance score).
pub fn root_distance_score(dists: &[usize]) -> f64 {
    let total: usize = dists.iter().sum();
    1.0 / (1.0 + total as f64)
}

/// XBridge path-length discount: lengths beyond `avg_depth` contribute only
/// `sqrt`-damped extra cost, avoiding over-penalizing deep documents
/// (slide 159).
pub fn discounted_path_len(len: usize, avg_depth: f64) -> f64 {
    let len = len as f64;
    if len <= avg_depth {
        len
    } else {
        avg_depth + (len - avg_depth).sqrt()
    }
}

/// Tight-coupling proximity (slide 160): given per-keyword root-to-match
/// paths as node-id sequences (root first), charge shared prefix segments
/// only once. Returns the discounted total distance.
pub fn shared_prefix_cost(paths: &[Vec<u64>], avg_depth: f64) -> f64 {
    if paths.is_empty() {
        return 0.0;
    }
    // Count each distinct edge (parent,child along a root path) once: union
    // of edges over the paths. Edges are identified by consecutive id pairs.
    let mut edges = std::collections::HashSet::new();
    let mut per_path_extra = 0.0;
    for p in paths {
        let mut fresh = 0usize;
        for w in p.windows(2) {
            if edges.insert((w[0], w[1])) {
                fresh += 1;
            }
        }
        // Apply the long-path discount per path on its fresh portion.
        per_path_extra += discounted_path_len(fresh, avg_depth);
    }
    per_path_extra
}

/// Combined proximity score used as a default by the XML engines: reciprocal
/// of the shared-prefix discounted cost.
pub fn proximity_score(paths: &[Vec<u64>], avg_depth: f64) -> f64 {
    1.0 / (1.0 + shared_prefix_cost(paths, avg_depth))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_results_score_higher() {
        assert!(size_score(2.0) > size_score(5.0));
        assert_eq!(size_score(0.0), 1.0);
    }

    #[test]
    fn root_distance_reciprocal() {
        assert!(root_distance_score(&[1, 1]) > root_distance_score(&[3, 4]));
        assert_eq!(root_distance_score(&[]), 1.0);
    }

    #[test]
    fn long_paths_are_discounted() {
        // Below the average depth, no discount.
        assert_eq!(discounted_path_len(3, 5.0), 3.0);
        // Beyond it, sub-linear growth.
        let d9 = discounted_path_len(9, 5.0);
        assert!(d9 < 9.0 && d9 > 5.0);
        assert_eq!(d9, 7.0); // 5 + sqrt(4)
    }

    #[test]
    fn tightly_coupled_beats_loose() {
        // Root 0. Tight: both keywords under child 1. Loose: separate children.
        let tight = vec![vec![0, 1, 2], vec![0, 1, 3]];
        let loose = vec![vec![0, 1, 2], vec![0, 4, 5]];
        let avg = 10.0;
        assert!(proximity_score(&tight, avg) > proximity_score(&loose, avg));
    }

    #[test]
    fn shared_prefix_counted_once() {
        let paths = vec![vec![0, 1, 2], vec![0, 1, 3]];
        // Edges: (0,1),(1,2) fresh for path 1 → 2; (1,3) fresh for path 2 → 1.
        assert_eq!(shared_prefix_cost(&paths, 100.0), 3.0);
    }

    #[test]
    fn empty_paths() {
        assert_eq!(shared_prefix_cost(&[], 3.0), 0.0);
        assert_eq!(proximity_score(&[], 3.0), 1.0);
    }
}
