//! Sparse vectors and cosine similarity — the vector space model.

use std::collections::HashMap;

/// A sparse term-weight vector keyed by term string.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    weights: HashMap<String, f64>,
}

impl SparseVector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a vector from `(term, weight)` pairs; repeated terms accumulate.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        let mut v = Self::new();
        for (t, w) in pairs {
            v.add(t.into(), w);
        }
        v
    }

    /// Add `w` to the weight of `term`.
    pub fn add(&mut self, term: String, w: f64) {
        *self.weights.entry(term).or_insert(0.0) += w;
    }

    pub fn get(&self, term: &str) -> f64 {
        self.weights.get(term).copied().unwrap_or(0.0)
    }

    pub fn len(&self) -> usize {
        self.weights.len()
    }

    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.weights.values().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Dot product, iterating over the smaller vector.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.weights.iter().map(|(t, w)| w * big.get(t)).sum()
    }

    /// Cosine similarity in `[0,1]` for non-negative weights; 0 if either
    /// vector is empty.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Iterate `(term, weight)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.weights.iter().map(|(t, w)| (t.as_str(), *w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_common::Rng;

    #[test]
    fn accumulates_repeated_terms() {
        let v = SparseVector::from_pairs([("a", 1.0), ("a", 2.0), ("b", 1.0)]);
        assert_eq!(v.get("a"), 3.0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn cosine_identical_is_one() {
        let v = SparseVector::from_pairs([("x", 2.0), ("y", 1.0)]);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        let a = SparseVector::from_pairs([("x", 1.0)]);
        let b = SparseVector::from_pairs([("y", 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_empty_is_zero() {
        let a = SparseVector::new();
        let b = SparseVector::from_pairs([("y", 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&a), 0.0);
    }

    #[test]
    fn dot_is_symmetric_small_big() {
        let a = SparseVector::from_pairs([("x", 2.0), ("y", 3.0), ("z", 1.0)]);
        let b = SparseVector::from_pairs([("y", 4.0)]);
        assert_eq!(a.dot(&b), 12.0);
        assert_eq!(b.dot(&a), 12.0);
    }

    #[test]
    fn cosine_bounded() {
        let mut rng = Rng::seed_from_u64(11);
        let terms = ["a", "b", "c", "d", "e"];
        let rand_pairs = |rng: &mut Rng| -> Vec<(&str, f64)> {
            let n = rng.gen_index(6);
            (0..n)
                .map(|_| (*rng.choose(&terms), rng.gen_f64() * 10.0))
                .collect()
        };
        for _ in 0..300 {
            let a = SparseVector::from_pairs(rand_pairs(&mut rng));
            let b = SparseVector::from_pairs(rand_pairs(&mut rng));
            let c = a.cosine(&b);
            assert!((0.0..=1.0 + 1e-9).contains(&c), "cosine {c}");
            assert!((a.cosine(&b) - b.cosine(&a)).abs() < 1e-12);
        }
    }
}
