//! IR ranking primitives shared by the kwdb search engines.
//!
//! The tutorial's "Result Ranking" section (slides 144–145) names four
//! ranking-factor families for keyword search on databases; each has a module
//! here:
//!
//! * **TF·IDF** term weighting with corpus statistics — [`tfidf`]
//! * **Vector space model** query/result similarity — [`vsm`]
//! * **Proximity** of keyword matches (tree size / root-to-match distance) —
//!   [`proximity`]
//! * **Authority** flow (PageRank adapted to data graphs, with bidirectional
//!   edge flow and per-edge-type weights) — [`pagerank`]

pub mod pagerank;
pub mod proximity;
pub mod tfidf;
pub mod vsm;

pub use tfidf::{CorpusStats, TfIdf};
pub use vsm::SparseVector;
