//! TF·IDF corpus statistics and term weighting.
//!
//! In keyword search on databases a "document" is whatever granule an engine
//! scores: a tuple, an XML node's subtree, a CN join result. [`CorpusStats`]
//! is built once over the granules and answers document-frequency queries;
//! [`TfIdf`] combines them into the standard `tf · idf` weight with the
//! sub-linear tf damping SPARK and XRank both use.

use std::collections::{HashMap, HashSet};

/// Document-frequency statistics over a corpus of token multisets.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    doc_count: usize,
    doc_freq: HashMap<String, usize>,
    /// Total token occurrences per term (collection frequency).
    coll_freq: HashMap<String, u64>,
    total_tokens: u64,
}

impl CorpusStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Account for one document given its token list (duplicates allowed).
    pub fn add_doc<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.doc_count += 1;
        let mut seen = HashSet::new();
        for t in tokens {
            let t = t.as_ref();
            *self.coll_freq.entry(t.to_string()).or_insert(0) += 1;
            self.total_tokens += 1;
            if seen.insert(t) {
                *self.doc_freq.entry(t.to_string()).or_insert(0) += 1;
            }
        }
    }

    /// Un-account one document given the same token list it was added with
    /// (incremental maintenance under deletes). Zeroed terms are dropped
    /// from the maps so the vocabulary shrinks back exactly.
    pub fn remove_doc<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.doc_count = self.doc_count.saturating_sub(1);
        let mut seen = HashSet::new();
        for t in tokens {
            let t = t.as_ref();
            if let Some(cf) = self.coll_freq.get_mut(t) {
                *cf -= 1;
                if *cf == 0 {
                    self.coll_freq.remove(t);
                }
            }
            self.total_tokens = self.total_tokens.saturating_sub(1);
            if seen.insert(t) {
                if let Some(df) = self.doc_freq.get_mut(t) {
                    *df -= 1;
                    if *df == 0 {
                        self.doc_freq.remove(t);
                    }
                }
            }
        }
    }

    /// Number of documents indexed.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Total token occurrences across the corpus.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Number of documents containing `term`.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.doc_freq.get(term).copied().unwrap_or(0)
    }

    /// Total occurrences of `term` across the corpus.
    pub fn coll_freq(&self, term: &str) -> u64 {
        self.coll_freq.get(term).copied().unwrap_or(0)
    }

    /// Collection language-model probability `P(term | corpus)` with
    /// add-one smoothing; the noisy-channel cleaners use this as their prior.
    pub fn lm_prob(&self, term: &str) -> f64 {
        let vocab = self.coll_freq.len() as f64;
        (self.coll_freq(term) as f64 + 1.0) / (self.total_tokens as f64 + vocab.max(1.0))
    }

    /// Smoothed inverse document frequency: `ln((N+1)/(df+1)) + 1`.
    ///
    /// Always positive, so a term occurring in every document still
    /// contributes (weight 1) instead of vanishing — XBridge's `ief` has the
    /// same property.
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.doc_count as f64;
        let df = self.doc_freq(term) as f64;
        ((n + 1.0) / (df + 1.0)).ln() + 1.0
    }

    /// Vocabulary iterator (terms with nonzero document frequency).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.doc_freq.keys().map(|s| s.as_str())
    }
}

/// TF·IDF scorer over a [`CorpusStats`].
#[derive(Debug, Clone)]
pub struct TfIdf<'a> {
    stats: &'a CorpusStats,
}

impl<'a> TfIdf<'a> {
    pub fn new(stats: &'a CorpusStats) -> Self {
        TfIdf { stats }
    }

    /// Sub-linear tf damping: `1 + ln(tf)` for `tf ≥ 1`, else 0.
    pub fn tf_weight(tf: usize) -> f64 {
        if tf == 0 {
            0.0
        } else {
            1.0 + (tf as f64).ln()
        }
    }

    /// Weight of `term` appearing `tf` times in a document.
    pub fn weight(&self, term: &str, tf: usize) -> f64 {
        Self::tf_weight(tf) * self.stats.idf(term)
    }

    /// Score a document (bag of tokens) against query keywords: the sum of
    /// tf·idf weights of the query terms, the additive model DISCOVER2 and
    /// SPARK start from.
    pub fn score<S: AsRef<str>, T: AsRef<str>>(&self, query: &[S], doc_tokens: &[T]) -> f64 {
        let mut tf: HashMap<&str, usize> = HashMap::new();
        for t in doc_tokens {
            *tf.entry(t.as_ref()).or_insert(0) += 1;
        }
        query
            .iter()
            .map(|q| self.weight(q.as_ref(), tf.get(q.as_ref()).copied().unwrap_or(0)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> CorpusStats {
        let mut s = CorpusStats::new();
        s.add_doc(&["xml", "keyword", "search"]);
        s.add_doc(&["xml", "xml", "query"]);
        s.add_doc(&["graph", "search"]);
        s
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let s = corpus();
        assert_eq!(s.doc_count(), 3);
        assert_eq!(s.doc_freq("xml"), 2);
        assert_eq!(s.coll_freq("xml"), 3);
        assert_eq!(s.doc_freq("missing"), 0);
    }

    #[test]
    fn idf_ranks_rare_above_common() {
        let s = corpus();
        assert!(s.idf("graph") > s.idf("xml"));
        assert!(s.idf("xml") > 0.0);
    }

    #[test]
    fn idf_of_everywhere_term_is_one() {
        let mut s = CorpusStats::new();
        s.add_doc(&["a"]);
        s.add_doc(&["a"]);
        // ln((2+1)/(2+1)) + 1 == 1
        assert!((s.idf("a") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tf_weight_is_sublinear() {
        assert_eq!(TfIdf::tf_weight(0), 0.0);
        assert_eq!(TfIdf::tf_weight(1), 1.0);
        let w2 = TfIdf::tf_weight(2);
        let w4 = TfIdf::tf_weight(4);
        assert!(w2 > 1.0 && w4 > w2 && w4 < 2.0 * w2);
    }

    #[test]
    fn score_prefers_matching_docs() {
        let s = corpus();
        let scorer = TfIdf::new(&s);
        let q = ["xml", "search"];
        let hit = scorer.score(&q, &["xml", "keyword", "search"]);
        let partial = scorer.score(&q, &["xml", "xml", "query"]);
        let miss = scorer.score(&q, &["graph"]);
        assert!(hit > partial);
        assert!(partial > miss);
        assert_eq!(miss, 0.0);
    }

    #[test]
    fn remove_doc_inverts_add_doc() {
        let mut s = corpus();
        s.add_doc(&["xml", "extra", "extra"]);
        s.remove_doc(&["xml", "extra", "extra"]);
        let fresh = corpus();
        assert_eq!(s.doc_count(), fresh.doc_count());
        assert_eq!(s.doc_freq("xml"), fresh.doc_freq("xml"));
        assert_eq!(s.coll_freq("xml"), fresh.coll_freq("xml"));
        assert_eq!(s.doc_freq("extra"), 0);
        assert_eq!(s.coll_freq("extra"), 0);
        assert_eq!(s.total_tokens(), fresh.total_tokens());
        assert_eq!(s.terms().count(), fresh.terms().count(), "vocab shrinks");
    }

    #[test]
    fn lm_prob_sums_reasonably() {
        let s = corpus();
        assert!(s.lm_prob("xml") > s.lm_prob("graph"));
        assert!(s.lm_prob("unseen") > 0.0);
        assert!(s.lm_prob("unseen") < s.lm_prob("xml"));
    }
}
