//! PageRank-style authority ranking adapted to data graphs.
//!
//! The tutorial (slide 145) notes two database adaptations of PageRank:
//! authority may flow **both ways** along an edge (a cited paper confers
//! authority on its citer and vice versa, with different strengths), and
//! different **edge types** carry different weights. [`PageRank`] supports
//! both via per-edge forward/backward weights. The same machinery powers the
//! queriability model of query-form generation (Jayapandian & Jagadish,
//! slide 60), which runs PageRank over the schema graph.

/// Configuration for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor `d` (probability of following an edge).
    pub damping: f64,
    /// Stop when the L1 change between iterations drops below this.
    pub tolerance: f64,
    /// Hard cap on iterations.
    pub max_iters: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-9,
            max_iters: 200,
        }
    }
}

/// A weighted, optionally bidirectional edge set over nodes `0..n`.
#[derive(Debug, Clone)]
pub struct PageRank {
    n: usize,
    /// Outgoing (target, weight) lists; backward flow is added as explicit
    /// reverse edges by [`add_edge`](Self::add_edge).
    out: Vec<Vec<(usize, f64)>>,
}

impl PageRank {
    pub fn new(n: usize) -> Self {
        PageRank {
            n,
            out: vec![Vec::new(); n],
        }
    }

    /// Add an edge `u → v` with forward weight `fw` and backward weight `bw`
    /// (set `bw = 0.0` for classic directed PageRank).
    pub fn add_edge(&mut self, u: usize, v: usize, fw: f64, bw: f64) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        if fw > 0.0 {
            self.out[u].push((v, fw));
        }
        if bw > 0.0 {
            self.out[v].push((u, bw));
        }
    }

    /// Run the power iteration; returns a probability vector summing to 1
    /// (for `n > 0`). Dangling nodes redistribute uniformly.
    pub fn run(&self, cfg: &PageRankConfig) -> Vec<f64> {
        let n = self.n;
        if n == 0 {
            return Vec::new();
        }
        let uniform = 1.0 / n as f64;
        let mut rank = vec![uniform; n];
        let mut next = vec![0.0; n];
        // Precompute out-weight sums for normalization.
        let out_sum: Vec<f64> = self
            .out
            .iter()
            .map(|es| es.iter().map(|&(_, w)| w).sum())
            .collect();
        for _ in 0..cfg.max_iters {
            next.iter_mut().for_each(|x| *x = 0.0);
            let mut dangling = 0.0;
            for u in 0..n {
                if out_sum[u] == 0.0 {
                    dangling += rank[u];
                    continue;
                }
                for &(v, w) in &self.out[u] {
                    next[v] += rank[u] * w / out_sum[u];
                }
            }
            let mut delta = 0.0;
            for v in 0..n {
                let newv =
                    (1.0 - cfg.damping) * uniform + cfg.damping * (next[v] + dangling * uniform);
                delta += (newv - rank[v]).abs();
                next[v] = newv;
            }
            std::mem::swap(&mut rank, &mut next);
            if delta < cfg.tolerance {
                break;
            }
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pr: &PageRank) -> Vec<f64> {
        pr.run(&PageRankConfig::default())
    }

    #[test]
    fn empty_graph() {
        assert!(run(&PageRank::new(0)).is_empty());
    }

    #[test]
    fn ranks_sum_to_one() {
        let mut pr = PageRank::new(4);
        pr.add_edge(0, 1, 1.0, 0.0);
        pr.add_edge(1, 2, 1.0, 0.0);
        pr.add_edge(2, 0, 1.0, 0.0);
        // node 3 dangling
        let r = run(&pr);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hub_gets_highest_rank() {
        // Star: everyone points at node 0.
        let mut pr = PageRank::new(5);
        for u in 1..5 {
            pr.add_edge(u, 0, 1.0, 0.0);
        }
        let r = run(&pr);
        for u in 1..5 {
            assert!(r[0] > r[u], "hub should dominate leaf {u}");
        }
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut pr = PageRank::new(3);
        pr.add_edge(0, 1, 1.0, 0.0);
        pr.add_edge(1, 2, 1.0, 0.0);
        pr.add_edge(2, 0, 1.0, 0.0);
        let r = run(&pr);
        for w in r.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_flow_raises_source() {
        // a → b with and without backward flow; with backward flow the source
        // recovers authority from its target.
        let mut fwd = PageRank::new(2);
        fwd.add_edge(0, 1, 1.0, 0.0);
        let mut bi = PageRank::new(2);
        bi.add_edge(0, 1, 1.0, 0.5);
        let rf = run(&fwd);
        let rb = run(&bi);
        assert!(rb[0] > rf[0]);
    }

    #[test]
    fn edge_weight_biases_flow() {
        // 0 points to 1 (weight 3) and 2 (weight 1): 1 should outrank 2.
        let mut pr = PageRank::new(3);
        pr.add_edge(0, 1, 3.0, 0.0);
        pr.add_edge(0, 2, 1.0, 0.0);
        let r = run(&pr);
        assert!(r[1] > r[2]);
    }
}
