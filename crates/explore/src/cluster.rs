//! Result clustering (tutorial slides 155–162).
//!
//! * [`cluster_by_context`] — XBridge (Li et al., EDBT 10): results whose
//!   roots share a root-to-root label path form one cluster ("conference
//!   papers" vs "journal papers" vs "workshop papers"); clusters are ranked
//!   by the sum of their top-R result scores with `R = min(avg, |G|)` so
//!   huge clusters don't win on bulk (slide 157);
//! * [`describable_clusters`] — Liu & Chen (TODS 10): each cluster
//!   corresponds to one *semantics* of an ambiguous query, derived from the
//!   roles query keywords play in each result (slide 161's
//!   seller/buyer/auctioneer example); clusters can be split further by
//!   keyword context for finer granularity.

use kwdb_common::text::tokenize;
use kwdb_xml::{NodeId, XmlIndex, XmlTree};
use std::collections::BTreeMap;

/// A cluster of results with a score.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// The describing key (label path for XBridge, role pattern for
    /// describable clustering).
    pub description: String,
    /// Member results (indices into the input) best-score first.
    pub members: Vec<usize>,
    pub score: f64,
}

/// XBridge: cluster scored results by the label path of their roots, rank
/// clusters by top-R member scores.
pub fn cluster_by_context(tree: &XmlTree, results: &[(NodeId, f64)]) -> Vec<Cluster> {
    let mut groups: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
    for (i, &(n, score)) in results.iter().enumerate() {
        groups
            .entry(tree.label_path(n))
            .or_default()
            .push((i, score));
    }
    let avg = if groups.is_empty() {
        0.0
    } else {
        results.len() as f64 / groups.len() as f64
    };
    let mut out: Vec<Cluster> = groups
        .into_iter()
        .map(|(path, mut members)| {
            members.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let r = (avg.round() as usize).clamp(1, members.len());
            let score: f64 = members.iter().take(r).map(|&(_, s)| s).sum();
            Cluster {
                description: path,
                members: members.into_iter().map(|(i, _)| i).collect(),
                score,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.description.cmp(&b.description))
    });
    out
}

/// The role a keyword plays in one result: the label of the node whose text
/// matched it (or the node's own label for structure matches).
pub fn keyword_role(tree: &XmlTree, result_root: NodeId, keyword: &str) -> Option<String> {
    for n in tree.subtree(result_root) {
        let label = tree.label(n).trim_start_matches('@').to_lowercase();
        if label == keyword {
            return Some(format!("label:{label}"));
        }
        if let Some(t) = tree.text(n) {
            if tokenize(t).iter().any(|tok| tok == keyword) {
                return Some(tree.label(n).trim_start_matches('@').to_string());
            }
        }
    }
    None
}

/// Describable clustering: group results by the role pattern of their
/// keywords. Every cluster's description reads like the slide's
/// interpretations ("Tom is the seller" vs "Tom is the buyer").
pub fn describable_clusters<S: AsRef<str>>(
    tree: &XmlTree,
    _index: &XmlIndex,
    results: &[NodeId],
    keywords: &[S],
) -> Vec<Cluster> {
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, &root) in results.iter().enumerate() {
        let pattern: Vec<String> = keywords
            .iter()
            .map(|k| keyword_role(tree, root, k.as_ref()).unwrap_or_else(|| "∅".to_string()))
            .collect();
        let desc = keywords
            .iter()
            .zip(&pattern)
            .map(|(k, r)| format!("{}→{r}", k.as_ref()))
            .collect::<Vec<_>>()
            .join(", ");
        groups.entry(desc).or_default().push(i);
    }
    groups
        .into_iter()
        .map(|(description, members)| Cluster {
            score: members.len() as f64,
            description,
            members,
        })
        .collect()
}

/// Finer granularity (slide 162): split one cluster's members by the label
/// path of the node matching `keyword` (the keyword's *context*), with at
/// most `max_clusters` output groups (smallest groups merged into the last).
pub fn split_by_context<S: AsRef<str>>(
    tree: &XmlTree,
    results: &[NodeId],
    members: &[usize],
    keyword: S,
    max_clusters: usize,
) -> Vec<Vec<usize>> {
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for &m in members {
        let root = results[m];
        let ctx = tree
            .subtree(root)
            .into_iter()
            .find(|&n| {
                tree.text(n)
                    .map(|t| tokenize(t).iter().any(|tok| tok == keyword.as_ref()))
                    .unwrap_or(false)
            })
            .map(|n| tree.label_path(n))
            .unwrap_or_else(|| "∅".to_string());
        groups.entry(ctx).or_default().push(m);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| std::cmp::Reverse(g.len()));
    while out.len() > max_clusters.max(1) {
        let tail = out.pop().expect("len > 1");
        out.last_mut().expect("len >= 1").extend(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_xml::XmlBuilder;

    /// Slide 156: papers under conference / journal / workshop contexts.
    fn bib() -> (XmlTree, Vec<(NodeId, f64)>) {
        let mut b = XmlBuilder::new("bib");
        b.open("conference");
        for i in 0..3 {
            b.open("paper")
                .leaf("title", &format!("keyword query processing {i}"))
                .close();
        }
        b.close();
        b.open("journal");
        b.open("paper")
            .leaf("title", "keyword query processing survey")
            .close();
        b.close();
        b.open("workshop");
        b.open("paper")
            .leaf("title", "keyword query processing demo")
            .close();
        b.close();
        let t = b.build();
        let results: Vec<(NodeId, f64)> = t
            .iter()
            .filter(|&n| t.label(n) == "paper")
            .enumerate()
            .map(|(i, n)| (n, 10.0 - i as f64))
            .collect();
        (t, results)
    }

    #[test]
    fn xbridge_clusters_by_root_context() {
        let (t, results) = bib();
        let clusters = cluster_by_context(&t, &results);
        assert_eq!(clusters.len(), 3);
        let descs: Vec<&str> = clusters.iter().map(|c| c.description.as_str()).collect();
        assert!(descs.contains(&"/bib/conference/paper"));
        assert!(descs.contains(&"/bib/journal/paper"));
        assert!(descs.contains(&"/bib/workshop/paper"));
        // scores descend
        assert!(clusters.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn top_r_prevents_bulk_wins() {
        let (t, results) = bib();
        let clusters = cluster_by_context(&t, &results);
        // avg = 5/3 ≈ 2 → conference counts only its top-2 (10+9), not all 3
        let conf = clusters
            .iter()
            .find(|c| c.description == "/bib/conference/paper")
            .unwrap();
        assert_eq!(conf.score, 19.0);
    }

    /// Slide 161: auctions where Tom is seller/buyer/auctioneer.
    fn auctions() -> (XmlTree, Vec<NodeId>) {
        let mut b = XmlBuilder::new("auctions");
        for (seller, buyer, auctioneer) in [
            ("Bob", "Mary", "Tom"),
            ("Frank", "Tom", "Louis"),
            ("Tom", "Peter", "Mark"),
            ("Tom", "Alice", "Louis"),
        ] {
            b.open("auction")
                .leaf("seller", seller)
                .leaf("buyer", buyer)
                .leaf("auctioneer", auctioneer)
                .close();
        }
        let t = b.build();
        let results: Vec<NodeId> = t.iter().filter(|&n| t.label(n) == "auction").collect();
        (t, results)
    }

    #[test]
    fn slide161_roles_create_three_clusters() {
        let (t, results) = auctions();
        let ix = XmlIndex::build(&t);
        let clusters = describable_clusters(&t, &ix, &results, &["tom"]);
        assert_eq!(clusters.len(), 3, "{clusters:?}");
        let descs: Vec<&str> = clusters.iter().map(|c| c.description.as_str()).collect();
        assert!(descs.contains(&"tom→seller"));
        assert!(descs.contains(&"tom→buyer"));
        assert!(descs.contains(&"tom→auctioneer"));
        // the seller cluster has two members
        let seller = clusters
            .iter()
            .find(|c| c.description == "tom→seller")
            .unwrap();
        assert_eq!(seller.members.len(), 2);
    }

    #[test]
    fn split_by_context_bounds_cluster_count() {
        let (t, results) = auctions();
        let all: Vec<usize> = (0..results.len()).collect();
        let split = split_by_context(&t, &results, &all, "tom", 2);
        assert!(split.len() <= 2);
        let total: usize = split.iter().map(|g| g.len()).sum();
        assert_eq!(total, results.len());
    }

    #[test]
    fn keyword_role_detects_label_matches() {
        let (t, results) = auctions();
        assert_eq!(
            keyword_role(&t, results[0], "seller"),
            Some("label:seller".into())
        );
        assert_eq!(
            keyword_role(&t, results[0], "tom"),
            Some("auctioneer".into())
        );
        assert_eq!(keyword_role(&t, results[0], "zzz"), None);
    }
}
