//! Result analysis and exploration (tutorial slides 75–93, 143–167).
//!
//! Half the tutorial is about what happens *after* results exist:
//! exploratory searches return many relevant results, and the user needs
//! machinery to compare, group, summarize and refine. One module per
//! technique family:
//!
//! * [`diff`] — result differentiation: DoD-maximizing comparison tables
//!   with weak/strong local optimality (Liu, Sun & Chen, VLDB 09;
//!   slides 149–153);
//! * [`cluster`] — XBridge root-context clusters with top-R ranking
//!   (Li et al., EDBT 10; slides 156–157) and describable clustering by
//!   keyword roles (Liu & Chen, TODS 10; slides 161–162);
//! * [`facets`] — faceted navigation trees minimizing expected navigation
//!   cost under two user models: the log-driven model (Chakrabarti et al.
//!   04; slides 86–91) and FACeTOR's interestingness + SHOWMORE model
//!   (Kashyap et al., CIKM 10; slides 92–93);
//! * [`clouds`] — data clouds: suggesting expansion terms from results by
//!   popularity vs relevance (Koutrika et al., EDBT 09; slides 76–78),
//!   including frequent co-occurring terms without full materialization
//!   (Tao & Yu, EDBT 09);
//! * [`expand`] — cluster-describing query expansion maximizing F-measure
//!   (slides 80–82; APX-hard, greedy here);
//! * [`summary`] — size-*l* object summaries: a result presented as its
//!   bounded FK-neighborhood (slides 143–148);
//! * [`tableagg`] — aggregate keyword queries with minimal group-bys
//!   (Zhou & Pei, EDBT 09; slides 16, 164–165);
//! * [`textcube`] — TopCells keyword search in text cubes
//!   (Ding et al., ICDE 10; slides 166–167).

pub mod clouds;
pub mod cluster;
pub mod diff;
pub mod expand;
pub mod facets;
pub mod summary;
pub mod tableagg;
pub mod textcube;

pub use diff::{differentiate, ComparisonTable, Feature};
pub use summary::{object_summary, render_summary};
