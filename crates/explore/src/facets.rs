//! Faceted search with a navigation-cost model (Chakrabarti, Chaudhuri &
//! Hwang 2004; FACeTOR, CIKM 10) — tutorial slides 84–93.
//!
//! Query results are rows with categorical attributes; the system builds a
//! navigation tree (one facet per level) minimizing the user's *expected
//! navigation cost* under the slide-87 action model: at a node the user
//! either **shows results** (pays one unit per result) or **expands** the
//! child facet (pays one unit per facet value read, then recurses into the
//! values judged relevant). Probabilities come from a historical query log:
//!
//! * `p(expand(N))` — high when many log queries constrain the child facet;
//! * `p(proc(child))` — the fraction of log queries whose selection overlaps
//!   the child's value.
//!
//! Exact tree optimization is prohibitively expensive (slide 91); the
//! greedy builder picks, level by level, the attribute with the smallest
//! resulting cost. E15 compares greedy vs fixed attribute order vs a flat
//! SHOWALL list.

use kwdb_common::{KwdbError, Result};
use kwdb_relational::{Database, TupleId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Resolve `"table.column"` against a database schema.
fn resolve_attr(db: &Database, attr: &str) -> Result<(kwdb_relational::TableId, usize)> {
    let (tname, cname) = attr.split_once('.').ok_or_else(|| {
        KwdbError::InvalidQuery(format!(
            "facet attribute `{attr}` must be of the form table.column"
        ))
    })?;
    let tid = db.table_id(tname)?;
    let col = db
        .table(tid)
        .schema
        .columns
        .iter()
        .position(|c| c.name == cname)
        .ok_or_else(|| KwdbError::UnknownObject(format!("column `{cname}` of table `{tname}`")))?;
    Ok((tid, col))
}

/// A result table: attribute names + rows of values.
#[derive(Debug, Clone)]
pub struct FacetTable {
    pub attributes: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl FacetTable {
    pub fn new(attributes: Vec<String>, rows: Vec<Vec<String>>) -> Self {
        assert!(
            rows.iter().all(|r| r.len() == attributes.len()),
            "ragged rows"
        );
        FacetTable { attributes, rows }
    }

    /// Project engine results onto facet attributes: one row per result
    /// (a joining tree of tuple IDs, e.g. `RelationalHit::tuples`), one
    /// column per `"table.column"` attribute. A result's value for an
    /// attribute is the rendered column value of its first tuple from that
    /// table, or `""` when the result's tree does not touch the table —
    /// so navigation trees are built over the *real* result multiset
    /// rather than a hand-maintained copy of it.
    pub fn from_results(
        db: &Database,
        attrs: &[&str],
        results: &[Vec<TupleId>],
    ) -> Result<FacetTable> {
        let resolved: Vec<(kwdb_relational::TableId, usize)> = attrs
            .iter()
            .map(|a| resolve_attr(db, a))
            .collect::<Result<_>>()?;
        let rows = results
            .iter()
            .map(|tuples| {
                resolved
                    .iter()
                    .map(|&(tid, col)| {
                        tuples
                            .iter()
                            .find(|t| t.table == tid)
                            .map(|t| db.table(tid).get(t.row, col).to_string())
                            .unwrap_or_default()
                    })
                    .collect()
            })
            .collect();
        Ok(FacetTable::new(
            attrs.iter().map(|a| a.to_string()).collect(),
            rows,
        ))
    }

    /// Value distribution of `attr` over the rows: `(value, count)` sorted
    /// count-descending then value-ascending — the same order the engine's
    /// `FacetCounts` uses, so the two are directly comparable.
    pub fn value_counts(&self, attr: &str) -> Vec<(String, usize)> {
        let ai = self.attr_index(attr);
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for row in &self.rows {
            *counts.entry(row[ai].as_str()).or_default() += 1;
        }
        let mut out: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(v, n)| (v.to_string(), n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    fn attr_index(&self, name: &str) -> usize {
        self.attributes
            .iter()
            .position(|a| a == name)
            .expect("unknown attribute")
    }
}

/// A historical query: the facet conditions the user applied.
pub type LogQuery = Vec<(String, String)>;

/// Log-derived probabilities.
#[derive(Debug, Clone)]
pub struct LogModel<'a> {
    log: &'a [LogQuery],
}

impl<'a> LogModel<'a> {
    pub fn new(log: &'a [LogQuery]) -> Self {
        LogModel { log }
    }

    /// p(expand): fraction of log queries constraining `attr` (slide 89).
    pub fn p_expand(&self, attr: &str) -> f64 {
        if self.log.is_empty() {
            return 0.5;
        }
        let n = self
            .log
            .iter()
            .filter(|q| q.iter().any(|(a, _)| a == attr))
            .count();
        n as f64 / self.log.len() as f64
    }

    /// p(child relevant): fraction of log queries selecting this value of
    /// `attr` among those constraining `attr` at all (slide 90).
    pub fn p_relevant(&self, attr: &str, value: &str) -> f64 {
        let constraining: Vec<&LogQuery> = self
            .log
            .iter()
            .filter(|q| q.iter().any(|(a, _)| a == attr))
            .collect();
        if constraining.is_empty() {
            return 0.5;
        }
        let n = constraining
            .iter()
            .filter(|q| q.iter().any(|(a, v)| a == attr && v == value))
            .count();
        n as f64 / constraining.len() as f64
    }
}

/// A navigation tree node: either a facet level or a leaf result set.
#[derive(Debug, Clone)]
pub enum NavNode {
    /// Split on `attr`; children keyed by value.
    Facet {
        attr: String,
        children: BTreeMap<String, NavNode>,
    },
    /// Show these row indices.
    Leaf { rows: Vec<usize> },
}

impl NavNode {
    /// Expected navigation cost of this subtree under the log model.
    pub fn expected_cost(&self, model: &LogModel<'_>) -> f64 {
        match self {
            NavNode::Leaf { rows } => rows.len() as f64,
            NavNode::Facet { attr, children } => {
                let pe = model.p_expand(attr);
                let show_all: f64 = children
                    .values()
                    .map(|c| match c {
                        NavNode::Leaf { rows } => rows.len() as f64,
                        f => f.expected_cost(model),
                    })
                    .sum();
                // expand: read every child value, then process relevant ones
                let read = children.len() as f64;
                let recurse: f64 = children
                    .iter()
                    .map(|(v, c)| model.p_relevant(attr, v) * c.expected_cost(model))
                    .sum();
                (1.0 - pe) * show_all + pe * (read + recurse)
            }
        }
    }

    /// Depth of the tree (leaves are depth 0).
    pub fn depth(&self) -> usize {
        match self {
            NavNode::Leaf { .. } => 0,
            NavNode::Facet { children, .. } => {
                1 + children.values().map(|c| c.depth()).max().unwrap_or(0)
            }
        }
    }
}

/// Build a navigation tree with a *fixed* attribute order.
pub fn build_fixed(table: &FacetTable, order: &[String], rows: Vec<usize>) -> NavNode {
    let Some((attr, rest)) = order.split_first() else {
        return NavNode::Leaf { rows };
    };
    let ai = table.attr_index(attr);
    let mut children: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for r in rows {
        children
            .entry(table.rows[r][ai].clone())
            .or_default()
            .push(r);
    }
    NavNode::Facet {
        attr: attr.clone(),
        children: children
            .into_iter()
            .map(|(v, rs)| (v, build_fixed(table, rest, rs)))
            .collect(),
    }
}

/// Greedy tree (slide 91): at each level choose the unused attribute whose
/// one-level tree has the smallest expected cost; recurse per child.
pub fn build_greedy(
    table: &FacetTable,
    model: &LogModel<'_>,
    rows: Vec<usize>,
    max_depth: usize,
) -> NavNode {
    build_greedy_inner(table, model, rows, &BTreeSet::new(), max_depth)
}

fn build_greedy_inner(
    table: &FacetTable,
    model: &LogModel<'_>,
    rows: Vec<usize>,
    used: &BTreeSet<String>,
    max_depth: usize,
) -> NavNode {
    if max_depth == 0 || rows.len() <= 1 {
        return NavNode::Leaf { rows };
    }
    let mut best: Option<(f64, String)> = None;
    for attr in &table.attributes {
        if used.contains(attr) {
            continue;
        }
        let candidate = build_fixed(table, std::slice::from_ref(attr), rows.clone());
        let cost = candidate.expected_cost(model);
        if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
            best = Some((cost, attr.clone()));
        }
    }
    let Some((_, attr)) = best else {
        return NavNode::Leaf { rows };
    };
    // also consider just showing the results here
    let leaf_cost = rows.len() as f64;
    let one_level = build_fixed(table, std::slice::from_ref(&attr), rows.clone());
    if leaf_cost <= one_level.expected_cost(model) {
        return NavNode::Leaf { rows };
    }
    let ai = table.attr_index(&attr);
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for r in rows {
        groups.entry(table.rows[r][ai].clone()).or_default().push(r);
    }
    let mut next_used = used.clone();
    next_used.insert(attr.clone());
    NavNode::Facet {
        attr,
        children: groups
            .into_iter()
            .map(|(v, rs)| {
                (
                    v,
                    build_greedy_inner(table, model, rs, &next_used, max_depth - 1),
                )
            })
            .collect(),
    }
}

/// FACeTOR's variant of the model (Kashyap, Hristidis & Petropoulos,
/// CIKM 10) — tutorial slides 92–93. Differences from the log model:
///
/// * probabilities come from **user-declared facet interestingness** and
///   from the **result distribution itself** (value popularity), not from a
///   historical log;
/// * reading a facet's values is paginated with a **SHOWMORE** action: the
///   user reads one page, and continues to the next with a probability that
///   grows with the facet's interestingness.
#[derive(Debug, Clone)]
pub struct FacetorModel {
    /// attr → user-declared interestingness in `[0, ∞)`.
    pub interestingness: HashMap<String, f64>,
    /// Facet values shown per page before SHOWMORE.
    pub page_size: usize,
}

impl FacetorModel {
    pub fn new(interestingness: HashMap<String, f64>, page_size: usize) -> Self {
        FacetorModel {
            interestingness,
            page_size: page_size.max(1),
        }
    }

    fn interest(&self, attr: &str) -> f64 {
        self.interestingness.get(attr).copied().unwrap_or(0.0)
    }

    /// p(expand): interesting facets get expanded.
    pub fn p_expand(&self, attr: &str) -> f64 {
        let i = self.interest(attr);
        i / (1.0 + i)
    }

    /// p(showMore): continue past a page of an interesting facet.
    pub fn p_show_more(&self, attr: &str) -> f64 {
        0.5 * self.p_expand(attr)
    }

    /// Expected cost of a navigation tree under the FACeTOR model: value
    /// reading is paginated, child relevance is its result-share.
    pub fn expected_cost(&self, node: &NavNode) -> f64 {
        match node {
            NavNode::Leaf { rows } => rows.len() as f64,
            NavNode::Facet { attr, children } => {
                let pe = self.p_expand(attr);
                let show_all: f64 = children.values().map(|c| self.expected_cost(c)).sum();
                // paginated reading: expected values read
                let n = children.len() as f64;
                let page = self.page_size as f64;
                let pm = self.p_show_more(attr);
                let mut read = 0.0;
                let mut remaining = n;
                let mut reach = 1.0;
                while remaining > 0.0 {
                    read += reach * remaining.min(page);
                    remaining -= page;
                    reach *= pm;
                }
                // child relevance = its share of the results
                let total_rows: f64 = children.values().map(subtree_rows).sum();
                let recurse: f64 = children
                    .values()
                    .map(|c| {
                        let share = if total_rows == 0.0 {
                            0.0
                        } else {
                            subtree_rows(c) / total_rows
                        };
                        share * self.expected_cost(c)
                    })
                    .sum();
                (1.0 - pe) * show_all + pe * (read + recurse)
            }
        }
    }
}

fn subtree_rows(node: &NavNode) -> f64 {
    match node {
        NavNode::Leaf { rows } => rows.len() as f64,
        NavNode::Facet { children, .. } => children.values().map(subtree_rows).sum(),
    }
}

/// Greedy tree under the FACeTOR model: at each level pick the unused
/// attribute minimizing the one-level FACeTOR cost.
pub fn build_greedy_facetor(
    table: &FacetTable,
    model: &FacetorModel,
    rows: Vec<usize>,
    max_depth: usize,
) -> NavNode {
    build_greedy_facetor_inner(table, model, rows, &BTreeSet::new(), max_depth)
}

fn build_greedy_facetor_inner(
    table: &FacetTable,
    model: &FacetorModel,
    rows: Vec<usize>,
    used: &BTreeSet<String>,
    max_depth: usize,
) -> NavNode {
    if max_depth == 0 || rows.len() <= 1 {
        return NavNode::Leaf { rows };
    }
    let mut best: Option<(f64, String)> = None;
    for attr in &table.attributes {
        if used.contains(attr) {
            continue;
        }
        let candidate = build_fixed(table, std::slice::from_ref(attr), rows.clone());
        let cost = model.expected_cost(&candidate);
        if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
            best = Some((cost, attr.clone()));
        }
    }
    let Some((split_cost, attr)) = best else {
        return NavNode::Leaf { rows };
    };
    if rows.len() as f64 <= split_cost {
        return NavNode::Leaf { rows };
    }
    let ai = table.attr_index(&attr);
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for r in rows {
        groups.entry(table.rows[r][ai].clone()).or_default().push(r);
    }
    let mut next_used = used.clone();
    next_used.insert(attr.clone());
    NavNode::Facet {
        attr,
        children: groups
            .into_iter()
            .map(|(v, rs)| {
                (
                    v,
                    build_greedy_facetor_inner(table, model, rs, &next_used, max_depth - 1),
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slide 87's apartment scenario: neighborhood and price facets.
    fn apartments() -> FacetTable {
        let mut rows = Vec::new();
        for (nbhd, price, pets) in [
            ("redmond", "500-1000", "yes"),
            ("redmond", "1000-1500", "yes"),
            ("redmond", "1500-2000", "no"),
            ("bellevue", "500-1000", "no"),
            ("bellevue", "1000-1500", "yes"),
            ("bellevue", "1500-2000", "no"),
            ("seattle", "500-1000", "yes"),
            ("seattle", "1000-1500", "no"),
        ] {
            rows.push(vec![nbhd.to_string(), price.to_string(), pets.to_string()]);
        }
        FacetTable::new(
            vec!["neighborhood".into(), "price".into(), "pets".into()],
            rows,
        )
    }

    /// Log dominated by price-constraining queries.
    fn price_log() -> Vec<LogQuery> {
        vec![
            vec![("price".into(), "500-1000".into())],
            vec![("price".into(), "500-1000".into())],
            vec![("price".into(), "1000-1500".into())],
            vec![("neighborhood".into(), "redmond".into())],
        ]
    }

    #[test]
    fn log_model_probabilities() {
        let log = price_log();
        let m = LogModel::new(&log);
        assert!((m.p_expand("price") - 0.75).abs() < 1e-12);
        assert!((m.p_expand("neighborhood") - 0.25).abs() < 1e-12);
        assert!((m.p_relevant("price", "500-1000") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.p_expand("pets"), 0.0);
    }

    #[test]
    fn greedy_splits_on_popular_facet_first() {
        let table = apartments();
        let log = price_log();
        let m = LogModel::new(&log);
        let tree = build_greedy(&table, &m, (0..table.rows.len()).collect(), 2);
        match &tree {
            NavNode::Facet { attr, .. } => assert_eq!(attr, "price"),
            NavNode::Leaf { .. } => panic!("expected a facet split"),
        }
    }

    #[test]
    fn greedy_cost_beats_or_matches_alternatives() {
        let table = apartments();
        let log = price_log();
        let m = LogModel::new(&log);
        let all: Vec<usize> = (0..table.rows.len()).collect();
        let greedy = build_greedy(&table, &m, all.clone(), 2);
        let flat = NavNode::Leaf { rows: all.clone() };
        let fixed = build_fixed(&table, &["pets".into(), "neighborhood".into()], all);
        let gc = greedy.expected_cost(&m);
        assert!(gc <= flat.expected_cost(&m) + 1e-9);
        assert!(gc <= fixed.expected_cost(&m) + 1e-9);
    }

    #[test]
    fn singleton_results_become_leaves() {
        let table = apartments();
        let log = price_log();
        let m = LogModel::new(&log);
        let tree = build_greedy(&table, &m, vec![0], 3);
        assert!(matches!(tree, NavNode::Leaf { ref rows } if rows == &vec![0]));
    }

    #[test]
    fn max_depth_limits_tree() {
        let table = apartments();
        let log = price_log();
        let m = LogModel::new(&log);
        let tree = build_greedy(&table, &m, (0..table.rows.len()).collect(), 1);
        assert!(tree.depth() <= 1);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        FacetTable::new(vec!["a".into()], vec![vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn from_results_projects_tuple_trees_onto_attributes() {
        let mut db = kwdb_relational::Database::new();
        kwdb_relational::database::dblp_schema(&mut db).unwrap();
        let c1 = db
            .insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        let c2 = db
            .insert("conference", vec![2.into(), "VLDB".into(), 2008.into()])
            .unwrap();
        let p1 = db
            .insert("paper", vec![10.into(), "keyword search".into(), 1.into()])
            .unwrap();
        let p2 = db
            .insert("paper", vec![11.into(), "query forms".into(), 2.into()])
            .unwrap();
        db.build_text_index();
        // two joining trees and one conference-less "result"
        let results = vec![vec![p1, c1], vec![p2, c2], vec![p1]];
        let t = FacetTable::from_results(&db, &["conference.name", "conference.year"], &results)
            .unwrap();
        assert_eq!(t.attributes, vec!["conference.name", "conference.year"]);
        assert_eq!(t.rows[0], vec!["SIGMOD", "2007"]);
        assert_eq!(t.rows[1], vec!["VLDB", "2008"]);
        assert_eq!(t.rows[2], vec!["", ""], "tree without the table → blank");
        // the real distribution feeds the nav-tree builders directly
        let counts = t.value_counts("conference.name");
        assert_eq!(
            counts,
            vec![
                (String::new(), 1),
                ("SIGMOD".to_string(), 1),
                ("VLDB".to_string(), 1)
            ]
        );
        assert!(FacetTable::from_results(&db, &["conference.bogus"], &results).is_err());
        assert!(FacetTable::from_results(&db, &["noperiod"], &results).is_err());
    }

    use std::collections::HashMap;

    fn facetor_model(price_interest: f64) -> FacetorModel {
        FacetorModel::new(
            HashMap::from([
                ("price".to_string(), price_interest),
                ("neighborhood".to_string(), 0.2),
            ]),
            2,
        )
    }

    #[test]
    fn facetor_splits_on_the_interesting_facet() {
        let table = apartments();
        let model = facetor_model(5.0);
        let tree = build_greedy_facetor(&table, &model, (0..table.rows.len()).collect(), 2);
        match &tree {
            NavNode::Facet { attr, .. } => assert_eq!(attr, "price"),
            NavNode::Leaf { .. } => panic!("expected a split"),
        }
    }

    #[test]
    fn facetor_uninteresting_facets_stay_flat() {
        // zero interestingness everywhere → expanding never pays; show results
        let table = apartments();
        let model = FacetorModel::new(HashMap::new(), 2);
        let tree = build_greedy_facetor(&table, &model, (0..table.rows.len()).collect(), 2);
        assert!(matches!(tree, NavNode::Leaf { .. }));
    }

    #[test]
    fn facetor_pagination_reduces_reading_cost() {
        let table = apartments();
        let rows: Vec<usize> = (0..table.rows.len()).collect();
        let one_level = build_fixed(&table, &["price".to_string()], rows);
        let small_pages = facetor_model(5.0);
        let big_pages = FacetorModel::new(HashMap::from([("price".to_string(), 5.0)]), 50);
        // with big pages every value is read up-front; small pages defer
        // later values behind SHOWMORE, lowering the expected read cost
        assert!(small_pages.expected_cost(&one_level) <= big_pages.expected_cost(&one_level));
    }

    #[test]
    fn facetor_cost_of_leaf_is_result_count() {
        let model = facetor_model(1.0);
        let leaf = NavNode::Leaf {
            rows: vec![1, 2, 3],
        };
        assert_eq!(model.expected_cost(&leaf), 3.0);
    }
}
