//! Aggregate keyword queries over tables with minimal group-bys
//! (Zhou & Pei, EDBT 09) — tutorial slides 16 and 164–165.
//!
//! "When and where can I experience pool, motorcycle and American food
//! together?" No single row covers all keywords; the answer is a *group* of
//! rows sharing interesting attribute values whose union covers the query:
//! `{month=December, state=Texas}` and `{state=Michigan}` in the slide's
//! events table. Groups are defined by a subset of the user's interesting
//! attributes; *minimal* group-bys prefer the most specific qualifying
//! groups (no qualifying group with strictly more shared attributes and a
//! subset of rows).

use kwdb_common::{KwdbError, Result};
use kwdb_relational::{Database, TupleId};
use std::collections::{BTreeMap, BTreeSet};

/// A table of rows: interesting attribute values + a free-text document.
#[derive(Debug, Clone)]
pub struct AggTable {
    pub attributes: Vec<String>,
    /// Per row: attribute values aligned with `attributes`.
    pub values: Vec<Vec<String>>,
    /// Per row: tokenized text (the searchable description etc.).
    pub text: Vec<Vec<String>>,
}

impl AggTable {
    /// Build from a database table: `attrs` name the interesting columns;
    /// a row's searchable text is the tokenized content of the table's
    /// full-text columns ([`Database::tuple_tokens`]). This binds aggregate
    /// keyword search to the same storage the engines query, instead of a
    /// hand-maintained copy of the data.
    pub fn from_database(db: &Database, table: &str, attrs: &[&str]) -> Result<AggTable> {
        let tid = db.table_id(table)?;
        let t = db.table(tid);
        let cols: Vec<usize> = attrs
            .iter()
            .map(|a| {
                t.schema
                    .columns
                    .iter()
                    .position(|c| c.name == *a)
                    .ok_or_else(|| {
                        KwdbError::UnknownObject(format!("column `{a}` of table `{table}`"))
                    })
            })
            .collect::<Result<_>>()?;
        let mut values = Vec::with_capacity(t.len());
        let mut text = Vec::with_capacity(t.len());
        for (rid, row) in t.iter() {
            values.push(cols.iter().map(|&c| row[c].to_string()).collect());
            text.push(db.tuple_tokens(TupleId::new(tid, rid)));
        }
        Ok(AggTable {
            attributes: attrs.iter().map(|a| a.to_string()).collect(),
            values,
            text,
        })
    }
}

/// One qualifying cluster: shared attribute values (None = `*`) plus member
/// rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCluster {
    /// `shared[i]` is `Some(v)` when all members agree on attribute `i`.
    pub shared: Vec<Option<String>>,
    pub rows: Vec<usize>,
}

impl AggCluster {
    /// Render like the slide: `December Texas` / `* Michigan`.
    pub fn display(&self) -> String {
        self.shared
            .iter()
            .map(|v| v.as_deref().unwrap_or("*").to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn specificity(&self) -> usize {
        self.shared.iter().filter(|v| v.is_some()).count()
    }
}

/// Does a phrase (token sequence) occur in a token list?
fn contains_phrase(tokens: &[String], phrase: &[String]) -> bool {
    !phrase.is_empty() && tokens.windows(phrase.len()).any(|w| w == phrase)
}

/// Find qualifying clusters for `phrases` (each a keyword or multi-token
/// phrase): for every subset of interesting attributes, group rows by those
/// attributes and keep groups whose rows jointly cover every phrase.
/// Dominated clusters (same rows, fewer shared attributes) are dropped,
/// then clusters are ordered most-specific first.
pub fn aggregate_search(table: &AggTable, phrases: &[Vec<String>]) -> Vec<AggCluster> {
    let n_attrs = table.attributes.len();
    assert!(
        n_attrs <= 16,
        "attribute subsets are enumerated exhaustively"
    );
    // rows matching each phrase
    let phrase_rows: Vec<BTreeSet<usize>> = phrases
        .iter()
        .map(|p| {
            table
                .text
                .iter()
                .enumerate()
                .filter(|(_, toks)| contains_phrase(toks, p))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    if phrase_rows.iter().any(|s| s.is_empty()) {
        return Vec::new();
    }
    let candidate_rows: BTreeSet<usize> = phrase_rows.iter().flatten().copied().collect();

    let mut clusters: Vec<AggCluster> = Vec::new();
    for mask in 0u32..(1 << n_attrs) {
        let attrs: Vec<usize> = (0..n_attrs).filter(|&a| mask & (1 << a) != 0).collect();
        // group candidate rows by the chosen attributes
        let mut groups: BTreeMap<Vec<&str>, Vec<usize>> = BTreeMap::new();
        for &r in &candidate_rows {
            let key: Vec<&str> = attrs.iter().map(|&a| table.values[r][a].as_str()).collect();
            groups.entry(key).or_default().push(r);
        }
        for (key, rows) in groups {
            // the group must cover every phrase
            let covers = phrase_rows
                .iter()
                .all(|pr| rows.iter().any(|r| pr.contains(r)));
            if !covers {
                continue;
            }
            // keep only rows contributing some phrase
            let rows: Vec<usize> = rows
                .into_iter()
                .filter(|r| phrase_rows.iter().any(|pr| pr.contains(r)))
                .collect();
            let mut shared: Vec<Option<String>> = vec![None; n_attrs];
            for (i, &a) in attrs.iter().enumerate() {
                shared[a] = Some(key[i].to_string());
            }
            clusters.push(AggCluster { shared, rows });
        }
    }
    // minimality (Zhou & Pei's minimal group-bys): drop a cluster when its
    // rows are covered by strictly more specific qualifying refinements —
    // e.g. {*, *} is redundant once {dec, tx} and {*, mi} qualify.
    clusters.sort_by_key(|c| std::cmp::Reverse(c.specificity()));
    let mut kept: Vec<AggCluster> = Vec::new();
    for c in clusters {
        let covered: BTreeSet<usize> = kept
            .iter()
            .filter(|k| {
                k.specificity() > c.specificity()
                    && k.shared
                        .iter()
                        .zip(&c.shared)
                        .all(|(kv, cv)| cv.is_none() || kv == cv)
            })
            .flat_map(|k| k.rows.iter().copied())
            .collect();
        if !c.rows.iter().all(|r| covered.contains(r)) {
            kept.push(c);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        kwdb_common::text::tokenize(s)
    }

    /// The slide-16/165 events table.
    fn events() -> AggTable {
        let rows: Vec<(&str, &str, &str, &str)> = vec![
            ("dec", "tx", "houston", "US Open Pool Best of 19 ranking"),
            ("dec", "tx", "dallas", "Cowboy dream run motorcycle beer"),
            (
                "dec",
                "tx",
                "austin",
                "SPAM museum party classical american food",
            ),
            (
                "oct",
                "mi",
                "detroit",
                "Motorcycle rallies tournament round robin",
            ),
            ("oct", "mi", "flint", "Michigan pool exhibition non-ranking"),
            (
                "sep",
                "mi",
                "lansing",
                "American food history best food from usa",
            ),
        ];
        AggTable {
            attributes: vec!["month".into(), "state".into()],
            values: rows
                .iter()
                .map(|(m, s, _, _)| vec![m.to_string(), s.to_string()])
                .collect(),
            text: rows.iter().map(|(_, _, _, d)| toks(d)).collect(),
        }
    }

    fn query() -> Vec<Vec<String>> {
        vec![toks("motorcycle"), toks("pool"), toks("american food")]
    }

    #[test]
    fn slide165_december_texas_and_michigan() {
        let clusters = aggregate_search(&events(), &query());
        let rendered: Vec<String> = clusters.iter().map(|c| c.display()).collect();
        assert!(rendered.contains(&"dec tx".to_string()), "{rendered:?}");
        assert!(rendered.contains(&"* mi".to_string()), "{rendered:?}");
    }

    #[test]
    fn texas_cluster_has_three_events() {
        let clusters = aggregate_search(&events(), &query());
        let tx = clusters.iter().find(|c| c.display() == "dec tx").unwrap();
        assert_eq!(tx.rows, vec![0, 1, 2]);
        let mi = clusters.iter().find(|c| c.display() == "* mi").unwrap();
        assert_eq!(mi.rows, vec![3, 4, 5]);
    }

    #[test]
    fn phrases_match_as_sequences() {
        let t = events();
        // "food american" (wrong order) must not match anything
        let none = aggregate_search(&t, &[toks("food american")]);
        assert!(none.is_empty());
    }

    #[test]
    fn unmatched_phrase_gives_no_clusters() {
        let clusters = aggregate_search(&events(), &[toks("opera")]);
        assert!(clusters.is_empty());
    }

    #[test]
    fn all_star_cluster_suppressed_by_refinements() {
        // {dec, tx} and {*, mi} jointly cover every qualifying row, so the
        // trivial {*, *} group must not be reported (slide 165's output has
        // exactly two clusters).
        let clusters = aggregate_search(&events(), &query());
        assert!(
            clusters.iter().all(|c| c.display() != "* *"),
            "{clusters:?}"
        );
        assert_eq!(clusters.len(), 2, "{clusters:?}");
    }

    #[test]
    fn from_database_reproduces_the_events_scenario() {
        use kwdb_relational::schema::{ColumnType, TableBuilder};
        let mut db = Database::new();
        db.create_table(
            TableBuilder::new("event")
                .column("id", ColumnType::Int)
                .column_no_index("month", ColumnType::Text)
                .column_no_index("state", ColumnType::Text)
                .column("description", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        for (i, (m, s, d)) in [
            ("dec", "tx", "US Open Pool Best of 19 ranking"),
            ("dec", "tx", "Cowboy dream run motorcycle beer"),
            ("dec", "tx", "SPAM museum party classical american food"),
            ("oct", "mi", "Motorcycle rallies tournament round robin"),
            ("oct", "mi", "Michigan pool exhibition non-ranking"),
            ("sep", "mi", "American food history best food from usa"),
        ]
        .iter()
        .enumerate()
        {
            db.insert(
                "event",
                vec![(i as i64).into(), (*m).into(), (*s).into(), (*d).into()],
            )
            .unwrap();
        }
        db.build_text_index();
        let table = AggTable::from_database(&db, "event", &["month", "state"]).unwrap();
        assert_eq!(table.attributes, vec!["month", "state"]);
        assert_eq!(table.values[0], vec!["dec", "tx"]);
        let clusters = aggregate_search(&table, &query());
        let rendered: Vec<String> = clusters.iter().map(|c| c.display()).collect();
        assert!(rendered.contains(&"dec tx".to_string()), "{rendered:?}");
        assert!(rendered.contains(&"* mi".to_string()), "{rendered:?}");
        assert!(AggTable::from_database(&db, "event", &["bogus"]).is_err());
        assert!(AggTable::from_database(&db, "nope", &["month"]).is_err());
    }

    #[test]
    fn specific_clusters_dominate_star_duplicates() {
        let clusters = aggregate_search(&events(), &query());
        // {dec, tx} and the fully-star cluster over the same rows must not
        // coexist with identical row sets
        let tx_rows = clusters
            .iter()
            .find(|c| c.display() == "dec tx")
            .unwrap()
            .rows
            .clone();
        assert!(!clusters
            .iter()
            .any(|c| c.rows == tx_rows && c.display() == "* *"));
    }
}
