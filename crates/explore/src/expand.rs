//! Query expansion from result clusters (tutorial slides 80–82).
//!
//! An ambiguous query ("java") has results in several semantic clusters
//! (language / island / band). Each cluster should get one *expanded query*
//! that retrieves exactly it: maximal recall of the cluster, minimal leakage
//! from the others — i.e. maximize the F-measure of the expanded query's
//! result set against the cluster. The optimization is APX-hard (slide 82);
//! the greedy below adds the term with the best F-gain until no term helps.

use std::collections::HashSet;

/// Precision/recall/F of retrieving `retrieved` (doc indices) against the
/// target `cluster`.
pub fn f_measure(retrieved: &HashSet<usize>, cluster: &HashSet<usize>) -> f64 {
    if retrieved.is_empty() || cluster.is_empty() {
        return 0.0;
    }
    let tp = retrieved.intersection(cluster).count() as f64;
    if tp == 0.0 {
        return 0.0;
    }
    let p = tp / retrieved.len() as f64;
    let r = tp / cluster.len() as f64;
    2.0 * p * r / (p + r)
}

/// An expanded query for one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedQuery {
    /// Original query terms plus the added expansion terms.
    pub terms: Vec<String>,
    pub f_measure: f64,
}

/// Documents matching all `terms` (AND semantics).
fn retrieve(docs: &[Vec<String>], terms: &[String]) -> HashSet<usize> {
    docs.iter()
        .enumerate()
        .filter(|(_, d)| terms.iter().all(|t| d.iter().any(|x| x == t)))
        .map(|(i, _)| i)
        .collect()
}

/// Greedy per-cluster expansion: starting from the original query, add the
/// term (from the cluster's vocabulary) with the largest F-measure gain.
pub fn expand_for_cluster<S: AsRef<str>>(
    docs: &[Vec<String>],
    original: &[S],
    cluster: &HashSet<usize>,
    max_extra_terms: usize,
) -> ExpandedQuery {
    let mut terms: Vec<String> = original.iter().map(|s| s.as_ref().to_string()).collect();
    let mut current_f = f_measure(&retrieve(docs, &terms), cluster);
    // candidate vocabulary: terms appearing in the cluster's documents
    let mut vocab: Vec<String> = cluster
        .iter()
        .flat_map(|&i| docs[i].iter().cloned())
        .collect::<std::collections::BTreeSet<String>>()
        .into_iter()
        .collect();
    vocab.retain(|t| !terms.contains(t));
    for _ in 0..max_extra_terms {
        let mut best: Option<(f64, String)> = None;
        for t in &vocab {
            let mut cand = terms.clone();
            cand.push(t.clone());
            let f = f_measure(&retrieve(docs, &cand), cluster);
            if f > current_f && best.as_ref().is_none_or(|(bf, _)| f > *bf) {
                best = Some((f, t.clone()));
            }
        }
        let Some((f, t)) = best else { break };
        current_f = f;
        vocab.retain(|v| v != &t);
        terms.push(t);
    }
    ExpandedQuery {
        terms,
        f_measure: current_f,
    }
}

/// Expand every cluster of a clustering.
pub fn expand_all<S: AsRef<str>>(
    docs: &[Vec<String>],
    original: &[S],
    clusters: &[HashSet<usize>],
    max_extra_terms: usize,
) -> Vec<ExpandedQuery> {
    clusters
        .iter()
        .map(|c| expand_for_cluster(docs, original, c, max_extra_terms))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        kwdb_common::text::tokenize(s)
    }

    /// Slide 81's three Java senses.
    fn java_docs() -> (Vec<Vec<String>>, Vec<HashSet<usize>>) {
        let docs = vec![
            toks("java oo language developed at sun"), // 0 language
            toks("java software platform applet language"), // 1 language
            toks("java three languages programming"),  // 2 language
            toks("java island of indonesia"),          // 3 island
            toks("java island has four provinces"),    // 4 island
            toks("java band formed in paris"),         // 5 band
            toks("java band active from 1972 to 1983"), // 6 band
        ];
        let clusters = vec![
            HashSet::from([0, 1, 2]),
            HashSet::from([3, 4]),
            HashSet::from([5, 6]),
        ];
        (docs, clusters)
    }

    #[test]
    fn expansions_describe_their_clusters() {
        let (docs, clusters) = java_docs();
        let expanded = expand_all(&docs, &["java"], &clusters, 2);
        assert_eq!(expanded.len(), 3);
        // the island and band clusters have perfect describing terms
        assert!(expanded[1].terms.contains(&"island".to_string()));
        assert!((expanded[1].f_measure - 1.0).abs() < 1e-12);
        assert!(expanded[2].terms.contains(&"band".to_string()));
        assert!((expanded[2].f_measure - 1.0).abs() < 1e-12);
        // every expansion keeps the original query term
        assert!(expanded
            .iter()
            .all(|e| e.terms.contains(&"java".to_string())));
    }

    #[test]
    fn expansion_improves_f_over_original() {
        let (docs, clusters) = java_docs();
        for cluster in &clusters {
            let base = f_measure(&retrieve(&docs, &["java".to_string()]), cluster);
            let exp = expand_for_cluster(&docs, &["java"], cluster, 2);
            assert!(exp.f_measure >= base);
        }
    }

    #[test]
    fn f_measure_basics() {
        let cluster: HashSet<usize> = [0, 1].into();
        assert_eq!(f_measure(&HashSet::from([0, 1]), &cluster), 1.0);
        assert_eq!(f_measure(&HashSet::from([2]), &cluster), 0.0);
        assert_eq!(f_measure(&HashSet::new(), &cluster), 0.0);
        // half precision, full recall → F = 2/3... precision 2/4, recall 1
        let f = f_measure(&HashSet::from([0, 1, 2, 3]), &cluster);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_extra_terms_respected() {
        let (docs, clusters) = java_docs();
        let exp = expand_for_cluster(&docs, &["java"], &clusters[0], 1);
        assert!(exp.terms.len() <= 2);
    }

    #[test]
    fn greedy_stops_when_no_gain() {
        let docs = vec![toks("a b"), toks("a b")];
        let cluster: HashSet<usize> = [0, 1].into();
        let exp = expand_for_cluster(&docs, &["a"], &cluster, 5);
        // already perfect; nothing should be added
        assert_eq!(exp.terms, vec!["a".to_string()]);
        assert_eq!(exp.f_measure, 1.0);
    }
}
