//! Result differentiation (Liu, Sun & Chen, *Structured Search Result
//! Differentiation*, VLDB 09) — tutorial slides 149–153.
//!
//! Snippets summarize one result; comparison shows how results *differ*.
//! Each result is summarized by at most `B` of its features (typed values),
//! chosen to maximize the **Degree of Differentiation** — the number of
//! (result-pair, feature-type) combinations whose selected values differ.
//! Optimal selection is NP-hard (slide 153); this module implements the
//! paper's two tractable targets:
//!
//! * **weak local optimality** — no single-feature swap in any one result
//!   improves DoD ([`differentiate`]'s hill-climbing loop);
//! * the exhaustive [`brute_force`] oracle for tests.

use std::collections::{BTreeSet, HashMap};

/// A typed feature of a result, e.g. `("paper:title", "cloud")`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Feature {
    pub ftype: String,
    pub value: String,
}

impl Feature {
    pub fn new(ftype: &str, value: &str) -> Self {
        Feature {
            ftype: ftype.to_string(),
            value: value.to_string(),
        }
    }
}

/// The selected comparison table: per result, the chosen features.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonTable {
    pub selections: Vec<Vec<Feature>>,
    pub dod: usize,
}

/// Degree of differentiation of a selection: for every result pair, count
/// the feature types selected **in both** results whose value sets differ.
/// Types selected on one side only don't count — a difference the user
/// cannot see in the other column is not a comparison (and counting
/// presence-only differences would reward degenerate disjoint selections).
pub fn degree_of_differentiation(selections: &[Vec<Feature>]) -> usize {
    let mut dod = 0;
    for i in 0..selections.len() {
        for j in i + 1..selections.len() {
            let ti: BTreeSet<&str> = selections[i].iter().map(|f| f.ftype.as_str()).collect();
            let tj: BTreeSet<&str> = selections[j].iter().map(|f| f.ftype.as_str()).collect();
            for t in ti.intersection(&tj) {
                let vi: BTreeSet<&str> = selections[i]
                    .iter()
                    .filter(|f| f.ftype == *t)
                    .map(|f| f.value.as_str())
                    .collect();
                let vj: BTreeSet<&str> = selections[j]
                    .iter()
                    .filter(|f| f.ftype == *t)
                    .map(|f| f.value.as_str())
                    .collect();
                if vi != vj {
                    dod += 1;
                }
            }
        }
    }
    dod
}

/// Select at most `budget` features per result, maximizing DoD by greedy
/// seeding plus single-swap hill climbing (weak local optimality).
pub fn differentiate(results: &[Vec<Feature>], budget: usize) -> ComparisonTable {
    // seed: most *distinctive* features first — features whose value is rare
    // across results
    let mut value_count: HashMap<&Feature, usize> = HashMap::new();
    for r in results {
        for f in r {
            *value_count.entry(f).or_insert(0) += 1;
        }
    }
    let mut selections: Vec<Vec<Feature>> = results
        .iter()
        .map(|r| {
            let mut fs: Vec<&Feature> = r.iter().collect();
            fs.sort_by_key(|f| (value_count[f], f.ftype.clone(), f.value.clone()));
            fs.into_iter().take(budget).cloned().collect()
        })
        .collect();
    let mut dod = degree_of_differentiation(&selections);
    // hill climb: try replacing any selected feature with any unselected one
    let mut improved = true;
    while improved {
        improved = false;
        for (ri, result) in results.iter().enumerate() {
            for si in 0..selections[ri].len() {
                for cand in result {
                    if selections[ri].contains(cand) {
                        continue;
                    }
                    let old = std::mem::replace(&mut selections[ri][si], cand.clone());
                    let nd = degree_of_differentiation(&selections);
                    if nd > dod {
                        dod = nd;
                        improved = true;
                    } else {
                        selections[ri][si] = old;
                    }
                }
            }
        }
    }
    ComparisonTable { selections, dod }
}

/// Exhaustive optimum for tiny inputs (tests only).
pub fn brute_force(results: &[Vec<Feature>], budget: usize) -> ComparisonTable {
    fn combos(features: &[Feature], budget: usize) -> Vec<Vec<Feature>> {
        let mut out = vec![Vec::new()];
        for f in features {
            let mut extra = Vec::new();
            for c in &out {
                if c.len() < budget {
                    let mut n = c.clone();
                    n.push(f.clone());
                    extra.push(n);
                }
            }
            out.extend(extra);
        }
        out
    }
    let per_result: Vec<Vec<Vec<Feature>>> = results.iter().map(|r| combos(r, budget)).collect();
    let mut best: Option<ComparisonTable> = None;
    let mut idx = vec![0usize; results.len()];
    loop {
        let selection: Vec<Vec<Feature>> = idx
            .iter()
            .zip(&per_result)
            .map(|(&i, cs)| cs[i].clone())
            .collect();
        let dod = degree_of_differentiation(&selection);
        if best.as_ref().is_none_or(|b| dod > b.dod) {
            best = Some(ComparisonTable {
                selections: selection,
                dod,
            });
        }
        let mut pos = 0;
        loop {
            if pos == idx.len() {
                return best.expect("at least one combination");
            }
            idx[pos] += 1;
            if idx[pos] < per_result[pos].len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slide 151: ICDE 2000 vs ICDE 2010.
    fn icde_results() -> Vec<Vec<Feature>> {
        vec![
            vec![
                Feature::new("conf:year", "2000"),
                Feature::new("paper:title", "olap"),
                Feature::new("paper:title", "data mining"),
                Feature::new("paper:title", "network"),
                Feature::new("author:country", "usa"),
            ],
            vec![
                Feature::new("conf:year", "2010"),
                Feature::new("paper:title", "cloud"),
                Feature::new("paper:title", "scalability"),
                Feature::new("paper:title", "network"),
                Feature::new("author:country", "usa"),
            ],
        ]
    }

    #[test]
    fn slide151_differentiating_features_chosen() {
        let table = differentiate(&icde_results(), 2);
        // both results should expose year (differs) and distinct titles,
        // not the shared "network" title or "usa" country
        for sel in &table.selections {
            assert!(!sel.iter().any(|f| f.value == "network"));
            assert!(!sel.iter().any(|f| f.value == "usa"));
        }
        assert!(table.selections[0].iter().any(|f| f.ftype == "conf:year"));
        // DoD: with 2 features each differing on 2 types = 2 (pairs=1)
        assert_eq!(table.dod, 2);
    }

    #[test]
    fn matches_brute_force_on_small_inputs() {
        let results = icde_results();
        for budget in 1..=3 {
            let greedy = differentiate(&results, budget);
            let opt = brute_force(&results, budget);
            assert_eq!(greedy.dod, opt.dod, "budget {budget}");
        }
    }

    #[test]
    fn identical_results_have_zero_dod() {
        let r = vec![
            vec![Feature::new("t", "a"), Feature::new("t", "b")],
            vec![Feature::new("t", "a"), Feature::new("t", "b")],
        ];
        let table = differentiate(&r, 2);
        assert_eq!(table.dod, 0);
    }

    #[test]
    fn budget_respected() {
        let table = differentiate(&icde_results(), 1);
        assert!(table.selections.iter().all(|s| s.len() <= 1));
        assert_eq!(table.dod, 1);
    }

    #[test]
    fn three_results_pairwise_dod() {
        let r = vec![
            vec![Feature::new("x", "1")],
            vec![Feature::new("x", "2")],
            vec![Feature::new("x", "3")],
        ];
        let table = differentiate(&r, 1);
        // 3 pairs, all differing on type x
        assert_eq!(table.dod, 3);
    }

    #[test]
    fn presence_only_differences_do_not_count() {
        let a = vec![vec![Feature::new("x", "1")], vec![Feature::new("y", "2")]];
        assert_eq!(degree_of_differentiation(&a), 0); // no shared type
        let b = vec![vec![Feature::new("x", "1")], vec![Feature::new("x", "2")]];
        assert_eq!(degree_of_differentiation(&b), 1);
    }
}
