//! Size-*l* object summaries: présentation of a result as a bounded
//! FK-neighborhood (tutorial slides 143–148; précis-style answers).
//!
//! A joining tree of tuples is a correct answer but a poor *presentation*:
//! the `write(wid, aid, pid)` junction row in the middle of an
//! author ⋈ write ⋈ paper tree carries no user-facing information, while
//! the conference the paper appeared at — one FK hop *outside* the tree —
//! often does. A size-*l* object summary starts from the result's own
//! tuples and grows outward along foreign keys, breadth-first, until *l*
//! tuples are collected: the result plus the most closely-joined context
//! around it.
//!
//! Expansion is *bidirectional*: a frontier tuple pulls in the tuples it
//! references ([`Database::fk_neighbors`]) and the tuples referencing it
//! (a scan per incoming schema edge) — an author's context is its papers
//! just as a paper's context is its conference. The expansion is
//! deterministic — seeds in result order, then outgoing-FK order, then
//! incoming edges in schema order with referencing rows in row order — so
//! the same hit always summarizes identically regardless of thread or
//! worker count.

use kwdb_relational::{Database, TupleId};
use std::collections::{HashSet, VecDeque};

/// Tuples one FK hop from `t`, in either direction, deterministically
/// ordered: referenced tuples first, then referencing tuples.
fn fk_both_directions(db: &Database, t: TupleId) -> Vec<TupleId> {
    let mut out = db.fk_neighbors(t);
    let table = db.table(t.table);
    for e in db.schema_graph().edges().iter().filter(|e| e.to == t.table) {
        let pk = table.get(t.row, e.pk_column);
        if pk.is_null() {
            continue;
        }
        for rid in db.scan_eq(e.from, e.fk_column, pk) {
            out.push(TupleId::new(e.from, rid));
        }
    }
    out
}

/// The size-*l* FK-neighborhood of `seeds`: the seed tuples themselves
/// (deduplicated, in order) followed by breadth-first FK expansion, cut to
/// at most `l` tuples. `l == 0` returns the empty summary; `l` smaller than
/// the seed count truncates the seeds themselves.
pub fn object_summary(db: &Database, seeds: &[TupleId], l: usize) -> Vec<TupleId> {
    let mut out: Vec<TupleId> = Vec::with_capacity(l.min(seeds.len() + 8));
    let mut seen: HashSet<TupleId> = HashSet::new();
    let mut frontier: VecDeque<TupleId> = VecDeque::new();
    for &t in seeds {
        if out.len() >= l {
            return out;
        }
        if seen.insert(t) {
            out.push(t);
            frontier.push_back(t);
        }
    }
    while out.len() < l {
        let Some(t) = frontier.pop_front() else {
            break;
        };
        for n in fk_both_directions(db, t) {
            if out.len() >= l {
                break;
            }
            if seen.insert(n) {
                out.push(n);
                frontier.push_back(n);
            }
        }
    }
    out
}

/// Render a summary's tuples as `table(v, …)` lines via
/// [`Database::format_tuple`].
pub fn render_summary(db: &Database, tuples: &[TupleId]) -> Vec<String> {
    tuples.iter().map(|&t| db.format_tuple(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::database::dblp_schema;

    /// conference SIGMOD ← paper p1 ← write w1 ← author alice, plus an
    /// unrelated paper p2.
    fn db() -> (Database, TupleId, TupleId) {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        let p1 = db
            .insert("paper", vec![10.into(), "keyword search".into(), 1.into()])
            .unwrap();
        db.insert("author", vec![100.into(), "alice".into()])
            .unwrap();
        let w1 = db
            .insert("write", vec![1000.into(), 100.into(), 10.into()])
            .unwrap();
        db.insert("paper", vec![11.into(), "other topic".into(), 1.into()])
            .unwrap();
        db.build_text_index();
        (db, p1, w1)
    }

    #[test]
    fn summary_starts_at_seeds_and_expands_by_fk() {
        let (db, p1, w1) = db();
        let sum = object_summary(&db, &[p1, w1], 4);
        assert_eq!(sum.len(), 4);
        assert_eq!(&sum[..2], &[p1, w1], "seeds come first, in order");
        // the FK frontier of {paper, write} is {conference, author}
        let rendered = render_summary(&db, &sum).join("\n");
        assert!(rendered.contains("SIGMOD"));
        assert!(rendered.contains("alice"));
        assert!(!rendered.contains("other topic"), "p2 is 2 hops away");
    }

    #[test]
    fn size_bound_is_exact_and_zero_is_empty() {
        let (db, p1, _) = db();
        assert!(object_summary(&db, &[p1], 0).is_empty());
        assert_eq!(object_summary(&db, &[p1], 1), vec![p1]);
        // l larger than the connected component stops at the component
        let all = object_summary(&db, &[p1], 100);
        assert!(all.len() >= 4 && all.len() < 100);
    }

    #[test]
    fn duplicate_seeds_collapse() {
        let (db, p1, _) = db();
        let sum = object_summary(&db, &[p1, p1, p1], 2);
        assert_eq!(sum[0], p1);
        assert_eq!(sum.iter().filter(|&&t| t == p1).count(), 1);
    }
}
