//! TopCells: keyword search in text cubes (Ding, Zhao, Lin, Han & Zhai,
//! ICDE 10) — tutorial slides 166–167.
//!
//! A text cube extends a data cube with a document per row: each **cell**
//! fixes some dimension values (`{Brand:Acer, Model:AOA110, *, *}`) and
//! aggregates the documents of matching rows. For a keyword query, TopCells
//! returns the cells with the highest *average document relevance*, subject
//! to a minimum support (number of matching documents) — shoppers see the
//! common feature combinations of relevant products, not just individual
//! rows.

use kwdb_rank::{CorpusStats, TfIdf};
use std::collections::BTreeMap;

/// The cube: dimension names, per-row dimension values, per-row documents.
#[derive(Debug, Clone)]
pub struct TextCube {
    pub dimensions: Vec<String>,
    pub values: Vec<Vec<String>>,
    pub docs: Vec<Vec<String>>,
}

/// A scored cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// `coords[i]` fixes dimension `i` (`None` = `*`).
    pub coords: Vec<Option<String>>,
    /// Rows matching the cell whose documents contain all keywords.
    pub support: usize,
    /// Average relevance of the supporting documents.
    pub score: f64,
}

impl Cell {
    pub fn display(&self) -> String {
        self.coords
            .iter()
            .map(|c| c.as_deref().unwrap_or("*").to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

/// Top-k cells for `keywords` with support ≥ `min_support`.
pub fn top_cells<S: AsRef<str>>(
    cube: &TextCube,
    keywords: &[S],
    min_support: usize,
    k: usize,
) -> Vec<Cell> {
    let d = cube.dimensions.len();
    assert!(d <= 16, "dimension subsets are enumerated exhaustively");
    let mut stats = CorpusStats::new();
    for doc in &cube.docs {
        stats.add_doc(doc);
    }
    let scorer = TfIdf::new(&stats);
    // rows whose documents contain all keywords, with their relevance
    let matching: Vec<(usize, f64)> = cube
        .docs
        .iter()
        .enumerate()
        .filter(|(_, doc)| {
            keywords
                .iter()
                .all(|kw| doc.iter().any(|t| t == kw.as_ref()))
        })
        .map(|(i, doc)| (i, scorer.score(keywords, doc)))
        .collect();
    if matching.is_empty() {
        return Vec::new();
    }
    let mut cells: Vec<Cell> = Vec::new();
    for mask in 0u32..(1 << d) {
        let dims: Vec<usize> = (0..d).filter(|&i| mask & (1 << i) != 0).collect();
        let mut groups: BTreeMap<Vec<&str>, Vec<f64>> = BTreeMap::new();
        for &(row, score) in &matching {
            let key: Vec<&str> = dims.iter().map(|&i| cube.values[row][i].as_str()).collect();
            groups.entry(key).or_default().push(score);
        }
        for (key, scores) in groups {
            if scores.len() < min_support {
                continue;
            }
            let mut coords: Vec<Option<String>> = vec![None; d];
            for (i, &dim) in dims.iter().enumerate() {
                coords[dim] = Some(key[i].to_string());
            }
            cells.push(Cell {
                coords,
                support: scores.len(),
                score: scores.iter().sum::<f64>() / scores.len() as f64,
            });
        }
    }
    cells.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(b.support.cmp(&a.support))
            .then(a.coords.cmp(&b.coords))
    });
    cells.truncate(k);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        kwdb_common::text::tokenize(s)
    }

    /// The slide-166 laptop cube.
    fn laptops() -> TextCube {
        TextCube {
            dimensions: vec!["brand".into(), "model".into(), "cpu".into(), "os".into()],
            values: vec![
                vec![
                    "acer".into(),
                    "aoa110".into(),
                    "1.6ghz".into(),
                    "win7".into(),
                ],
                vec![
                    "acer".into(),
                    "aoa110".into(),
                    "1.7ghz".into(),
                    "win7".into(),
                ],
                vec![
                    "asus".into(),
                    "eeepc".into(),
                    "1.7ghz".into(),
                    "vista".into(),
                ],
            ],
            docs: vec![
                toks("lightweight powerful laptop"),
                toks("powerful processor laptop"),
                toks("large disk powerful laptop"),
            ],
        }
    }

    #[test]
    fn slide166_cells_found() {
        let cube = laptops();
        let cells = top_cells(&cube, &["powerful", "laptop"], 2, 20);
        let rendered: Vec<String> = cells.iter().map(|c| c.display()).collect();
        // {Acer, AOA110, *, *} support 2 and {*, *, 1.7GHz, *} support 2
        assert!(
            rendered.contains(&"acer | aoa110 | * | *".to_string()),
            "{rendered:?}"
        );
        assert!(
            rendered.contains(&"* | * | 1.7ghz | *".to_string()),
            "{rendered:?}"
        );
        assert!(cells.iter().all(|c| c.support >= 2));
    }

    #[test]
    fn min_support_filters_small_cells() {
        let cube = laptops();
        let strict = top_cells(&cube, &["powerful", "laptop"], 3, 50);
        // only cells covering all three rows qualify (e.g. the all-star cell)
        assert!(strict.iter().all(|c| c.support == 3));
        assert!(strict.iter().any(|c| c.display() == "* | * | * | *"));
    }

    #[test]
    fn scores_are_average_relevance() {
        let cube = laptops();
        let cells = top_cells(&cube, &["powerful"], 1, 100);
        assert!(cells.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(cells.iter().all(|c| c.score > 0.0));
    }

    #[test]
    fn unmatched_keywords_give_no_cells() {
        let cube = laptops();
        assert!(top_cells(&cube, &["tablet"], 1, 5).is_empty());
    }

    #[test]
    fn keyword_restriction_changes_support() {
        let cube = laptops();
        let cells = top_cells(&cube, &["lightweight"], 1, 100);
        // only row 0 matches → every cell has support 1 and fixes row-0 values
        assert!(cells.iter().all(|c| c.support == 1));
        assert!(cells
            .iter()
            .any(|c| c.display() == "acer | aoa110 | 1.6ghz | win7"));
    }
}
