//! Data clouds: suggesting expansion terms from query results
//! (Koutrika, Zadeh & Garcia-Molina, EDBT 09; Tao & Yu, EDBT 09) —
//! tutorial slides 76–78.
//!
//! After a query like "XML", the system surfaces the important terms inside
//! the results ("keyword", "xpath", …) as refinement suggestions. Two
//! rankings from slide 77:
//!
//! * **popularity** — plain frequency across results: simple, but favors
//!   generic terms like "data";
//! * **relevance** — each result weights its terms by the result's own
//!   score and per-attribute weights (a title term counts more than a
//!   description term), so terms from *good* results in *important* fields
//!   win.
//!
//! [`co_occurring_terms`] is the Tao & Yu variant: top co-occurring terms
//! straight from the inverted lists of documents containing all query
//! terms, without scoring or materializing ranked results.

use std::collections::{HashMap, HashSet};

/// One result as weighted attribute texts: `(attribute weight, tokens)`.
pub type WeightedResult = Vec<(f64, Vec<String>)>;

/// Top-k terms by raw popularity across result token lists. Query terms
/// themselves are excluded.
pub fn top_terms_popularity<S: AsRef<str>>(
    results: &[Vec<String>],
    query: &[S],
    k: usize,
) -> Vec<(String, f64)> {
    let qset: HashSet<&str> = query.iter().map(|s| s.as_ref()).collect();
    let mut freq: HashMap<&str, f64> = HashMap::new();
    for r in results {
        for t in r {
            if !qset.contains(t.as_str()) {
                *freq.entry(t).or_insert(0.0) += 1.0;
            }
        }
    }
    rank(freq, k)
}

/// Top-k terms by relevance: Σ over results of
/// `result_score · attribute_weight · tf` (slide 77's improved TF).
pub fn top_terms_relevance<S: AsRef<str>>(
    results: &[(f64, WeightedResult)],
    query: &[S],
    k: usize,
) -> Vec<(String, f64)> {
    let qset: HashSet<&str> = query.iter().map(|s| s.as_ref()).collect();
    let mut weight: HashMap<&str, f64> = HashMap::new();
    for (score, attrs) in results {
        for (aw, toks) in attrs {
            for t in toks {
                if !qset.contains(t.as_str()) {
                    *weight.entry(t).or_insert(0.0) += score * aw;
                }
            }
        }
    }
    rank(weight, k)
}

/// Frequent co-occurring terms (Tao & Yu, EDBT 09): scan the corpus once,
/// count non-query terms inside documents containing *all* query terms.
/// No per-result scoring or ranking is materialized.
pub fn co_occurring_terms<S: AsRef<str>>(
    docs: &[Vec<String>],
    query: &[S],
    k: usize,
) -> Vec<(String, f64)> {
    let mut freq: HashMap<&str, f64> = HashMap::new();
    let qset: Vec<&str> = query.iter().map(|s| s.as_ref()).collect();
    for d in docs {
        if !qset.iter().all(|q| d.iter().any(|t| t == q)) {
            continue;
        }
        for t in d {
            if !qset.contains(&t.as_str()) {
                *freq.entry(t).or_insert(0.0) += 1.0;
            }
        }
    }
    rank(freq, k)
}

fn rank(freq: HashMap<&str, f64>, k: usize) -> Vec<(String, f64)> {
    let mut v: Vec<(String, f64)> = freq.into_iter().map(|(t, f)| (t.to_string(), f)).collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        kwdb_common::text::tokenize(s)
    }

    #[test]
    fn popularity_counts_and_excludes_query() {
        let results = vec![
            toks("xml keyword search data"),
            toks("xml xpath query data"),
            toks("xml keyword data"),
        ];
        let top = top_terms_popularity(&results, &["xml"], 3);
        assert_eq!(top[0].0, "data");
        assert!(top.iter().all(|(t, _)| t != "xml"));
        assert!(top.iter().any(|(t, _)| t == "keyword"));
    }

    #[test]
    fn relevance_weights_attributes_and_scores() {
        // "data" appears everywhere but in low-weight description fields;
        // "xpath" appears in high-weight titles of the best result
        let results: Vec<(f64, WeightedResult)> = vec![
            (
                10.0,
                vec![(1.0, toks("xpath")), (0.2, toks("data data data"))],
            ),
            (1.0, vec![(1.0, toks("storage")), (0.2, toks("data data"))]),
        ];
        let top = top_terms_relevance(&results, &["xml"], 2);
        assert_eq!(top[0].0, "xpath", "{top:?}");
    }

    #[test]
    fn popularity_vs_relevance_differ_on_generic_terms() {
        // slide 77: popularity picks "data"; relevance demotes it
        let raw: Vec<Vec<String>> = vec![toks("xpath data data"), toks("keyword data data")];
        let weighted: Vec<(f64, WeightedResult)> = vec![
            (5.0, vec![(1.0, toks("xpath")), (0.1, toks("data data"))]),
            (1.0, vec![(1.0, toks("keyword")), (0.1, toks("data data"))]),
        ];
        let pop = top_terms_popularity(&raw, &["xml"], 1);
        let rel = top_terms_relevance(&weighted, &["xml"], 1);
        assert_eq!(pop[0].0, "data");
        assert_eq!(rel[0].0, "xpath");
    }

    #[test]
    fn co_occurring_requires_all_query_terms() {
        let docs = vec![
            toks("xml search keyword"),
            toks("xml storage"),
            toks("search ranking"),
            toks("xml search snippets"),
        ];
        let top = co_occurring_terms(&docs, &["xml", "search"], 5);
        let terms: Vec<&str> = top.iter().map(|(t, _)| t.as_str()).collect();
        assert!(terms.contains(&"keyword"));
        assert!(terms.contains(&"snippets"));
        assert!(!terms.contains(&"storage"), "doc lacks 'search'");
        assert!(!terms.contains(&"ranking"), "doc lacks 'xml'");
    }

    #[test]
    fn empty_inputs() {
        assert!(top_terms_popularity(&[], &["q"], 3).is_empty());
        assert!(co_occurring_terms(&[toks("a b")], &["zz"], 3).is_empty());
    }
}
