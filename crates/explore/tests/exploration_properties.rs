//! Property tests for the exploration algorithms, driven by a seeded PRNG.

use kwdb_common::Rng;
use kwdb_explore::diff::{brute_force, differentiate, Feature};
use kwdb_explore::expand::f_measure;
use kwdb_explore::facets::{build_greedy, FacetTable, LogModel, NavNode};
use kwdb_explore::tableagg::{aggregate_search, AggTable};
use std::collections::HashSet;

fn rand_pairs(rng: &mut Rng, lo: usize, hi: usize) -> Vec<(u8, u8)> {
    let len = rng.gen_range(lo..hi);
    (0..len)
        .map(|_| (rng.gen_range(0u8..3), rng.gen_range(0u8..4)))
        .collect()
}

fn rand_set(rng: &mut Rng, lo: usize, hi: usize) -> HashSet<usize> {
    let len = rng.gen_range(lo..hi);
    let mut s = HashSet::new();
    while s.len() < len {
        s.insert(rng.gen_index(10));
    }
    s
}

/// Greedy differentiation never loses to brute force on tiny inputs
/// (weak local optimality happens to reach the optimum there), and the
/// budget is always respected.
#[test]
fn differentiation_budget_and_quality() {
    let mut rng = Rng::seed_from_u64(81);
    for _ in 0..32 {
        let r1 = rand_pairs(&mut rng, 1, 4);
        let r2 = rand_pairs(&mut rng, 1, 4);
        let budget = rng.gen_range(1usize..3);
        let to_features = |v: &[(u8, u8)]| -> Vec<Feature> {
            let mut fs: Vec<Feature> = v
                .iter()
                .map(|&(t, val)| Feature::new(&format!("t{t}"), &format!("v{val}")))
                .collect();
            fs.dedup();
            fs
        };
        let results = vec![to_features(&r1), to_features(&r2)];
        let greedy = differentiate(&results, budget);
        assert!(greedy.selections.iter().all(|s| s.len() <= budget));
        let opt = brute_force(&results, budget);
        assert!(greedy.dod <= opt.dod);
        // every selected feature belongs to its result
        for (sel, r) in greedy.selections.iter().zip(&results) {
            for f in sel {
                assert!(r.contains(f));
            }
        }
    }
}

/// F-measure is symmetric-bounded and perfect only on exact retrieval.
#[test]
fn f_measure_properties() {
    let mut rng = Rng::seed_from_u64(82);
    for _ in 0..32 {
        let retrieved = rand_set(&mut rng, 0, 8);
        let cluster = rand_set(&mut rng, 1, 8);
        let f = f_measure(&retrieved, &cluster);
        assert!((0.0..=1.0).contains(&f));
        if f == 1.0 {
            assert_eq!(&retrieved, &cluster);
        }
        if retrieved == cluster {
            assert_eq!(f, 1.0);
        }
    }
}

/// Every aggregate cluster really covers every phrase, and specific
/// clusters never coexist with identical star-duplicates.
#[test]
fn aggregate_clusters_cover() {
    let mut rng = Rng::seed_from_u64(83);
    for _ in 0..32 {
        let months: Vec<u8> = {
            let len = rng.gen_range(2usize..8);
            (0..len).map(|_| rng.gen_range(0u8..3)).collect()
        };
        let texts: Vec<u8> = {
            let len = rng.gen_range(2usize..8);
            (0..len).map(|_| rng.gen_range(0u8..4)).collect()
        };
        let n = months.len().min(texts.len());
        let vocab = ["pool", "motorcycle", "food", "pool motorcycle"];
        let table = AggTable {
            attributes: vec!["month".into()],
            values: (0..n).map(|i| vec![format!("m{}", months[i])]).collect(),
            text: (0..n)
                .map(|i| kwdb_common::text::tokenize(vocab[texts[i] as usize]))
                .collect(),
        };
        let phrases = vec![vec!["pool".to_string()], vec!["motorcycle".to_string()]];
        let clusters = aggregate_search(&table, &phrases);
        for c in &clusters {
            for p in &phrases {
                let covered = c
                    .rows
                    .iter()
                    .any(|&r| table.text[r].windows(p.len()).any(|w| w == p.as_slice()));
                assert!(covered, "cluster {c:?} misses phrase {p:?}");
            }
        }
        // no two clusters with identical rows
        let sigs: Vec<&Vec<usize>> = clusters.iter().map(|c| &c.rows).collect();
        let uniq: HashSet<_> = sigs.iter().collect();
        assert_eq!(uniq.len(), sigs.len());
    }
}

/// The greedy navigation tree never costs more than the flat list.
#[test]
fn greedy_tree_never_worse_than_flat() {
    let mut rng = Rng::seed_from_u64(84);
    for _ in 0..32 {
        let rows: Vec<(u8, u8)> = {
            let len = rng.gen_range(1usize..20);
            (0..len)
                .map(|_| (rng.gen_range(0u8..3), rng.gen_range(0u8..3)))
                .collect()
        };
        let log_attr: Vec<u8> = {
            let len = rng.gen_index(6);
            (0..len).map(|_| rng.gen_range(0u8..2)).collect()
        };
        let table = FacetTable::new(
            vec!["a".into(), "b".into()],
            rows.iter()
                .map(|&(x, y)| vec![format!("x{x}"), format!("y{y}")])
                .collect(),
        );
        let log: Vec<Vec<(String, String)>> = log_attr
            .iter()
            .map(|&a| vec![(if a == 0 { "a" } else { "b" }.to_string(), "x0".to_string())])
            .collect();
        let model = LogModel::new(&log);
        let all: Vec<usize> = (0..rows.len()).collect();
        let flat = NavNode::Leaf { rows: all.clone() };
        let greedy = build_greedy(&table, &model, all, 2);
        assert!(greedy.expected_cost(&model) <= flat.expected_cost(&model) + 1e-9);
    }
}
