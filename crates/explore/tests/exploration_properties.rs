//! Property tests for the exploration algorithms.

use kwdb_explore::diff::{brute_force, differentiate, Feature};
use kwdb_explore::expand::f_measure;
use kwdb_explore::facets::{build_greedy, FacetTable, LogModel, NavNode};
use kwdb_explore::tableagg::{aggregate_search, AggTable};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Greedy differentiation never loses to brute force on tiny inputs
    /// (weak local optimality happens to reach the optimum there), and the
    /// budget is always respected.
    #[test]
    fn differentiation_budget_and_quality(
        r1 in proptest::collection::vec((0u8..3, 0u8..4), 1..4),
        r2 in proptest::collection::vec((0u8..3, 0u8..4), 1..4),
        budget in 1usize..3,
    ) {
        let to_features = |v: &[(u8, u8)]| -> Vec<Feature> {
            let mut fs: Vec<Feature> = v
                .iter()
                .map(|&(t, val)| Feature::new(&format!("t{t}"), &format!("v{val}")))
                .collect();
            fs.dedup();
            fs
        };
        let results = vec![to_features(&r1), to_features(&r2)];
        let greedy = differentiate(&results, budget);
        prop_assert!(greedy.selections.iter().all(|s| s.len() <= budget));
        let opt = brute_force(&results, budget);
        prop_assert!(greedy.dod <= opt.dod);
        // every selected feature belongs to its result
        for (sel, r) in greedy.selections.iter().zip(&results) {
            for f in sel {
                prop_assert!(r.contains(f));
            }
        }
    }

    /// F-measure is symmetric-bounded and perfect only on exact retrieval.
    #[test]
    fn f_measure_properties(
        retrieved in proptest::collection::hash_set(0usize..10, 0..8),
        cluster in proptest::collection::hash_set(0usize..10, 1..8),
    ) {
        let f = f_measure(&retrieved, &cluster);
        prop_assert!((0.0..=1.0).contains(&f));
        if f == 1.0 {
            prop_assert_eq!(&retrieved, &cluster);
        }
        if retrieved == cluster {
            prop_assert_eq!(f, 1.0);
        }
    }

    /// Every aggregate cluster really covers every phrase, and specific
    /// clusters never coexist with identical star-duplicates.
    #[test]
    fn aggregate_clusters_cover(
        months in proptest::collection::vec(0u8..3, 2..8),
        texts in proptest::collection::vec(0u8..4, 2..8),
    ) {
        let n = months.len().min(texts.len());
        let vocab = ["pool", "motorcycle", "food", "pool motorcycle"];
        let table = AggTable {
            attributes: vec!["month".into()],
            values: (0..n).map(|i| vec![format!("m{}", months[i])]).collect(),
            text: (0..n)
                .map(|i| kwdb_common::text::tokenize(vocab[texts[i] as usize]))
                .collect(),
        };
        let phrases = vec![vec!["pool".to_string()], vec!["motorcycle".to_string()]];
        let clusters = aggregate_search(&table, &phrases);
        for c in &clusters {
            for p in &phrases {
                let covered = c.rows.iter().any(|&r| {
                    table.text[r].windows(p.len()).any(|w| w == p.as_slice())
                });
                prop_assert!(covered, "cluster {c:?} misses phrase {p:?}");
            }
        }
        // no two clusters with identical rows
        let sigs: Vec<&Vec<usize>> = clusters.iter().map(|c| &c.rows).collect();
        let uniq: HashSet<_> = sigs.iter().collect();
        prop_assert_eq!(uniq.len(), sigs.len());
    }

    /// The greedy navigation tree never costs more than the flat list.
    #[test]
    fn greedy_tree_never_worse_than_flat(
        rows in proptest::collection::vec((0u8..3, 0u8..3), 1..20),
        log_attr in proptest::collection::vec(0u8..2, 0..6),
    ) {
        let table = FacetTable::new(
            vec!["a".into(), "b".into()],
            rows.iter()
                .map(|&(x, y)| vec![format!("x{x}"), format!("y{y}")])
                .collect(),
        );
        let log: Vec<Vec<(String, String)>> = log_attr
            .iter()
            .map(|&a| vec![(if a == 0 { "a" } else { "b" }.to_string(), "x0".to_string())])
            .collect();
        let model = LogModel::new(&log);
        let all: Vec<usize> = (0..rows.len()).collect();
        let flat = NavNode::Leaf { rows: all.clone() };
        let greedy = build_greedy(&table, &model, all, 2);
        prop_assert!(greedy.expected_cost(&model) <= flat.expected_cost(&model) + 1e-9);
    }
}
