//! DBLP-like relational database generator.

use crate::words;
use kwdb_common::Rng;
use kwdb_relational::database::dblp_schema;
use kwdb_relational::Database;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct DblpConfig {
    pub n_conferences: usize,
    pub n_authors: usize,
    pub n_papers: usize,
    /// Average authors per paper (≥ 1).
    pub authors_per_paper: f64,
    /// Probability a paper cites another (expected citations per paper).
    pub citations_per_paper: f64,
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            n_conferences: 10,
            n_authors: 200,
            n_papers: 500,
            authors_per_paper: 2.2,
            citations_per_paper: 1.5,
            seed: 42,
        }
    }
}

/// Generate a database with the classic DBLP schema
/// (conference, author, paper, write, cite), text index built.
pub fn generate_dblp(cfg: &DblpConfig) -> Database {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    dblp_schema(&mut db).expect("static schema is valid");

    for cid in 0..cfg.n_conferences {
        let venue = words::VENUES[cid % words::VENUES.len()];
        let year = 1995 + (cid / words::VENUES.len()) as i64 + (cid % 13) as i64;
        db.insert(
            "conference",
            vec![(cid as i64).into(), venue.into(), year.into()],
        )
        .expect("valid row");
    }
    for aid in 0..cfg.n_authors {
        db.insert(
            "author",
            vec![(aid as i64).into(), words::person(&mut rng).into()],
        )
        .expect("valid row");
    }
    for pid in 0..cfg.n_papers {
        let title_len = rng.gen_range(3..=7usize);
        let cid = words::zipf(&mut rng, cfg.n_conferences) as i64;
        db.insert(
            "paper",
            vec![
                (pid as i64).into(),
                words::title(&mut rng, title_len).into(),
                cid.into(),
            ],
        )
        .expect("valid row");
    }
    // authorship: Zipf-popular authors write more
    let mut wid = 0i64;
    for pid in 0..cfg.n_papers {
        let n = sample_count(&mut rng, cfg.authors_per_paper).max(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let aid = words::zipf(&mut rng, cfg.n_authors) as i64;
            if seen.insert(aid) {
                db.insert("write", vec![wid.into(), aid.into(), (pid as i64).into()])
                    .expect("valid row");
                wid += 1;
            }
        }
    }
    // citations: later papers cite earlier ones
    let mut cite_id = 0i64;
    for pid in 1..cfg.n_papers {
        let n = sample_count(&mut rng, cfg.citations_per_paper);
        for _ in 0..n {
            let cited = rng.gen_range(0..pid) as i64;
            db.insert(
                "cite",
                vec![cite_id.into(), (pid as i64).into(), cited.into()],
            )
            .expect("valid row");
            cite_id += 1;
        }
    }
    db.build_text_index();
    db
}

/// Poisson-ish small-count sampler around `mean`.
fn sample_count(rng: &mut Rng, mean: f64) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - base as f64;
    base + usize::from(rng.gen_f64() < frac)
}

/// A keyword-query generator over a database: picks terms actually present
/// in the index, mixing common and rare ones.
pub fn sample_queries(db: &Database, n: usize, len: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = Rng::seed_from_u64(seed);
    let ix = db
        .text_index()
        .expect("query sampling requires a fresh text index");
    let mut terms: Vec<(String, usize)> = ix
        .terms()
        .map(|t| (t.to_string(), ix.doc_freq(t)))
        .collect();
    terms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        let mut q = Vec::with_capacity(len);
        let mut seen = std::collections::HashSet::new();
        while q.len() < len {
            let idx = words::zipf(&mut rng, terms.len());
            let t = &terms[idx].0;
            if seen.insert(t.clone()) {
                q.push(t.clone());
            }
        }
        queries.push(q);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_configured_sizes() {
        let cfg = DblpConfig {
            n_conferences: 4,
            n_authors: 20,
            n_papers: 30,
            ..Default::default()
        };
        let db = generate_dblp(&cfg);
        assert_eq!(db.table_by_name("conference").unwrap().len(), 4);
        assert_eq!(db.table_by_name("author").unwrap().len(), 20);
        assert_eq!(db.table_by_name("paper").unwrap().len(), 30);
        assert!(db.table_by_name("write").unwrap().len() >= 30);
        assert!(db.is_index_fresh());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = DblpConfig {
            n_papers: 25,
            n_authors: 10,
            ..Default::default()
        };
        let a = generate_dblp(&cfg);
        let b = generate_dblp(&cfg);
        assert_eq!(a.tuple_count(), b.tuple_count());
        let pa = a.table_by_name("paper").unwrap();
        let pb = b.table_by_name("paper").unwrap();
        for (ra, rb) in pa.iter().zip(pb.iter()) {
            assert_eq!(ra.1, rb.1);
        }
    }

    #[test]
    fn fks_resolve() {
        let db = generate_dblp(&DblpConfig {
            n_papers: 40,
            ..Default::default()
        });
        let write = db.table_by_name("write").unwrap();
        for (rid, _) in write.iter() {
            let t = kwdb_relational::TupleId::new(write.id, rid);
            assert_eq!(
                db.fk_neighbors(t).len(),
                2,
                "write row must resolve both FKs"
            );
        }
    }

    #[test]
    fn queries_use_indexed_terms() {
        let db = generate_dblp(&DblpConfig::default());
        let queries = sample_queries(&db, 5, 2, 7);
        assert_eq!(queries.len(), 5);
        for q in &queries {
            assert_eq!(q.len(), 2);
            for t in q {
                assert!(
                    db.text_index().unwrap().doc_freq(t) > 0,
                    "term {t} not in index"
                );
            }
        }
    }
}
