//! Product entity tables with query/click logs — the Keyword++ and
//! query-cleaning substrate.

use kwdb_common::Rng;
use kwdb_relational::{ColumnType, Database, TableBuilder, TableId};

const BRANDS: &[(&str, &str)] = &[
    ("Lenovo", "ibm thinkpad business laptop"),
    ("Apple", "macbook thin premium laptop"),
    ("HP", "pavilion gaming laptop"),
    ("Acer", "aspire value laptop"),
    ("Asus", "zenbook ultrabook laptop"),
];

const MODELS: &[&str] = &["alpha", "bravo", "carbon", "delta", "edge", "flex"];

/// Generate a laptop table: name, brand, screen size, price, description.
/// Returns the database and the table id. Descriptions deliberately embed
/// brand aliases ("ibm" for Lenovo) so Keyword++ has something to learn.
pub fn generate_laptops(n: usize, seed: u64) -> (Database, TableId) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new();
    let t = db
        .create_table(
            TableBuilder::new("product")
                .column("name", ColumnType::Text)
                .column("brand", ColumnType::Text)
                .column("screen", ColumnType::Float)
                .column("price", ColumnType::Int)
                .column("description", ColumnType::Text),
        )
        .expect("static schema");
    for i in 0..n {
        let (brand, flavor) = BRANDS[i % BRANDS.len()];
        let model = MODELS[rng.gen_range(0..MODELS.len())];
        let screen = [11.6, 12.5, 13.3, 14.0, 15.6, 17.3][rng.gen_range(0..6usize)];
        let price = 400 + 100 * rng.gen_range(0..20) as i64;
        let size_word = if screen < 13.0 {
            "small light portable"
        } else if screen > 16.0 {
            "big large desktop replacement"
        } else {
            "standard"
        };
        db.insert(
            "product",
            vec![
                format!("{brand} {model} {i}").into(),
                brand.into(),
                screen.into(),
                price.into(),
                format!("{flavor} {size_word}").into(),
            ],
        )
        .expect("valid row");
    }
    db.build_text_index();
    (db, t)
}

/// A product query log with the DQP structure Keyword++ needs: background
/// queries plus foreground variants adding one modifier.
pub fn product_query_log(seed: u64, n: usize) -> Vec<Vec<String>> {
    let mut rng = Rng::seed_from_u64(seed);
    let modifiers = ["ibm", "small", "big", "gaming", "premium"];
    let mut log: Vec<Vec<String>> = vec![vec!["laptop".to_string()]];
    for _ in 0..n {
        let m = modifiers[rng.gen_range(0..modifiers.len())];
        log.push(vec![m.to_string(), "laptop".to_string()]);
        log.push(vec!["laptop".to_string()]);
    }
    log
}

/// Misspell a word deterministically: swap two adjacent characters or drop
/// one, based on the seed.
pub fn corrupt(word: &str, seed: u64) -> String {
    let mut rng = Rng::seed_from_u64(seed ^ word.len() as u64);
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return word.to_string();
    }
    let i = rng.gen_range(1..chars.len() - 1);
    if rng.gen_bool(0.5) {
        // transpose
        let mut c = chars.clone();
        c.swap(i, i + 1);
        c.into_iter().collect()
    } else {
        // deletion
        chars
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &c)| c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laptops_generated_with_learnable_aliases() {
        let (db, t) = generate_laptops(25, 5);
        assert_eq!(db.table(t).len(), 25);
        // Lenovo rows mention "ibm" in descriptions
        let ix = db.text_index().unwrap();
        assert!(!ix.postings("ibm").is_empty());
        assert!(!ix.postings("laptop").is_empty());
    }

    #[test]
    fn log_contains_dqp_structure() {
        let log = product_query_log(3, 5);
        assert!(log.contains(&vec!["laptop".to_string()]));
        let with_modifier = log.iter().filter(|q| q.len() == 2).count();
        assert_eq!(with_modifier, 5);
    }

    #[test]
    fn corrupt_is_one_edit_away() {
        for (seed, word) in [(1u64, "database"), (2, "keyword"), (3, "thinkpad")] {
            let bad = corrupt(word, seed);
            let d = kwdb_common::strutil::damerau_levenshtein(word, &bad);
            assert!(d <= 1, "{word} → {bad} is {d} edits");
        }
    }

    #[test]
    fn corrupt_short_words_unchanged() {
        assert_eq!(corrupt("ab", 1), "ab");
    }
}
