//! Random weighted data graphs with planted keywords, for the graph-search
//! experiments (E05, E19, E20, E34).

use kwdb_common::Rng;
use kwdb_graph::{DataGraph, NodeId};

/// Configuration for a random graph.
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    pub n_nodes: usize,
    /// Average degree (edges ≈ n·degree/2).
    pub avg_degree: f64,
    /// Number of distinct keywords planted (named `kw0`, `kw1`, …).
    pub n_keywords: usize,
    /// Nodes matching each keyword.
    pub matches_per_keyword: usize,
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            n_nodes: 1000,
            avg_degree: 4.0,
            n_keywords: 3,
            matches_per_keyword: 10,
            seed: 42,
        }
    }
}

/// Generate a connected random graph (a spanning backbone plus random
/// extra edges) with keywords planted on random nodes.
pub fn generate_graph(cfg: &GraphConfig) -> DataGraph {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let n = cfg.n_nodes.max(1);
    // decide keyword placement first
    let mut content = vec![String::new(); n];
    for k in 0..cfg.n_keywords {
        let kw = format!("kw{k}");
        let mut placed = 0;
        let mut guard = 0;
        while placed < cfg.matches_per_keyword.min(n) && guard < 50 * n {
            guard += 1;
            let v = rng.gen_range(0..n);
            if !content[v].contains(&kw) {
                if !content[v].is_empty() {
                    content[v].push(' ');
                }
                content[v].push_str(&kw);
                placed += 1;
            }
        }
    }
    let mut g = DataGraph::new();
    let ids: Vec<NodeId> = content.iter().map(|c| g.add_node("node", c)).collect();
    // spanning backbone keeps it connected
    for i in 1..n {
        let j = rng.gen_range(0..i);
        g.add_edge(ids[i], ids[j], rng.gen_range(1..=5) as f64);
    }
    // extra edges up to the target degree
    let target_edges = ((n as f64 * cfg.avg_degree) / 2.0) as usize;
    let mut guard = 0;
    while g.edge_count() < target_edges && guard < 20 * target_edges {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            g.add_edge(ids[a], ids[b], rng.gen_range(1..=5) as f64);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_graph::shortest::distance;

    #[test]
    fn graph_is_connected_with_planted_keywords() {
        let cfg = GraphConfig {
            n_nodes: 100,
            ..Default::default()
        };
        let g = generate_graph(&cfg);
        assert_eq!(g.node_count(), 100);
        for k in 0..cfg.n_keywords {
            let kw = format!("kw{k}");
            assert_eq!(g.keyword_nodes(&kw).len(), cfg.matches_per_keyword);
        }
        // connectivity: node 0 reaches the last node
        assert!(distance(&g, NodeId(0), NodeId(99)).is_some());
    }

    #[test]
    fn deterministic() {
        let cfg = GraphConfig {
            n_nodes: 50,
            seed: 7,
            ..Default::default()
        };
        let a = generate_graph(&cfg);
        let b = generate_graph(&cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        for n in a.iter() {
            assert_eq!(a.terms(n), b.terms(n));
        }
    }

    #[test]
    fn degree_scales_with_config() {
        let sparse = generate_graph(&GraphConfig {
            n_nodes: 200,
            avg_degree: 2.5,
            seed: 1,
            ..Default::default()
        });
        let dense = generate_graph(&GraphConfig {
            n_nodes: 200,
            avg_degree: 8.0,
            seed: 1,
            ..Default::default()
        });
        assert!(dense.edge_count() > sparse.edge_count());
    }
}
