//! XML document generators: bibliography trees (for SLCA/ELCA/XReal) and
//! movie trees (for XSeek/snippets).

use crate::words;
use kwdb_common::Rng;
use kwdb_xml::{XmlBuilder, XmlTree};

/// Bibliography generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct BibConfig {
    pub n_conferences: usize,
    pub n_journals: usize,
    pub papers_per_venue: usize,
    pub authors_per_paper: usize,
    pub seed: u64,
}

impl Default for BibConfig {
    fn default() -> Self {
        BibConfig {
            n_conferences: 5,
            n_journals: 3,
            papers_per_venue: 20,
            authors_per_paper: 2,
            seed: 42,
        }
    }
}

/// `<bib><conf>…<paper><title/><author/>…` — the shape XReal's slide-37
/// example assumes.
pub fn generate_bib_xml(cfg: &BibConfig) -> XmlTree {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut b = XmlBuilder::new("bib");
    for (kind, count) in [("conf", cfg.n_conferences), ("journal", cfg.n_journals)] {
        for v in 0..count {
            b.open(kind);
            b.leaf("name", words::VENUES[v % words::VENUES.len()]);
            b.leaf("year", &(1998 + (v % 14)).to_string());
            for _ in 0..cfg.papers_per_venue {
                b.open("paper");
                let len = rng.gen_range(3..=6usize);
                b.leaf("title", &words::title(&mut rng, len));
                for _ in 0..cfg.authors_per_paper {
                    b.leaf("author", &words::person(&mut rng));
                }
                b.close();
            }
            b.close();
        }
    }
    b.build()
}

/// A skewed-list tree for SLCA complexity experiments: `n_rare` nodes carry
/// the rare keyword, `n_common` the common one, spread across `n_sections`.
/// `|S_min| = n_rare`, `|S_max| = n_common` — E04 sweeps the ratio.
pub fn generate_slca_workload(
    n_sections: usize,
    n_common: usize,
    n_rare: usize,
    seed: u64,
) -> XmlTree {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = XmlBuilder::new("root");
    // distribute nodes round-robin over sections
    let mut slots: Vec<(bool, bool)> = Vec::new(); // (has_common, has_rare)
    for i in 0..n_common.max(n_rare) {
        slots.push((i < n_common, i < n_rare));
    }
    // shuffle rare positions so they are not all prefixed
    for i in (1..slots.len()).rev() {
        let j = rng.gen_range(0..=i);
        slots.swap(i, j);
    }
    let per_section = slots.len().div_ceil(n_sections.max(1));
    for chunk in slots.chunks(per_section.max(1)) {
        b.open("section");
        for &(common, rare) in chunk {
            let mut text = String::new();
            if common {
                text.push_str("common ");
            }
            if rare {
                text.push_str("rare ");
            }
            text.push_str(words::TITLE_WORDS[rng.gen_range(0..words::TITLE_WORDS.len())]);
            b.leaf("item", text.trim());
        }
        b.close();
    }
    b.build()
}

/// IMDB-style movie tree (slide 27's running example).
pub fn generate_movies(n_movies: usize, seed: u64) -> XmlTree {
    let mut rng = Rng::seed_from_u64(seed);
    let titles = [
        "shining",
        "simpsons",
        "scoop",
        "friends",
        "casablanca",
        "vertigo",
        "alien",
        "amadeus",
        "fargo",
        "heat",
    ];
    let mut b = XmlBuilder::new("imdb");
    for i in 0..n_movies {
        b.open("movie");
        b.leaf("name", titles[i % titles.len()]);
        b.leaf("year", &(1960 + (i * 7) % 60).to_string());
        b.leaf("plot", &words::title(&mut rng, 8));
        b.open("director");
        b.leaf("name", &words::person(&mut rng));
        b.leaf("dob", &(1930 + (i * 3) % 50).to_string());
        b.close();
        b.close();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_xml::XmlIndex;

    #[test]
    fn bib_has_expected_shape() {
        let t = generate_bib_xml(&BibConfig {
            n_conferences: 2,
            n_journals: 1,
            papers_per_venue: 3,
            authors_per_paper: 2,
            seed: 1,
        });
        assert_eq!(t.label(t.root()), "bib");
        let confs = t
            .children(t.root())
            .iter()
            .filter(|&&c| t.label(c) == "conf")
            .count();
        assert_eq!(confs, 2);
        // papers: 3 venues × 3 papers
        let papers = t.iter().filter(|&n| t.label(n) == "paper").count();
        assert_eq!(papers, 9);
    }

    #[test]
    fn slca_workload_list_sizes() {
        let t = generate_slca_workload(10, 500, 20, 3);
        let ix = XmlIndex::build(&t);
        assert_eq!(ix.freq("common"), 500);
        assert_eq!(ix.freq("rare"), 20);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = generate_movies(5, 9);
        let b = generate_movies(5, 9);
        assert_eq!(a.to_xml(a.root()), b.to_xml(b.root()));
    }

    #[test]
    fn movies_have_directors() {
        let t = generate_movies(4, 1);
        let directors = t.iter().filter(|&n| t.label(n) == "director").count();
        assert_eq!(directors, 4);
    }
}
