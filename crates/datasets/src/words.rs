//! Vocabulary and Zipf sampling for the generators.

use kwdb_common::Rng;

/// Database-flavoured title vocabulary (ranked roughly by how common the
/// term is in real venue titles, so Zipf sampling looks natural).
pub const TITLE_WORDS: &[&str] = &[
    "data",
    "query",
    "database",
    "search",
    "keyword",
    "xml",
    "system",
    "processing",
    "efficient",
    "distributed",
    "graph",
    "web",
    "index",
    "optimization",
    "stream",
    "mining",
    "relational",
    "semantic",
    "schema",
    "join",
    "ranking",
    "cloud",
    "scalable",
    "storage",
    "transaction",
    "parallel",
    "spatial",
    "temporal",
    "probabilistic",
    "approximate",
    "adaptive",
    "incremental",
    "secure",
    "privacy",
    "workflow",
    "provenance",
    "benchmark",
    "sampling",
    "compression",
    "recovery",
    "views",
    "caching",
    "partitioning",
    "replication",
    "consistency",
    "concurrency",
    "learning",
    "embedding",
    "federated",
    "crowdsourcing",
];

/// First names for authors/people.
pub const FIRST_NAMES: &[&str] = &[
    "jennifer", "serge", "michael", "david", "hector", "rakesh", "jeffrey", "jim", "moshe",
    "christos", "yannis", "susan", "laura", "divesh", "surajit", "joseph", "raghu", "mary",
    "peter", "wei", "hans", "anhai", "gerhard", "jiawei", "elisa", "timos", "ricardo", "umesh",
    "stefano", "sihem",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "widom",
    "abiteboul",
    "stonebraker",
    "dewitt",
    "garcia",
    "agrawal",
    "ullman",
    "gray",
    "vardi",
    "faloutsos",
    "ioannidis",
    "davidson",
    "haas",
    "srivastava",
    "chaudhuri",
    "hellerstein",
    "ramakrishnan",
    "fernandez",
    "buneman",
    "wang",
    "boral",
    "doan",
    "weikum",
    "han",
    "bertino",
    "sellis",
    "baeza",
    "dayal",
    "ceri",
    "amer",
];

/// Conference names.
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "edbt", "cikm", "kdd", "www", "sigir", "pods", "cidr",
];

/// Sample an index in `0..n` under a Zipf(s≈1) distribution.
pub fn zipf(rng: &mut Rng, n: usize) -> usize {
    debug_assert!(n > 0);
    // inverse-CDF over harmonic weights, computed incrementally
    let h: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let target = rng.gen_f64() * h;
    let mut acc = 0.0;
    for i in 1..=n {
        acc += 1.0 / i as f64;
        if acc >= target {
            return i - 1;
        }
    }
    n - 1
}

/// A title of `len` Zipf-sampled distinct-ish words.
pub fn title(rng: &mut Rng, len: usize) -> String {
    let mut words = Vec::with_capacity(len);
    for _ in 0..len {
        words.push(TITLE_WORDS[zipf(rng, TITLE_WORDS.len())]);
    }
    words.join(" ")
}

/// A person name `first last`.
pub fn person(rng: &mut Rng) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf(&mut rng, 10)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > 2 * counts[9]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        assert_eq!(title(&mut a, 4), title(&mut b, 4));
        assert_eq!(person(&mut a), person(&mut b));
    }

    #[test]
    fn titles_have_requested_length() {
        let mut rng = Rng::seed_from_u64(1);
        let t = title(&mut rng, 5);
        assert_eq!(t.split(' ').count(), 5);
    }
}
