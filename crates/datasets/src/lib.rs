//! Seeded synthetic datasets for the kwdb experiments.
//!
//! The paper's systems were evaluated on DBLP, IMDB and product catalogs;
//! those corpora are not shipped here, so these generators produce
//! statistically similar substitutes (documented in DESIGN.md): the same
//! schema shapes, Zipf-distributed vocabulary, and configurable sizes and
//! fan-outs. All generators are deterministic given a seed.
//!
//! * [`words`] — vocabulary and Zipf sampling;
//! * [`dblp`] — author/paper/conference/write/cite relational databases;
//! * [`xmlgen`] — bibliography and movie XML documents;
//! * [`products`] — laptop-style entity tables with query logs;
//! * [`graphs`] — random weighted graphs with planted keywords.

pub mod dblp;
pub mod graphs;
pub mod products;
pub mod words;
pub mod xmlgen;

pub use dblp::{generate_dblp, DblpConfig};
pub use xmlgen::{generate_bib_xml, BibConfig};
