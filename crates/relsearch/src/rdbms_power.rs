//! Keyword search "with the power of RDBMS" (Qin et al., SIGMOD 09) —
//! tutorial slides 126–127.
//!
//! Instead of a memory-resident graph engine, this strategy expresses
//! distinct-core keyword search entirely as relational operators over two
//! derived relations:
//!
//! * `Node(tuple)` — every tuple of the database;
//! * `Edge(u, v)` — undirected FK adjacency between tuples.
//!
//! `Pairsₖ(x, m, d)` — "node `x` is at distance `d ≤ Dmax` from keyword-
//! match `m` of keyword `k`" — is computed by semi-naive iteration:
//! `Pairs⁰ = matches × {0}`, `Pairsᵈ⁺¹ = Pairsᵈ ⋈ Edge` keeping minimal
//! distances. The answer relation joins the `Pairsₖ` on the center `x` and
//! groups by the match combination (the distinct core), keeping the minimal
//! total distance. Every step is a hash join / group-by — exactly the ops an
//! RDBMS would run — and is counted in [`ExecStats`].

use kwdb_relational::{Database, ExecStats, TupleId};
use std::collections::HashMap;

/// A distinct-core answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreAnswer {
    /// `core[i]` matches keyword `i`.
    pub core: Vec<TupleId>,
    /// A center witnessing the core with minimal total distance.
    pub center: TupleId,
    pub total_dist: u32,
}

/// The derived edge relation: undirected FK adjacency between tuples.
pub fn edge_relation(db: &Database) -> Vec<(TupleId, TupleId)> {
    let mut edges = Vec::new();
    for t in db.tables() {
        for (rid, _) in t.iter() {
            let u = TupleId::new(t.id, rid);
            for v in db.fk_neighbors(u) {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
    }
    edges
}

/// `Pairs` for one keyword: node → (min dist, nearest match), computed by
/// semi-naive join iteration up to `d_max` hops.
fn pairs(
    db: &Database,
    edges: &[(TupleId, TupleId)],
    keyword: &str,
    d_max: u32,
    stats: &ExecStats,
) -> HashMap<TupleId, (u32, TupleId)> {
    // adjacency as a hash "index" over the edge relation
    let mut adj: HashMap<TupleId, Vec<TupleId>> = HashMap::new();
    for &(u, v) in edges {
        adj.entry(u).or_default().push(v);
    }
    let ix = db
        .text_index()
        .expect("distance materialization requires a fresh text index");
    let mut best: HashMap<TupleId, (u32, TupleId)> = HashMap::new();
    let mut delta: Vec<(TupleId, TupleId)> = Vec::new(); // (node, match)
    let mut last: Option<TupleId> = None;
    for p in ix.postings(keyword) {
        if last != Some(p.tuple) {
            best.insert(p.tuple, (0, p.tuple));
            delta.push((p.tuple, p.tuple));
            last = Some(p.tuple);
        }
    }
    for d in 1..=d_max {
        // level-synchronous expansion; among equidistant matches the
        // smallest tuple id wins (mirroring the graph side's tie-break)
        let mut discovered: HashMap<TupleId, TupleId> = HashMap::new();
        for &(u, m) in &delta {
            stats.add_probes(1);
            for &v in adj.get(&u).into_iter().flatten() {
                stats.add_scanned(1);
                if !best.contains_key(&v) {
                    match discovered.get_mut(&v) {
                        Some(cur) if *cur <= m => {}
                        _ => {
                            discovered.insert(v, m);
                        }
                    }
                }
            }
        }
        stats.add_join();
        if discovered.is_empty() {
            break;
        }
        delta = discovered
            .into_iter()
            .map(|(v, m)| {
                best.insert(v, (d, m));
                (v, m)
            })
            .collect();
    }
    best
}

/// Distinct-core keyword search via relational operators.
pub fn search<S: AsRef<str>>(
    db: &Database,
    keywords: &[S],
    d_max: u32,
    k: usize,
) -> (Vec<CoreAnswer>, kwdb_relational::stats::StatsSnapshot) {
    let stats = ExecStats::new();
    let l = keywords.len();
    if l == 0 || k == 0 {
        return (Vec::new(), stats.snapshot());
    }
    let edges = edge_relation(db);
    let mut pair_rels = Vec::with_capacity(l);
    for kw in keywords {
        let p = pairs(db, &edges, kw.as_ref(), d_max, &stats);
        if p.is_empty() {
            return (Vec::new(), stats.snapshot());
        }
        pair_rels.push(p);
    }
    // join Pairs relations on the center x, then GROUP BY core
    let smallest = (0..l).min_by_key(|&i| pair_rels[i].len()).expect("l >= 1");
    let mut grouped: HashMap<Vec<TupleId>, (TupleId, u32)> = HashMap::new();
    'outer: for (&x, &(d0, m0)) in &pair_rels[smallest] {
        let mut core = vec![m0; l];
        let mut total = 0u32;
        for i in 0..l {
            stats.add_probes(1);
            if i == smallest {
                core[i] = m0;
                total += d0;
                continue;
            }
            match pair_rels[i].get(&x) {
                Some(&(d, m)) => {
                    core[i] = m;
                    total += d;
                }
                None => continue 'outer,
            }
        }
        stats.add_output(1);
        match grouped.get_mut(&core) {
            Some(slot) => {
                if total < slot.1 || (total == slot.1 && x < slot.0) {
                    *slot = (x, total);
                }
            }
            None => {
                grouped.insert(core, (x, total));
            }
        }
    }
    let mut out: Vec<CoreAnswer> = grouped
        .into_iter()
        .map(|(core, (center, total_dist))| CoreAnswer {
            core,
            center,
            total_dist,
        })
        .collect();
    out.sort_by(|a, b| a.total_dist.cmp(&b.total_dist).then(a.core.cmp(&b.core)));
    out.truncate(k);
    (out, stats.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::database::dblp_schema;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "Serge Abiteboul".into()])
            .unwrap();
        db.insert(
            "paper",
            vec![10.into(), "XML keyword search".into(), 1.into()],
        )
        .unwrap();
        db.insert("paper", vec![11.into(), "Web data".into(), 1.into()])
            .unwrap();
        db.insert("write", vec![100.into(), 1.into(), 10.into()])
            .unwrap();
        db.insert("write", vec![101.into(), 2.into(), 11.into()])
            .unwrap();
        db.build_text_index();
        db
    }

    #[test]
    fn edge_relation_is_symmetric() {
        let db = db();
        let edges = edge_relation(&db);
        for &(u, v) in &edges {
            assert!(edges.contains(&(v, u)));
        }
        // paper→conf ×2, write→author ×2, write→paper ×2 = 6 directed pairs ×2
        assert_eq!(edges.len(), 12);
    }

    #[test]
    fn finds_widom_xml_core() {
        let db = db();
        let (res, stats) = search(&db, &["widom", "xml"], 3, 10);
        assert!(!res.is_empty());
        let top = &res[0];
        // core: author(1) and paper(10); connected via write at distance 1+1
        assert_eq!(db.format_tuple(top.core[0]), "author(1, Jennifer Widom)");
        assert!(db.format_tuple(top.core[1]).contains("XML"));
        assert_eq!(top.total_dist, 2);
        assert!(stats.joins_executed > 0);
    }

    #[test]
    fn dmax_zero_requires_single_tuple_match() {
        let db = db();
        let (res, _) = search(&db, &["xml", "keyword"], 0, 10);
        // paper 10 contains both
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].total_dist, 0);
        let (none, _) = search(&db, &["xml", "widom"], 0, 10);
        assert!(none.is_empty());
    }

    #[test]
    fn distinct_cores_are_deduplicated() {
        let db = db();
        let (res, _) = search(&db, &["widom", "xml"], 4, 100);
        let mut cores: Vec<Vec<TupleId>> = res.iter().map(|c| c.core.clone()).collect();
        cores.sort();
        let n = cores.len();
        cores.dedup();
        assert_eq!(cores.len(), n);
    }

    #[test]
    fn missing_keyword_is_empty() {
        let db = db();
        let (res, _) = search(&db, &["widom", "zzz"], 3, 10);
        assert!(res.is_empty());
    }
}
