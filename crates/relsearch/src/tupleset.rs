//! Query tuple sets: `R^K` = rows of table `R` whose text contains exactly
//! the query-keyword subset `K` (and no other query keyword).
//!
//! The exact-subset partition is DISCOVER's: it makes candidate networks
//! assign each keyword to exactly one node, so a CN's results are total
//! (cover all keywords) and duplicate-free across CNs (a joining tree of
//! tuples matches exactly one CN).

use kwdb_common::index::kernels;
use kwdb_common::{Result, ShardedCache};
use kwdb_relational::{Database, RowId, TableId};
use std::collections::HashMap;
use std::sync::Arc;

/// The relational engine's per-term tuple-set cache: materialized sorted
/// `(table << 32 | row)` key lists, keyed by `(generation, term symbol)`.
/// The generation in the key is the whole invalidation story — a commit
/// bumps it, stale entries stop matching, and the LRU sweep reclaims them.
pub type TermCache = ShardedCache<(u64, u32), Arc<Vec<u64>>>;

/// One non-empty tuple set `R^K`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleSet {
    pub table: TableId,
    /// Bitmask over the query keywords; never 0 for stored sets (the free
    /// set `R^{}` is implicit — it is the whole table).
    pub mask: u32,
    /// Matching rows, ascending.
    pub rows: Vec<RowId>,
}

/// All non-empty tuple sets of a query, keyed by `(table, mask)`.
#[derive(Debug, Clone, Default)]
pub struct TupleSets {
    sets: HashMap<(TableId, u32), TupleSet>,
    /// Per table: rows matching *any* query keyword (sorted) — the
    /// complement of the free set `R^∅`.
    matched: HashMap<TableId, Vec<RowId>>,
    n_keywords: usize,
}

impl TupleSets {
    /// Partition every table's matching rows by exact keyword subset.
    /// Requires a fresh full-text index on `db`.
    ///
    /// Rides the k-way cursor union kernel: tuple keys `(table, row)` arrive
    /// in ascending order with the bitmask of matching lists, so the
    /// per-set and per-table row vectors come out sorted with no hashing
    /// over postings and no post-sort — and the same code path serves both
    /// the plain and the block-compressed layout.
    pub fn build<S: AsRef<str>>(db: &Database, keywords: &[S]) -> Result<Self> {
        assert!(keywords.len() <= 32, "at most 32 keywords");
        let ix = db.text_index()?;
        // One dictionary lookup per keyword up front; absent keywords have
        // no postings and simply contribute no mask bits.
        let mut cursors = Vec::with_capacity(keywords.len());
        let mut bit_of = Vec::with_capacity(keywords.len());
        for (i, kw) in keywords.iter().enumerate() {
            let Some(sym) = ix.sym(kw.as_ref()) else {
                continue;
            };
            cursors.push(ix.postings_sym(sym).cursor());
            bit_of.push(i as u32);
        }
        let mut sets: HashMap<(TableId, u32), TupleSet> = HashMap::new();
        let mut matched: HashMap<TableId, Vec<RowId>> = HashMap::new();
        kernels::for_each_union_key(&mut cursors, |key, cursor_mask| {
            let mut mask = 0u32;
            let mut rest = cursor_mask;
            while rest != 0 {
                mask |= 1 << bit_of[rest.trailing_zeros() as usize];
                rest &= rest - 1;
            }
            let table = TableId((key >> 32) as u32);
            let row = RowId(key as u32);
            sets.entry((table, mask))
                .or_insert_with(|| TupleSet {
                    table,
                    mask,
                    rows: Vec::new(),
                })
                .rows
                .push(row);
            matched.entry(table).or_default().push(row);
        });
        Ok(TupleSets {
            sets,
            matched,
            n_keywords: keywords.len(),
        })
    }

    /// [`TupleSets::build`] through the per-term cache: each keyword's
    /// sorted tuple-key list is fetched from `cache` (keyed by the
    /// database's current generation and the term's symbol) or materialized
    /// from its postings and stored; the exact-subset partition is then a
    /// k-way merge over the per-term lists. Returns the tuple sets plus
    /// this query's (hit, miss) counts against the cache.
    ///
    /// Equivalent to `build` for any index state — proven by the cache
    /// parity tests — because a list materialized at generation `g` can
    /// only be observed while the index is still at `g`.
    pub fn build_cached<S: AsRef<str>>(
        db: &Database,
        keywords: &[S],
        cache: &TermCache,
    ) -> Result<(Self, u64, u64)> {
        assert!(keywords.len() <= 32, "at most 32 keywords");
        let ix = db.text_index()?;
        let generation = db.generation();
        let (mut hits, mut misses) = (0u64, 0u64);
        let mut lists: Vec<Arc<Vec<u64>>> = Vec::with_capacity(keywords.len());
        let mut bit_of = Vec::with_capacity(keywords.len());
        for (i, kw) in keywords.iter().enumerate() {
            let Some(sym) = ix.sym(kw.as_ref()) else {
                continue;
            };
            let key = (generation, sym.0);
            let list = match cache.get(&key) {
                Some(list) => {
                    hits += 1;
                    list
                }
                None => {
                    misses += 1;
                    let mut keys = Vec::new();
                    let mut cursors = vec![ix.postings_sym(sym).cursor()];
                    kernels::for_each_union_key(&mut cursors, |k, _| keys.push(k));
                    let list = Arc::new(keys);
                    cache.insert(key, Arc::clone(&list), list.len() * 8 + 48);
                    list
                }
            };
            lists.push(list);
            bit_of.push(i as u32);
        }
        // K-way merge over the sorted per-term lists — the same ascending
        // (key, mask) stream the cursor-union kernel produces in `build`.
        let mut sets: HashMap<(TableId, u32), TupleSet> = HashMap::new();
        let mut matched: HashMap<TableId, Vec<RowId>> = HashMap::new();
        let mut idx = vec![0usize; lists.len()];
        loop {
            let mut min = u64::MAX;
            for (i, list) in lists.iter().enumerate() {
                if idx[i] < list.len() {
                    min = min.min(list[idx[i]]);
                }
            }
            if min == u64::MAX {
                break;
            }
            let mut mask = 0u32;
            for (i, list) in lists.iter().enumerate() {
                if idx[i] < list.len() && list[idx[i]] == min {
                    mask |= 1 << bit_of[i];
                    idx[i] += 1;
                }
            }
            let table = TableId((min >> 32) as u32);
            let row = RowId(min as u32);
            sets.entry((table, mask))
                .or_insert_with(|| TupleSet {
                    table,
                    mask,
                    rows: Vec::new(),
                })
                .rows
                .push(row);
            matched.entry(table).or_default().push(row);
        }
        Ok((
            TupleSets {
                sets,
                matched,
                n_keywords: keywords.len(),
            },
            hits,
            misses,
        ))
    }

    pub fn n_keywords(&self) -> usize {
        self.n_keywords
    }

    /// The full-cover mask `2^l − 1`.
    pub fn full_mask(&self) -> u32 {
        if self.n_keywords == 0 {
            0
        } else {
            (1u32 << self.n_keywords) - 1
        }
    }

    /// Get a non-empty tuple set.
    pub fn get(&self, table: TableId, mask: u32) -> Option<&TupleSet> {
        self.sets.get(&(table, mask))
    }

    /// All non-empty `(table, mask)` keys, sorted.
    pub fn keys(&self) -> Vec<(TableId, u32)> {
        let mut k: Vec<_> = self.sets.keys().copied().collect();
        k.sort();
        k
    }

    /// Non-empty masks available for `table`, sorted.
    pub fn masks_for(&self, table: TableId) -> Vec<u32> {
        let mut m: Vec<u32> = self
            .sets
            .keys()
            .filter(|(t, _)| *t == table)
            .map(|(_, m)| *m)
            .collect();
        m.sort();
        m
    }

    /// The free set `R^∅`: rows of `table` containing *no* query keyword.
    /// Using the exact partition keeps joining trees duplicate-free across
    /// CNs — every tree's node masks are its tuples' exact keyword sets.
    pub fn free_rows(&self, db: &Database, table: TableId) -> Vec<RowId> {
        let t = db.table(table);
        let matched = self
            .matched
            .get(&table)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        let mut mi = 0;
        let mut out = Vec::with_capacity(t.live_len() - matched.len());
        // Live rows only: the table iterator skips tombstoned slots, and
        // matched rows (from the index union) are always live.
        for (rid, _) in t.iter() {
            if mi < matched.len() && matched[mi] == rid {
                mi += 1;
            } else {
                out.push(rid);
            }
        }
        out
    }

    /// Size of the free set `R^∅` without materializing it — for cost
    /// estimation and scheduling, which only need counts.
    pub fn free_row_count(&self, db: &Database, table: TableId) -> usize {
        let matched = self.matched.get(&table).map_or(0, |v| v.len());
        db.table(table).live_len() - matched
    }

    /// Every keyword must match somewhere for AND semantics to be satisfiable.
    pub fn covers_all_keywords(&self) -> bool {
        let mut seen = 0u32;
        for (_, m) in self.sets.keys() {
            seen |= m;
        }
        seen == self.full_mask()
    }

    pub fn len(&self) -> usize {
        self.sets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::database::dblp_schema;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "XML Hacker".into()])
            .unwrap();
        db.insert(
            "paper",
            vec![10.into(), "XML keyword search".into(), 1.into()],
        )
        .unwrap();
        db.insert("paper", vec![11.into(), "Widom on XML".into(), 1.into()])
            .unwrap();
        db.insert("write", vec![100.into(), 1.into(), 10.into()])
            .unwrap();
        db.build_text_index();
        db
    }

    #[test]
    fn exact_subset_partition() {
        let db = db();
        let ts = TupleSets::build(&db, &["widom", "xml"]).unwrap();
        let author = db.table_id("author").unwrap();
        let paper = db.table_id("paper").unwrap();
        // author 1: {widom} → mask 0b01; author 2: {xml} → mask 0b10
        assert_eq!(ts.get(author, 0b01).unwrap().rows, vec![RowId(0)]);
        assert_eq!(ts.get(author, 0b10).unwrap().rows, vec![RowId(1)]);
        // paper 10: {xml} only; paper 11: both
        assert_eq!(ts.get(paper, 0b10).unwrap().rows, vec![RowId(0)]);
        assert_eq!(ts.get(paper, 0b11).unwrap().rows, vec![RowId(1)]);
        assert!(ts.get(paper, 0b01).is_none());
        assert!(ts.covers_all_keywords());
    }

    #[test]
    fn masks_for_table_sorted() {
        let db = db();
        let ts = TupleSets::build(&db, &["widom", "xml"]).unwrap();
        let paper = db.table_id("paper").unwrap();
        assert_eq!(ts.masks_for(paper), vec![0b10, 0b11]);
    }

    #[test]
    fn unmatched_keyword_detected() {
        let db = db();
        let ts = TupleSets::build(&db, &["widom", "nonexistent"]).unwrap();
        assert!(!ts.covers_all_keywords());
    }

    #[test]
    fn free_rows_exclude_keyword_rows() {
        let db = db();
        let ts = TupleSets::build(&db, &["widom", "xml"]).unwrap();
        let paper = db.table_id("paper").unwrap();
        // both papers match a keyword → free set empty
        assert!(ts.free_rows(&db, paper).is_empty());
        let author = db.table_id("author").unwrap();
        assert!(ts.free_rows(&db, author).is_empty());
        let write = db.table_id("write").unwrap();
        // write has no text matches → whole table is free
        assert_eq!(ts.free_rows(&db, write), vec![RowId(0)]);
    }

    #[test]
    fn empty_query() {
        let db = db();
        let ts = TupleSets::build::<&str>(&db, &[]).unwrap();
        assert!(ts.is_empty());
        assert_eq!(ts.full_mask(), 0);
        assert!(ts.covers_all_keywords());
    }

    fn assert_same_partition(db: &Database, a: &TupleSets, b: &TupleSets) {
        assert_eq!(a.n_keywords(), b.n_keywords());
        assert_eq!(a.covers_all_keywords(), b.covers_all_keywords());
        for table in ["conference", "author", "paper", "write"] {
            let t = db.table_id(table).unwrap();
            assert_eq!(a.masks_for(t), b.masks_for(t), "masks for {table}");
            for mask in a.masks_for(t) {
                assert_eq!(
                    a.get(t, mask).unwrap().rows,
                    b.get(t, mask).unwrap().rows,
                    "rows for {table} mask {mask:b}"
                );
            }
            assert_eq!(a.free_rows(db, t), b.free_rows(db, t), "free rows {table}");
        }
    }

    #[test]
    fn cached_build_matches_uncached_and_hits_on_repeat() {
        let db = db();
        let cache = TermCache::new(kwdb_common::CacheConfig::default());
        let plain = TupleSets::build(&db, &["widom", "xml"]).unwrap();
        let (cached, hits, misses) =
            TupleSets::build_cached(&db, &["widom", "xml"], &cache).unwrap();
        assert_eq!((hits, misses), (0, 2));
        assert_same_partition(&db, &plain, &cached);
        let (again, hits, misses) =
            TupleSets::build_cached(&db, &["widom", "xml"], &cache).unwrap();
        assert_eq!((hits, misses), (2, 0));
        assert_same_partition(&db, &plain, &again);
        // A query with an unknown term never touches the cache for it.
        let (_, hits, misses) =
            TupleSets::build_cached(&db, &["widom", "nonexistent"], &cache).unwrap();
        assert_eq!((hits, misses), (1, 0));
    }

    #[test]
    fn generation_bump_invalidates_cached_terms() {
        let mut db = db();
        let cache = TermCache::new(kwdb_common::CacheConfig::default());
        let (_, _, misses) = TupleSets::build_cached(&db, &["xml"], &cache).unwrap();
        assert_eq!(misses, 1);
        db.insert("paper", vec![12.into(), "XML twig joins".into(), 1.into()])
            .unwrap();
        db.build_text_index();
        let (fresh, hits, misses) = TupleSets::build_cached(&db, &["xml"], &cache).unwrap();
        assert_eq!((hits, misses), (0, 1), "new generation must re-materialize");
        let plain = TupleSets::build(&db, &["xml"]).unwrap();
        assert_same_partition(&db, &plain, &fresh);
    }

    use kwdb_relational::RowId;
}
