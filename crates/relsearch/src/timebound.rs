//! Time-bounded keyword search with residual forms (Baid, Rae, Doan &
//! Naughton, *Toward industrial-strength keyword search systems over
//! relational data*, ICDE 10) — tutorial slides 119–120.
//!
//! Keyword search latency is unpredictable: some queries have cheap answers,
//! others hide behind enormous CN spaces. The industrial-strength answer:
//! run the search for a **preset work budget**, return what was found, and
//! summarize the *unexplored and incompletely explored* search space as
//! query forms the user can continue with — "easy queries answered, hard
//! queries handed to the user".

use crate::cn::CandidateNetwork;
use crate::eval::evaluate_cn;
use crate::topk::{RankedResult, TopKQuery};
use kwdb_common::topk::TopK;
use kwdb_relational::{Database, ExecStats};
use std::ops::Deref;

/// A residual form: an unexplored CN rendered as an incomplete query.
#[derive(Debug, Clone)]
pub struct ResidualForm {
    pub cn_index: usize,
    /// Human-readable rendering of the CN (its join structure + keyword
    /// slots), as the user would see the form.
    pub description: String,
    /// The CN's optimistic score bound — how promising the unexplored
    /// region still is.
    pub bound: f64,
}

/// Outcome of a budgeted search.
#[derive(Debug)]
pub struct PartialSearch {
    pub results: Vec<RankedResult>,
    /// CNs not (fully) evaluated before the budget ran out, best first.
    pub residual_forms: Vec<ResidualForm>,
    /// Whether the search completed within budget (no residual space).
    pub complete: bool,
}

/// Run top-k evaluation CN-by-CN (bound order) until `work_budget` join
/// probes + scans are spent; summarize the rest as forms.
pub fn partial_search<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    work_budget: u64,
    db: &Database,
) -> PartialSearch {
    // order CNs by bound, as Sparse does
    let mut order: Vec<(f64, usize)> = q
        .cns
        .iter()
        .enumerate()
        .map(|(i, cn)| (cn_bound_public(q, cn), i))
        .collect();
    order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let stats = ExecStats::new();
    let mut topk = TopK::new(k);
    let mut residual: Vec<ResidualForm> = Vec::new();
    let mut exhausted = false;
    for (bound, ci) in order {
        // early termination applies throughout: dominated CNs are *not*
        // residual — they provably cannot contribute
        if let Some(th) = topk.threshold() {
            if bound <= th {
                break;
            }
        }
        let spent = stats.snapshot().join_probes + stats.snapshot().tuples_scanned;
        if exhausted || spent >= work_budget {
            exhausted = true;
            residual.push(ResidualForm {
                cn_index: ci,
                description: q.cns[ci].display(db, q.keywords),
                bound,
            });
            continue;
        }
        for r in evaluate_cn(db, &q.cns[ci], q.ts, &stats) {
            let score = q.scorer.monotone_score(&r, q.keywords);
            topk.push(score, (ci, r));
        }
    }
    PartialSearch {
        results: topk
            .into_sorted_vec()
            .into_iter()
            .map(|(score, (cn_index, result))| RankedResult {
                cn_index,
                result,
                score,
            })
            .collect(),
        complete: residual.is_empty(),
        residual_forms: residual,
    }
}

/// Re-export of the executor-internal bound for form ranking.
fn cn_bound_public<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    cn: &CandidateNetwork,
) -> f64 {
    let mut sum = 0.0;
    for &ni in &cn.keyword_nodes() {
        let node = cn.nodes[ni];
        let best = q
            .ts
            .get(node.table, node.mask)
            .map(|s| {
                s.rows
                    .iter()
                    .map(|&r| {
                        q.scorer
                            .tuple_score(kwdb_relational::TupleId::new(node.table, r), q.keywords)
                    })
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0);
        sum += best;
    }
    sum / cn.size() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::{CnGenConfig, CnGenerator, MaskOracle};
    use crate::topk::naive;
    use crate::{ResultScorer, TupleSets};
    use kwdb_relational::database::dblp_schema;

    fn setup() -> (Database, Vec<String>) {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        for aid in 0..10 {
            db.insert(
                "author",
                vec![(aid as i64).into(), format!("widom {aid}").into()],
            )
            .unwrap();
        }
        for pid in 0..10 {
            db.insert(
                "paper",
                vec![
                    (pid as i64).into(),
                    format!("xml topic {pid}").into(),
                    1.into(),
                ],
            )
            .unwrap();
        }
        for w in 0..10 {
            db.insert(
                "write",
                vec![(w as i64).into(), (w as i64).into(), (w as i64).into()],
            )
            .unwrap();
        }
        db.build_text_index();
        (db, vec!["widom".to_string(), "xml".to_string()])
    }

    fn run(db: &Database, keywords: &[String], budget: u64) -> PartialSearch {
        let ts = TupleSets::build(db, keywords).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut g = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 5,
                dedupe: true,
                max_cns: 100,
            },
        );
        let cns = g.generate();
        let scorer = ResultScorer::new(db);
        let q = TopKQuery {
            db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords,
        };
        partial_search(&q, 5, budget, db)
    }

    #[test]
    fn generous_budget_completes() {
        let (db, kws) = setup();
        let out = run(&db, &kws, u64::MAX);
        assert!(out.complete);
        assert!(out.residual_forms.is_empty());
        assert!(!out.results.is_empty());
    }

    #[test]
    fn zero_budget_summarizes_everything_as_forms() {
        // With no budget at all nothing is evaluated, so nothing can be
        // dominated: the entire CN space comes back as residual forms.
        let (db, kws) = setup();
        let out = run(&db, &kws, 0);
        assert!(!out.complete);
        assert!(out.results.is_empty());
        assert!(!out.residual_forms.is_empty());
        // residual forms carry the CN rendering with keyword slots
        assert!(out.residual_forms[0].description.contains('^'));
        // bounds descend with the evaluation order
        assert!(out
            .residual_forms
            .windows(2)
            .all(|w| w[0].bound >= w[1].bound));
    }

    #[test]
    fn dominated_cns_are_not_residual() {
        // A budget that covers the top CN: the rest are either dominated
        // (dropped) or residual; in this fixture the first CN's results
        // dominate everything else, so the search reports complete.
        let (db, kws) = setup();
        let out = run(&db, &kws, 10_000);
        assert!(out.complete, "domination should finish the search");
        assert_eq!(out.results.len(), 5);
    }

    #[test]
    fn partial_results_are_a_prefix_quality_subset() {
        // whatever a budgeted run returns must be genuine results (they
        // appear in the exhaustive run too)
        let (db, kws) = setup();
        let full = {
            let ts = TupleSets::build(&db, &kws).unwrap();
            let oracle = MaskOracle::from_tuplesets(&ts);
            let mut g = CnGenerator::new(
                db.schema_graph(),
                &oracle,
                CnGenConfig {
                    max_size: 5,
                    dedupe: true,
                    max_cns: 100,
                },
            );
            let cns = g.generate();
            let scorer = ResultScorer::new(&db);
            let q = TopKQuery {
                db: &db,
                ts: &ts,
                cns: &cns,
                scorer: &scorer,
                keywords: &kws,
            };
            naive(&q, 1000, &ExecStats::new())
        };
        let all_sigs: std::collections::HashSet<Vec<kwdb_relational::TupleId>> = full
            .into_iter()
            .map(|r| {
                let mut t = r.result.tuples;
                t.sort();
                t
            })
            .collect();
        let partial = run(&db, &kws, 200);
        for r in &partial.results {
            let mut sig = r.result.tuples.clone();
            sig.sort();
            assert!(all_sigs.contains(&sig), "budgeted result not in full run");
        }
    }
}
