//! Top-k execution strategies over many candidate networks — DISCOVER2
//! (Hristidis et al., VLDB 03), tutorial slide 116.
//!
//! All four executors return the same top-k (the scoring function is the
//! monotone DISCOVER2 model from [`crate::score`]); they differ in how much
//! work they do, which is exactly what experiment E06 measures:
//!
//! * [`naive`] — evaluate every CN fully, then sort.
//! * [`sparse`] — order CNs by an upper bound (best tuple of each keyword
//!   node); evaluate whole CNs until the next bound cannot beat the k-th
//!   best.
//! * [`single_pipeline`] — Sparse's CN ordering, but each CN is evaluated
//!   incrementally and abandoned as soon as its own bound is dominated.
//! * [`global_pipeline`] — interleave *slices* of all CNs: each keyword
//!   node's tuples are sorted by score, and the executor repeatedly advances
//!   the CN/node with the highest remaining upper bound by one tuple,
//!   joining it against the already-consumed prefixes of the CN's other
//!   nodes. Every tuple combination is evaluated at most once, and execution
//!   stops as soon as no CN's bound can beat the k-th best.

use crate::cn::CandidateNetwork;
use crate::eval::{default_rows, evaluate_cn, evaluate_cn_with, JoinedResult};
use crate::facets::{FacetAccum, FacetRequest};
use crate::score::ResultScorer;
use crate::tupleset::TupleSets;
use kwdb_common::topk::TopK;
use kwdb_common::{Budget, TruncationReason};
use kwdb_relational::{Database, ExecStats, RowId};
use std::ops::Deref;

/// A scored result with its originating CN.
#[derive(Debug, Clone)]
pub struct RankedResult {
    pub cn_index: usize,
    pub result: JoinedResult,
    pub score: f64,
}

/// What a CN executor did, beyond the ranked results: how the run ended and
/// how the CN population split between networks actually joined and networks
/// skipped (bound-pruned or cut by the budget). For every executor,
/// `cns_evaluated + cns_pruned` equals the number of CNs it was given —
/// the invariant the metrics validator checks fleet-wide.
#[derive(Debug, Clone)]
pub struct CnExecOutcome {
    pub results: Vec<RankedResult>,
    pub truncation: Option<TruncationReason>,
    /// CNs that contributed at least one join slice / full evaluation.
    pub cns_evaluated: u64,
    /// CNs never touched: dominated by the top-k bound or budget-cut.
    pub cns_pruned: u64,
}

/// Everything an executor needs. Generic over how the scorer holds the
/// database (`D`, see [`ResultScorer`]) so the same executors serve both the
/// borrow-based pipelines and the `Arc`-owned unified engine; the default
/// keeps plain `TopKQuery<'_, S>` annotations meaning the borrowed form.
pub struct TopKQuery<'a, S: AsRef<str>, D: Deref<Target = Database> = &'a Database> {
    pub db: &'a Database,
    pub ts: &'a TupleSets,
    pub cns: &'a [CandidateNetwork],
    pub scorer: &'a ResultScorer<D>,
    pub keywords: &'a [S],
}

/// Evaluate everything, keep the best k.
pub fn naive<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
) -> Vec<RankedResult> {
    naive_counted(q, k, stats).results
}

/// [`naive`] with CN accounting: every CN is evaluated, none pruned.
pub fn naive_counted<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
) -> CnExecOutcome {
    let mut topk = TopK::new(k);
    for (ci, cn) in q.cns.iter().enumerate() {
        for r in evaluate_cn(q.db, cn, q.ts, stats) {
            let score = q.scorer.monotone_score(&r, q.keywords);
            topk.push(score, (ci, r));
        }
    }
    CnExecOutcome {
        results: finish(topk),
        truncation: None,
        cns_evaluated: q.cns.len() as u64,
        cns_pruned: 0,
    }
}

/// Upper bound on any result of `cn`: each keyword node contributes its best
/// tuple's score; free nodes contribute 0 (their tuples match no keyword).
fn cn_bound<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    cn: &CandidateNetwork,
) -> f64 {
    let mut sum = 0.0;
    for &ni in &cn.keyword_nodes() {
        let node = cn.nodes[ni];
        let best = q
            .ts
            .get(node.table, node.mask)
            .map(|s| {
                s.rows
                    .iter()
                    .map(|&r| {
                        q.scorer
                            .tuple_score(kwdb_relational::TupleId::new(node.table, r), q.keywords)
                    })
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0);
        sum += best;
    }
    sum / cn.size() as f64
}

/// Evaluate CNs in bound order; stop when the next bound cannot improve.
pub fn sparse<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
) -> Vec<RankedResult> {
    sparse_counted(q, k, stats).results
}

/// [`sparse`] with CN accounting: CNs behind the stopping bound are pruned.
pub fn sparse_counted<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
) -> CnExecOutcome {
    let mut order: Vec<(f64, usize)> = q
        .cns
        .iter()
        .enumerate()
        .map(|(i, cn)| (cn_bound(q, cn), i))
        .collect();
    order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut topk = TopK::new(k);
    let mut evaluated: u64 = 0;
    for (bound, ci) in order {
        if let Some(th) = topk.threshold() {
            if bound <= th {
                break; // no remaining CN can beat the k-th best
            }
        }
        evaluated += 1;
        for r in evaluate_cn(q.db, &q.cns[ci], q.ts, stats) {
            let score = q.scorer.monotone_score(&r, q.keywords);
            topk.push(score, (ci, r));
        }
    }
    CnExecOutcome {
        results: finish(topk),
        truncation: None,
        cns_evaluated: evaluated,
        cns_pruned: q.cns.len() as u64 - evaluated,
    }
}

/// Per-CN pipeline state for the global pipeline.
struct CnState {
    cn_idx: usize,
    /// Indices of keyword nodes within the CN.
    nonfree: Vec<usize>,
    /// Per keyword node: rows sorted by tuple score, descending.
    sorted: Vec<Vec<(RowId, f64)>>,
    /// Per keyword node: tuples consumed so far.
    p: Vec<usize>,
    size: f64,
}

impl CnState {
    /// Upper bound of all unseen combinations, and the node to advance.
    fn bound(&self) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        for (i, rows) in self.sorted.iter().enumerate() {
            let Some(&(_, next_score)) = rows.get(self.p[i]) else {
                continue;
            };
            let others: f64 = self
                .sorted
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, r)| r.first().map(|&(_, s)| s).unwrap_or(0.0))
                .sum();
            let b = (next_score + others) / self.size;
            if best.is_none_or(|(bb, _)| b > bb) {
                best = Some((b, i));
            }
        }
        best
    }
}

/// The single pipeline (slide 116's third strategy): process CNs one at a
/// time in bound order, but evaluate each CN *incrementally* (slice by
/// slice, like the global pipeline restricted to one CN), stopping inside a
/// CN as soon as its remaining bound cannot beat the k-th best, and stopping
/// overall when the next CN's bound cannot either.
pub fn single_pipeline<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
) -> Vec<RankedResult> {
    single_pipeline_counted(q, k, stats).results
}

/// [`single_pipeline`] with CN accounting.
pub fn single_pipeline_counted<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
) -> CnExecOutcome {
    let mut order: Vec<(f64, usize)> = q
        .cns
        .iter()
        .enumerate()
        .map(|(i, cn)| (cn_bound(q, cn), i))
        .collect();
    order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut topk = TopK::new(k);
    let mut evaluated: u64 = 0;
    for (bound, ci) in order {
        if let Some(th) = topk.threshold() {
            if bound <= th {
                break;
            }
        }
        evaluated += 1;
        pipeline_one_cn(q, ci, &mut topk, stats);
    }
    CnExecOutcome {
        results: finish(topk),
        truncation: None,
        cns_evaluated: evaluated,
        cns_pruned: q.cns.len() as u64 - evaluated,
    }
}

/// Drive one CN's slice pipeline until exhausted or dominated.
fn pipeline_one_cn<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    ci: usize,
    topk: &mut TopK<(usize, JoinedResult)>,
    stats: &ExecStats,
) {
    let cn = &q.cns[ci];
    let nonfree = cn.keyword_nodes();
    let sorted: Vec<Vec<(RowId, f64)>> = nonfree
        .iter()
        .map(|&ni| {
            let node = cn.nodes[ni];
            let mut rows: Vec<(RowId, f64)> =
                q.ts.get(node.table, node.mask)
                    .map(|s| {
                        s.rows
                            .iter()
                            .map(|&r| {
                                (
                                    r,
                                    q.scorer.tuple_score(
                                        kwdb_relational::TupleId::new(node.table, r),
                                        q.keywords,
                                    ),
                                )
                            })
                            .collect()
                    })
                    .unwrap_or_default();
            rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            rows
        })
        .collect();
    let mut st = CnState {
        cn_idx: ci,
        p: vec![0; nonfree.len()],
        size: cn.size() as f64,
        nonfree,
        sorted,
    };
    while let Some((bound, adv)) = st.bound() {
        if let Some(th) = topk.threshold() {
            if bound <= th {
                break;
            }
        }
        let fixed_row = st.sorted[adv][st.p[adv]].0;
        let viable = st.p.iter().enumerate().all(|(i, &pi)| i == adv || pi > 0);
        if viable {
            let results = evaluate_cn_with(
                q.db,
                cn,
                &|node| {
                    if node == st.nonfree[adv] {
                        vec![fixed_row]
                    } else if let Some(i) = st.nonfree.iter().position(|&nf| nf == node) {
                        st.sorted[i][..st.p[i]].iter().map(|&(r, _)| r).collect()
                    } else {
                        default_rows(q.db, cn, q.ts, node)
                    }
                },
                stats,
            );
            for r in results {
                let score = q.scorer.monotone_score(&r, q.keywords);
                topk.push(score, (st.cn_idx, r));
            }
        }
        st.p[adv] += 1;
    }
}

/// The global pipeline: advance the best-bounded CN slice by slice.
pub fn global_pipeline<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
) -> Vec<RankedResult> {
    global_pipeline_budgeted(q, k, stats, &Budget::unlimited()).0
}

/// [`global_pipeline`] under an execution [`Budget`]: every slice advanced
/// counts as one candidate; when the budget is exhausted the best results
/// found so far are returned along with the [`TruncationReason`] that cut
/// the search short. The result list is always score-sorted, truncated or
/// not.
pub fn global_pipeline_budgeted<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
    budget: &Budget,
) -> (Vec<RankedResult>, Option<TruncationReason>) {
    let o = global_pipeline_counted(q, k, stats, budget);
    (o.results, o.truncation)
}

/// [`global_pipeline_budgeted`] with CN accounting: a CN counts as evaluated
/// once it advances its first slice; CNs that never advance (dominated by
/// the global bound from the start, or cut by the budget) count as pruned.
pub fn global_pipeline_counted<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
    budget: &Budget,
) -> CnExecOutcome {
    global_pipeline_faceted(
        q,
        k,
        stats,
        budget,
        &FacetRequest::none(),
        &mut FacetAccum::new(0),
    )
}

/// [`global_pipeline_counted`] extended with facet accumulation and
/// drill-down refinement.
///
/// With facets requested the pipeline runs *exhaustively*: the
/// bound-vs-threshold early stop is disabled and every CN advances until its
/// slices are spent, because facet counts cover the full result multiset,
/// not just the top k. Each keyword-node combination is still evaluated
/// exactly once (a combination is joined at the advance step that consumes
/// its last element; all other prefixes were consumed strictly earlier), so
/// the counts are exact. Budget tickets are still drawn per slice, and a
/// truncated run leaves the counts partial — the caller reports that via
/// `facets_exact = truncation.is_none()`.
///
/// Refinements filter each joined result before it is ranked *or* counted,
/// so a drill-down query returns both hits and counts for the narrowed
/// result set while reusing the unrefined CN plan.
pub fn global_pipeline_faceted<S: AsRef<str>, D: Deref<Target = Database>>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
    budget: &Budget,
    freq: &FacetRequest<'_>,
    accum: &mut FacetAccum,
) -> CnExecOutcome {
    let exhaustive = freq.exhaustive();
    let mut states: Vec<CnState> = q
        .cns
        .iter()
        .enumerate()
        .map(|(ci, cn)| {
            let nonfree = cn.keyword_nodes();
            let sorted: Vec<Vec<(RowId, f64)>> = nonfree
                .iter()
                .map(|&ni| {
                    let node = cn.nodes[ni];
                    let mut rows: Vec<(RowId, f64)> =
                        q.ts.get(node.table, node.mask)
                            .map(|s| {
                                s.rows
                                    .iter()
                                    .map(|&r| {
                                        (
                                            r,
                                            q.scorer.tuple_score(
                                                kwdb_relational::TupleId::new(node.table, r),
                                                q.keywords,
                                            ),
                                        )
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                    rows
                })
                .collect();
            CnState {
                cn_idx: ci,
                p: vec![0; nonfree.len()],
                size: cn.size() as f64,
                nonfree,
                sorted,
            }
        })
        .collect();

    let mut topk = TopK::new(k);
    let mut slices: u64 = 0;
    let mut truncation = None;
    let mut touched = vec![false; states.len()];
    loop {
        if let Some(reason) = budget.truncation_at(slices) {
            truncation = Some(reason);
            break;
        }
        slices += 1;
        // Pick the state with the globally highest bound.
        let pick = states
            .iter()
            .enumerate()
            .filter_map(|(si, s)| s.bound().map(|(b, node)| (b, si, node)))
            .max_by(|a, b| a.0.total_cmp(&b.0));
        let Some((bound, si, adv)) = pick else { break };
        if !exhaustive {
            if let Some(th) = topk.threshold() {
                if bound <= th {
                    break;
                }
            }
        }
        let st = &states[si];
        let cn = &q.cns[st.cn_idx];
        let fixed_row = st.sorted[adv][st.p[adv]].0;
        // Evaluate the slice: `adv` fixed to its next tuple, other keyword
        // nodes restricted to their consumed prefixes, free nodes default.
        // Prefix of size 0 anywhere (other than adv) means no combinations yet.
        let viable = st.p.iter().enumerate().all(|(i, &pi)| i == adv || pi > 0);
        if viable {
            let results = evaluate_cn_with(
                q.db,
                cn,
                &|node| {
                    if node == st.nonfree[adv] {
                        vec![fixed_row]
                    } else if let Some(i) = st.nonfree.iter().position(|&nf| nf == node) {
                        st.sorted[i][..st.p[i]].iter().map(|&(r, _)| r).collect()
                    } else {
                        default_rows(q.db, cn, q.ts, node)
                    }
                },
                stats,
            );
            for r in results {
                if !freq.passes(q.db, &r) {
                    continue;
                }
                if exhaustive {
                    accum.observe(q.db, freq.facets, &r);
                }
                let score = q.scorer.monotone_score(&r, q.keywords);
                topk.push(score, (st.cn_idx, r));
            }
        }
        touched[si] = true;
        states[si].p[adv] += 1;
    }
    let evaluated = touched.iter().filter(|&&t| t).count() as u64;
    CnExecOutcome {
        results: finish(topk),
        truncation,
        cns_evaluated: evaluated,
        cns_pruned: q.cns.len() as u64 - evaluated,
    }
}

fn finish(topk: TopK<(usize, JoinedResult)>) -> Vec<RankedResult> {
    topk.into_sorted_vec()
        .into_iter()
        .map(|(score, (cn_index, result))| RankedResult {
            cn_index,
            result,
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::{CnGenConfig, CnGenerator, MaskOracle};
    use kwdb_relational::database::dblp_schema;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("conference", vec![2.into(), "VLDB".into(), 2008.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "Serge Abiteboul".into()])
            .unwrap();
        db.insert("author", vec![3.into(), "Widom Junior".into()])
            .unwrap();
        for (pid, title, cid) in [
            (10, "XML keyword search", 1),
            (11, "Data on the Web", 1),
            (12, "Streams and XML", 2),
            (13, "Query optimization", 2),
        ] {
            db.insert("paper", vec![pid.into(), title.into(), cid.into()])
                .unwrap();
        }
        for (wid, aid, pid) in [(100, 1, 10), (101, 2, 11), (102, 1, 12), (103, 3, 13)] {
            db.insert("write", vec![wid.into(), aid.into(), pid.into()])
                .unwrap();
        }
        db.build_text_index();
        db
    }

    fn setup(db: &Database, keywords: &[&str]) -> (TupleSets, Vec<CandidateNetwork>) {
        let ts = TupleSets::build(db, keywords).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut generator = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 5,
                dedupe: true,
                max_cns: 0,
            },
        );
        let cns = generator.generate();
        (ts, cns)
    }

    fn run_all(db: &Database, keywords: &[&str], k: usize) -> Vec<Vec<f64>> {
        let (ts, cns) = setup(db, keywords);
        let scorer = ResultScorer::new(db);
        let q = TopKQuery {
            db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords,
        };
        let stats = ExecStats::new();
        vec![
            naive(&q, k, &stats).iter().map(|r| r.score).collect(),
            sparse(&q, k, &stats).iter().map(|r| r.score).collect(),
            single_pipeline(&q, k, &stats)
                .iter()
                .map(|r| r.score)
                .collect(),
            global_pipeline(&q, k, &stats)
                .iter()
                .map(|r| r.score)
                .collect(),
        ]
    }

    #[test]
    fn executors_agree_on_topk_scores() {
        let db = db();
        for k in [1, 3, 10] {
            let rs = run_all(&db, &["widom", "xml"], k);
            assert_eq!(rs[0], rs[1], "sparse differs from naive at k={k}");
            assert_eq!(rs[0], rs[2], "single pipeline differs from naive at k={k}");
            assert_eq!(rs[0], rs[3], "global pipeline differs from naive at k={k}");
        }
    }

    #[test]
    fn single_pipeline_skips_dominated_cns() {
        let db = db();
        let keywords = ["widom", "xml"];
        let (ts, cns) = setup(&db, &keywords);
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };
        let s_single = ExecStats::new();
        single_pipeline(&q, 1, &s_single);
        let s_naive = ExecStats::new();
        naive(&q, 1, &s_naive);
        assert!(
            s_single.snapshot().tuples_scanned <= s_naive.snapshot().tuples_scanned,
            "single pipeline must not scan more than naive"
        );
    }

    #[test]
    fn results_cover_all_keywords() {
        let db = db();
        let keywords = ["widom", "xml"];
        let (ts, cns) = setup(&db, &keywords);
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };
        let stats = ExecStats::new();
        let res = naive(&q, 10, &stats);
        assert!(!res.is_empty());
        for r in &res {
            let text: Vec<String> = r
                .result
                .tuples
                .iter()
                .flat_map(|&t| db.tuple_tokens(t))
                .collect();
            for kw in &keywords {
                assert!(text.iter().any(|t| t == kw), "missing {kw} in {text:?}");
            }
        }
    }

    #[test]
    fn pipeline_touches_fewer_tuples_for_small_k() {
        let db = db();
        let keywords = ["widom", "xml"];
        let (ts, cns) = setup(&db, &keywords);
        let scorer = ResultScorer::new(&db);
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };
        let sn = ExecStats::new();
        naive(&q, 1, &sn);
        let sp = ExecStats::new();
        global_pipeline(&q, 1, &sp);
        assert!(
            sp.snapshot().join_probes <= sn.snapshot().join_probes,
            "pipeline {} > naive {}",
            sp.snapshot().join_probes,
            sn.snapshot().join_probes
        );
    }

    #[test]
    fn scores_descend() {
        let db = db();
        let (ts, cns) = setup(&db, &["widom", "xml"]);
        let scorer = ResultScorer::new(&db);
        let kws = ["widom", "xml"];
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &kws,
        };
        let stats = ExecStats::new();
        let res = naive(&q, 10, &stats);
        assert!(res.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn no_duplicate_results_across_cns() {
        let db = db();
        let (ts, cns) = setup(&db, &["widom", "xml"]);
        let scorer = ResultScorer::new(&db);
        let kws = ["widom", "xml"];
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &kws,
        };
        let stats = ExecStats::new();
        let res = naive(&q, 100, &stats);
        let mut seen = std::collections::HashSet::new();
        for r in &res {
            let mut sig = r.result.tuples.clone();
            sig.sort();
            assert!(seen.insert(sig), "duplicate joining tree across CNs");
        }
    }
}
