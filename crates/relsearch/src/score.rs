//! Result scoring for relational keyword search.
//!
//! Two scoring regimes (tutorial slides 116–117):
//!
//! * the **monotonic** DISCOVER2 model — a result's score is the sum of its
//!   tuples' tf·idf scores, normalized by CN size; monotone in per-tuple
//!   scores, which the pipelined top-k executors rely on;
//! * the **non-monotonic** SPARK model — the joined tuples form one *virtual
//!   document* whose term frequencies aggregate before the double-log
//!   damping and length normalization, so combining two strong tuples can
//!   score *less* than their sum. SPARK's `watf` upper bound (monotone,
//!   per-tuple) is what Skyline-Sweep and Block-Pipeline prune with.

use crate::eval::JoinedResult;
use kwdb_rank::CorpusStats;
use kwdb_relational::{Database, TupleId};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

/// Corpus statistics over every live tuple of `db` — one "document" per
/// tuple. This is the scan [`ResultScorer::new`] performs; the unified
/// engine calls it once and then keeps the stats in lockstep with the
/// database incrementally (`add_doc` on ingest, `remove_doc` on delete).
pub fn corpus_stats(db: &Database) -> CorpusStats {
    let mut stats = CorpusStats::new();
    for t in db.tables() {
        for (rid, _) in t.iter() {
            stats.add_doc(&db.tuple_tokens(TupleId::new(t.id, rid)));
        }
    }
    stats
}

/// SPARK's length-normalization slope (`s` in pivoted normalization).
const SLOPE: f64 = 0.2;

/// Shared scorer: corpus statistics over all database tuples.
///
/// Generic over how the database is held: `ResultScorer::new(&db)` borrows
/// (the zero-copy path used by the per-crate pipelines, benches, and tests),
/// while `ResultScorer::new(Arc::clone(&db))` owns a handle — that is what
/// lets the unified `RelationalEngine` be `'static` and `Send + Sync` for
/// shared concurrent use.
#[derive(Debug)]
pub struct ResultScorer<D: Deref<Target = Database> = std::sync::Arc<Database>> {
    db: D,
    stats: Arc<CorpusStats>,
    avg_len: f64,
}

impl<D: Deref<Target = Database>> ResultScorer<D> {
    /// Build corpus statistics over every tuple (one "document" per tuple).
    pub fn new(db: D) -> Self {
        let stats = corpus_stats(&db);
        Self::from_stats(db, Arc::new(stats))
    }

    /// Build a scorer from externally maintained corpus statistics — the
    /// incremental-ingest path: the unified engine keeps one `CorpusStats`
    /// in lockstep with the database and hands out per-query scorers
    /// without rescanning. The average document length is derived from the
    /// stats' totals, matching what [`new`](Self::new) computes over the
    /// same corpus.
    pub fn from_stats(db: D, stats: Arc<CorpusStats>) -> Self {
        let n = stats.doc_count();
        let avg_len = if n == 0 {
            1.0
        } else {
            (stats.total_tokens() as f64 / n as f64).max(1.0)
        };
        ResultScorer { db, stats, avg_len }
    }

    pub fn corpus(&self) -> &CorpusStats {
        &self.stats
    }

    /// Monotonic per-tuple score: Σ_k tf·idf of the query keywords.
    pub fn tuple_score<S: AsRef<str>>(&self, tid: TupleId, keywords: &[S]) -> f64 {
        let toks = self.db.tuple_tokens(tid);
        let tf = term_freqs(&toks);
        keywords
            .iter()
            .map(|k| {
                let k = k.as_ref();
                kwdb_rank::tfidf::TfIdf::tf_weight(tf.get(k).copied().unwrap_or(0))
                    * self.stats.idf(k)
            })
            .sum()
    }

    /// DISCOVER2 result score: sum of tuple scores over size (smaller
    /// networks matching equally well rank higher). Monotone in the
    /// per-tuple scores for a fixed CN.
    pub fn monotone_score<S: AsRef<str>>(&self, r: &JoinedResult, keywords: &[S]) -> f64 {
        let sum: f64 = r
            .tuples
            .iter()
            .map(|&t| self.tuple_score(t, keywords))
            .sum();
        sum / r.tuples.len() as f64
    }

    /// SPARK virtual-document score: aggregate term frequencies across the
    /// joined tuples, then apply `(1 + ln(1 + ln tf)) · idf` per keyword with
    /// pivoted length normalization and a size penalty.
    pub fn spark_score<S: AsRef<str>>(&self, r: &JoinedResult, keywords: &[S]) -> f64 {
        let mut tf: HashMap<String, usize> = HashMap::new();
        let mut dl = 0usize;
        for &t in &r.tuples {
            let toks = self.db.tuple_tokens(t);
            dl += toks.len();
            for tok in toks {
                *tf.entry(tok).or_insert(0) += 1;
            }
        }
        let norm = (1.0 - SLOPE) + SLOPE * (dl as f64 / self.avg_len);
        let a: f64 = keywords
            .iter()
            .map(|k| {
                let k = k.as_ref();
                double_log_tf(tf.get(k).copied().unwrap_or(0)) * self.stats.idf(k)
            })
            .sum();
        // completeness: fraction of keywords present (1.0 for valid results)
        let matched = keywords
            .iter()
            .filter(|k| tf.get(k.as_ref()).copied().unwrap_or(0) > 0)
            .count();
        let b = matched as f64 / keywords.len().max(1) as f64;
        // size penalty
        let c = 1.0 / r.tuples.len() as f64;
        a / norm * b * c
    }

    /// SPARK's monotone per-tuple upper bound `watf`: for any result `T`,
    /// `spark_score(T) ≤ Σ_{t ∈ T} watf(t)`. Holds because `double_log_tf`
    /// is subadditive, `norm ≥ 1 − SLOPE`, and `b, c ≤ 1`.
    pub fn watf<S: AsRef<str>>(&self, tid: TupleId, keywords: &[S]) -> f64 {
        let toks = self.db.tuple_tokens(tid);
        let tf = term_freqs(&toks);
        let a: f64 = keywords
            .iter()
            .map(|k| {
                let k = k.as_ref();
                double_log_tf(tf.get(k).copied().unwrap_or(0)) * self.stats.idf(k)
            })
            .sum();
        a / (1.0 - SLOPE)
    }
}

fn term_freqs(tokens: &[String]) -> HashMap<&str, usize> {
    let mut tf: HashMap<&str, usize> = HashMap::new();
    for t in tokens {
        *tf.entry(t.as_str()).or_insert(0) += 1;
    }
    tf
}

/// `1 + ln(1 + ln tf)` for `tf ≥ 1`, else 0 — SPARK's damped tf.
fn double_log_tf(tf: usize) -> f64 {
    if tf == 0 {
        0.0
    } else {
        1.0 + (1.0 + (tf as f64).ln()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::database::dblp_schema;
    use kwdb_relational::RowId;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "XML Xml xml fan".into()])
            .unwrap();
        db.insert(
            "paper",
            vec![10.into(), "XML keyword search".into(), 1.into()],
        )
        .unwrap();
        db.build_text_index();
        db
    }

    fn tid(db: &Database, table: &str, row: u32) -> TupleId {
        TupleId::new(db.table_id(table).unwrap(), RowId(row))
    }

    #[test]
    fn tuple_score_matches_keywords() {
        let db = db();
        let s = ResultScorer::new(&db);
        let widom = s.tuple_score(tid(&db, "author", 0), &["widom"]);
        let miss = s.tuple_score(tid(&db, "author", 0), &["xml"]);
        assert!(widom > 0.0);
        assert_eq!(miss, 0.0);
    }

    #[test]
    fn monotone_score_penalizes_size() {
        let db = db();
        let s = ResultScorer::new(&db);
        let small = JoinedResult {
            tuples: vec![tid(&db, "paper", 0)],
        };
        let big = JoinedResult {
            tuples: vec![tid(&db, "paper", 0), tid(&db, "conference", 0)],
        };
        assert!(s.monotone_score(&small, &["xml"]) > s.monotone_score(&big, &["xml"]));
    }

    #[test]
    fn spark_double_log_damps_repeats() {
        let db = db();
        let s = ResultScorer::new(&db);
        let spammy = JoinedResult {
            tuples: vec![tid(&db, "author", 1)],
        }; // xml ×3
        let normal = JoinedResult {
            tuples: vec![tid(&db, "paper", 0)],
        }; // xml ×1
        let r_spam = s.spark_score(&spammy, &["xml"]);
        let r_norm = s.spark_score(&normal, &["xml"]);
        // three repetitions must give far less than 3× the single occurrence
        assert!(r_spam < 2.0 * r_norm);
        assert!(r_spam > 0.0);
    }

    #[test]
    fn watf_upper_bounds_spark_score() {
        let db = db();
        let s = ResultScorer::new(&db);
        let kws = ["xml", "widom", "keyword"];
        let results = [
            JoinedResult {
                tuples: vec![tid(&db, "paper", 0)],
            },
            JoinedResult {
                tuples: vec![tid(&db, "author", 0), tid(&db, "paper", 0)],
            },
            JoinedResult {
                tuples: vec![
                    tid(&db, "author", 0),
                    tid(&db, "author", 1),
                    tid(&db, "paper", 0),
                ],
            },
        ];
        for r in &results {
            let bound: f64 = r.tuples.iter().map(|&t| s.watf(t, &kws)).sum();
            let score = s.spark_score(r, &kws);
            assert!(
                score <= bound + 1e-9,
                "watf bound violated: score {score} > bound {bound}"
            );
        }
    }

    #[test]
    fn spark_completeness_penalizes_partial_match() {
        let db = db();
        let s = ResultScorer::new(&db);
        let r = JoinedResult {
            tuples: vec![tid(&db, "paper", 0)],
        };
        let full = s.spark_score(&r, &["xml"]);
        let half = s.spark_score(&r, &["xml", "widom"]);
        assert!(half < full);
    }
}
