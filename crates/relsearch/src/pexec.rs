//! Intra-query parallel CN execution.
//!
//! This is the production counterpart of the offline scheduling demos in
//! [`crate::parallel`]: one keyword query's candidate networks are spread
//! over worker threads that all prune against a single global top-k bound
//! ([`kwdb_common::SharedTopK`]), with per-worker queues seeded by the
//! sharing-aware partitioner and drained through atomic cursors so idle
//! workers steal from loaded ones.
//!
//! Each worker evaluates whole CNs with [`evaluate_cn_pooled`], a hash-join
//! evaluator that caches build-side hash tables per `(table, mask, column)`
//! inside an [`EvalScratch`] — tuple sets recur across the CNs of one query,
//! so each worker pays each build at most once — and reuses flat intermediate
//! buffers instead of allocating row vectors per CN.
//!
//! # Determinism
//!
//! The executor returns the *exact* top-k of the full result multiset for
//! any worker count, because (a) the score model is monotone and the shared
//! threshold is a conservative lower bound on the global k-th best, so a
//! CN is skipped only when `bound < threshold` strictly — it provably
//! cannot contribute; and (b) `SharedTopK` orders ties by result content,
//! not arrival. Under a truncating budget the *verdict* is still
//! deterministic for candidate caps (one ticket is drawn per CN considered,
//! before the bound check), though which CNs made it in before the cut
//! depends on timing — same as any anytime algorithm.

use crate::cn::CandidateNetwork;
use crate::eval::JoinedResult;
use crate::facets::{FacetAccum, FacetRequest};
use crate::parallel::{estimate_cost, partition_sharing_aware};
use crate::topk::{CnExecOutcome, RankedResult, TopKQuery};
use crate::tupleset::TupleSets;
use kwdb_common::index::kernels;
use kwdb_common::{Budget, ScratchPool, SharedTopK, TruncationReason, Value};
use kwdb_rank::tfidf::TfIdf;
use kwdb_relational::index::table_key_range;
use kwdb_relational::{Database, ExecStats, RowId, TableId, TupleId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-worker reusable evaluation state. Checked out of a
/// [`ScratchPool`] once per query per worker; [`EvalScratch::begin_query`]
/// resets query-scoped caches while keeping allocated capacity.
#[derive(Default)]
pub struct EvalScratch {
    /// Build-side hash tables keyed by `(table, mask, join column)`:
    /// join key value → rows of that node's default row set. Valid for one
    /// query (row sets depend on the tuple sets).
    builds: HashMap<(TableId, u32, usize), HashMap<Value, Vec<RowId>>>,
    /// Materialized free sets `R^∅`, one per table, shared by every free
    /// node of the query's CNs.
    free_rows: HashMap<TableId, Vec<RowId>>,
    /// Flat ping-pong intermediates: `cur` holds the joined prefix as
    /// `stride`-sized chunks of `RowId`s, `next` receives the join output.
    cur: Vec<RowId>,
    next: Vec<RowId>,
}

impl EvalScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop query-scoped caches (they key on tuple sets) but keep buffer
    /// capacity for reuse across queries.
    pub fn begin_query(&mut self) {
        self.builds.clear();
        self.free_rows.clear();
        self.cur.clear();
        self.next.clear();
    }
}

/// Evaluate `cn` fully over its default row sets, reusing `scratch`'s
/// cached hash tables and buffers. Produces the same result *set* as
/// [`crate::eval::evaluate_cn`] (order may differ; callers rank by
/// content anyway).
pub fn evaluate_cn_pooled(
    db: &Database,
    cn: &CandidateNetwork,
    ts: &TupleSets,
    scratch: &mut EvalScratch,
    stats: &ExecStats,
) -> Vec<JoinedResult> {
    evaluate_cn_pooled_until(db, cn, ts, scratch, stats, &|| false)
}

/// [`evaluate_cn_pooled`] with a cancellation probe, polled between join
/// steps and periodically inside probe loops. When `cancel` turns true the
/// evaluation stops and returns no results — the parallel executor uses
/// this to abandon a CN the moment the shared top-k bound strictly exceeds
/// the CN's upper bound (every result it could still produce would be
/// rejected, so dropping them cannot change the final top-k).
pub fn evaluate_cn_pooled_until(
    db: &Database,
    cn: &CandidateNetwork,
    ts: &TupleSets,
    scratch: &mut EvalScratch,
    stats: &ExecStats,
    cancel: &dyn Fn() -> bool,
) -> Vec<JoinedResult> {
    let n = cn.nodes.len();
    if n == 0 {
        return Vec::new();
    }
    // Materialize any free sets this CN needs before joining, so the join
    // loop can borrow `scratch.free_rows` immutably while it mutates
    // `scratch.builds` (disjoint fields).
    for node in &cn.nodes {
        if node.mask == 0 {
            if let Entry::Vacant(v) = scratch.free_rows.entry(node.table) {
                v.insert(ts.free_rows(db, node.table));
            }
        }
    }
    fn rows_of<'a>(
        cn: &CandidateNetwork,
        ts: &'a TupleSets,
        free: &'a HashMap<TableId, Vec<RowId>>,
        ni: usize,
    ) -> &'a [RowId] {
        let node = cn.nodes[ni];
        if node.mask == 0 {
            free.get(&node.table).map(|v| v.as_slice()).unwrap_or(&[])
        } else {
            ts.get(node.table, node.mask)
                .map(|s| s.rows.as_slice())
                .unwrap_or(&[])
        }
    }

    // BFS placement order from node 0 (same shape as evaluate_cn_with).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ei, e) in cn.edges.iter().enumerate() {
        adj[e.a].push(ei);
        adj[e.b].push(ei);
    }
    let mut order = vec![0usize];
    let mut join_via: Vec<Option<usize>> = vec![None; n];
    let mut placed = vec![false; n];
    placed[0] = true;
    let mut qi = 0;
    while qi < order.len() {
        let u = order[qi];
        qi += 1;
        for &ei in &adj[u] {
            let e = &cn.edges[ei];
            let v = if e.a == u { e.b } else { e.a };
            if !placed[v] {
                placed[v] = true;
                join_via[v] = Some(ei);
                order.push(v);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "CN must be connected");
    let mut slot = vec![0usize; n];
    for (s, &node) in order.iter().enumerate() {
        slot[node] = s;
    }

    let mut cur = std::mem::take(&mut scratch.cur);
    let mut next = std::mem::take(&mut scratch.next);
    cur.clear();
    let first_rows = rows_of(cn, ts, &scratch.free_rows, order[0]);
    stats.add_scanned(first_rows.len() as u64);
    cur.extend_from_slice(first_rows);
    let mut stride = 1usize;

    let mut cancelled = false;
    for &node in order.iter().skip(1) {
        if cur.is_empty() {
            break;
        }
        if cancel() {
            cancelled = true;
            break;
        }
        let e = &cn.edges[join_via[node].expect("non-root placed via an edge")];
        let parent = if e.a == node { e.b } else { e.a };
        let se = &db.schema_graph().edges()[e.schema_edge];
        let (parent_col, node_col) = if e.from_side_is(parent) {
            (se.fk_column, se.pk_column)
        } else {
            (se.pk_column, se.fk_column)
        };
        let parent_table = db.table(cn.nodes[parent].table);
        let node_table = db.table(cn.nodes[node].table);
        let pslot = slot[parent];
        let node_rows = rows_of(cn, ts, &scratch.free_rows, node);
        let ntuples = cur.len() / stride;
        stats.add_join();
        next.clear();

        let cached_key = (cn.nodes[node].table, cn.nodes[node].mask, node_col);
        let cached = scratch.builds.contains_key(&cached_key);
        if cached || node_rows.len() <= ntuples {
            // Build (or reuse) the hash table on the node side, probe with
            // the intermediate. Cached builds are free after first use.
            let build = match scratch.builds.entry(cached_key) {
                Entry::Occupied(o) => o.into_mut(),
                Entry::Vacant(v) => {
                    let mut ht: HashMap<Value, Vec<RowId>> =
                        HashMap::with_capacity(node_rows.len());
                    for &r in node_rows {
                        stats.add_scanned(1);
                        let key = node_table.get(r, node_col);
                        if !key.is_null() {
                            ht.entry(key.clone()).or_default().push(r);
                        }
                    }
                    v.insert(ht)
                }
            };
            for t in 0..ntuples {
                if t % 1024 == 1023 && cancel() {
                    cancelled = true;
                    break;
                }
                stats.add_probes(1);
                let key = parent_table.get(cur[t * stride + pslot], parent_col);
                if key.is_null() {
                    continue;
                }
                if let Some(matches) = build.get(key) {
                    stats.add_probe_rows(matches.len() as u64);
                    for &r in matches {
                        next.extend_from_slice(&cur[t * stride..(t + 1) * stride]);
                        next.push(r);
                    }
                }
            }
        } else {
            // The intermediate is the smaller side: hash its parent keys
            // (transient — depends on this CN's prefix) and probe with the
            // node rows.
            let mut ht: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(ntuples);
            for t in 0..ntuples {
                stats.add_scanned(1);
                let key = parent_table.get(cur[t * stride + pslot], parent_col);
                if !key.is_null() {
                    ht.entry(key).or_default().push(t);
                }
            }
            for (ri, &r) in node_rows.iter().enumerate() {
                if ri % 1024 == 1023 && cancel() {
                    cancelled = true;
                    break;
                }
                stats.add_probes(1);
                let key = node_table.get(r, node_col);
                if key.is_null() {
                    continue;
                }
                if let Some(tuples) = ht.get(key) {
                    stats.add_probe_rows(tuples.len() as u64);
                    for &t in tuples {
                        next.extend_from_slice(&cur[t * stride..(t + 1) * stride]);
                        next.push(r);
                    }
                }
            }
        }
        if cancelled {
            break;
        }
        stats.add_output((next.len() / (stride + 1)) as u64);
        std::mem::swap(&mut cur, &mut next);
        stride += 1;
    }

    let results = if !cancelled && stride == n {
        cur.chunks(stride)
            .map(|chunk| {
                let mut tuples = vec![TupleId::new(cn.nodes[0].table, RowId(0)); n];
                for (s, &node) in order.iter().enumerate() {
                    tuples[node] = TupleId::new(cn.nodes[node].table, chunk[s]);
                }
                JoinedResult { tuples }
            })
            .collect()
    } else {
        Vec::new() // a join emptied out before all nodes were placed
    };
    scratch.cur = cur;
    scratch.next = next;
    results
}

/// Try the block-max WAND fast path for a single-node CN covering the full
/// keyword mask. Such a CN's result set is exactly the keys present in
/// *every* keyword's posting list within the table's key range (the exact
/// subset cannot exceed the full mask), so it can be answered straight off
/// the posting cursors — no tuple-set materialization, no joins — while
/// block-max bounds let whole compressed blocks be skipped once the shared
/// top-k threshold rises.
///
/// Returns `false` when the CN does not fit the pattern (caller falls back
/// to the join evaluator); `true` when the CN was fully handled, including
/// the provably-empty case of a keyword absent from the index.
///
/// Exactness: the single-node score is `Σ_k tf_weight(tf_k) · idf_k` with
/// `tf_k` the tuple's occurrence total for keyword `k` — and block
/// `max_impact` bounds per-key *group totals*, so
/// `Σ_k tf_weight(block_max_k) · idf_k` upper-bounds every candidate in the
/// current blocks. Pruning is strictly-below-threshold, matching
/// `SharedTopK::would_accept`'s `score ≥ t` acceptance, so the emitted set
/// restricted to the final top-k is identical to the unpruned path for any
/// worker count and either posting layout.
fn wand_try_single_node<S, D>(
    q: &TopKQuery<'_, S, D>,
    j: usize,
    shared: &SharedTopK<(usize, JoinedResult)>,
    w: usize,
    stats: &ExecStats,
    freq: &FacetRequest<'_>,
    accum: &mut FacetAccum,
) -> bool
where
    S: AsRef<str>,
    D: Deref<Target = Database>,
{
    let exhaustive = freq.exhaustive();
    let cn = &q.cns[j];
    let full = q.ts.full_mask();
    if cn.nodes.len() != 1 || full == 0 || cn.nodes[0].mask != full {
        return false;
    }
    let table = cn.nodes[0].table;
    // Tuple sets were built from a fresh index; a stale one here means the
    // caller mutated mid-query — fall back to the generic executor.
    let Ok(ix) = q.db.text_index() else {
        return false;
    };
    let mut cursors = Vec::with_capacity(q.keywords.len());
    let mut idfs = Vec::with_capacity(q.keywords.len());
    for kw in q.keywords {
        let kw = kw.as_ref();
        let Some(sym) = ix.sym(kw) else {
            return true; // keyword absent from the corpus: CN provably empty
        };
        cursors.push(ix.postings_sym(sym).cursor());
        idfs.push(q.scorer.corpus().idf(kw));
    }
    let (lo, hi) = table_key_range(table);
    for c in &mut cursors {
        c.seek(lo);
    }
    let ws = kernels::wand_intersect(
        &mut cursors,
        hi,
        |maxes| {
            maxes
                .iter()
                .zip(&idfs)
                .map(|(&m, idf)| TfIdf::tf_weight(m as usize) * idf)
                .sum()
        },
        // Exhaustive (faceted) runs must see every matching tuple, so the
        // pruning threshold is withheld and no block is ever skipped.
        || {
            if exhaustive {
                None
            } else {
                shared.threshold()
            }
        },
        |key, _| {
            let r = JoinedResult {
                tuples: vec![TupleId::new(table, RowId(key as u32))],
            };
            if !freq.passes(q.db, &r) {
                return;
            }
            if exhaustive {
                accum.observe(q.db, freq.facets, &r);
            }
            let score = q.scorer.monotone_score(&r, q.keywords);
            shared.push(w, score, (j, r));
        },
    );
    stats.add_output(ws.emitted);
    stats.add_blocks_skipped(ws.blocks_skipped);
    true
}

/// Run the parallel CN executor: evaluate `q.cns` on `workers` threads
/// sharing one top-k bound, under `budget`. Scratch state is checked out of
/// `pool` (one `EvalScratch` per worker, returned on completion).
///
/// Scheduling: per-worker queues seeded by the sharing-aware partitioner
/// (bound-descending within a queue), drained via per-queue atomic cursors;
/// a worker that exhausts its own queue steals from the others in ring
/// order. Worker checkpoints draw one budget ticket per CN *considered*
/// (before the bound prune), so a candidate-cap truncation verdict is a
/// deterministic function of the CN count.
pub fn parallel_topk_budgeted<S, D>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
    budget: &Budget,
    workers: usize,
    pool: &ScratchPool<EvalScratch>,
) -> CnExecOutcome
where
    S: AsRef<str> + Sync,
    D: Deref<Target = Database> + Sync,
{
    parallel_topk_faceted(q, k, stats, budget, workers, pool, &FacetRequest::none()).0
}

/// [`parallel_topk_budgeted`] extended with facet accumulation and
/// drill-down refinement; returns the merged facet counts alongside the
/// outcome.
///
/// With facets requested the executor runs *exhaustively*: the per-CN bound
/// prune, the mid-evaluation cancellation probe, and the WAND block-max
/// threshold are all disabled, so every CN considered is evaluated to
/// completion exactly once (each job index is drawn from its queue by one
/// `fetch_add` winner). Each worker counts into its own [`FacetAccum`] —
/// piggybacked on the same pooled-`EvalScratch` evaluation pass that feeds
/// the shared top-k — and the accumulators are merged after the thread scope
/// drains. Merging is plain addition over a duplicate-free result multiset,
/// so the counts are exact and identical for any worker count. Budget
/// tickets are still drawn per CN; a truncated run leaves the counts partial
/// (`facets_exact = truncation.is_none()` at the response layer).
pub fn parallel_topk_faceted<S, D>(
    q: &TopKQuery<'_, S, D>,
    k: usize,
    stats: &ExecStats,
    budget: &Budget,
    workers: usize,
    pool: &ScratchPool<EvalScratch>,
    freq: &FacetRequest<'_>,
) -> (CnExecOutcome, FacetAccum)
where
    S: AsRef<str> + Sync,
    D: Deref<Target = Database> + Sync,
{
    let exhaustive = freq.exhaustive();
    let n = q.cns.len();
    if n == 0 {
        return (
            CnExecOutcome {
                results: Vec::new(),
                truncation: budget.truncation(),
                cns_evaluated: 0,
                cns_pruned: 0,
            },
            FacetAccum::new(freq.facets.len()),
        );
    }
    let workers = workers.max(1);

    // Upper bound per CN from per-(table, mask) best tuple scores — computed
    // once, not per CN, unlike the serial executors' cn_bound.
    let mut best: HashMap<(TableId, u32), f64> = HashMap::new();
    for (table, mask) in q.ts.keys() {
        let b =
            q.ts.get(table, mask)
                .map(|s| {
                    s.rows
                        .iter()
                        .map(|&r| q.scorer.tuple_score(TupleId::new(table, r), q.keywords))
                        .fold(0.0, f64::max)
                })
                .unwrap_or(0.0);
        best.insert((table, mask), b);
    }
    let bounds: Vec<f64> = q
        .cns
        .iter()
        .map(|cn| {
            let sum: f64 = cn
                .keyword_nodes()
                .into_iter()
                .map(|ni| {
                    best.get(&(cn.nodes[ni].table, cn.nodes[ni].mask))
                        .copied()
                        .unwrap_or(0.0)
                })
                .sum();
            sum / cn.size() as f64
        })
        .collect();

    // Seed per-worker queues sharing-aware; order each queue best-bound
    // first so the global threshold rises as early as possible.
    let costs: Vec<f64> = q
        .cns
        .iter()
        .map(|cn| estimate_cost(q.db, q.ts, cn))
        .collect();
    let assign = partition_sharing_aware(q.cns, &costs, workers);
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (j, &c) in assign.core_of.iter().enumerate() {
        queues[c % workers].push(j);
    }
    for jobs in &mut queues {
        jobs.sort_by(|&a, &b| bounds[b].total_cmp(&bounds[a]).then(a.cmp(&b)));
    }

    let shared: SharedTopK<(usize, JoinedResult)> = SharedTopK::new(k, workers);
    let cursors: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
    let tickets = AtomicU64::new(0);
    let evaluated = AtomicU64::new(0);
    let abort = AtomicBool::new(false);
    let truncation: Mutex<Option<TruncationReason>> = Mutex::new(None);

    let run_worker = |w: usize| {
        let mut scratch = pool.checkout(EvalScratch::new);
        scratch.begin_query();
        let mut accum = FacetAccum::new(freq.facets.len());
        'queues: for qi in 0..workers {
            let qidx = (w + qi) % workers; // own queue first, then steal
            let jobs = &queues[qidx];
            let cursor = &cursors[qidx];
            loop {
                if abort.load(Ordering::Acquire) {
                    break 'queues;
                }
                let pos = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&j) = jobs.get(pos) else { break };
                let ticket = tickets.fetch_add(1, Ordering::Relaxed);
                if let Some(reason) = budget.truncation_at(ticket) {
                    let mut tr = truncation.lock().expect("truncation poisoned");
                    // Prefer the deterministic cap verdict if any worker saw it.
                    *tr = match (*tr, reason) {
                        (Some(TruncationReason::CandidateCapReached), _) => {
                            Some(TruncationReason::CandidateCapReached)
                        }
                        (_, r) => Some(r),
                    };
                    abort.store(true, Ordering::Release);
                    break 'queues;
                }
                if !exhaustive && !shared.would_accept(bounds[j]) {
                    continue; // strictly below the global k-th best: pruned
                }
                // Single-node full-mask CNs skip the join machinery and run
                // straight off the posting cursors with block-max pruning.
                if wand_try_single_node(q, j, &shared, w, stats, freq, &mut accum) {
                    evaluated.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // Abandon mid-evaluation once another worker raises the
                // threshold past this CN's bound: everything it could still
                // produce would be rejected. Faceted runs never abandon —
                // every result still counts even when it can't be ranked.
                let results =
                    evaluate_cn_pooled_until(q.db, &q.cns[j], q.ts, &mut scratch, stats, &|| {
                        !exhaustive && !shared.would_accept(bounds[j])
                    });
                evaluated.fetch_add(1, Ordering::Relaxed);
                for r in results {
                    if !freq.passes(q.db, &r) {
                        continue;
                    }
                    if exhaustive {
                        accum.observe(q.db, freq.facets, &r);
                    }
                    let score = q.scorer.monotone_score(&r, q.keywords);
                    shared.push(w, score, (j, r));
                }
            }
        }
        accum
    };

    let mut accum = FacetAccum::new(freq.facets.len());
    if workers == 1 {
        accum.merge(run_worker(0));
    } else {
        let run_worker = &run_worker;
        let worker_accums = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| s.spawn(move || run_worker(w)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });
        for a in worker_accums {
            accum.merge(a);
        }
    }

    let results = shared
        .into_sorted_vec()
        .into_iter()
        .map(|(score, (cn_index, result))| RankedResult {
            cn_index,
            result,
            score,
        })
        .collect();
    let evaluated = evaluated.load(Ordering::Relaxed);
    (
        CnExecOutcome {
            results,
            truncation: truncation.into_inner().expect("truncation poisoned"),
            cns_evaluated: evaluated,
            cns_pruned: n as u64 - evaluated,
        },
        accum,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::{CnGenConfig, CnGenerator, MaskOracle};
    use crate::eval::evaluate_cn;
    use crate::score::ResultScorer;
    use crate::topk::global_pipeline;
    use kwdb_relational::database::dblp_schema;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("conference", vec![2.into(), "VLDB".into(), 2008.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "Serge Abiteboul".into()])
            .unwrap();
        db.insert("author", vec![3.into(), "Widom Junior".into()])
            .unwrap();
        for (pid, title, cid) in [
            (10, "XML keyword search", 1),
            (11, "Data on the Web", 1),
            (12, "Streams and XML", 2),
            (13, "Query optimization", 2),
        ] {
            db.insert("paper", vec![pid.into(), title.into(), cid.into()])
                .unwrap();
        }
        for (wid, aid, pid) in [(100, 1, 10), (101, 2, 11), (102, 1, 12), (103, 3, 13)] {
            db.insert("write", vec![wid.into(), aid.into(), pid.into()])
                .unwrap();
        }
        db.build_text_index();
        db
    }

    fn setup(db: &Database, keywords: &[&str]) -> (TupleSets, Vec<CandidateNetwork>) {
        let ts = TupleSets::build(db, keywords).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut generator = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 5,
                dedupe: true,
                max_cns: 0,
            },
        );
        (ts, generator.generate())
    }

    #[test]
    fn pooled_eval_matches_plain_eval_as_sets() {
        let db = db();
        let (ts, cns) = setup(&db, &["widom", "xml"]);
        assert!(!cns.is_empty());
        let mut scratch = EvalScratch::new();
        scratch.begin_query();
        for cn in &cns {
            let stats = ExecStats::new();
            let mut plain = evaluate_cn(&db, cn, &ts, &stats);
            let mut pooled = evaluate_cn_pooled(&db, cn, &ts, &mut scratch, &stats);
            plain.sort();
            pooled.sort();
            assert_eq!(plain, pooled, "pooled evaluator diverged on a CN");
        }
    }

    #[test]
    fn parallel_matches_serial_scores_across_worker_counts() {
        let db = db();
        let (ts, cns) = setup(&db, &["widom", "xml"]);
        let scorer = ResultScorer::new(&db);
        let keywords = ["widom", "xml"];
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };
        let pool = ScratchPool::new();
        for k in [1, 3, 10] {
            let serial: Vec<f64> = global_pipeline(&q, k, &ExecStats::new())
                .iter()
                .map(|r| r.score)
                .collect();
            for workers in [1, 2, 4] {
                let out = parallel_topk_budgeted(
                    &q,
                    k,
                    &ExecStats::new(),
                    &Budget::unlimited(),
                    workers,
                    &pool,
                );
                let scores: Vec<f64> = out.results.iter().map(|r| r.score).collect();
                assert_eq!(serial, scores, "k={k} workers={workers}");
                assert!(out.truncation.is_none());
                assert_eq!(out.cns_evaluated + out.cns_pruned, cns.len() as u64);
            }
        }
    }

    #[test]
    fn wand_fast_path_matches_serial_across_layouts_and_workers() {
        use kwdb_common::index::Layout;
        let mut db = db();
        // A row matching every keyword, so a single-node full-mask CN — the
        // WAND fast path's target — exists and produces results.
        db.insert(
            "paper",
            vec![14.into(), "Widom XML retrospective".into(), 2.into()],
        )
        .unwrap();
        for layout in [Layout::Plain, Layout::Blocks] {
            db.build_text_index_with(layout);
            let (ts, cns) = setup(&db, &["widom", "xml"]);
            assert!(
                cns.iter()
                    .any(|cn| cn.nodes.len() == 1 && cn.nodes[0].mask == ts.full_mask()),
                "expected a single-node full-mask CN"
            );
            let scorer = ResultScorer::new(&db);
            let keywords = ["widom", "xml"];
            let q = TopKQuery {
                db: &db,
                ts: &ts,
                cns: &cns,
                scorer: &scorer,
                keywords: &keywords,
            };
            let pool = ScratchPool::new();
            let serial = global_pipeline(&q, 3, &ExecStats::new());
            let serial_scores: Vec<f64> = serial.iter().map(|r| r.score).collect();
            let mut serial_sets: Vec<_> = serial.iter().map(|r| r.result.tuples.clone()).collect();
            serial_sets.sort();
            for workers in [1, 8] {
                let out = parallel_topk_budgeted(
                    &q,
                    3,
                    &ExecStats::new(),
                    &Budget::unlimited(),
                    workers,
                    &pool,
                );
                let scores: Vec<f64> = out.results.iter().map(|r| r.score).collect();
                assert_eq!(serial_scores, scores, "layout={layout:?} workers={workers}");
                let mut sets: Vec<_> = out
                    .results
                    .iter()
                    .map(|r| r.result.tuples.clone())
                    .collect();
                sets.sort();
                assert_eq!(serial_sets, sets, "layout={layout:?} workers={workers}");
            }
        }
    }

    #[test]
    fn expired_deadline_stops_before_any_evaluation() {
        let db = db();
        let (ts, cns) = setup(&db, &["widom", "xml"]);
        let scorer = ResultScorer::new(&db);
        let keywords = ["widom", "xml"];
        let q = TopKQuery {
            db: &db,
            ts: &ts,
            cns: &cns,
            scorer: &scorer,
            keywords: &keywords,
        };
        let pool = ScratchPool::new();
        let budget = Budget::unlimited().with_timeout(std::time::Duration::ZERO);
        let out = parallel_topk_budgeted(&q, 5, &ExecStats::new(), &budget, 4, &pool);
        assert_eq!(out.truncation, Some(TruncationReason::DeadlineExceeded));
        assert_eq!(
            out.cns_evaluated, 0,
            "every worker stops at its first checkpoint"
        );
        assert!(out.results.is_empty());
    }
}
