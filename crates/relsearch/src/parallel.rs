//! Parallel CN computation (Qin et al., *Ten Thousand SQLs: Parallel Keyword
//! Queries Computing*, VLDB 10) — tutorial slides 130–133.
//!
//! A keyword query becomes hundreds of CN jobs; the question is how to
//! spread them over cores when jobs share sub-expressions:
//!
//! * [`partition_lpt`] — classic longest-processing-time greedy, oblivious
//!   to sharing (slide 131);
//! * [`partition_sharing_aware`] — assign each job to the core where its
//!   *residual* cost (cost minus work already paid by co-located jobs'
//!   shared subtrees) minimizes the resulting load (slide 132);
//! * [`operator_level_makespan`] — schedule distinct subtree *operators* level by
//!   level across cores (slide 133), the finest granularity;
//! * [`execute_parallel`] — actually run an assignment on real threads
//!   (std scoped threads), for wall-clock measurements.

use crate::cn::CandidateNetwork;
use crate::eval::evaluate_cn;
use crate::tupleset::TupleSets;
use kwdb_relational::{Database, ExecStats};
use std::collections::{HashMap, HashSet};

/// Estimated cost of evaluating a CN: total rows scanned across its nodes
/// (free nodes scan the free set) plus one unit per join. Pure counting —
/// no row vectors are materialized.
pub fn estimate_cost(db: &Database, ts: &TupleSets, cn: &CandidateNetwork) -> f64 {
    let mut cost = cn.edges.len() as f64;
    for i in 0..cn.nodes.len() {
        cost += crate::eval::default_row_count(db, cn, ts, i) as f64;
    }
    cost
}

/// All distinct subtree codes of a CN (every node, rooted away from each
/// neighbor) — the shareable operators.
pub fn subtree_codes(cn: &CandidateNetwork) -> HashSet<String> {
    let mut codes = HashSet::new();
    for node in 0..cn.nodes.len() {
        collect_codes(cn, node, usize::MAX, &mut codes);
    }
    codes
}

fn collect_codes(
    cn: &CandidateNetwork,
    node: usize,
    parent: usize,
    out: &mut HashSet<String>,
) -> String {
    let mut kids: Vec<String> = cn
        .edges
        .iter()
        .filter_map(|e| {
            let child = if e.a == node && e.b != parent {
                e.b
            } else if e.b == node && e.a != parent {
                e.a
            } else {
                return None;
            };
            Some(format!(
                "-{}{}-{}",
                e.schema_edge,
                if e.from_side_is(child) { ">" } else { "<" },
                collect_codes(cn, child, node, out)
            ))
        })
        .collect();
    kids.sort();
    let code = format!(
        "{}:{}({})",
        cn.nodes[node].table.0,
        cn.nodes[node].mask,
        kids.join(",")
    );
    out.insert(code.clone());
    code
}

/// An assignment of jobs to cores plus its simulated makespan.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// `core_of[j]` = core executing job `j`.
    pub core_of: Vec<usize>,
    /// Simulated per-core loads.
    pub loads: Vec<f64>,
}

impl Assignment {
    pub fn makespan(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }
}

/// Longest-processing-time greedy, sharing-oblivious.
pub fn partition_lpt(costs: &[f64], cores: usize) -> Assignment {
    let cores = cores.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
    let mut loads = vec![0.0f64; cores];
    let mut core_of = vec![0usize; costs.len()];
    for j in order {
        let c = (0..cores)
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .unwrap();
        core_of[j] = c;
        loads[c] += costs[j];
    }
    Assignment { core_of, loads }
}

/// Sharing-aware greedy: a job's cost on a core is reduced by the fraction
/// of its subtree operators already present on that core (shared work is
/// paid once per core). Jobs are placed largest-first on the core that
/// minimizes the resulting maximum load.
pub fn partition_sharing_aware(
    cns: &[CandidateNetwork],
    costs: &[f64],
    cores: usize,
) -> Assignment {
    let cores = cores.max(1);
    let codes: Vec<HashSet<String>> = cns.iter().map(subtree_codes).collect();
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
    let mut loads = vec![0.0; cores];
    let mut core_codes: Vec<HashSet<String>> = vec![HashSet::new(); cores];
    let mut core_of = vec![0usize; costs.len()];
    for j in order {
        // residual cost of job j on each core
        let mut best: Option<(f64, usize, f64)> = None; // (resulting load, core, residual)
        for c in 0..cores {
            let total = codes[j].len().max(1) as f64;
            let shared = codes[j].intersection(&core_codes[c]).count() as f64;
            let residual = costs[j] * (1.0 - shared / total).max(0.05);
            let resulting = loads[c] + residual;
            if best.is_none_or(|(bl, _, _)| resulting < bl) {
                best = Some((resulting, c, residual));
            }
        }
        let (_, c, residual) = best.expect("at least one core");
        core_of[j] = c;
        loads[c] += residual;
        core_codes[c].extend(codes[j].iter().cloned());
    }
    Assignment { core_of, loads }
}

/// Operator-level scheduling: distinct subtree operators are grouped by
/// height (level) and each level is LPT-scheduled independently; the
/// makespan is the sum of per-level maxima (levels are barriers, as deeper
/// operators consume shallower ones). Returns the simulated makespan.
pub fn operator_level_makespan(cns: &[CandidateNetwork], cores: usize) -> f64 {
    let cores = cores.max(1);
    // operator → (level, unit cost ~ subtree size)
    let mut ops: HashMap<String, (usize, f64)> = HashMap::new();
    for cn in cns {
        let mut local = HashSet::new();
        for node in 0..cn.nodes.len() {
            collect_codes(cn, node, usize::MAX, &mut local);
        }
        for code in local {
            let level = code.matches('(').count(); // nesting depth proxy
            let cost = 1.0 + code.matches('-').count() as f64 / 2.0;
            ops.entry(code).or_insert((level, cost));
        }
    }
    let mut by_level: HashMap<usize, Vec<f64>> = HashMap::new();
    for (_, (lvl, cost)) in ops {
        by_level.entry(lvl).or_default().push(cost);
    }
    let mut total = 0.0;
    for (_, costs) in by_level {
        total += partition_lpt(&costs, cores).makespan();
    }
    total
}

/// Execute an assignment for real on `cores` scoped threads. Returns per-CN
/// result counts (results themselves are discarded — this entry point exists
/// for wall-clock benchmarking).
pub fn execute_parallel(
    db: &Database,
    ts: &TupleSets,
    cns: &[CandidateNetwork],
    assignment: &Assignment,
    cores: usize,
    stats: &ExecStats,
) -> Vec<usize> {
    let cores = cores.max(1);
    let mut per_core: Vec<Vec<usize>> = vec![Vec::new(); cores];
    for (j, &c) in assignment.core_of.iter().enumerate() {
        per_core[c % cores].push(j);
    }
    let counts: Vec<std::sync::atomic::AtomicUsize> = (0..cns.len())
        .map(|_| std::sync::atomic::AtomicUsize::new(0))
        .collect();
    let counts_ref = &counts;
    std::thread::scope(|s| {
        for jobs in &per_core {
            s.spawn(move || {
                for &j in jobs {
                    let n = evaluate_cn(db, &cns[j], ts, stats).len();
                    counts_ref[j].store(n, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    counts.into_iter().map(|c| c.into_inner()).collect()
}

/// Data-level parallelism for extremely skewed workloads (slide 133's last
/// bullet): when one CN dominates everything, CN-level partitioning cannot
/// balance it. Split the CN's *largest keyword tuple set* into `cores`
/// chunks and evaluate the restricted CN per chunk in parallel; chunk
/// results are disjoint (each result uses exactly one tuple of that set), so
/// concatenation equals serial evaluation.
pub fn execute_data_parallel(
    db: &Database,
    ts: &TupleSets,
    cn: &CandidateNetwork,
    cores: usize,
    stats: &ExecStats,
) -> Vec<crate::eval::JoinedResult> {
    use crate::eval::{default_row_count, default_rows, evaluate_cn_with};
    let cores = cores.max(1);
    // pick the largest keyword node to split on (counting only, no clones)
    let split = cn
        .keyword_nodes()
        .into_iter()
        .max_by_key(|&ni| default_row_count(db, cn, ts, ni));
    let Some(split_node) = split else {
        return crate::eval::evaluate_cn(db, cn, ts, stats);
    };
    let rows = default_rows(db, cn, ts, split_node);
    if rows.len() < cores * 2 {
        return crate::eval::evaluate_cn(db, cn, ts, stats);
    }
    let chunk = rows.len().div_ceil(cores);
    let chunks: Vec<&[kwdb_relational::RowId]> = rows.chunks(chunk).collect();
    let mut outputs: Vec<Vec<crate::eval::JoinedResult>> =
        (0..chunks.len()).map(|_| Vec::new()).collect();
    std::thread::scope(|s| {
        for (slot, part) in outputs.iter_mut().zip(&chunks) {
            let part: Vec<kwdb_relational::RowId> = part.to_vec();
            s.spawn(move || {
                *slot = evaluate_cn_with(
                    db,
                    cn,
                    &|node| {
                        if node == split_node {
                            part.clone()
                        } else {
                            default_rows(db, cn, ts, node)
                        }
                    },
                    stats,
                );
            });
        }
    });
    outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::{CnGenConfig, CnGenerator, MaskOracle};
    use kwdb_relational::database::dblp_schema;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "Serge Abiteboul".into()])
            .unwrap();
        for (pid, title) in [(10, "XML keyword search"), (11, "XML views")] {
            db.insert("paper", vec![pid.into(), title.into(), 1.into()])
                .unwrap();
        }
        for (wid, aid, pid) in [(100, 1, 10), (101, 2, 11)] {
            db.insert("write", vec![wid.into(), aid.into(), pid.into()])
                .unwrap();
        }
        db.build_text_index();
        db
    }

    fn jobs(db: &Database) -> (TupleSets, Vec<CandidateNetwork>) {
        let ts = TupleSets::build(db, &["widom", "xml"]).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut g = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 5,
                dedupe: true,
                max_cns: 0,
            },
        );
        let cns = g.generate();
        (ts, cns)
    }

    #[test]
    fn lpt_balances_loads() {
        let costs = [10.0, 9.0, 8.0, 1.0, 1.0, 1.0];
        let a = partition_lpt(&costs, 3);
        assert_eq!(a.core_of.len(), 6);
        assert!(a.makespan() <= 11.0, "LPT makespan {}", a.makespan());
        let total: f64 = a.loads.iter().sum();
        assert!((total - 30.0).abs() < 1e-9);
    }

    #[test]
    fn sharing_aware_beats_oblivious_when_jobs_overlap() {
        let db = db();
        let (ts, cns) = jobs(&db);
        assert!(cns.len() >= 4);
        let costs: Vec<f64> = cns.iter().map(|cn| estimate_cost(&db, &ts, cn)).collect();
        let obl = partition_lpt(&costs, 2);
        let aware = partition_sharing_aware(&cns, &costs, 2);
        assert!(
            aware.makespan() <= obl.makespan() + 1e-9,
            "sharing-aware {} > LPT {}",
            aware.makespan(),
            obl.makespan()
        );
    }

    #[test]
    fn operator_level_bounded_by_total_work() {
        let db = db();
        let (_, cns) = jobs(&db);
        let m1 = operator_level_makespan(&cns, 1);
        let m4 = operator_level_makespan(&cns, 4);
        assert!(m4 <= m1);
        assert!(m4 > 0.0);
    }

    #[test]
    fn parallel_execution_matches_serial_counts() {
        let db = db();
        let (ts, cns) = jobs(&db);
        let costs: Vec<f64> = cns.iter().map(|cn| estimate_cost(&db, &ts, cn)).collect();
        let assign = partition_lpt(&costs, 3);
        let stats = ExecStats::new();
        let counts = execute_parallel(&db, &ts, &cns, &assign, 3, &stats);
        let serial_stats = ExecStats::new();
        for (j, cn) in cns.iter().enumerate() {
            let serial = evaluate_cn(&db, cn, &ts, &serial_stats).len();
            assert_eq!(counts[j], serial, "CN {j} count mismatch");
        }
    }

    #[test]
    fn data_parallel_matches_serial_results() {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        // a skewed workload: many matching authors, one paper
        for aid in 0..40 {
            db.insert("author", vec![(aid as i64).into(), "prolific widom".into()])
                .unwrap();
        }
        db.insert("paper", vec![1.into(), "xml".into(), 1.into()])
            .unwrap();
        for (wid, aid) in (0..40).enumerate() {
            db.insert(
                "write",
                vec![(wid as i64).into(), (aid as i64).into(), 1.into()],
            )
            .unwrap();
        }
        db.build_text_index();
        let ts = TupleSets::build(&db, &["widom", "xml"]).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut g = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size: 3,
                dedupe: true,
                max_cns: 0,
            },
        );
        let cns = g.generate();
        let cn = cns.iter().find(|c| c.size() == 3).expect("A–W–P network");
        let stats = ExecStats::new();
        let mut serial = evaluate_cn(&db, cn, &ts, &stats);
        let mut parallel = execute_data_parallel(&db, &ts, cn, 4, &stats);
        serial.sort_by(|a, b| a.tuples.cmp(&b.tuples));
        parallel.sort_by(|a, b| a.tuples.cmp(&b.tuples));
        assert_eq!(serial.len(), 40);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn data_parallel_small_input_falls_back_to_serial() {
        let db = db();
        let (ts, cns) = jobs(&db);
        let stats = ExecStats::new();
        for cn in &cns {
            let a = evaluate_cn(&db, cn, &ts, &stats);
            let b = execute_data_parallel(&db, &ts, cn, 8, &stats);
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn single_core_makespan_is_total_cost() {
        let costs = [3.0, 4.0, 5.0];
        let a = partition_lpt(&costs, 1);
        assert_eq!(a.makespan(), 12.0);
    }
}
