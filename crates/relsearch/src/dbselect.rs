//! Keyword-based database selection (Yu, Li, Sollins & Tung, SIGMOD 07) —
//! tutorial slide 168's distributed-search pointer.
//!
//! With many databases available, evaluating a keyword query everywhere is
//! wasteful; each database is summarized offline by its **keyword
//! relationships**: how often two keywords co-occur within a bounded number
//! of FK joins. Online, a query is routed to the databases whose summaries
//! promise connected results — not merely keyword presence (a database
//! containing both "seltzer" and "berkeley" in unrelated tables is useless).

use kwdb_relational::{Database, TupleId};
use std::collections::{HashMap, HashSet};

/// Offline summary: keyword → matching tuple count, and keyword-pair →
/// count of tuple pairs within `d_max` FK hops.
#[derive(Debug, Clone)]
pub struct KeywordRelationshipSummary {
    term_freq: HashMap<String, usize>,
    pair_freq: HashMap<(String, String), usize>,
    pub d_max: u32,
}

impl KeywordRelationshipSummary {
    /// Build the summary for one database. Vocabulary can be capped to the
    /// `max_terms` most frequent terms (summaries must stay small).
    pub fn build(db: &Database, d_max: u32, max_terms: usize) -> Self {
        let ix = db
            .text_index()
            .expect("summary construction requires a fresh text index");
        // choose the vocabulary
        let mut terms: Vec<(String, usize)> = ix
            .terms()
            .map(|t| (t.to_string(), ix.doc_freq(t)))
            .collect();
        terms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        terms.truncate(max_terms);
        let term_freq: HashMap<String, usize> = terms.iter().cloned().collect();

        // per-term reachable tuple sets within d_max hops
        let edges = crate::rdbms_power::edge_relation(db);
        let mut adj: HashMap<TupleId, Vec<TupleId>> = HashMap::new();
        for &(u, v) in &edges {
            adj.entry(u).or_default().push(v);
        }
        let reach_of = |term: &str| -> HashSet<TupleId> {
            let mut frontier: HashSet<TupleId> =
                ix.postings(term).iter().map(|p| p.tuple).collect();
            let mut seen = frontier.clone();
            for _ in 0..d_max {
                let mut next = HashSet::new();
                for u in &frontier {
                    for v in adj.get(u).into_iter().flatten() {
                        if seen.insert(*v) {
                            next.insert(*v);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                frontier = next;
            }
            seen
        };
        let reaches: HashMap<&str, HashSet<TupleId>> = term_freq
            .keys()
            .map(|t| (t.as_str(), reach_of(t)))
            .collect();

        // pair relationship strength: overlap of reachable sets means the
        // two keywords can be connected within 2·d_max hops
        let mut pair_freq: HashMap<(String, String), usize> = HashMap::new();
        let names: Vec<&str> = term_freq.keys().map(|s| s.as_str()).collect();
        for (i, &a) in names.iter().enumerate() {
            for &b in names.iter().skip(i + 1) {
                let overlap = reaches[a].intersection(&reaches[b]).count();
                if overlap > 0 {
                    let key = if a < b {
                        (a.to_string(), b.to_string())
                    } else {
                        (b.to_string(), a.to_string())
                    };
                    pair_freq.insert(key, overlap);
                }
            }
        }
        KeywordRelationshipSummary {
            term_freq,
            pair_freq,
            d_max,
        }
    }

    /// Relationship strength of a keyword pair (0 when unrelated here).
    pub fn pair_strength(&self, a: &str, b: &str) -> usize {
        let key = if a < b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        self.pair_freq.get(&key).copied().unwrap_or(0)
    }

    /// Score a query against this summary: every keyword must be present,
    /// and every keyword pair contributes `ln(1 + strength)` — presence
    /// without relationships scores 0, the paper's key point.
    pub fn score<S: AsRef<str>>(&self, query: &[S]) -> f64 {
        if query
            .iter()
            .any(|k| !self.term_freq.contains_key(k.as_ref()))
        {
            return 0.0;
        }
        if query.len() == 1 {
            return (1.0 + self.term_freq[query[0].as_ref()] as f64).ln();
        }
        let mut total = 0.0;
        for (i, a) in query.iter().enumerate() {
            for b in query.iter().skip(i + 1) {
                let s = self.pair_strength(a.as_ref(), b.as_ref());
                if s == 0 {
                    return 0.0; // some pair cannot be connected here
                }
                total += (1.0 + s as f64).ln();
            }
        }
        total
    }
}

/// Rank databases for a query by their summaries, best first; zero-scoring
/// databases are dropped.
pub fn select_databases<'a, S: AsRef<str>>(
    summaries: &'a [(String, KeywordRelationshipSummary)],
    query: &[S],
    k: usize,
) -> Vec<(&'a str, f64)> {
    let mut scored: Vec<(&str, f64)> = summaries
        .iter()
        .map(|(name, s)| (name.as_str(), s.score(query)))
        .filter(|(_, s)| *s > 0.0)
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_relational::database::dblp_schema;

    /// A database where widom writes xml papers (connected keywords).
    fn connected_db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Widom".into()]).unwrap();
        db.insert("paper", vec![1.into(), "XML search".into(), 1.into()])
            .unwrap();
        db.insert("write", vec![1.into(), 1.into(), 1.into()])
            .unwrap();
        db.build_text_index();
        db
    }

    /// Both keywords present but in unrelated places (no write rows).
    fn disconnected_db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("conference", vec![2.into(), "VLDB".into(), 2008.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Widom".into()]).unwrap();
        db.insert("paper", vec![1.into(), "XML search".into(), 2.into()])
            .unwrap();
        db.build_text_index();
        db
    }

    #[test]
    fn connected_database_scores_positive() {
        let db = connected_db();
        let s = KeywordRelationshipSummary::build(&db, 2, 50);
        assert!(s.pair_strength("widom", "xml") > 0);
        assert!(s.score(&["widom", "xml"]) > 0.0);
    }

    #[test]
    fn presence_without_relationship_scores_zero() {
        let db = disconnected_db();
        let s = KeywordRelationshipSummary::build(&db, 2, 50);
        assert!(s.term_freq.contains_key("widom"));
        assert!(s.term_freq.contains_key("xml"));
        assert_eq!(s.pair_strength("widom", "xml"), 0);
        assert_eq!(s.score(&["widom", "xml"]), 0.0);
    }

    #[test]
    fn selection_ranks_the_useful_database_only() {
        let summaries = vec![
            (
                "dblp-a".to_string(),
                KeywordRelationshipSummary::build(&connected_db(), 2, 50),
            ),
            (
                "dblp-b".to_string(),
                KeywordRelationshipSummary::build(&disconnected_db(), 2, 50),
            ),
        ];
        let ranked = select_databases(&summaries, &["widom", "xml"], 5);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].0, "dblp-a");
    }

    #[test]
    fn single_keyword_uses_presence() {
        let db = disconnected_db();
        let s = KeywordRelationshipSummary::build(&db, 2, 50);
        assert!(s.score(&["widom"]) > 0.0);
        assert_eq!(s.score(&["nonexistent"]), 0.0);
    }

    #[test]
    fn vocabulary_cap_respected() {
        let db = connected_db();
        let s = KeywordRelationshipSummary::build(&db, 2, 3);
        assert!(s.term_freq.len() <= 3);
    }
}
