//! Shared execution across candidate networks — the operator mesh
//! (Markowetz et al., SIGMOD 07) and SPARK2's partition graph
//! (Luo et al., TKDE 11). Tutorial slides 134–135.
//!
//! CNs generated for one query overlap heavily: `A^{k1}–W–P^{k2}` is a
//! subtree of `A^{k1}–W–P^{k2}–W–A` and of dozens of larger networks. The
//! mesh executor evaluates each *distinct canonical subtree* once:
//! bottom-up semi-joins compute, per subtree, the set of root rows that can
//! actually anchor the subtree, memoized by the subtree's canonical code.
//! Two payoffs, both measured by E23:
//!
//! * **pruning** — a CN containing an empty sub-CN is skipped entirely
//!   (SPARK2's partition-graph rule);
//! * **sharing** — semi-join work for repeated subtrees is paid once.

use crate::cn::CandidateNetwork;
use crate::eval::{default_rows, evaluate_cn_with, JoinedResult};
use crate::tupleset::TupleSets;
use kwdb_relational::join::semi_join;
use kwdb_relational::{Database, ExecStats, RowId};
use std::collections::HashMap;
use std::rc::Rc;

/// Sharing metrics from one mesh run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Distinct subtrees whose semi-join chain was computed.
    pub subtrees_computed: usize,
    /// Subtree evaluations answered from the cache.
    pub cache_hits: usize,
    /// CNs skipped because a subtree pruned to empty.
    pub cns_pruned: usize,
}

/// Evaluate all `cns`, sharing subtree semi-join work. Returns per-CN
/// results identical to independent evaluation.
pub fn evaluate_shared(
    db: &Database,
    ts: &TupleSets,
    cns: &[CandidateNetwork],
    stats: &ExecStats,
) -> (Vec<Vec<JoinedResult>>, MeshStats) {
    let mut cache: HashMap<String, Rc<Vec<RowId>>> = HashMap::new();
    let mut mesh = MeshStats::default();
    let mut out = Vec::with_capacity(cns.len());
    for cn in cns {
        // prune each node's rows to those that can anchor their subtree
        // (rooted at node 0)
        let mut pruned: Vec<Option<Rc<Vec<RowId>>>> = vec![None; cn.nodes.len()];
        let ok = prune_subtree(
            db,
            ts,
            cn,
            0,
            usize::MAX,
            &mut pruned,
            &mut cache,
            &mut mesh,
            stats,
        );
        if !ok {
            mesh.cns_pruned += 1;
            out.push(Vec::new());
            continue;
        }
        let results = evaluate_cn_with(
            db,
            cn,
            &|node| {
                pruned[node]
                    .as_ref()
                    .map(|r| r.as_ref().clone())
                    .unwrap_or_else(|| default_rows(db, cn, ts, node))
            },
            stats,
        );
        out.push(results);
    }
    (out, mesh)
}

/// Compute (and cache) the set of `node` rows that can anchor the subtree of
/// `node` away from `parent`. Returns false if any subtree is empty.
#[allow(clippy::too_many_arguments)]
fn prune_subtree(
    db: &Database,
    ts: &TupleSets,
    cn: &CandidateNetwork,
    node: usize,
    parent: usize,
    pruned: &mut Vec<Option<Rc<Vec<RowId>>>>,
    cache: &mut HashMap<String, Rc<Vec<RowId>>>,
    mesh: &mut MeshStats,
    stats: &ExecStats,
) -> bool {
    // children of `node` away from `parent`
    let children: Vec<(usize, usize)> = cn
        .edges
        .iter()
        .enumerate()
        .filter_map(|(ei, e)| {
            if e.a == node && e.b != parent {
                Some((e.b, ei))
            } else if e.b == node && e.a != parent {
                Some((e.a, ei))
            } else {
                None
            }
        })
        .collect();
    // recurse first so children's pruned rows exist
    for &(c, _) in &children {
        if !prune_subtree(db, ts, cn, c, node, pruned, cache, mesh, stats) {
            return false;
        }
    }
    let key = subtree_code(cn, node, parent);
    if let Some(rows) = cache.get(&key) {
        mesh.cache_hits += 1;
        pruned[node] = Some(rows.clone());
        return !rows.is_empty();
    }
    mesh.subtrees_computed += 1;
    let mut rows = default_rows(db, cn, ts, node);
    for (c, ei) in children {
        let e = &cn.edges[ei];
        let se = &db.schema_graph().edges()[e.schema_edge];
        let (node_col, child_col) = if e.from_side_is(node) {
            (se.fk_column, se.pk_column)
        } else {
            (se.pk_column, se.fk_column)
        };
        let child_rows = pruned[c].as_ref().expect("child recursed");
        rows = semi_join(
            db.table(cn.nodes[node].table),
            &rows,
            node_col,
            db.table(cn.nodes[c].table),
            child_rows,
            child_col,
            stats,
        );
        if rows.is_empty() {
            break;
        }
    }
    let rows = Rc::new(rows);
    cache.insert(key, rows.clone());
    pruned[node] = Some(rows.clone());
    !rows.is_empty()
}

/// Canonical code of the subtree of `node` away from `parent` — the cache
/// key (table, mask, FK identity and orientation all included).
fn subtree_code(cn: &CandidateNetwork, node: usize, parent: usize) -> String {
    let mut kids: Vec<String> = cn
        .edges
        .iter()
        .filter_map(|e| {
            let (child, _me) = if e.a == node && e.b != parent {
                (e.b, e.a)
            } else if e.b == node && e.a != parent {
                (e.a, e.b)
            } else {
                return None;
            };
            Some(format!(
                "-{}{}-{}",
                e.schema_edge,
                if e.from_side_is(child) { ">" } else { "<" },
                subtree_code(cn, child, node)
            ))
        })
        .collect();
    kids.sort();
    format!(
        "{}:{}({})",
        cn.nodes[node].table.0,
        cn.nodes[node].mask,
        kids.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::{CnGenConfig, CnGenerator, MaskOracle};
    use crate::eval::evaluate_cn;
    use kwdb_relational::database::dblp_schema;

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("author", vec![1.into(), "Jennifer Widom".into()])
            .unwrap();
        db.insert("author", vec![2.into(), "Serge Abiteboul".into()])
            .unwrap();
        for (pid, title) in [(10, "XML keyword search"), (11, "Data on the Web")] {
            db.insert("paper", vec![pid.into(), title.into(), 1.into()])
                .unwrap();
        }
        for (wid, aid, pid) in [(100, 1, 10), (101, 2, 11), (102, 2, 10)] {
            db.insert("write", vec![wid.into(), aid.into(), pid.into()])
                .unwrap();
        }
        db.build_text_index();
        db
    }

    fn cns(db: &Database, kws: &[&str], max_size: usize) -> (TupleSets, Vec<CandidateNetwork>) {
        let ts = TupleSets::build(db, kws).unwrap();
        let oracle = MaskOracle::from_tuplesets(&ts);
        let mut g = CnGenerator::new(
            db.schema_graph(),
            &oracle,
            CnGenConfig {
                max_size,
                dedupe: true,
                max_cns: 0,
            },
        );
        let list = g.generate();
        (ts, list)
    }

    #[test]
    fn shared_results_match_independent_evaluation() {
        let db = db();
        let (ts, list) = cns(&db, &["widom", "xml"], 5);
        let s1 = ExecStats::new();
        let (shared, _) = evaluate_shared(&db, &ts, &list, &s1);
        let s2 = ExecStats::new();
        for (cn, got) in list.iter().zip(&shared) {
            let mut expect = evaluate_cn(&db, cn, &ts, &s2);
            let mut got = got.clone();
            expect.sort_by(|a, b| a.tuples.cmp(&b.tuples));
            got.sort_by(|a, b| a.tuples.cmp(&b.tuples));
            assert_eq!(expect, got);
        }
    }

    #[test]
    fn cache_hits_occur_with_overlapping_cns() {
        let db = db();
        let (ts, list) = cns(&db, &["widom", "xml"], 5);
        assert!(list.len() > 3, "need several CNs to share among");
        let stats = ExecStats::new();
        let (_, mesh) = evaluate_shared(&db, &ts, &list, &stats);
        assert!(mesh.cache_hits > 0, "expected shared subtrees: {mesh:?}");
    }

    #[test]
    fn empty_subtree_prunes_cn() {
        let db = db();
        // "web" exists only in paper 11 which Abiteboul wrote; "widom" exists
        // only in author 1 — CNs needing a widom-author of a web-paper prune.
        let (ts, list) = cns(&db, &["widom", "web"], 5);
        let stats = ExecStats::new();
        let (results, mesh) = evaluate_shared(&db, &ts, &list, &stats);
        // at least one CN yields nothing and some still yield answers
        assert!(results.iter().any(|r| r.is_empty()));
        assert!(results.iter().any(|r| !r.is_empty()));
        let _ = mesh;
    }

    #[test]
    fn subtree_code_distinguishes_orientation() {
        let db = db();
        let (_, list) = cns(&db, &["widom", "xml"], 5);
        // codes of all whole-CN subtrees must be pairwise distinct for
        // distinct CNs rooted at node 0 only when shapes differ; at minimum,
        // no two different-size CNs share a code
        let mut by_code: HashMap<String, usize> = HashMap::new();
        for cn in &list {
            let code = subtree_code(cn, 0, usize::MAX);
            if let Some(&sz) = by_code.get(&code) {
                assert_eq!(sz, cn.size(), "same code for different-size CNs");
            }
            by_code.insert(code, cn.size());
        }
    }
}
