//! Facet accumulation and drill-down refinement over CN executor results.
//!
//! Faceted search annotates a keyword query's *full result multiset* with
//! per-attribute value distributions. The exact-subset tuple-set partition
//! makes this well-defined: a joining tree matches exactly one CN, so the
//! union of all CN results is duplicate-free and the facet counts are a
//! property of the query, not of the execution strategy. Counts therefore
//! must come out identical for any worker count and either posting layout —
//! the same bar the parallel executor meets for top-k.
//!
//! The counting rule: for each result and each requested facet, every tuple
//! of the facet's table occurring in the result contributes its column value
//! once. Results without a tuple of that table contribute nothing.
//!
//! A [`Refinement`] is the drill-down half: a predicate over facet
//! attributes that filters results *before* they are ranked or counted, so
//! clicking a facet value re-runs the query narrowed to it. Refinements are
//! deliberately not part of the CN plan — the plan depends only on schema
//! and keywords — so a refined query hits the CN plan cache.

use crate::eval::JoinedResult;
use kwdb_common::{FacetCount, FacetCounts, FacetSpec, KwdbError, Result, Value};
use kwdb_relational::{Database, TableId};
use std::collections::HashMap;

/// A facet spec resolved against a schema: `"table.column"` → ids, done once
/// per query at parse time so the per-result hot path is two array indexes.
#[derive(Debug, Clone)]
pub struct ResolvedFacet {
    pub spec: FacetSpec,
    pub table: TableId,
    pub col: usize,
}

/// Resolve `"table.column"` to `(TableId, column index)`.
pub fn resolve_attr(db: &Database, attr: &str) -> Result<(TableId, usize)> {
    let (tname, cname) = attr.split_once('.').ok_or_else(|| {
        KwdbError::InvalidQuery(format!(
            "facet attribute `{attr}` must be of the form table.column"
        ))
    })?;
    let table = db.table_id(tname)?;
    let col = db
        .table(table)
        .schema
        .columns
        .iter()
        .position(|c| c.name == cname)
        .ok_or_else(|| KwdbError::UnknownObject(format!("{tname}.{cname}")))?;
    Ok((table, col))
}

/// Resolve every requested facet, rejecting unknown attributes up front.
pub fn resolve_facets(db: &Database, specs: &[FacetSpec]) -> Result<Vec<ResolvedFacet>> {
    specs
        .iter()
        .map(|spec| {
            let (table, col) = resolve_attr(db, spec.attr())?;
            Ok(ResolvedFacet {
                spec: spec.clone(),
                table,
                col,
            })
        })
        .collect()
}

/// One drill-down predicate over a facet attribute. A result passes when it
/// contains at least one tuple of the attribute's table whose column value
/// matches — the same membership test that made the result count toward that
/// facet value in the first place.
#[derive(Debug, Clone, PartialEq)]
pub enum Refinement {
    /// Keep results with a tuple whose column renders as `value` (what a
    /// terms-facet click sends back).
    Term { attr: String, value: String },
    /// Keep results with a tuple whose numeric column falls in `[lo, hi)`
    /// (what a range-bucket click sends back).
    Range { attr: String, lo: f64, hi: f64 },
}

impl Refinement {
    pub fn attr(&self) -> &str {
        match self {
            Refinement::Term { attr, .. } | Refinement::Range { attr, .. } => attr,
        }
    }
}

/// A refinement resolved against the schema.
#[derive(Debug, Clone)]
pub struct ResolvedRefinement {
    pub refinement: Refinement,
    pub table: TableId,
    pub col: usize,
}

/// Resolve every refinement, rejecting unknown attributes up front.
pub fn resolve_refinements(db: &Database, refs: &[Refinement]) -> Result<Vec<ResolvedRefinement>> {
    refs.iter()
        .map(|r| {
            let (table, col) = resolve_attr(db, r.attr())?;
            Ok(ResolvedRefinement {
                refinement: r.clone(),
                table,
                col,
            })
        })
        .collect()
}

fn value_matches(v: &Value, refinement: &Refinement) -> bool {
    match refinement {
        Refinement::Term { value, .. } => !v.is_null() && v.to_string() == *value,
        Refinement::Range { lo, hi, .. } => v.as_f64().is_some_and(|x| x >= *lo && x < *hi),
    }
}

/// Whether `r` satisfies *all* refinements (drill-downs compose as AND).
pub fn result_passes(db: &Database, refs: &[ResolvedRefinement], r: &JoinedResult) -> bool {
    refs.iter().all(|rf| {
        r.tuples.iter().any(|t| {
            t.table == rf.table
                && value_matches(db.table(rf.table).get(t.row, rf.col), &rf.refinement)
        })
    })
}

/// What an executor needs to run faceted: the resolved facets to count and
/// the refinements to filter by. An empty value (no facets, no refinements)
/// reduces every faceted code path to the plain one.
#[derive(Debug, Clone, Copy)]
pub struct FacetRequest<'a> {
    pub facets: &'a [ResolvedFacet],
    pub refinements: &'a [ResolvedRefinement],
}

impl FacetRequest<'_> {
    /// The no-op request: nothing to count, nothing to filter.
    pub fn none() -> FacetRequest<'static> {
        FacetRequest {
            facets: &[],
            refinements: &[],
        }
    }

    /// Facet counting covers the full result multiset, so an executor must
    /// disable bound pruning and early stopping and evaluate every CN to
    /// completion — the price of exact, worker-count-invariant counts.
    pub fn exhaustive(&self) -> bool {
        !self.facets.is_empty()
    }

    /// Whether `r` survives the refinements (true when there are none).
    pub fn passes(&self, db: &Database, r: &JoinedResult) -> bool {
        self.refinements.is_empty() || result_passes(db, self.refinements, r)
    }

    pub fn is_empty(&self) -> bool {
        self.facets.is_empty() && self.refinements.is_empty()
    }
}

/// A facet-count accumulator: one raw `value → count` map per requested
/// facet. Workers each fill their own and the executor merges them at drain
/// time — addition is commutative, so the merged counts are independent of
/// worker count and interleaving. Bucketing (for range facets) and
/// sort/truncate (for terms facets) happen once in [`FacetAccum::finish`].
#[derive(Debug, Default)]
pub struct FacetAccum {
    counters: Vec<HashMap<Value, u64>>,
}

impl FacetAccum {
    pub fn new(n_facets: usize) -> Self {
        FacetAccum {
            counters: vec![HashMap::new(); n_facets],
        }
    }

    /// Count one result: every tuple of each facet's table contributes its
    /// column value once. Null values are skipped.
    pub fn observe(&mut self, db: &Database, facets: &[ResolvedFacet], r: &JoinedResult) {
        for (fi, f) in facets.iter().enumerate() {
            for t in &r.tuples {
                if t.table != f.table {
                    continue;
                }
                let v = db.table(f.table).get(t.row, f.col);
                if v.is_null() {
                    continue;
                }
                *self.counters[fi].entry(v.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Fold another worker's counts into this one.
    pub fn merge(&mut self, other: FacetAccum) {
        if self.counters.len() < other.counters.len() {
            self.counters
                .resize_with(other.counters.len(), HashMap::new);
        }
        for (fi, m) in other.counters.into_iter().enumerate() {
            for (v, c) in m {
                *self.counters[fi].entry(v).or_insert(0) += c;
            }
        }
    }

    /// Finalize into response-shaped [`FacetCounts`], one per requested
    /// facet, in request order.
    pub fn finish(self, facets: &[ResolvedFacet]) -> Vec<FacetCounts> {
        facets
            .iter()
            .zip(
                self.counters
                    .into_iter()
                    .chain(std::iter::repeat_with(HashMap::new)),
            )
            .map(|(f, counter)| match &f.spec {
                FacetSpec::Terms { attr, top_n } => {
                    // Merge by rendered value: distinct `Value`s that display
                    // identically (Int(2) vs Text("2")) are one facet value.
                    let mut by_text: HashMap<String, u64> = HashMap::new();
                    for (v, c) in counter {
                        *by_text.entry(v.to_string()).or_insert(0) += c;
                    }
                    let mut values: Vec<FacetCount> = by_text
                        .into_iter()
                        .map(|(value, count)| FacetCount { value, count })
                        .collect();
                    values.sort_by(|a, b| b.count.cmp(&a.count).then(a.value.cmp(&b.value)));
                    values.truncate(*top_n);
                    FacetCounts {
                        attr: attr.clone(),
                        values,
                    }
                }
                FacetSpec::Range { attr, buckets } => {
                    let values = buckets
                        .iter()
                        .map(|b| {
                            let count = counter
                                .iter()
                                .filter_map(|(v, c)| {
                                    v.as_f64().filter(|&x| b.contains(x)).map(|_| *c)
                                })
                                .sum();
                            FacetCount {
                                value: b.label.clone(),
                                count,
                            }
                        })
                        .collect();
                    FacetCounts {
                        attr: attr.clone(),
                        values,
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kwdb_common::RangeBucket;
    use kwdb_relational::database::dblp_schema;
    use kwdb_relational::{RowId, TupleId};

    fn db() -> Database {
        let mut db = Database::new();
        dblp_schema(&mut db).unwrap();
        db.insert("conference", vec![1.into(), "SIGMOD".into(), 2007.into()])
            .unwrap();
        db.insert("conference", vec![2.into(), "VLDB".into(), 1998.into()])
            .unwrap();
        db.insert(
            "paper",
            vec![10.into(), "XML keyword search".into(), 1.into()],
        )
        .unwrap();
        db
    }

    fn result(db: &Database, parts: &[(&str, u32)]) -> JoinedResult {
        JoinedResult {
            tuples: parts
                .iter()
                .map(|(t, r)| TupleId::new(db.table_id(t).unwrap(), RowId(*r)))
                .collect(),
        }
    }

    #[test]
    fn resolve_rejects_unknown_attrs() {
        let db = db();
        assert!(resolve_attr(&db, "conference.name").is_ok());
        assert!(resolve_attr(&db, "nope.name").is_err());
        assert!(resolve_attr(&db, "conference.nope").is_err());
        assert!(resolve_attr(&db, "noperiod").is_err());
    }

    #[test]
    fn terms_counting_sorts_and_truncates() {
        let db = db();
        let facets = resolve_facets(&db, &[FacetSpec::terms("conference.name", 1)]).unwrap();
        let mut acc = FacetAccum::new(1);
        acc.observe(
            &db,
            &facets,
            &result(&db, &[("conference", 0), ("paper", 0)]),
        );
        acc.observe(&db, &facets, &result(&db, &[("conference", 0)]));
        acc.observe(&db, &facets, &result(&db, &[("conference", 1)]));
        let counts = acc.finish(&facets);
        assert_eq!(counts[0].attr, "conference.name");
        assert_eq!(counts[0].values.len(), 1, "top_n truncates");
        assert_eq!(counts[0].values[0].value, "SIGMOD");
        assert_eq!(counts[0].values[0].count, 2);
    }

    #[test]
    fn range_counting_buckets_in_request_order() {
        let db = db();
        let facets = resolve_facets(
            &db,
            &[FacetSpec::range(
                "conference.year",
                vec![
                    RangeBucket::new("90s", 1990.0, 2000.0),
                    RangeBucket::new("00s", 2000.0, 2010.0),
                    RangeBucket::new("10s", 2010.0, 2020.0),
                ],
            )],
        )
        .unwrap();
        let mut acc = FacetAccum::new(1);
        acc.observe(&db, &facets, &result(&db, &[("conference", 0)]));
        acc.observe(&db, &facets, &result(&db, &[("conference", 1)]));
        let counts = acc.finish(&facets);
        let vals: Vec<(&str, u64)> = counts[0]
            .values
            .iter()
            .map(|v| (v.value.as_str(), v.count))
            .collect();
        assert_eq!(vals, vec![("90s", 1), ("00s", 1), ("10s", 0)]);
    }

    #[test]
    fn merge_is_plain_addition() {
        let db = db();
        let facets = resolve_facets(&db, &[FacetSpec::terms("conference.name", 10)]).unwrap();
        let mut a = FacetAccum::new(1);
        let mut b = FacetAccum::new(1);
        a.observe(&db, &facets, &result(&db, &[("conference", 0)]));
        b.observe(&db, &facets, &result(&db, &[("conference", 0)]));
        b.observe(&db, &facets, &result(&db, &[("conference", 1)]));
        a.merge(b);
        let counts = a.finish(&facets);
        assert_eq!(counts[0].count_of("SIGMOD"), 2);
        assert_eq!(counts[0].count_of("VLDB"), 1);
    }

    #[test]
    fn refinements_filter_by_membership() {
        let db = db();
        let refs = resolve_refinements(
            &db,
            &[Refinement::Term {
                attr: "conference.name".into(),
                value: "SIGMOD".into(),
            }],
        )
        .unwrap();
        assert!(result_passes(
            &db,
            &refs,
            &result(&db, &[("conference", 0), ("paper", 0)])
        ));
        assert!(!result_passes(
            &db,
            &refs,
            &result(&db, &[("conference", 1)])
        ));
        // no tuple of the refined table at all ⇒ fails the drill-down
        assert!(!result_passes(&db, &refs, &result(&db, &[("paper", 0)])));

        let yr = resolve_refinements(
            &db,
            &[Refinement::Range {
                attr: "conference.year".into(),
                lo: 2000.0,
                hi: 2010.0,
            }],
        )
        .unwrap();
        assert!(result_passes(&db, &yr, &result(&db, &[("conference", 0)])));
        assert!(!result_passes(&db, &yr, &result(&db, &[("conference", 1)])));
    }
}
